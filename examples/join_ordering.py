"""Join ordering with learned cardinalities — the paper's motivating
application (§I: "producing efficient query plans heavily relies on
accurate cardinality estimates").

Uses the :mod:`repro.optimizer` subsystem: plans 3-triple star queries
with three cardinality sources — the exact-count oracle, LMKG-S, and
the independence assumption — and compares the *true* C_out of each
chosen join order (the methodology of "How good are query optimizers,
really?", Leis et al., VLDB 2015).  One plan is also executed to show
the measured intermediates matching the oracle's prediction.

Run:  python examples/join_ordering.py
"""

from repro import LMKG, LMKGSConfig, load_dataset
from repro.baselines import IndependenceEstimator
from repro.optimizer import (
    Optimizer,
    cout_cost,
    execute_order,
    plan_quality,
    true_cost_fn,
)
from repro.sampling import generate_workload


def main() -> None:
    store = load_dataset("lubm", scale=0.5)
    print("Training LMKG-S ...")
    framework = LMKG(
        store,
        grouping="size",
        lmkgs_config=LMKGSConfig(hidden_sizes=(128, 128), epochs=40),
    )
    framework.fit(
        shapes=[("star", 2), ("star", 3), ("chain", 2), ("chain", 3)],
        queries_per_shape=500,
    )

    class LearnedEstimator:
        """Adapter giving the framework the estimator protocol."""

        name = "lmkg-s"

        def estimate(self, query):
            return framework.estimate(query)

    print("\nPlan quality on 3-triple star queries ...\n")
    workload = generate_workload(store, "star", 3, 25, seed=555)
    queries = [record.query for record in workload]
    for estimator in (LearnedEstimator(), IndependenceEstimator(store)):
        report = plan_quality(store, estimator, queries)
        print(f"  {report.summary_row()}")

    print("\nOne query in detail:")
    query = queries[0]
    oracle = true_cost_fn(store)
    learned_plan = Optimizer(LearnedEstimator()).optimize(query)
    oracle_plan = Optimizer(oracle).optimize(query)
    print(f"  learned picks order  {learned_plan.order}")
    print(f"  oracle picks order   {oracle_plan.order}")
    print(
        f"  true C_out           learned "
        f"{cout_cost(query, learned_plan.order, oracle):.0f}, "
        f"optimal {oracle_plan.cost:.0f}"
    )
    execution = execute_order(store, query, learned_plan.order)
    print(
        f"  executing the learned plan: {execution.result_size} results, "
        f"{execution.probes} index probes, measured intermediates "
        f"{list(execution.intermediate_sizes)}"
    )


if __name__ == "__main__":
    main()
