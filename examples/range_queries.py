"""Range queries: the encoding extension §IV leaves as future work.

The paper restricts LMKG to term equality and notes: "For cardinality
estimation of range queries, one could modify the input encoding with
histogram selectivity values."  This example builds that extension:

1. load a knowledge graph and construct per-predicate equi-depth
   histograms over object values,
2. generate star queries whose objects carry inclusive range filters
   (the RDF idiom for FILTER(?v >= lo && ?v <= hi)), labelled exactly,
3. train LMKGS-Range — LMKG-S with one histogram-selectivity input slot
   per triple — and compare it against the pure-histogram baseline a
   traditional optimizer would use.

Run:  python examples/range_queries.py
"""

import numpy as np

from repro import LMKGSConfig, load_dataset
from repro.core.metrics import q_errors, summarize
from repro.core.ranges import (
    HistogramRangeEstimator,
    LMKGSRange,
    generate_range_workload,
)


def main() -> None:
    print("Loading the SWDF-like knowledge graph ...")
    store = load_dataset("swdf", scale=0.5)

    print("\nGenerating labelled range-query workloads ...")
    train = generate_range_workload(
        store, "star", 3, num_queries=800, seed=1
    )
    test = generate_range_workload(
        store, "star", 3, num_queries=150, seed=99
    )
    constrained = sum(1 for r in test if r.query.constraints)
    print(
        f"  train {len(train)} / test {len(test)} queries "
        f"({constrained} of the test queries carry range filters)"
    )

    print("\nTraining LMKGS-Range (selectivity-augmented encoding) ...")
    model = LMKGSRange(
        store,
        ["star"],
        3,
        LMKGSConfig(hidden_sizes=(128, 128), epochs=100),
    )
    model.fit(train)

    print("Building the histogram-only baseline ...")
    baseline = HistogramRangeEstimator(store)

    truths = [r.cardinality for r in test]
    for name, estimator in (
        ("lmkgs-range", model),
        ("histogram", baseline),
    ):
        estimates = [estimator.estimate(r.query) for r in test]
        summary = summarize(estimates, truths)
        print(
            f"  {name:<12} mean q-error {summary.mean:8.2f}   "
            f"median {summary.median:6.2f}   max {summary.max:8.2f}"
        )

    # Show a couple of concrete queries.
    print("\nSample estimates (truth vs model vs histogram):")
    for record in [r for r in test if r.query.constraints][:5]:
        constraint = record.query.constraints[0]
        print(
            f"  size-3 star, object in [{constraint.low}, "
            f"{constraint.high}]: true {record.cardinality:>6}  "
            f"lmkgs-range {model.estimate(record.query):8.1f}  "
            f"histogram {baseline.estimate(record.query):8.1f}"
        )


if __name__ == "__main__":
    main()
