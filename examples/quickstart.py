"""Quickstart: train LMKG-S on a knowledge graph and estimate queries.

Covers the full creation/execution cycle of Fig. 1 in a couple of
minutes on a laptop CPU:

1. load a dataset (a LUBM-like university knowledge graph),
2. create the framework with size-grouped supervised models,
3. train on auto-generated workloads,
4. estimate cardinalities of fresh queries — including one written in
   SPARQL text — and compare to exact counts.

Run:  python examples/quickstart.py
"""

from repro import LMKG, LMKGSConfig, load_dataset, q_error
from repro.rdf import count_bgp, format_sparql, parse_sparql
from repro.sampling import generate_workload


def main() -> None:
    print("Loading the LUBM-like knowledge graph ...")
    store = load_dataset("lubm", scale=0.5)
    print(
        f"  {store.num_triples} triples, {store.num_nodes} entities, "
        f"{store.num_predicates} predicates"
    )

    print("\nCreation phase: training LMKG-S (size-grouped) ...")
    framework = LMKG(
        store,
        model_type="supervised",
        grouping="size",
        lmkgs_config=LMKGSConfig(hidden_sizes=(128, 128), epochs=40),
    )
    framework.fit(
        shapes=[("star", 2), ("star", 3), ("chain", 2), ("chain", 3)],
        queries_per_shape=500,
    )
    print(
        f"  {framework.num_models()} model(s), "
        f"{framework.memory_bytes() / 1e6:.2f} MB total"
    )

    print("\nExecution phase: estimating fresh star queries ...")
    test = generate_workload(store, "star", 2, 10, seed=2024)
    print(f"  {'true':>8}  {'estimate':>10}  {'q-error':>8}")
    for record in test:
        estimate = framework.estimate(record.query)
        error = q_error(estimate, record.cardinality)
        print(
            f"  {record.cardinality:8d}  {estimate:10.1f}  {error:8.2f}"
        )

    print("\nEstimating a SPARQL query written as text ...")
    text = (
        "SELECT ?x WHERE { ?x <ub:advisor> ?y . "
        "?x <ub:takesCourse> ?z . }"
    )
    query = parse_sparql(text, store.dictionary)
    print(format_sparql(query, store.dictionary))
    estimate = framework.estimate(query)
    truth = count_bgp(store, query)
    print(
        f"  true cardinality = {truth}, LMKG-S estimate = "
        f"{estimate:.1f}, q-error = {q_error(estimate, truth):.2f}"
    )


if __name__ == "__main__":
    main()
