"""Bring your own knowledge graph: N-Triples in, estimates out.

Shows the ingestion path a downstream user follows with real data:

1. write a small bibliographic graph as an N-Triples file (stand-in for
   your own dump),
2. load it into a dictionary-encoded store,
3. inspect statistics and predicate correlations,
4. train an unsupervised LMKG-U model (no workload needed — it learns
   from the graph itself) and estimate SPARQL queries over it.

Run:  python examples/custom_graph.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import LMKGUConfig, q_error
from repro.core.lmkg_u import LMKGU
from repro.rdf import (
    compute_stats,
    count_bgp,
    load_ntriples,
    parse_sparql,
    write_ntriples,
)
from repro.rdf.stats import correlation_factor


def synthesize_library_graph(rng) -> list:
    """A books/authors/publishers graph with correlated predicates."""
    triples = []
    genres = ["Horror", "SciFi", "Fantasy", "Crime"]
    publishers = [f"publisher{i}" for i in range(5)]
    for a in range(40):
        author = f"author{a}"
        # Authors specialise: genre correlates with author.
        home_genre = genres[a % len(genres)]
        triples.append((author, "bornIn", f"country{a % 7}"))
        for b in range(int(rng.integers(1, 8))):
            book = f"book{a}_{b}"
            genre = (
                home_genre
                if rng.random() < 0.8
                else genres[int(rng.integers(len(genres)))]
            )
            triples.append((book, "hasAuthor", author))
            triples.append((book, "genre", genre))
            triples.append(
                (
                    book,
                    "publishedBy",
                    publishers[int(rng.integers(len(publishers)))],
                )
            )
    return triples


def main() -> None:
    rng = np.random.default_rng(7)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "library.nt"
        count = write_ntriples(path, synthesize_library_graph(rng))
        print(f"Wrote {count} triples to {path.name}")

        store = load_ntriples(path)
        stats = compute_stats(store, "library")
        print(
            f"Loaded: {stats.num_triples} triples, "
            f"{stats.num_entities} entities, "
            f"{stats.num_predicates} predicates"
        )

        d = store.dictionary
        author_p = d.predicates.lookup("hasAuthor")
        genre_p = d.predicates.lookup("genre")
        corr = correlation_factor(store, author_p, genre_p)
        print(f"hasAuthor/genre co-occurrence factor: {corr:.2f}")

        print("\nTraining LMKG-U on star patterns of size 2 ...")
        model = LMKGU(
            store,
            "star",
            2,
            LMKGUConfig(
                hidden_sizes=(64, 64),
                epochs=12,
                training_samples=5_000,
                particles=256,
            ),
        )
        model.fit()

        queries = [
            # Books by author0 in their home genre (correlated: common).
            'SELECT ?b WHERE { ?b <hasAuthor> <author0> ; '
            "<genre> <Horror> . }",
            # Cross-genre (anti-correlated: rare).
            'SELECT ?b WHERE { ?b <hasAuthor> <author0> ; '
            "<genre> <SciFi> . }",
            # All books with any author and a publisher edge.
            "SELECT ?b WHERE { ?b <hasAuthor> ?a ; <publishedBy> ?p . }",
        ]
        print()
        for text in queries:
            query = parse_sparql(text, d)
            truth = count_bgp(store, query)
            estimate = model.estimate(query)
            print(
                f"true={truth:5d}  est={estimate:8.1f}  "
                f"q-err={q_error(estimate, truth):6.2f}   {text}"
            )


if __name__ == "__main__":
    main()
