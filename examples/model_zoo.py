"""Model zoo: compare every estimator on one workload.

Reproduces, in miniature, the competitor comparison of §VIII-B: trains
LMKG-S, LMKG-U, and MSCN, builds the summary/sampling baselines, and
prints an accuracy/latency/memory scorecard for star and chain queries
over the SWDF-like dataset.

Run:  python examples/model_zoo.py
"""

import time

from repro import (
    LMKG,
    LMKGSConfig,
    LMKGUConfig,
    load_dataset,
    summarize,
)
from repro.baselines import (
    BayesNetEstimator,
    CharacteristicSets,
    Impr,
    IndependenceEstimator,
    JSUB,
    MSCN,
    MSCNConfig,
    SumRDF,
    WanderJoin,
)
from repro.sampling import generate_test_queries, generate_workload


def main() -> None:
    store = load_dataset("swdf", scale=0.5)
    print(
        f"SWDF-like graph: {store.num_triples} triples, "
        f"{store.num_nodes} entities, {store.num_predicates} predicates"
    )

    size = 2
    train = (
        generate_workload(store, "star", size, 500, seed=1).records
        + generate_workload(store, "chain", size, 500, seed=2).records
    )
    tests = {
        "star": generate_test_queries(store, "star", size, 8, seed=11),
        "chain": generate_test_queries(store, "chain", size, 8, seed=12),
    }

    print("Training learned estimators ...")
    lmkg_s = LMKG(
        store,
        grouping="size",
        lmkgs_config=LMKGSConfig(hidden_sizes=(128, 128), epochs=40),
    )
    lmkg_s.fit(shapes=[("star", size), ("chain", size)], workload=train)

    lmkg_u = {
        topology: _train_lmkg_u(store, topology, size)
        for topology in ("star", "chain")
    }

    mscn = MSCN(store, size, MSCNConfig(num_samples=200, epochs=40))
    mscn.fit(train)

    estimators = {
        "impr": Impr(store, walks_per_run=50, runs=10).estimate,
        "jsub": JSUB(store, walks_per_run=50, runs=10).estimate,
        "sumrdf": SumRDF(store).estimate,
        "wj": WanderJoin(store, walks_per_run=50, runs=10).estimate,
        "cset": CharacteristicSets(store).estimate,
        "bayesnet": BayesNetEstimator(store).estimate,
        "indep": IndependenceEstimator(store).estimate,
        "mscn": mscn.estimate,
        "lmkg-u": lambda q, z=lmkg_u: z[
            "star" if q.is_star() else "chain"
        ].estimate(q),
        "lmkg-s": lmkg_s.estimate,
    }

    header = (
        f"{'estimator':>9} {'topology':>8} {'gmean':>8} "
        f"{'median':>8} {'p90':>10} {'ms/query':>9}"
    )
    print("\n" + header)
    print("-" * len(header))
    for name, estimate in estimators.items():
        for topology, workload in tests.items():
            start = time.perf_counter()
            values = [estimate(r.query) for r in workload]
            millis = (
                (time.perf_counter() - start) * 1000 / len(workload)
            )
            s = summarize(values, workload.cardinalities())
            print(
                f"{name:>9} {topology:>8} {s.geometric_mean:8.2f} "
                f"{s.median:8.2f} {s.p90:10.2f} {millis:9.2f}"
            )


def _train_lmkg_u(store, topology, size):
    from repro.core.lmkg_u import LMKGU

    model = LMKGU(
        store,
        topology,
        size,
        LMKGUConfig(
            hidden_sizes=(128, 128),
            epochs=4,
            training_samples=8_000,
            particles=128,
        ),
    )
    model.fit()
    return model


if __name__ == "__main__":
    main()
