"""Workload shift: the execution-phase adaptation loop of §IV.

The paper's framework overview says that when "a change in the workload
of queries is detected during the execution phase, a new model may be
created, or an existing model may be dropped."  This example plays that
scenario end to end:

1. train LMKG-S for a star-only workload (the assumed initial usage),
2. serve a first phase of star queries — the monitor stays quiet,
3. shift the workload to chain queries — the monitor detects the drift
   (total-variation distance over a sliding window of query shapes),
   cold-starts a chain model, and drops the now-unused star model,
4. print the adaptation log and the estimator's accuracy before/after.

Run:  python examples/workload_shift.py
"""

from repro import LMKG, LMKGSConfig, load_dataset, q_error
from repro.core import AdaptiveLMKG, WorkloadMonitor
from repro.sampling import generate_workload


def serve(adaptive, records, label):
    """Feed queries through the adaptive estimator; report accuracy."""
    errors = []
    for record in records:
        estimate = adaptive.estimate(record.query)
        errors.append(q_error(estimate, record.cardinality))
    mean = sum(errors) / len(errors)
    print(
        f"  {label}: served {len(records)} queries, "
        f"mean q-error {mean:.2f}"
    )


def main() -> None:
    print("Loading the LUBM-like knowledge graph ...")
    store = load_dataset("lubm", scale=0.5)

    print("\nCreation phase: star-only models (the assumed workload) ...")
    framework = LMKG(
        store,
        model_type="supervised",
        grouping="specialized",
        lmkgs_config=LMKGSConfig(hidden_sizes=(64, 64), epochs=30),
    )
    framework.fit(shapes=[("star", 2)], queries_per_shape=400)

    monitor = WorkloadMonitor(
        window_size=200, threshold=0.4, min_queries=30, hot_share=0.3
    )
    adaptive = AdaptiveLMKG(framework, monitor, queries_per_shape=400)
    print(f"  reference workload: {monitor.reference}")

    print("\nExecution phase 1: the star workload the models expect ...")
    stars = generate_workload(
        store, "star", 2, num_queries=60, seed=11
    ).records
    serve(adaptive, stars, "stars")
    print(f"  adaptations so far: {len(adaptive.events)} (expected 0)")

    print("\nExecution phase 2: the workload shifts to chain queries ...")
    chains = generate_workload(
        store, "chain", 2, num_queries=120, seed=22
    ).records
    serve(adaptive, chains[:60], "chains (first batch)")
    # Keep serving chains: the drifted reference re-centres, star usage
    # fades below the cold threshold, and the star model is dropped.
    serve(adaptive, chains[60:], "chains (second batch)")

    print("\nAdaptation log:")
    for shape in adaptive.cold_starts:
        print(f"  cold-start fit for shape {shape}")
    for event in adaptive.events:
        print(
            f"  drift (TV distance {event.report.distance:.2f}): "
            f"added {list(event.added) or '[]'}, "
            f"dropped {list(event.dropped) or '[]'}"
        )
    covered = sorted(framework.models.keys())
    print(f"  models now: {covered}")


if __name__ == "__main__":
    main()
