"""Tests for workload persistence (TSV save/load round trips)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.pattern import QueryPattern
from repro.rdf.terms import TriplePattern, Variable
from repro.sampling import generate_workload
from repro.sampling.io import (
    WorkloadFormatError,
    load_workload,
    parse_pattern,
    render_pattern,
    save_workload,
)
from repro.sampling.workload import QueryRecord


def v(name):
    return Variable(name)


class TestPatternSerialization:
    def test_round_trip_mixed_terms(self):
        q = QueryPattern(
            [
                TriplePattern(v("x"), 5, 9),
                TriplePattern(9, 2, v("y")),
            ]
        )
        assert parse_pattern(render_pattern(q)).triples == q.triples

    def test_parse_rejects_malformed(self):
        for bad in (
            "",
            "(1 2)",
            "(1 2 3 4)",
            "1 2 3",
            "(1 2 ?)",
            "(a 2 3)",
        ):
            with pytest.raises(WorkloadFormatError):
                parse_pattern(bad)

    term = st.one_of(
        st.integers(min_value=0, max_value=10**6),
        st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).map(
            Variable
        ),
    )

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(term, term, term), min_size=1, max_size=6))
    def test_round_trip_property(self, triples):
        q = QueryPattern([TriplePattern(*t) for t in triples])
        assert parse_pattern(render_pattern(q)).triples == q.triples


class TestFileRoundTrip:
    def test_save_and_load(self, lubm_store, tmp_path):
        workload = generate_workload(
            lubm_store, "star", 2, num_queries=25, seed=1
        )
        path = tmp_path / "workload.tsv"
        written = save_workload(path, workload)
        assert written == len(workload.records)
        loaded = load_workload(path)
        assert len(loaded) == len(workload.records)
        for original, restored in zip(workload.records, loaded):
            assert restored.query.triples == original.query.triples
            assert restored.cardinality == original.cardinality
            assert restored.topology == original.topology
            assert restored.size == original.size

    def test_loaded_records_train_a_model(self, lubm_store, tmp_path):
        from repro.core.lmkg_s import LMKGS, LMKGSConfig

        workload = generate_workload(
            lubm_store, "star", 2, num_queries=40, seed=2
        )
        path = tmp_path / "workload.tsv"
        save_workload(path, workload)
        records = load_workload(path)
        model = LMKGS(
            lubm_store,
            ["star"],
            2,
            LMKGSConfig(epochs=2, hidden_sizes=(8, 8)),
        )
        model.fit(records)
        assert model.estimate(records[0].query) >= 0.0

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("nope\n")
        with pytest.raises(WorkloadFormatError, match="header"):
            load_workload(path)

    def test_bad_line_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text(
            "topology\tsize\tcardinality\tpattern\n"
            "star\t2\t5\t(1 2 3)\n"
            "star\ttwo\t5\t(1 2 3)\n"
        )
        with pytest.raises(WorkloadFormatError, match="line 3"):
            load_workload(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "ok.tsv"
        path.write_text(
            "topology\tsize\tcardinality\tpattern\n"
            "star\t2\t5\t(?x 2 3);(?x 4 5)\n"
            "\n"
        )
        assert len(load_workload(path)) == 1
