"""Tests for the §VII-A sampling-strategy ablation machinery."""

import numpy as np
import pytest

from repro.rdf import TripleStore
from repro.sampling import (
    make_strategy,
    sample_instances,
    sample_quality,
    strategy_names,
)
from repro.sampling.strategies import (
    DegreeWeightedRW,
    ExactUniformStrategy,
    ForestFireStrategy,
    SnowballStrategy,
    UniformStartRW,
    _subgraph_store,
)


def valid_star(store, instance, size):
    assert len(instance) == 2 * size + 1
    s = instance[0]
    for p, o in zip(instance[1::2], instance[2::2]):
        assert (s, p, o) in store


def valid_chain(store, instance, size):
    assert len(instance) == 2 * size + 1
    for i in range(0, len(instance) - 2, 2):
        s, p, o = instance[i], instance[i + 1], instance[i + 2]
        assert (s, p, o) in store


class TestRegistry:
    def test_all_strategies_registered(self):
        assert strategy_names() == [
            "degree_rw",
            "exact",
            "forest_fire",
            "rw",
            "snowball",
        ]

    def test_make_strategy_rejects_unknown(self, tiny_store):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_strategy("metropolis", tiny_store, "star", 2)

    def test_strategies_reject_unknown_topology(self, tiny_store):
        with pytest.raises(ValueError, match="unsupported topology"):
            ExactUniformStrategy(tiny_store, "cycle", 2)


@pytest.mark.parametrize("name", strategy_names())
class TestAllStrategiesProduceValidInstances:
    def test_star_instances_exist_in_graph(self, tiny_store, name):
        strategy = make_strategy(name, tiny_store, "star", 2, seed=5)
        instances = strategy.sample_many(30)
        assert len(instances) == 30
        for inst in instances:
            valid_star(tiny_store, inst, 2)

    def test_chain_instances_are_walks(self, tiny_store, name):
        strategy = make_strategy(name, tiny_store, "chain", 2, seed=5)
        instances = strategy.sample_many(30)
        assert len(instances) == 30
        for inst in instances:
            valid_chain(tiny_store, inst, 2)

    def test_deterministic_under_seed(self, tiny_store, name):
        a = make_strategy(name, tiny_store, "star", 2, seed=9)
        b = make_strategy(name, tiny_store, "star", 2, seed=9)
        assert a.sample_many(10) == b.sample_many(10)


class TestDegreeWeightedRW:
    def test_prefers_hubs_over_uniform_start(self):
        """A graph with one hub: degree-weighted starts hit it more."""
        store = TripleStore()
        for o in range(100, 130):  # hub node 1, degree 30
            store.add(1, 1, o)
        for s in range(2, 32):  # 30 leaf subjects, degree 1 each
            store.add(s, 1, 200 + s)
        uniform = UniformStartRW(store, "star", 2, seed=3)
        weighted = DegreeWeightedRW(store, "star", 2, seed=3)
        hub_share = lambda sample: np.mean(
            [inst[0] == 1 for inst in sample]
        )
        assert hub_share(weighted.sample_many(300)) > hub_share(
            uniform.sample_many(300)
        )

    def test_rejects_edgeless_store(self):
        store = TripleStore()
        with pytest.raises(ValueError, match="no out-edges"):
            DegreeWeightedRW(store, "star", 2)


class TestSubgraphStrategies:
    def test_subgraph_store_is_induced(self, tiny_store):
        sub = _subgraph_store(tiny_store, {1, 2, 3})
        assert (1, 1, 2) in sub
        assert (1, 1, 3) in sub
        assert (1, 2, 4) not in sub  # node 4 excluded

    def test_forest_fire_covers_target(self, lubm_store):
        strategy = ForestFireStrategy(lubm_store, "star", 2, seed=7)
        instances = strategy.sample_many(20)
        assert len(instances) == 20

    def test_snowball_retries_until_instances_exist(self, lubm_store):
        strategy = SnowballStrategy(lubm_store, "chain", 2, seed=7)
        strategy.target_fraction = 0.01  # likely too small at first
        instances = strategy.sample_many(10)
        assert len(instances) == 10


class TestSampleInstancesRouting:
    def test_new_methods_route_through_registry(self, tiny_store):
        instances, universe = sample_instances(
            tiny_store, "star", 2, 10, seed=1, method="degree_rw"
        )
        assert len(instances) == 10
        assert universe > 0

    def test_unknown_method_raises(self, tiny_store):
        with pytest.raises(ValueError, match="unknown strategy"):
            sample_instances(
                tiny_store, "star", 2, 10, method="bogus"
            )


class TestSampleQuality:
    def test_exact_sampler_scores_best_degree_ks(self, lubm_store):
        exact = make_strategy("exact", lubm_store, "star", 3, seed=2)
        rw = make_strategy("rw", lubm_store, "star", 3, seed=2)
        q_exact = sample_quality(
            lubm_store, "star", 3, exact.sample_many(400)
        )
        q_rw = sample_quality(lubm_store, "star", 3, rw.sample_many(400))
        # Uniform-start RW underweights hubs: its degree mix is farther
        # from the instance universe than the unbiased sampler's.
        assert q_exact.degree_ks <= q_rw.degree_ks

    def test_quality_fields_in_range(self, tiny_store):
        strategy = make_strategy("exact", tiny_store, "chain", 2, seed=2)
        quality = sample_quality(
            tiny_store, "chain", 2, strategy.sample_many(100)
        )
        assert 0.0 <= quality.predicate_tv <= 1.0
        assert 0.0 <= quality.degree_ks <= 1.0
        assert quality.distinct_terms > 0

    def test_empty_sample_rejected(self, tiny_store):
        with pytest.raises(ValueError, match="empty sample"):
            sample_quality(tiny_store, "star", 2, [])


class TestLMKGUWithExternalInstances:
    def test_fit_accepts_presampled_instances(self, lubm_store):
        from repro.core.lmkg_u import LMKGU, LMKGUConfig

        strategy = make_strategy(
            "degree_rw", lubm_store, "star", 2, seed=4
        )
        instances = strategy.sample_many(500)
        model = LMKGU(
            lubm_store,
            "star",
            2,
            LMKGUConfig(
                epochs=1,
                hidden_sizes=(16, 16),
                embed_dim=8,
                particles=16,
            ),
        )
        model.fit(instances=instances)
        assert model.universe is not None
        from repro.rdf.pattern import star_pattern
        from repro.rdf.terms import Variable

        preds = lubm_store.predicates()[:2]
        query = star_pattern(
            Variable("x"),
            [(p, Variable(f"o{i}")) for i, p in enumerate(preds)],
        )
        assert model.estimate(query) >= 0.0
