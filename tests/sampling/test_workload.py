"""Tests for unbinding and workload generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import count_bgp
from repro.rdf.terms import Variable
from repro.sampling import (
    NUM_BUCKETS,
    Workload,
    bucket_label,
    bucket_of,
    enumerate_masks,
    generate_test_queries,
    generate_workload,
    merge_workloads,
    query_from_instance,
    random_unbound_mask,
)


class TestBuckets:
    def test_boundaries_are_powers_of_five(self):
        assert bucket_of(1) == 0
        assert bucket_of(4) == 0
        assert bucket_of(5) == 1
        assert bucket_of(24) == 1
        assert bucket_of(25) == 2
        assert bucket_of(5**6) == 6

    def test_last_bucket_absorbs_outliers(self):
        assert bucket_of(5**8) == NUM_BUCKETS - 1

    def test_zero_cardinality_has_no_bucket(self):
        assert bucket_of(0) is None

    def test_labels(self):
        assert bucket_label(0) == "[5^0,5^1)"
        assert bucket_label(NUM_BUCKETS - 1) == "[5^6,5^9)"


class TestUnbinding:
    def test_star_mask_positions(self):
        instance = (10, 1, 20, 2, 30)
        query = query_from_instance(
            "star", instance, [True, False, True]
        )
        assert query.triples[0].s == Variable("s")
        assert query.triples[0].o == 20
        assert isinstance(query.triples[1].o, Variable)

    def test_chain_mask_positions(self):
        instance = (10, 1, 20, 2, 30)
        query = query_from_instance(
            "chain", instance, [False, True, False]
        )
        assert query.triples[0].s == 10
        assert query.triples[0].o == query.triples[1].s
        assert isinstance(query.triples[0].o, Variable)
        assert query.triples[1].o == 30

    def test_mask_length_validated(self):
        with pytest.raises(ValueError):
            query_from_instance("star", (1, 1, 2), [True])

    def test_unknown_topology(self):
        with pytest.raises(ValueError):
            query_from_instance("cycle", (1, 1, 2), [True, True])

    @given(st.integers(2, 5), st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_random_mask_respects_minimum(self, num_nodes, min_unbound):
        if min_unbound > num_nodes:
            return
        rng = np.random.default_rng(0)
        mask = random_unbound_mask(num_nodes, rng, min_unbound)
        assert len(mask) == num_nodes
        assert sum(mask) >= min_unbound

    def test_enumerate_masks_complete(self):
        masks = enumerate_masks(3, min_unbound=1)
        assert len(masks) == 7  # 2^3 - 1 (all-bound excluded)

    def test_unbound_instance_query_matches_instance(self, tiny_store):
        """The query produced from an instance must match that instance."""
        instance = (1, 1, 2, 2, 4)  # star: 1 -p1-> 2, 1 -p2-> 4
        query = query_from_instance("star", instance, [True, True, True])
        assert count_bgp(tiny_store, query) >= 1


class TestGenerateWorkload:
    def test_labelled_and_deduplicated(self, lubm_store):
        workload = generate_workload(lubm_store, "star", 2, 100, seed=0)
        keys = {r.query.canonical_key() for r in workload.records}
        assert len(keys) == len(workload.records)
        for record in workload.records:
            assert record.cardinality >= 1
            assert record.topology == "star"
            assert record.size == 2

    def test_deterministic(self, lubm_store):
        a = generate_workload(lubm_store, "chain", 2, 50, seed=7)
        b = generate_workload(lubm_store, "chain", 2, 50, seed=7)
        assert [r.cardinality for r in a] == [r.cardinality for r in b]

    def test_cardinalities_exact(self, lubm_store):
        workload = generate_workload(lubm_store, "star", 2, 30, seed=1)
        for record in workload.records:
            assert record.cardinality == count_bgp(
                lubm_store, record.query
            )

    def test_predicates_always_bound(self, lubm_store):
        workload = generate_workload(lubm_store, "chain", 3, 40, seed=2)
        for record in workload.records:
            for tp in record.query.triples:
                assert not isinstance(tp.p, Variable)

    def test_at_least_one_variable(self, lubm_store):
        workload = generate_workload(lubm_store, "star", 2, 40, seed=3)
        for record in workload.records:
            assert record.query.num_unbound >= 1


class TestParallelLabeling:
    """workers=N must be invisible in the output: same records, same
    cardinalities, same order as the serial path."""

    @pytest.fixture(autouse=True)
    def _needs_fork(self):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs the fork start method")

    def test_workers_equivalent_to_serial(self, lubm_store):
        serial = generate_workload(lubm_store, "star", 2, 40, seed=9)
        pooled = generate_workload(
            lubm_store, "star", 2, 40, seed=9, workers=2
        )
        assert [r.query for r in pooled] == [r.query for r in serial]
        assert [r.cardinality for r in pooled] == [
            r.cardinality for r in serial
        ]

    def test_workers_with_existing_snapshot(self, lubm_store, tmp_path):
        directory = tmp_path / "snap"
        lubm_store.save_snapshot(directory)
        serial = generate_workload(lubm_store, "chain", 2, 30, seed=3)
        pooled = generate_workload(
            lubm_store,
            "chain",
            2,
            30,
            seed=3,
            workers=2,
            snapshot_dir=directory,
        )
        assert [r.cardinality for r in pooled] == [
            r.cardinality for r in serial
        ]

    def test_all_core_workers(self, lubm_store):
        serial = generate_workload(lubm_store, "chain", 2, 20, seed=4)
        pooled = generate_workload(
            lubm_store, "chain", 2, 20, seed=4, workers=None
        )
        assert [r.cardinality for r in pooled] == [
            r.cardinality for r in serial
        ]


class TestTestQueries:
    def test_bucket_balance(self, lubm_store):
        workload = generate_test_queries(
            lubm_store, "star", 2, per_bucket=10, seed=5
        )
        by_bucket = workload.by_bucket()
        for bucket, records in by_bucket.items():
            assert len(records) <= 10
        # The low buckets must fill completely at this scale.
        assert len(by_bucket[0]) == 10
        assert len(by_bucket[1]) == 10


class TestWorkloadContainer:
    def test_split_preserves_records(self, lubm_store):
        workload = generate_workload(lubm_store, "star", 2, 60, seed=4)
        train, test = workload.split(0.75, seed=0)
        assert len(train) + len(test) == len(workload)
        assert train.topology == "star"

    def test_merge(self, lubm_store):
        a = generate_workload(lubm_store, "star", 2, 20, seed=4)
        b = generate_workload(lubm_store, "chain", 2, 20, seed=5)
        merged = merge_workloads([a, b])
        assert len(merged) == len(a) + len(b)

    def test_cardinalities_vector(self, lubm_store):
        workload = generate_workload(lubm_store, "star", 2, 20, seed=6)
        cards = workload.cardinalities()
        assert cards.shape == (len(workload),)
        assert np.all(cards >= 1)
