"""Tests for instance sampling: universe counts and uniformity."""

from collections import Counter

import numpy as np
import pytest

from repro.rdf import TripleStore
from repro.sampling import (
    ChainSampler,
    StarSampler,
    biased_rw_chain,
    biased_rw_star,
    chain_walk_counts,
    count_chain_instances,
    count_star_instances,
    sample_instances,
)


class TestUniverseCounts:
    def test_star_counts_by_hand(self, tiny_store):
        # outdegs: 1->3, 2->2, 3->1, 4->2; sum d^2 = 9+4+1+4 = 18.
        assert count_star_instances(tiny_store, 2) == 18
        assert count_star_instances(tiny_store, 1) == 8

    def test_chain_counts_by_hand(self, tiny_store):
        # Walks of length 2: enumerate: from 1 via (1,2): 2 has 2 edges;
        # via (1,3): 3 has 1; via (2,4): 4 has 2 -> 5.  From 2: via 3 ->1,
        # via 4 -> 2 -> 3. From 3: via 4 -> 2. From 4: 5,6 dead-end -> 0.
        assert count_chain_instances(tiny_store, 2) == 10
        assert count_chain_instances(tiny_store, 1) == 8

    def test_walk_count_tables_shape(self, tiny_store):
        tables = chain_walk_counts(tiny_store, 3)
        assert len(tables) == 4
        assert all(v == 1 for v in tables[0].values())

    def test_size_validation(self, tiny_store):
        with pytest.raises(ValueError):
            count_star_instances(tiny_store, 0)
        with pytest.raises(ValueError):
            chain_walk_counts(tiny_store, 0)


class TestStarSampler:
    def test_instances_are_valid(self, tiny_store):
        sampler = StarSampler(tiny_store, 2, seed=0)
        for inst in sampler.sample_many(50):
            s = inst[0]
            assert len(inst) == 5
            for i in range(2):
                p, o = inst[1 + 2 * i], inst[2 + 2 * i]
                assert (s, p, o) in tiny_store

    def test_uniform_over_universe(self, tiny_store):
        """Empirical frequency of subjects follows outdeg^k."""
        sampler = StarSampler(tiny_store, 2, seed=1)
        counts = Counter(inst[0] for inst in sampler.sample_many(6000))
        total = count_star_instances(tiny_store, 2)
        for subject, expected_weight in ((1, 9), (2, 4), (3, 1), (4, 4)):
            observed = counts[subject] / 6000
            expected = expected_weight / total
            assert abs(observed - expected) < 0.03

    def test_universe_recorded(self, tiny_store):
        assert StarSampler(tiny_store, 2).universe == 18


class TestChainSampler:
    def test_instances_are_valid_walks(self, tiny_store):
        sampler = ChainSampler(tiny_store, 2, seed=0)
        for inst in sampler.sample_many(50):
            for i in range(2):
                s, p, o = inst[2 * i], inst[2 * i + 1], inst[2 * i + 2]
                assert (s, p, o) in tiny_store

    def test_uniform_over_walks(self, tiny_store):
        """Every individual walk appears with frequency ~ 1/10."""
        sampler = ChainSampler(tiny_store, 2, seed=2)
        counts = Counter(sampler.sample_many(8000))
        assert len(counts) == 10
        for _, count in counts.items():
            assert abs(count / 8000 - 0.1) < 0.03

    def test_no_walks_raises(self):
        store = TripleStore()
        store.add(1, 1, 2)  # only length-1 walks exist
        with pytest.raises(ValueError):
            ChainSampler(store, 2)


class TestBiasedRW:
    def test_star_none_on_dead_node_possible(self, tiny_store, rng):
        results = [biased_rw_star(tiny_store, 2, rng) for _ in range(200)]
        # Start nodes 5 and 6 have no out-edges -> some Nones.
        assert any(r is None for r in results)
        assert any(r is not None for r in results)

    def test_chain_walks_valid_when_complete(self, tiny_store, rng):
        for _ in range(100):
            inst = biased_rw_chain(tiny_store, 2, rng)
            if inst is None:
                continue
            for i in range(2):
                assert (
                    inst[2 * i], inst[2 * i + 1], inst[2 * i + 2]
                ) in tiny_store

    def test_rw_bias_differs_from_exact(self, tiny_store):
        """The RW sampler over-represents low-degree start nodes relative
        to the exact sampler — the bias the paper blames for LMKG-U's
        residual error."""
        exact, _ = sample_instances(tiny_store, "star", 2, 4000, seed=0)
        rw, _ = sample_instances(
            tiny_store, "star", 2, 4000, seed=0, method="rw"
        )
        exact_freq = Counter(i[0] for i in exact)
        rw_freq = Counter(i[0] for i in rw)
        # Subject 3 (degree 1) should be over-represented under RW.
        assert rw_freq[3] / len(rw) > exact_freq[3] / len(exact)


class TestSampleInstances:
    def test_dispatch_validation(self, tiny_store):
        with pytest.raises(ValueError):
            sample_instances(tiny_store, "cycle", 2, 5)
        with pytest.raises(ValueError):
            sample_instances(tiny_store, "star", 2, 5, method="magic")

    def test_returns_universe(self, tiny_store):
        _, universe = sample_instances(tiny_store, "chain", 2, 5)
        assert universe == 10


class TestBiasedRWBatchValidity:
    """Regression: the batched RW samplers must respect the topology."""

    def test_rw_star_instances_share_the_subject(self, tiny_store):
        instances, _ = sample_instances(
            tiny_store, "star", 2, 200, seed=3, method="rw"
        )
        assert instances
        for inst in instances:
            s = inst[0]
            for i in range(2):
                p, o = inst[1 + 2 * i], inst[2 + 2 * i]
                assert (s, p, o) in tiny_store

    def test_rw_chain_instances_are_walks(self, tiny_store):
        instances, _ = sample_instances(
            tiny_store, "chain", 2, 200, seed=3, method="rw"
        )
        assert instances
        for inst in instances:
            for i in range(2):
                s, p, o = inst[2 * i], inst[2 * i + 1], inst[2 * i + 2]
                assert (s, p, o) in tiny_store
