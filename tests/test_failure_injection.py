"""Failure injection: degenerate inputs must fail loudly or degrade
gracefully — never return silently wrong answers.

Each test feeds a subsystem the kind of corner a production deployment
eventually hits: empty graphs, single-value domains, constant training
labels, queries outside the trained envelope, duplicate data.
"""

import numpy as np
import pytest

from repro.core.compound import CompoundEstimator
from repro.core.framework import LMKG, EstimationError
from repro.core.lmkg_s import LMKGS, LMKGSConfig
from repro.core.monitor import AdaptiveLMKG, WorkloadMonitor
from repro.core.ranges import (
    EquiDepthHistogram,
    PredicateHistograms,
    RangeQuery,
    count_range_query,
)
from repro.optimizer import Optimizer, dp_best_order, true_cost_fn
from repro.rdf import TripleStore, count_bgp
from repro.rdf.pattern import QueryPattern, chain_pattern, star_pattern
from repro.rdf.terms import TriplePattern, Variable
from repro.sampling import (
    ChainSampler,
    StarSampler,
    generate_workload,
    make_strategy,
)
from repro.sampling.workload import QueryRecord


def v(name):
    return Variable(name)


class TestEmptyAndTinyStores:
    def test_empty_store_counts_zero(self):
        store = TripleStore()
        q = QueryPattern([TriplePattern(v("s"), 1, v("o"))])
        assert count_bgp(store, q) == 0

    def test_star_sampler_rejects_empty_store(self):
        with pytest.raises(ValueError):
            StarSampler(TripleStore(), 2)

    def test_chain_sampler_rejects_impossible_length(self):
        store = TripleStore()
        store.add(1, 1, 2)  # no walk of length 2 exists
        with pytest.raises(ValueError, match="no walks"):
            ChainSampler(store, 2)

    def test_single_triple_store_round_trips(self):
        store = TripleStore()
        store.add(1, 1, 2)
        q = QueryPattern([TriplePattern(1, 1, 2)])
        assert count_bgp(store, q) == 1
        plan = dp_best_order(q, true_cost_fn(store))
        assert plan.order == (0,)

    def test_subgraph_strategy_errors_when_no_instances_fit(self):
        # A 2-node graph has no chain of length 3 anywhere.
        store = TripleStore()
        store.add(1, 1, 2)
        strategy = make_strategy("forest_fire", store, "chain", 3)
        with pytest.raises(ValueError):
            strategy.sample_many(5)


class TestDuplicateData:
    def test_duplicate_add_is_idempotent(self):
        store = TripleStore()
        assert store.add(1, 1, 2)
        assert not store.add(1, 1, 2)
        assert store.num_triples == 1
        assert store.count_pattern(TriplePattern(1, 1, v("o"))) == 1

    def test_add_all_reports_only_new(self):
        store = TripleStore()
        added = store.add_all([(1, 1, 2), (1, 1, 2), (2, 1, 3)])
        assert added == 2


class TestDegenerateTraining:
    def test_lmkgs_rejects_empty_workload(self, lubm_store):
        model = LMKGS(lubm_store, ["star"], 2, LMKGSConfig(epochs=1))
        with pytest.raises(ValueError, match="empty workload"):
            model.fit([])

    def test_lmkgs_constant_labels_do_not_crash(self, lubm_store):
        """All training cardinalities equal: the scaler's span is zero."""
        workload = generate_workload(
            lubm_store, "star", 2, num_queries=30, seed=8
        )
        records = [
            QueryRecord(
                query=r.query,
                topology=r.topology,
                size=r.size,
                cardinality=7,
            )
            for r in workload.records[:20]
        ]
        model = LMKGS(
            lubm_store,
            ["star"],
            2,
            LMKGSConfig(epochs=3, hidden_sizes=(16, 16)),
        )
        model.fit(records)
        estimate = model.estimate(records[0].query)
        assert np.isfinite(estimate)
        assert estimate >= 0.0

    def test_lmkgs_single_record(self, lubm_store):
        workload = generate_workload(
            lubm_store, "star", 2, num_queries=5, seed=9
        )
        model = LMKGS(
            lubm_store,
            ["star"],
            2,
            LMKGSConfig(epochs=2, hidden_sizes=(8, 8)),
        )
        model.fit(workload.records[:1])
        assert np.isfinite(model.estimate(workload.records[0].query))


class TestOutOfEnvelopeQueries:
    def test_framework_rejects_unknown_shape(self, lubm_store):
        framework = LMKG(
            lubm_store,
            model_type="supervised",
            grouping="specialized",
            lmkgs_config=LMKGSConfig(epochs=2, hidden_sizes=(8, 8)),
        )
        framework.fit(shapes=[("star", 2)], queries_per_shape=30)
        preds = lubm_store.predicates()
        big_chain = chain_pattern(
            [v("a"), preds[0], v("b"), preds[1], v("c")]
        )
        with pytest.raises(EstimationError):
            framework.estimate(big_chain)

    def test_adaptive_cold_start_covers_unknown_shape(self, lubm_store):
        framework = LMKG(
            lubm_store,
            model_type="supervised",
            grouping="specialized",
            lmkgs_config=LMKGSConfig(epochs=2, hidden_sizes=(8, 8)),
        )
        framework.fit(shapes=[("star", 2)], queries_per_shape=30)
        adaptive = AdaptiveLMKG(
            framework,
            WorkloadMonitor(min_queries=10**6),
            queries_per_shape=30,
        )
        preds = lubm_store.predicates()
        big_chain = chain_pattern(
            [v("a"), preds[0], v("b"), preds[1], v("c")]
        )
        assert adaptive.estimate(big_chain) >= 0.0
        assert ("chain", 2) in adaptive.cold_starts


class TestHistogramEdgeCases:
    def test_single_distinct_value(self):
        hist = EquiDepthHistogram([5] * 100, num_buckets=8)
        assert hist.selectivity(5, 5) == pytest.approx(1.0)
        assert hist.selectivity(0, 4) == pytest.approx(0.0)
        assert hist.selectivity(6, 10) == pytest.approx(0.0)

    def test_two_values_heavy_and_light(self):
        hist = EquiDepthHistogram([1] * 99 + [2], num_buckets=4)
        assert hist.selectivity(1, 1) >= 0.9

    def test_histograms_on_empty_store(self):
        hists = PredicateHistograms(TripleStore())
        assert hists.selectivity(1, 0, 10) == 0.0
        assert hists.memory_bytes() == 0

    def test_selectivity_never_exceeds_one(self):
        hist = EquiDepthHistogram(list(range(10)) * 3, num_buckets=4)
        assert hist.selectivity(-100, 100) <= 1.0


class TestRangeQueryEdgeCases:
    def test_range_on_empty_store(self):
        store = TripleStore()
        base = QueryPattern([TriplePattern(v("s"), 1, v("o"))])
        from repro.core.ranges import RangeConstraint

        q = RangeQuery(base, (RangeConstraint(0, 0, 100),))
        assert count_range_query(store, q) == 0


class TestOptimizerEdgeCases:
    def test_all_bound_query_plans_trivially(self, tiny_store):
        q = QueryPattern(
            [TriplePattern(1, 1, 2), TriplePattern(4, 3, 5)]
        )
        plan = dp_best_order(q, true_cost_fn(tiny_store))
        assert sorted(plan.order) == [0, 1]
        # C_out charges only the proper prefix: one bound triple = 1 row.
        assert plan.cost == pytest.approx(1.0)

    def test_zero_matches_everywhere(self, tiny_store):
        q = QueryPattern(
            [
                TriplePattern(99, 1, v("a")),
                TriplePattern(v("a"), 1, v("b")),
            ]
        )
        plan = dp_best_order(q, true_cost_fn(tiny_store))
        assert plan.cost == 0.0


class TestCompoundWithFailingModel:
    def test_zero_estimates_floor_at_one_result(self):
        class Zero:
            def estimate(self, query):
                return 0.0

        class Big:
            def estimate(self, query):
                return 100.0

        compound = CompoundEstimator(Zero(), Big(), policy="geometric")
        q = star_pattern(v("x"), [(1, v("a")), (2, v("b"))])
        # log floor: geometric mean of 1 and 100 = 10.
        assert compound.estimate(q) == pytest.approx(10.0)
