"""Tests for the benchmark harness utilities (profiles, reporting)."""

import numpy as np
import pytest

from repro.bench.profiles import FULL, QUICK, STANDARD, active_profile
from repro.bench.reporting import format_bytes, format_table


class TestProfiles:
    def test_default_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_PROFILE", raising=False)
        assert active_profile().name == "quick"

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "quick")
        assert active_profile().name == "quick"
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "FULL")
        assert active_profile().name == "full"

    def test_unknown_profile_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "hyperspeed")
        with pytest.raises(KeyError):
            active_profile()

    def test_budgets_ordered(self):
        assert (
            QUICK.train_queries_per_shape
            < STANDARD.train_queries_per_shape
            <= FULL.train_queries_per_shape
        )
        assert QUICK.sampling_runs < FULL.sampling_runs
        assert set(QUICK.query_sizes) <= set(FULL.query_sizes)

    def test_paper_budgets_in_full(self):
        assert FULL.lmkgs_epochs == 200
        assert FULL.lmkgu_epochs == 5
        assert FULL.sampling_runs == 30
        assert FULL.mscn_big_samples == 1_000


class TestReporting:
    def test_table_alignment(self):
        text = format_table(
            ("name", "value"),
            [("a", 1.0), ("long-name", 123.456)],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        # All data lines have equal width.
        assert len(lines[3]) == len(lines[4])

    def test_float_formatting(self):
        text = format_table(("x",), [(0.001234,), (123456.0,), (0,)])
        assert "1.23e-03" in text
        assert "1.23e+05" in text

    def test_nan_cells_render(self):
        text = format_table(("x",), [(float("nan"),)])
        assert "nan" in text

    def test_format_bytes(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(2_048) == "2.0KB"
        assert format_bytes(3_500_000) == "3.5MB"


class TestEstimatorOrder:
    def test_matches_paper_legend(self):
        from repro.bench import ESTIMATOR_ORDER

        assert ESTIMATOR_ORDER[0] == "impr"
        assert ESTIMATOR_ORDER[-1] == "lmkg-s"
        assert "cset" in ESTIMATOR_ORDER
        assert len(ESTIMATOR_ORDER) == 9
