"""Tests for MSCN and the independence baseline."""

import numpy as np
import pytest

from repro.baselines import IndependenceEstimator, MSCN, MSCNConfig
from repro.core.metrics import q_errors
from repro.rdf.pattern import QueryPattern, chain_pattern, star_pattern
from repro.rdf.terms import TriplePattern, Variable
from repro.sampling import generate_workload


def v(name):
    return Variable(name)


@pytest.fixture(scope="module")
def lubm_store():
    from repro.datasets import load_dataset

    return load_dataset("lubm", scale=0.5, seed=1)


@pytest.fixture(scope="module")
def training_records(lubm_store):
    star = generate_workload(lubm_store, "star", 2, 250, seed=51)
    chain = generate_workload(lubm_store, "chain", 2, 250, seed=52)
    return star.records + chain.records


class TestIndependence:
    def test_single_pattern_exact(self, tiny_store):
        indep = IndependenceEstimator(tiny_store)
        query = QueryPattern([TriplePattern(v("s"), 2, v("o"))])
        assert indep.estimate(query) == 3.0

    def test_join_divides_by_domain(self, tiny_store):
        indep = IndependenceEstimator(tiny_store)
        query = chain_pattern([v("a"), 2, v("b"), 3, v("c")])
        # 3 * 2 / 6 (shared ?b, domain 6 nodes) = 1.0
        assert indep.estimate(query) == pytest.approx(1.0)

    def test_zero_short_circuit(self, tiny_store):
        indep = IndependenceEstimator(tiny_store)
        query = star_pattern(v("x"), [(1, v("y")), (3, 9)])
        assert indep.estimate(query) == 0.0

    def test_underestimates_correlated_stars(self, lubm_store):
        """The motivating failure: correlated predicates make the
        independence estimate far too small on average."""
        indep = IndependenceEstimator(lubm_store)
        workload = generate_workload(lubm_store, "star", 2, 50, seed=53)
        under = sum(
            1
            for r in workload
            if indep.estimate(r.query) < r.cardinality
        )
        assert under > len(workload) / 2


class TestMSCN:
    def test_variant_names(self, lubm_store):
        assert MSCN(lubm_store, 2, MSCNConfig(num_samples=0)).name == "mscn-0"
        assert (
            MSCN(lubm_store, 2, MSCNConfig(num_samples=1000)).name
            == "mscn-1k"
        )

    def test_trains_and_estimates(self, lubm_store, training_records):
        model = MSCN(
            lubm_store, 2, MSCNConfig(num_samples=0, epochs=25, seed=0)
        )
        history = model.fit(training_records)
        assert history[-1] < history[0]
        estimate = model.estimate(training_records[0].query)
        assert estimate >= 1.0

    def test_accuracy_on_training_distribution(
        self, lubm_store, training_records
    ):
        model = MSCN(
            lubm_store, 2, MSCNConfig(num_samples=0, epochs=40, seed=0)
        )
        model.fit(training_records)
        held_out = generate_workload(lubm_store, "star", 2, 60, seed=54)
        errors = q_errors(
            [model.estimate(r.query) for r in held_out],
            held_out.cardinalities(),
        )
        assert np.exp(np.log(errors).mean()) < 8.0

    def test_sample_bitmap_dimensions(self, lubm_store):
        model = MSCN(lubm_store, 2, MSCNConfig(num_samples=64))
        assert len(model._samples) == 64
        assert model.element_width > MSCN(
            lubm_store, 2, MSCNConfig(num_samples=0)
        ).element_width

    def test_bitmap_matches_semantics(self, lubm_store):
        model = MSCN(lubm_store, 2, MSCNConfig(num_samples=32, seed=1))
        s, p, o = model._samples[0]
        features = model._pattern_features(TriplePattern(v("x"), p, v("y")))
        bitmap = features[-32:]
        assert bitmap[0] == 1.0  # the sample's own predicate matches

    def test_oversized_query_rejected(self, lubm_store, training_records):
        model = MSCN(
            lubm_store, 2, MSCNConfig(num_samples=0, epochs=1, seed=0)
        )
        model.fit(training_records[:50])
        big = star_pattern(v("x"), [(1, v("a")), (2, v("b")), (3, v("c"))])
        with pytest.raises(ValueError):
            model.estimate(big)

    def test_estimate_before_fit_rejected(self, lubm_store):
        model = MSCN(lubm_store, 2)
        with pytest.raises(RuntimeError):
            model.estimate(star_pattern(v("x"), [(1, v("y")), (2, v("z"))]))

    def test_memory_includes_samples(self, lubm_store, training_records):
        no_samples = MSCN(
            lubm_store, 2, MSCNConfig(num_samples=0, epochs=1)
        )
        no_samples.fit(training_records[:50])
        with_samples = MSCN(
            lubm_store, 2, MSCNConfig(num_samples=128, epochs=1)
        )
        with_samples.fit(training_records[:50])
        assert with_samples.memory_bytes() > no_samples.memory_bytes()


class TestEstimateBatchAPI:
    """Every estimator answers estimate_batch, vectorized or looped."""

    def test_mscn_batch_matches_loop(self, lubm_store, training_records):
        model = MSCN(
            lubm_store, 2, MSCNConfig(num_samples=32, epochs=3, seed=2)
        )
        model.fit(training_records)
        queries = [r.query for r in training_records[:10]]
        loop = [model.estimate(q) for q in queries]
        batch = model.estimate_batch(queries)
        assert np.allclose(loop, batch, rtol=1e-6)

    def test_base_fallback_loops(self, lubm_store, training_records):
        from repro.baselines import CharacteristicSets

        cset = CharacteristicSets(lubm_store)
        queries = [r.query for r in training_records[:5]]
        batch = cset.estimate_batch(queries)
        assert batch.tolist() == [cset.estimate(q) for q in queries]
