"""Tests for the sampling baselines: WanderJoin, JSUB, Impr."""

import numpy as np
import pytest

from repro.baselines import Impr, JSUB, WanderJoin
from repro.baselines.wanderjoin import order_patterns
from repro.core.metrics import q_errors
from repro.rdf.pattern import chain_pattern, star_pattern
from repro.rdf.terms import Variable
from repro.sampling import generate_workload


def v(name):
    return Variable(name)


@pytest.fixture(scope="module")
def lubm_store():
    from repro.datasets import load_dataset

    return load_dataset("lubm", scale=0.5, seed=1)


class TestOrderPatterns:
    def test_most_selective_first(self, tiny_store):
        query = star_pattern(v("x"), [(1, v("y")), (3, v("z"))])
        ordered = order_patterns(tiny_store, query)
        # p3 has 2 triples, p1 has 3 -> p3 first.
        assert ordered[0].p == 3

    def test_connectivity_maintained(self, tiny_store):
        query = chain_pattern([v("a"), 1, v("b"), 2, v("c")])
        ordered = order_patterns(tiny_store, query)
        seen = set(ordered[0].variables)
        for tp in ordered[1:]:
            assert set(tp.variables) & seen
            seen |= set(tp.variables)

    def test_all_patterns_kept(self, tiny_store):
        query = star_pattern(
            v("x"), [(1, v("y")), (2, v("z")), (3, v("w"))]
        )
        assert len(order_patterns(tiny_store, query)) == 3


class TestWanderJoin:
    def test_unbiased_on_small_graph(self, tiny_store):
        """With generous walk budget WJ converges to the true count."""
        wj = WanderJoin(tiny_store, walks_per_run=400, runs=10, seed=0)
        query = star_pattern(v("x"), [(1, v("y")), (2, 4)])
        assert wj.estimate(query) == pytest.approx(3.0, rel=0.25)

    def test_chain_estimate(self, tiny_store):
        wj = WanderJoin(tiny_store, walks_per_run=400, runs=10, seed=1)
        query = chain_pattern([v("a"), 2, v("b"), 3, v("c")])
        assert wj.estimate(query) == pytest.approx(6.0, rel=0.25)

    def test_zero_for_empty_result(self, tiny_store):
        wj = WanderJoin(tiny_store, walks_per_run=50, runs=3, seed=2)
        query = chain_pattern([v("a"), 3, v("b"), 1, v("c")])
        assert wj.estimate(query) == 0.0

    def test_accuracy_on_workload(self, lubm_store):
        wj = WanderJoin(lubm_store, walks_per_run=60, runs=5, seed=3)
        workload = generate_workload(lubm_store, "star", 2, 30, seed=41)
        errors = q_errors(
            [wj.estimate(r.query) for r in workload],
            workload.cardinalities(),
        )
        assert np.exp(np.log(errors).mean()) < 4.0

    def test_no_synopsis_memory(self, tiny_store):
        assert WanderJoin(tiny_store).memory_bytes() == 0


class TestJSUB:
    def test_upper_bound_tendency(self, lubm_store):
        """JSUB estimates sit at or above WJ estimates on average —
        dead-ends contribute bounds instead of zeros."""
        jsub = JSUB(lubm_store, walks_per_run=60, runs=5, seed=4)
        wj = WanderJoin(lubm_store, walks_per_run=60, runs=5, seed=4)
        workload = generate_workload(lubm_store, "chain", 3, 25, seed=42)
        jsub_total = sum(jsub.estimate(r.query) for r in workload)
        wj_total = sum(wj.estimate(r.query) for r in workload)
        assert jsub_total >= wj_total

    def test_exact_graph_unaffected(self, tiny_store):
        jsub = JSUB(tiny_store, walks_per_run=400, runs=10, seed=5)
        query = star_pattern(v("x"), [(1, v("y")), (2, 4)])
        # All walks complete on this query, so JSUB == WJ behaviour.
        assert jsub.estimate(query) == pytest.approx(3.0, rel=0.3)

    def test_finite_on_workload(self, lubm_store):
        jsub = JSUB(lubm_store, walks_per_run=30, runs=3, seed=6)
        workload = generate_workload(lubm_store, "star", 3, 15, seed=43)
        for record in workload:
            assert np.isfinite(jsub.estimate(record.query))


class TestImpr:
    def test_unbiased_for_unlabelled_stars(self, tiny_store):
        """With no bound terms, Impr's HT estimator targets the universe
        of shape embeddings — compare against the exact star count."""
        from repro.sampling import count_star_instances

        impr = Impr(tiny_store, walks_per_run=500, runs=10, seed=7)
        query = star_pattern(v("x"), [(v("p1"), v("y")), (v("p2"), v("z"))])
        expected = count_star_instances(tiny_store, 2)
        assert impr.estimate(query) == pytest.approx(expected, rel=0.3)

    def test_selective_queries_degrade(self, lubm_store):
        """Impr's known failure mode: bound terms rarely hit, estimates
        collapse toward zero -> large q-errors (as in the paper)."""
        impr = Impr(lubm_store, walks_per_run=30, runs=3, seed=8)
        workload = generate_workload(lubm_store, "star", 2, 20, seed=44)
        errors = q_errors(
            [impr.estimate(r.query) for r in workload],
            workload.cardinalities(),
        )
        assert np.exp(np.log(errors).mean()) > 1.5

    def test_nonnegative(self, lubm_store):
        impr = Impr(lubm_store, walks_per_run=20, runs=2, seed=9)
        workload = generate_workload(lubm_store, "chain", 2, 10, seed=45)
        for record in workload:
            assert impr.estimate(record.query) >= 0.0
