"""Tests for the summary-based baselines: CSET and SUMRDF."""

import numpy as np
import pytest

from repro.baselines import CharacteristicSets, SumRDF
from repro.core.metrics import q_errors
from repro.rdf import TripleStore
from repro.rdf.pattern import QueryPattern, chain_pattern, star_pattern
from repro.rdf.terms import TriplePattern, Variable
from repro.sampling import generate_workload


def v(name):
    return Variable(name)


@pytest.fixture(scope="module")
def lubm_store():
    from repro.datasets import load_dataset

    return load_dataset("lubm", scale=0.5, seed=1)


class TestCharacteristicSets:
    def test_exact_for_pure_star_with_full_cset_match(self, tiny_store):
        """When the query predicates identify subjects exactly, the CSET
        star formula is exact (Neumann & Moerkotte's headline property)."""
        cset = CharacteristicSets(tiny_store)
        query = star_pattern(v("x"), [(1, v("y")), (2, v("z"))])
        # Subjects with both p1 and p2: 1 (2 p1-objects x 1 p2-object)
        # and 2 (1 x 1) -> 3.
        assert cset.estimate(query) == pytest.approx(3.0)

    def test_single_predicate_star(self, tiny_store):
        cset = CharacteristicSets(tiny_store)
        query = star_pattern(v("x"), [(1, v("y")), (1, v("z"))])
        # sum over csets containing p1 of count * (occ/count)^2:
        # cset {p1,p2} has subjects {1, 2}, occ(p1)=3 -> 2*(3/2)^2 = 4.5.
        assert cset.estimate(query) == pytest.approx(4.5)

    def test_bound_subject_exact(self, tiny_store):
        cset = CharacteristicSets(tiny_store)
        query = star_pattern(1, [(1, v("y")), (2, v("z"))])
        assert cset.estimate(query) == pytest.approx(2.0)

    def test_bound_object_selectivity_applied(self, tiny_store):
        cset = CharacteristicSets(tiny_store)
        unbound = cset.estimate(
            star_pattern(v("x"), [(1, v("y")), (2, v("z"))])
        )
        bound = cset.estimate(star_pattern(v("x"), [(1, v("y")), (2, 4)]))
        assert bound <= unbound

    def test_chain_fanout_estimate_positive(self, tiny_store):
        cset = CharacteristicSets(tiny_store)
        query = chain_pattern([v("a"), 2, v("b"), 3, v("c")])
        estimate = cset.estimate(query)
        # avg-fanout: |T_p2| * |T_p3|/|subjects(p3)| = 3 * 2/1 = 6 (exact
        # here because node 4 is the only p3 subject).
        assert estimate == pytest.approx(6.0)

    def test_missing_predicate_yields_zero(self, tiny_store):
        cset = CharacteristicSets(tiny_store)
        query = chain_pattern([v("a"), 2, v("b"), 2, v("c")])
        # No p2 edge leaves node 4 -> true count 0; fanout formula gives
        # a small positive number; both acceptable, must be finite.
        assert np.isfinite(cset.estimate(query))

    def test_reasonable_on_real_star_workload(self, lubm_store):
        cset = CharacteristicSets(lubm_store)
        workload = generate_workload(lubm_store, "star", 2, 60, seed=31)
        errors = q_errors(
            [cset.estimate(r.query) for r in workload],
            workload.cardinalities(),
        )
        assert np.exp(np.log(errors).mean()) < 5.0

    def test_memory_positive(self, lubm_store):
        assert CharacteristicSets(lubm_store).memory_bytes() > 0


class TestSumRDF:
    def test_total_weight_equals_triples(self, tiny_store):
        summary = SumRDF(tiny_store, target_buckets=4)
        assert sum(summary._weights.values()) == len(tiny_store)

    def test_bucket_sizes_partition_nodes(self, tiny_store):
        summary = SumRDF(tiny_store, target_buckets=4)
        assert sum(summary._bucket_size.values()) == tiny_store.num_nodes

    def test_exact_when_buckets_are_singletons(self, tiny_store):
        """With one node per bucket the expectation is the true count."""
        summary = SumRDF(tiny_store, target_buckets=10_000)
        query = star_pattern(v("x"), [(1, v("y")), (2, 4)])
        assert summary.estimate(query) == pytest.approx(3.0)

    def test_coarse_summary_still_reasonable(self, lubm_store):
        summary = SumRDF(lubm_store, target_buckets=256)
        workload = generate_workload(lubm_store, "star", 2, 50, seed=32)
        errors = q_errors(
            [summary.estimate(r.query) for r in workload],
            workload.cardinalities(),
        )
        assert np.exp(np.log(errors).mean()) < 20.0

    def test_unbound_predicate_rejected(self, tiny_store):
        summary = SumRDF(tiny_store, target_buckets=4)
        query = QueryPattern([TriplePattern(v("x"), v("p"), v("y"))])
        with pytest.raises(ValueError):
            summary.estimate(query)

    def test_memory_grows_with_buckets(self, lubm_store):
        coarse = SumRDF(lubm_store, target_buckets=16)
        fine = SumRDF(lubm_store, target_buckets=1024)
        assert fine.memory_bytes() >= coarse.memory_bytes()
