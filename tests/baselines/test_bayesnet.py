"""Tests for the Huang & Liu Bayesian-network + chain-histogram baseline."""

import math

import pytest

from repro.baselines import (
    BayesNetEstimator,
    ChainHistogram,
    StarBayesNet,
)
from repro.baselines.bayesnet import _mutual_information
from repro.rdf import TripleStore, count_bgp
from repro.rdf.pattern import QueryPattern, chain_pattern, star_pattern
from repro.rdf.terms import TriplePattern, Variable


def v(name):
    return Variable(name)


@pytest.fixture
def correlated_store():
    """Graph where predicates 1 and 2 always co-occur, 3 never with 1.

    Subjects 1..4 emit {p1, p2}; subjects 5..8 emit {p3}.  Independence
    would estimate P(p1 and p2) = 0.25 while the truth is 0.5 — exactly
    the correlation failure the paper's introduction describes.
    """
    store = TripleStore()
    for s in (1, 2, 3, 4):
        store.add(s, 1, 100 + s)
        store.add(s, 2, 200 + s)
    for s in (5, 6, 7, 8):
        store.add(s, 3, 300 + s)
    return store


class TestMutualInformation:
    def test_independent_indicators_have_zero_mi(self):
        # 100 subjects, each predicate in half, jointly in a quarter.
        assert _mutual_information(25, 50, 50, 100) == pytest.approx(0.0)

    def test_perfectly_correlated_indicators_have_positive_mi(self):
        assert _mutual_information(50, 50, 50, 100) > 0.5

    def test_empty_population_is_zero(self):
        assert _mutual_information(0, 0, 0, 0) == 0.0


class TestStarBayesNet:
    def test_marginals(self, correlated_store):
        bn = StarBayesNet(correlated_store)
        assert bn.marginal(1) == pytest.approx(0.5)
        assert bn.marginal(3) == pytest.approx(0.5)
        assert bn.marginal(99) == 0.0

    def test_correlation_captured(self, correlated_store):
        bn = StarBayesNet(correlated_store)
        joint = bn.prob_all_present([1, 2])
        # Truth is 0.5; independence would say 0.25. The smoothed tree
        # conditional gives ~0.5 * (4 + 0.5) / (4 + 1) = 0.45.
        assert joint > 0.35
        disjoint = bn.prob_all_present([1, 3])
        assert disjoint < joint

    def test_single_predicate_is_marginal(self, correlated_store):
        bn = StarBayesNet(correlated_store)
        assert bn.prob_all_present([3]) == pytest.approx(bn.marginal(3))

    def test_tree_has_one_root(self, correlated_store):
        bn = StarBayesNet(correlated_store)
        roots = [p for p, parent in bn._parent.items() if parent is None]
        assert len(roots) == 1
        assert set(bn._parent) == set(bn.predicates)

    def test_max_predicates_caps_tree(self, correlated_store):
        bn = StarBayesNet(correlated_store, max_predicates=2)
        assert len(bn.predicates) == 2
        # Tail predicates still answer through marginals.
        assert bn.prob_all_present([1, 2, 3]) >= 0.0

    def test_memory_scales_with_predicates(self, correlated_store):
        bn = StarBayesNet(correlated_store)
        assert bn.memory_bytes() == len(bn.predicates) * 24


class TestChainHistogram:
    def test_join_counts_exact(self, tiny_store):
        hist = ChainHistogram(tiny_store)
        # Two-step paths via p1 then p2: 1-p1->2-p2->4, 1-p1->3-p2->4,
        # 2-p1->3-p2->4.
        assert hist.join_count(1, 2) == 3
        # p2 then p3: *-p2->4-p3->{5,6}: 3 sources * 2 = 6.
        assert hist.join_count(2, 3) == 6
        assert hist.join_count(3, 1) == 0

    def test_two_pattern_chain_is_exact(self, tiny_store):
        hist = ChainHistogram(tiny_store)
        q = chain_pattern([v("x"), 1, v("y"), 2, v("z")])
        assert hist.estimate_chain([1, 2]) == count_bgp(tiny_store, q)

    def test_single_predicate_chain(self, tiny_store):
        hist = ChainHistogram(tiny_store)
        assert hist.estimate_chain([1]) == 3.0

    def test_unknown_predicate_gives_zero(self, tiny_store):
        hist = ChainHistogram(tiny_store)
        assert hist.estimate_chain([1, 99]) == 0.0
        assert hist.estimate_chain([99]) == 0.0

    def test_three_step_markov_estimate(self, tiny_store):
        hist = ChainHistogram(tiny_store)
        # True 3-chain p1->p2->p3: paths X-p1->Y-p2->4-p3->{5,6} = 3*2 = 6.
        q = chain_pattern([v("a"), 1, v("b"), 2, v("c"), 3, v("d")])
        truth = count_bgp(tiny_store, q)
        estimate = hist.estimate_chain([1, 2, 3])
        # Markov estimate: J(1,2) * J(2,3)/|p2| = 3 * 6/3 = 6 — exact here.
        assert estimate == pytest.approx(truth)

    def test_empty_chain(self, tiny_store):
        assert ChainHistogram(tiny_store).estimate_chain([]) == 0.0


class TestBayesNetEstimator:
    def test_single_pattern_is_exact(self, tiny_store):
        est = BayesNetEstimator(tiny_store)
        q = QueryPattern([TriplePattern(v("s"), 1, v("o"))])
        assert est.estimate(q) == count_bgp(tiny_store, q)

    def test_star_beats_independence_under_correlation(
        self, correlated_store
    ):
        from repro.baselines import IndependenceEstimator

        q = star_pattern(v("x"), [(1, v("a")), (2, v("b"))])
        truth = count_bgp(correlated_store, q)
        assert truth == 4
        bn_est = BayesNetEstimator(correlated_store).estimate(q)
        ind_est = IndependenceEstimator(correlated_store).estimate(q)
        bn_q = max(bn_est / truth, truth / max(bn_est, 1e-9))
        ind_q = max(ind_est / truth, truth / max(ind_est, 1e-9))
        assert bn_q < ind_q

    def test_bound_centre_star_is_exact(self, tiny_store):
        q = star_pattern(1, [(1, v("a")), (2, v("b"))])
        est = BayesNetEstimator(tiny_store)
        assert est.estimate(q) == count_bgp(tiny_store, q)

    def test_chain_with_bound_endpoint(self, tiny_store):
        est = BayesNetEstimator(tiny_store)
        q = chain_pattern([v("x"), 1, v("y"), 2, 4])
        # All p2 objects are 4, so binding o=4 keeps the full count.
        assert est.estimate(q) == pytest.approx(
            count_bgp(tiny_store, q)
        )

    def test_unbound_predicate_falls_back(self, tiny_store):
        est = BayesNetEstimator(tiny_store)
        q = QueryPattern([TriplePattern(v("s"), v("p"), v("o"))])
        assert est.estimate(q) > 0

    def test_reasonable_on_real_workload(self, lubm_store):
        from repro.sampling import generate_workload

        est = BayesNetEstimator(lubm_store)
        workload = generate_workload(
            lubm_store, "star", 2, num_queries=30, seed=3
        )
        q_errors = []
        for record in workload.records:
            estimate = max(est.estimate(record.query), 1e-9)
            truth = max(record.cardinality, 1e-9)
            q_errors.append(max(estimate / truth, truth / estimate))
        # Sanity bound: a synopsis-based estimator should be within a
        # few orders of magnitude on median.
        assert sorted(q_errors)[len(q_errors) // 2] < 1e3

    def test_memory_reported(self, tiny_store):
        est = BayesNetEstimator(tiny_store)
        assert est.memory_bytes() > 0
