"""Tests for optimisers, the regressor loop, and target scaling."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    LogMinMaxScaler,
    MSELoss,
    QErrorLoss,
    Regressor,
    SGD,
    build_mlp,
)
from repro.nn.layers import Parameter


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestOptimizers:
    def _quadratic_param(self):
        return Parameter("w", np.array([5.0, -3.0]))

    def test_sgd_descends_quadratic(self):
        param = self._quadratic_param()
        opt = SGD([param], lr=0.1)
        for _ in range(100):
            param.grad[...] = 2 * param.value
            opt.step()
        assert np.allclose(param.value, 0.0, atol=1e-4)

    def test_sgd_momentum_descends(self):
        param = self._quadratic_param()
        opt = SGD([param], lr=0.05, momentum=0.9)
        for _ in range(100):
            param.grad[...] = 2 * param.value
            opt.step()
        assert np.linalg.norm(param.value) < 0.1

    def test_adam_descends_quadratic(self):
        param = self._quadratic_param()
        opt = Adam([param], lr=0.2)
        for _ in range(200):
            param.grad[...] = 2 * param.value
            opt.step()
        assert np.allclose(param.value, 0.0, atol=1e-3)

    def test_step_clears_gradients(self):
        param = self._quadratic_param()
        opt = Adam([param], lr=0.1)
        param.grad[...] = 1.0
        opt.step()
        assert np.allclose(param.grad, 0.0)

    def test_gradient_clipping_bounds_norm(self):
        param = Parameter("w", np.zeros(4))
        opt = Adam([param], lr=0.1, clip_norm=1.0)
        param.grad[...] = 100.0
        opt._clip_gradients()
        assert np.linalg.norm(param.grad) <= 1.0 + 1e-9


class TestScaler:
    def test_transform_range(self):
        scaler = LogMinMaxScaler()
        cards = np.array([1, 10, 100, 1000])
        z = scaler.fit_transform(cards)
        assert z.min() == 0.0 and z.max() == 1.0

    def test_inverse_roundtrip(self):
        scaler = LogMinMaxScaler()
        cards = np.array([1.0, 7.0, 50.0, 9000.0])
        assert np.allclose(scaler.inverse(scaler.fit_transform(cards)), cards)

    def test_zero_cardinalities_clamped(self):
        scaler = LogMinMaxScaler()
        z = scaler.fit_transform(np.array([0, 5, 25]))
        assert z[0] == 0.0

    def test_degenerate_targets(self):
        scaler = LogMinMaxScaler()
        z = scaler.fit_transform(np.array([8, 8, 8]))
        assert np.allclose(z, 0.0)
        assert np.allclose(scaler.inverse(z), 8.0)

    def test_span_positive(self):
        scaler = LogMinMaxScaler().fit(np.array([1, 100]))
        assert scaler.span > 0

    def test_use_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            LogMinMaxScaler().transform(np.array([1.0]))

    def test_state_roundtrip(self):
        scaler = LogMinMaxScaler().fit(np.array([2, 2000]))
        restored = LogMinMaxScaler.from_state(scaler.state())
        x = np.array([0.0, 0.5, 1.0])
        assert np.allclose(restored.inverse(x), scaler.inverse(x))


class TestRegressor:
    def test_learns_monotone_function(self, rng):
        x = rng.random((300, 6))
        y = x.sum(axis=1) * 20 + 1
        scaler = LogMinMaxScaler()
        z = scaler.fit_transform(y)
        reg = Regressor(
            build_mlp(6, [32, 32], rng), QErrorLoss(scaler.span), lr=2e-3
        )
        history = reg.fit(x, z, epochs=60, batch_size=64, seed=0)
        assert history.losses[-1] < history.losses[0]
        pred = scaler.inverse(reg.predict(x))
        q = np.maximum(pred / y, y / pred)
        assert np.mean(q) < 1.5

    def test_validation_tracked(self, rng):
        x = rng.random((100, 4))
        z = x.mean(axis=1)
        reg = Regressor(build_mlp(4, [16], rng), MSELoss())
        history = reg.fit(
            x, z, epochs=5, validation=(x, z), seed=0
        )
        assert len(history.val_losses) == 5

    def test_mismatched_shapes_rejected(self, rng):
        reg = Regressor(build_mlp(4, [8], rng), MSELoss())
        with pytest.raises(ValueError):
            reg.fit(np.ones((5, 4)), np.ones(4))

    def test_predict_single_vector(self, rng):
        reg = Regressor(build_mlp(4, [8], rng), MSELoss())
        reg.fit(np.ones((10, 4)), np.full(10, 0.5), epochs=1)
        out = reg.predict(np.ones(4))
        assert out.shape == (1,)

    def test_memory_accounting(self, rng):
        reg = Regressor(build_mlp(4, [8], rng), MSELoss())
        assert reg.memory_bytes() == reg.num_parameters() * 4


class TestSequentialSerialization:
    def test_save_load_roundtrip(self, rng, tmp_path):
        from repro.nn import load_sequential, save_sequential

        net = build_mlp(5, [8, 8], rng)
        x = rng.random((3, 5))
        expected = net.forward(x)
        path = tmp_path / "mlp.npz"
        save_sequential(path, net)
        net2 = build_mlp(5, [8, 8], np.random.default_rng(99))
        load_sequential(path, net2)
        assert np.allclose(net2.forward(x), expected)

    def test_shape_mismatch_detected(self, rng, tmp_path):
        from repro.nn import load_sequential, save_sequential

        net = build_mlp(5, [8], rng)
        path = tmp_path / "mlp.npz"
        save_sequential(path, net)
        other = build_mlp(5, [16], rng)
        with pytest.raises((ValueError, KeyError)):
            load_sequential(path, other)
