"""Unit tests for dense layers: shapes, semantics, parameter exposure."""

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Embedding,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 3, rng)
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_affine_map(self, rng):
        layer = Linear(2, 1, rng)
        layer.weight.value[...] = [[2.0], [3.0]]
        layer.bias.value[...] = [1.0]
        out = layer.forward(np.array([[1.0, 1.0]]))
        assert np.allclose(out, [[6.0]])

    def test_backward_accumulates_gradients(self, rng):
        layer = Linear(2, 2, rng)
        layer.forward(np.ones((3, 2)))
        layer.backward(np.ones((3, 2)))
        assert np.allclose(layer.bias.grad, [3.0, 3.0])

    def test_parameters_listed(self, rng):
        layer = Linear(2, 2, rng)
        assert len(layer.parameters()) == 2

    def test_unknown_init_rejected(self, rng):
        with pytest.raises(ValueError):
            Linear(2, 2, rng, init="magic")


class TestActivations:
    def test_relu_clips_negatives(self):
        out = ReLU().forward(np.array([[-1.0, 0.5]]))
        assert np.allclose(out, [[0.0, 0.5]])

    def test_relu_gradient_mask(self):
        relu = ReLU()
        relu.forward(np.array([[-1.0, 0.5]]))
        grad = relu.backward(np.array([[1.0, 1.0]]))
        assert np.allclose(grad, [[0.0, 1.0]])

    def test_sigmoid_range_and_midpoint(self):
        out = Sigmoid().forward(np.array([[-5.0, 0.0, 5.0]]))
        assert np.all(out > 0) and np.all(out < 1)
        assert np.isclose(out[0, 1], 0.5)
        assert out[0, 0] < 0.01 and out[0, 2] > 0.99

    def test_sigmoid_extreme_inputs_finite(self):
        out = Sigmoid().forward(np.array([[-1000.0, 1000.0]]))
        assert np.all(np.isfinite(out))


class TestDropout:
    def test_inactive_at_inference(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((4, 4))
        assert np.allclose(layer.forward(x, training=False), x)

    def test_active_in_training(self, rng):
        layer = Dropout(0.5, rng)
        out = layer.forward(np.ones((100, 100)), training=True)
        dropped = np.mean(out == 0)
        assert 0.3 < dropped < 0.7

    def test_inverted_scaling_preserves_mean(self, rng):
        layer = Dropout(0.3, rng)
        out = layer.forward(np.ones((200, 200)), training=True)
        assert abs(out.mean() - 1.0) < 0.05

    def test_invalid_rate_rejected(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)


class TestSequential:
    def test_chains_layers(self, rng):
        net = Sequential([Linear(3, 4, rng), ReLU(), Linear(4, 1, rng)])
        out = net.forward(np.ones((2, 3)))
        assert out.shape == (2, 1)

    def test_parameter_count(self, rng):
        net = Sequential([Linear(3, 4, rng), Linear(4, 2, rng)])
        assert net.num_parameters() == (3 * 4 + 4) + (4 * 2 + 2)


class TestEmbedding:
    def test_lookup_concatenates_slots(self, rng):
        emb = Embedding(10, 3, rng)
        out = emb.forward(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 6)
        assert np.allclose(out[0, :3], emb.table.value[1])

    def test_backward_routes_gradient_to_rows(self, rng):
        emb = Embedding(10, 2, rng)
        emb.forward(np.array([[1, 1]]))
        emb.backward(np.ones((1, 4)))
        # Row 1 used twice -> gradient 2 per dim; others zero.
        assert np.allclose(emb.table.grad[1], [2.0, 2.0])
        assert np.allclose(emb.table.grad[0], 0.0)
