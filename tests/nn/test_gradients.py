"""Finite-difference validation of every backward pass.

The substrate has no autograd; these tests are the safety net that the
hand-written gradients (dense layers, masked layers, embeddings, losses,
the MADE trunk) are exact.
"""

import numpy as np
import pytest

from repro.nn import MADE, Linear, ReLU, Sequential, Sigmoid
from repro.nn.losses import (
    HuberLogLoss,
    MSELoss,
    QErrorLoss,
    softmax_cross_entropy,
)

EPS = 1e-6


def numeric_grad(fn, array):
    """Central-difference gradient of scalar fn w.r.t. array entries."""
    grad = np.zeros_like(array)
    flat = array.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + EPS
        plus = fn()
        flat[i] = original - EPS
        minus = fn()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * EPS)
    return grad


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestDenseGradients:
    def test_linear_weight_and_bias(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))

        def loss():
            return float(layer.forward(x).sum())

        layer.forward(x)
        layer.backward(np.ones((4, 2)))
        assert np.allclose(
            layer.weight.grad, numeric_grad(loss, layer.weight.value),
            atol=1e-5,
        )
        assert np.allclose(
            layer.bias.grad, numeric_grad(loss, layer.bias.value),
            atol=1e-5,
        )

    def test_linear_input_gradient(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))

        def loss():
            return float(layer.forward(x).sum())

        layer.forward(x)
        grad_in = layer.backward(np.ones((4, 2)))
        assert np.allclose(grad_in, numeric_grad(loss, x), atol=1e-5)

    def test_mlp_end_to_end(self, rng):
        net = Sequential(
            [Linear(4, 8, rng), ReLU(), Linear(8, 1, rng), Sigmoid()]
        )
        x = rng.normal(size=(5, 4))
        target = rng.random((5, 1))
        loss_fn = MSELoss()

        def loss():
            pred = net.forward(x)
            value, _ = loss_fn(pred, target)
            return value

        pred = net.forward(x)
        _, grad = loss_fn(pred, target)
        net.backward(grad)
        for param in net.parameters():
            numeric = numeric_grad(loss, param.value)
            assert np.allclose(param.grad, numeric, atol=1e-4), param.name


class TestLossGradients:
    @pytest.mark.parametrize(
        "loss_fn",
        [MSELoss(), QErrorLoss(span=3.0), HuberLogLoss(delta=0.1)],
        ids=["mse", "q_error", "huber"],
    )
    def test_loss_gradient_matches_numeric(self, loss_fn, rng):
        pred = rng.random((6, 1)) * 0.8 + 0.1
        target = rng.random((6, 1)) * 0.8 + 0.1

        def loss():
            value, _ = loss_fn(pred, target)
            return value

        _, grad = loss_fn(pred, target)
        assert np.allclose(grad, numeric_grad(loss, pred), atol=1e-4)

    def test_cross_entropy_gradient(self, rng):
        logits = rng.normal(size=(5, 4))
        targets = rng.integers(0, 4, size=5)

        def loss():
            value, _ = softmax_cross_entropy(logits, targets)
            return value

        _, grad = softmax_cross_entropy(logits, targets)
        assert np.allclose(grad, numeric_grad(loss, logits), atol=1e-5)


class TestMADEGradients:
    @pytest.mark.parametrize("residual", [False, True], ids=["made", "resmade"])
    def test_nll_gradients_exact(self, residual, rng):
        model = MADE(
            var_vocabs=[0, 1, 0],
            vocab_sizes=[6, 4],
            embed_dim=3,
            hidden_sizes=(10, 10),
            residual=residual,
            seed=1,
        )
        ids = rng.integers(1, 4, size=(5, 3))

        def loss():
            # The float64 master trunk: central differences at 1e-6 are
            # meaningless against the fused float32 inference forward.
            logits = model.forward(ids, training=True)
            total = 0.0
            for i in range(3):
                value, _ = softmax_cross_entropy(logits[i], ids[:, i])
                total += value
            return total

        for param in model.parameters():
            param.zero_grad()
        model.loss_and_backward(ids)
        for param in model.parameters():
            numeric = numeric_grad(loss, param.value)
            assert np.allclose(param.grad, numeric, atol=1e-4), param.name
