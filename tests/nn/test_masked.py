"""Tests for MADE/ResMADE: the autoregressive property and training."""

import numpy as np
import pytest

from repro.nn import MADE, MaskedLinear, hidden_degrees
from repro.nn.losses import log_softmax


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestMaskedLinear:
    def test_masked_weights_have_no_effect(self, rng):
        mask = np.zeros((3, 2))
        layer = MaskedLinear(3, 2, mask, rng)
        out = layer.forward(rng.normal(size=(4, 3)))
        assert np.allclose(out, layer.bias.value)

    def test_mask_shape_checked(self, rng):
        with pytest.raises(ValueError):
            MaskedLinear(3, 2, np.ones((2, 3)), rng)

    def test_gradient_respects_mask(self, rng):
        mask = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        layer = MaskedLinear(3, 2, mask, rng)
        layer.forward(rng.normal(size=(4, 3)))
        layer.backward(np.ones((4, 2)))
        assert np.all(layer.weight.grad[mask == 0] == 0)


class TestDegrees:
    def test_degrees_in_valid_range(self, rng):
        degrees = hidden_degrees(5, 64, rng)
        assert degrees.min() >= 1
        assert degrees.max() <= 4

    def test_all_degrees_present(self, rng):
        degrees = hidden_degrees(5, 64, rng)
        assert set(degrees.tolist()) == {1, 2, 3, 4}

    def test_single_variable_degenerate(self, rng):
        assert np.all(hidden_degrees(1, 8, rng) == 1)


class TestAutoregressiveProperty:
    """Output i must be invariant to inputs at positions >= i."""

    @pytest.mark.parametrize("residual", [False, True], ids=["made", "resmade"])
    def test_logits_ignore_later_positions(self, residual, rng):
        model = MADE(
            var_vocabs=[0, 1, 0, 1, 0],
            vocab_sizes=[8, 5],
            embed_dim=4,
            hidden_sizes=(32, 32),
            residual=residual,
            seed=5,
        )
        base = rng.integers(1, 5, size=(6, 5))
        logits_base = model.forward(base)
        for position in range(5):
            perturbed = base.copy()
            # Scramble everything at and after `position`.
            perturbed[:, position:] = rng.integers(
                1, 5, size=perturbed[:, position:].shape
            )
            logits_perturbed = model.forward(perturbed)
            assert np.allclose(
                logits_base[position], logits_perturbed[position]
            ), f"position {position} leaked later inputs"

    def test_first_position_is_marginal(self, rng):
        model = MADE(
            var_vocabs=[0, 1, 0],
            vocab_sizes=[6, 4],
            embed_dim=4,
            hidden_sizes=(16,),
            seed=2,
        )
        a = model.forward(rng.integers(1, 4, size=(3, 3)))[0]
        b = model.forward(rng.integers(1, 4, size=(3, 3)))[0]
        assert np.allclose(a, b)


class TestDensityEstimation:
    def test_log_prob_sums_to_one_over_support(self, rng):
        """Exhaustive check: sum of P(x) over all sequences equals 1."""
        model = MADE(
            var_vocabs=[0, 1],
            vocab_sizes=[3, 3],
            embed_dim=3,
            hidden_sizes=(12,),
            seed=4,
        )
        grid = np.array(
            [(a, b) for a in range(3) for b in range(3)], dtype=np.int64
        )
        total = np.exp(model.log_prob(grid)).sum()
        assert np.isclose(total, 1.0, atol=1e-8)

    def test_training_learns_a_dependency(self, rng):
        """Train on data where x2 == x0; the conditional must sharpen."""
        n = 1200
        x0 = rng.integers(1, 5, size=n)
        x1 = rng.integers(1, 3, size=n)
        data = np.stack([x0, x1, x0], axis=1)
        model = MADE(
            var_vocabs=[0, 1, 0],
            vocab_sizes=[6, 4],
            embed_dim=8,
            hidden_sizes=(48, 48),
            seed=0,
        )
        history = model.fit(data, epochs=22, batch_size=128, lr=5e-3)
        assert history[-1] < history[0]
        probs = model.conditionals(
            np.array([[2, 1, 0], [4, 1, 0]]), position=2
        )
        assert probs[0, 2] > 0.7
        assert probs[1, 4] > 0.7

    def test_conditionals_normalised(self, rng):
        model = MADE(
            var_vocabs=[0, 1, 0],
            vocab_sizes=[6, 4],
            embed_dim=4,
            hidden_sizes=(16,),
            seed=6,
        )
        ids = rng.integers(1, 4, size=(7, 3))
        for position in range(3):
            probs = model.conditionals(ids, position)
            assert np.allclose(probs.sum(axis=1), 1.0)

    def test_logits_for_matches_forward(self, rng):
        model = MADE(
            var_vocabs=[0, 1, 0, 1, 0],
            vocab_sizes=[9, 5],
            embed_dim=4,
            hidden_sizes=(24, 24),
            seed=8,
        )
        ids = rng.integers(1, 5, size=(6, 5))
        full = model.forward(ids)
        for position in range(5):
            assert np.allclose(
                full[position], model.logits_for(ids, position)
            )


class TestSerialisationMeta:
    def test_state_roundtrip(self, rng, tmp_path):
        from repro.nn import load_made, save_made

        model = MADE(
            var_vocabs=[0, 1, 0],
            vocab_sizes=[6, 4],
            embed_dim=4,
            hidden_sizes=(16, 16),
            residual=True,
            seed=9,
        )
        ids = rng.integers(1, 4, size=(5, 3))
        expected = model.log_prob(ids)
        path = tmp_path / "made.npz"
        save_made(path, model)
        restored = load_made(path)
        assert np.allclose(restored.log_prob(ids), expected)
        assert restored.residual == model.residual
