"""Numerics of the fused float32 inference trunk (dtype policy, fused
caches, incremental sweep) against the float64 masters."""

import numpy as np
import pytest

from repro.nn import MADE, Adam
from repro.nn.losses import log_softmax


@pytest.fixture
def rng():
    return np.random.default_rng(11)


def _make_model(seed=3, hidden=(48, 48)):
    return MADE(
        var_vocabs=[0, 1, 0, 1, 0],
        vocab_sizes=[40, 12],
        embed_dim=8,
        hidden_sizes=hidden,
        residual=True,
        seed=seed,
    )


def _fit_a_little(model, rng, steps=6):
    data = rng.integers(1, 10, size=(64 * steps, model.num_vars))
    model.fit(data, epochs=1, batch_size=64, lr=1e-3)


class TestDtypePolicy:
    def test_masters_stay_float64_through_training(self, rng):
        model = _make_model()
        _fit_a_little(model, rng)
        for param in model.parameters():
            assert param.value.dtype == np.float64, param.name

    def test_masks_are_bool(self):
        model = _make_model()
        for layer in model.hidden_layers + [model.out_proj]:
            assert layer.mask.dtype == np.bool_

    def test_inference_logits_are_float32(self, rng):
        model = _make_model()
        ids = rng.integers(1, 10, size=(6, 5))
        for block in model.forward(ids):
            assert block.dtype == np.float32
        assert model.logits_for(ids, 2).dtype == np.float32

    def test_training_forward_is_float64(self, rng):
        model = _make_model()
        ids = rng.integers(1, 10, size=(6, 5))
        for block in model.forward(ids, training=True):
            assert block.dtype == np.float64


class TestFloat32Accuracy:
    """float32 vs float64 inference: relative-error bounds."""

    def test_log_prob_close_to_float64(self, rng):
        model = _make_model()
        _fit_a_little(model, rng)
        ids = rng.integers(1, 10, size=(32, 5))
        lp32 = model.log_prob(ids)
        model.set_inference_dtype(np.float64)
        lp64 = model.log_prob(ids)
        model.set_inference_dtype(np.float32)
        assert np.allclose(lp32, lp64, rtol=1e-4, atol=1e-4)

    def test_conditionals_close_to_float64(self, rng):
        model = _make_model()
        _fit_a_little(model, rng)
        ids = rng.integers(1, 10, size=(16, 5))
        for position in range(5):
            p32 = model.conditionals(ids, position)
            model.set_inference_dtype(np.float64)
            p64 = model.conditionals(ids, position)
            model.set_inference_dtype(np.float32)
            assert np.allclose(p32, p64, atol=1e-5)

    def test_float64_knob_matches_training_trunk(self, rng):
        """inference_dtype=float64 is the masters trunk, bit for bit."""
        model = _make_model()
        ids = rng.integers(1, 10, size=(8, 5))
        reference = model.forward(ids, training=True)
        model.set_inference_dtype(np.float64)
        fused = model.forward(ids)
        model.set_inference_dtype(np.float32)
        for ref, got in zip(reference, fused):
            assert np.array_equal(ref, got)


class TestFusedCacheInvalidation:
    def test_optimizer_step_invalidates_fused_caches(self, rng):
        model = _make_model()
        ids = rng.integers(1, 10, size=(16, 5))
        before = model.log_prob(ids)  # builds every fused cache
        optimizer = Adam(model.parameters(), lr=5e-2)
        model.loss_and_backward(ids)
        optimizer.step()
        after = model.log_prob(ids)
        assert not np.allclose(before, after), (
            "fused caches served stale weights after an optimizer step"
        )
        # A fresh model restored from the stepped masters must agree
        # bit for bit — the cache rebuild is exactly a fresh cast.
        fresh = MADE.from_state(model.state())
        assert np.array_equal(after, fresh.log_prob(ids))

    def test_from_state_invalidates_caches(self, rng):
        donor = _make_model(seed=3)
        other = _make_model(seed=99)
        ids = rng.integers(1, 10, size=(12, 5))
        donor_lp = donor.log_prob(ids)
        restored = MADE.from_state(donor.state())
        restored.log_prob(ids)  # build caches from donor weights
        # Overwrite the restored model's masters in place, as a
        # checkpoint load into an existing model does.
        for param, source in zip(
            restored.parameters(), other.parameters()
        ):
            param.value[...] = source.value
            param.bump_version()
        assert np.array_equal(restored.log_prob(ids), other.log_prob(ids))
        assert not np.array_equal(restored.log_prob(ids), donor_lp)


class TestIncrementalSweep:
    @pytest.mark.parametrize(
        "residual", [False, True], ids=["made", "resmade"]
    )
    def test_sweep_matches_full_forward_every_position(self, residual, rng):
        """Rank-embed_dim first-layer updates track the full forward."""
        model = MADE(
            var_vocabs=[0, 1, 0, 1, 0],
            vocab_sizes=[40, 12],
            embed_dim=8,
            hidden_sizes=(48, 48),
            residual=residual,
            seed=5,
        )
        _fit_a_little(model, rng)
        target = rng.integers(1, 10, size=(16, 5))
        current = np.zeros_like(target)
        sweep = model.begin_sweep(current)
        for position in range(model.num_vars):
            incremental = sweep.logits(position)
            full = model.forward(current)[position]
            assert np.allclose(incremental, full, rtol=1e-3, atol=1e-4), (
                f"sweep diverged from the full forward at {position}"
            )
            probs = sweep.conditionals(position)
            assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-5)
            sweep.assign(position, target[:, position])
            current[:, position] = target[:, position]

    def test_logits_for_uses_assigned_prefix_only(self, rng):
        """The sweep respects autoregressive masking: junk at future
        positions cannot leak into an earlier position's logits."""
        model = _make_model()
        clean = np.zeros((6, 5), dtype=np.int64)
        noisy = rng.integers(1, 10, size=(6, 5))
        noisy[:, :2] = 0
        assert np.allclose(
            model.logits_for(clean, 2), model.logits_for(noisy, 2)
        )


class TestStreamedHead:
    """The vocab-streamed head reductions against dense full-matrix
    references computed from the same float32 logits."""

    def _sweep(self, rng, rows=24, fit=True):
        model = _make_model()
        if fit:
            _fit_a_little(model, rng)
        ids = rng.integers(0, 10, size=(rows, model.num_vars))
        return model, model.begin_sweep(ids)

    def _shrink_tiles(self, monkeypatch):
        """Force multi-tile, multi-chunk streaming at test vocabularies."""
        import repro.nn.masked as masked

        monkeypatch.setattr(masked, "_HEAD_ROW_TILE", 7)
        monkeypatch.setattr(masked, "_HEAD_COL_CHUNK", 16)
        monkeypatch.setattr(masked, "_HEAD_SAMPLE_ROW_TILE", 5)

    def test_lse_pick_matches_dense(self, rng, monkeypatch):
        self._shrink_tiles(monkeypatch)
        model, sweep = self._sweep(rng)
        position = 2
        vocab = model.vocab_sizes[model.var_vocabs[position]]
        rows = np.arange(24, dtype=np.int64)
        values = rng.integers(0, vocab, size=24)
        lse, picked = sweep.head_lse_pick(position, rows, values)
        dense = sweep.logits(position).astype(np.float64)
        ref_lse = np.log(
            np.exp(dense - dense.max(axis=1, keepdims=True)).sum(axis=1)
        ) + dense.max(axis=1)
        assert np.allclose(lse, ref_lse, rtol=1e-5, atol=1e-5)
        ref_picked = dense[rows, values]
        assert np.allclose(picked, ref_picked, rtol=1e-4, atol=1e-5)

    def test_gumbel_argmax_matches_dense(self, rng, monkeypatch):
        self._shrink_tiles(monkeypatch)
        model, sweep = self._sweep(rng)
        position = 2
        vocab = model.vocab_sizes[model.var_vocabs[position]]
        table = rng.gumbel(size=4096 + vocab).astype(np.float32)
        # Rep layout: 4 head rows x 6 particles each, via row_map.
        head_rows = np.array([0, 6, 12, 18], dtype=np.int64)
        row_map = np.repeat(np.arange(4, dtype=np.int64), 6)
        bases = rng.integers(0, 4096, size=row_map.shape[0])
        choice, rest_peak, first_logit = sweep.head_gumbel_argmax(
            position, head_rows, table, bases, row_map
        )
        dense = sweep.logits(position)[head_rows]
        noise = np.stack(
            [table[b: b + vocab] for b in bases]
        )
        noisy = noise + dense[row_map]
        noisy[:, 0] = -np.inf
        assert np.array_equal(choice, noisy.argmax(axis=1))
        masked_dense = dense.copy()
        masked_dense[:, 0] = -np.inf
        assert np.array_equal(rest_peak, masked_dense.max(axis=1))
        assert np.allclose(first_logit, dense[:, 0], rtol=1e-5, atol=1e-6)

    def test_gumbel_argmax_identity_map(self, rng, monkeypatch):
        """Diverged layout: one competition row per head row."""
        self._shrink_tiles(monkeypatch)
        model, sweep = self._sweep(rng)
        position = 0
        vocab = model.vocab_sizes[model.var_vocabs[position]]
        table = rng.gumbel(size=4096 + vocab).astype(np.float32)
        rows = np.arange(24, dtype=np.int64)
        bases = rng.integers(0, 4096, size=24)
        choice, _, _ = sweep.head_gumbel_argmax(
            position, rows, table, bases
        )
        dense = sweep.logits(position)
        noisy = np.stack([table[b: b + vocab] for b in bases]) + dense
        noisy[:, 0] = -np.inf
        assert np.array_equal(choice, noisy.argmax(axis=1))

    def test_categorical_sample_matches_dense(self, rng):
        model, sweep = self._sweep(rng)
        position = 2
        rows = np.arange(24, dtype=np.int64)
        uniforms = rng.random((24, 8))
        choice, rest_peak, first_logit = sweep.head_categorical_sample(
            position, rows, uniforms
        )
        dense = sweep.logits(position)
        ref = np.empty_like(choice)
        for i, logit_row in enumerate(dense):
            row = logit_row.copy()
            first = row[0]
            row[0] = -np.inf
            peak = row.max()
            assert rest_peak[i] == np.float32(peak)
            assert first_logit[i] == np.float32(first)
            mass = np.exp(row - peak)  # float32, reserved id -> 0
            cdf = np.cumsum(mass, dtype=np.float64)
            ref[i] = np.searchsorted(
                cdf, uniforms[i] * cdf[-1], side="left"
            )
        assert np.array_equal(choice, ref)
        assert (choice >= 1).all()

    def test_categorical_sample_blocking_invariant(
        self, rng, monkeypatch
    ):
        """Draws are a pure per-row function of logits and uniforms —
        row-tile size cannot change them."""
        import repro.nn.masked as masked

        model, sweep = self._sweep(rng)
        uniforms = rng.random((24, 8))
        rows = np.arange(24, dtype=np.int64)
        wide, _, _ = sweep.head_categorical_sample(2, rows, uniforms)
        monkeypatch.setattr(masked, "_HEAD_SAMPLE_ROW_TILE", 1)
        narrow, _, _ = sweep.head_categorical_sample(2, rows, uniforms)
        assert np.array_equal(wide, narrow)

    def test_dead_conditional_operands(self, rng):
        """A head whose real-id mass collapsed relative to the reserved
        id reports rest_peak far below first_logit on both unbound
        samplers — the operands the sweep turns into weight 0."""
        model = _make_model()
        # Reserved id 0 towers over every real id at position 0.
        bias = model.out_bias[0]
        bias.value[:] = -300.0
        bias.value[0] = 300.0
        bias.bump_version()
        sweep = model.begin_sweep(
            np.zeros((12, model.num_vars), dtype=np.int64)
        )
        rows = np.arange(12, dtype=np.int64)
        vocab = model.vocab_sizes[model.var_vocabs[0]]
        table = rng.gumbel(size=4096 + vocab).astype(np.float32)
        bases = rng.integers(0, 4096, size=12)
        g_choice, g_peak, g_first = sweep.head_gumbel_argmax(
            0, rows, table, bases
        )
        c_choice, c_peak, c_first = sweep.head_categorical_sample(
            0, rows, rng.random((12, 4))
        )
        for peak, first in ((g_peak, g_first), (c_peak, c_first)):
            assert ((peak - first) <= np.float32(-104.0)).all()
        assert np.array_equal(g_peak, c_peak)
        assert np.allclose(g_first, c_first, rtol=1e-6, atol=1e-6)
        # Choices stay in the real-id range even on dead rows.
        assert (g_choice >= 1).all() and (c_choice >= 1).all()


class TestCheckpointMasters:
    def test_state_roundtrip_preserves_float64_masters_exactly(
        self, rng, tmp_path
    ):
        from repro.nn import load_made, save_made

        model = _make_model()
        _fit_a_little(model, rng)
        path = tmp_path / "made.npz"
        save_made(path, model)
        restored = load_made(path)
        for original, loaded in zip(
            model.parameters(), restored.parameters()
        ):
            assert loaded.value.dtype == np.float64
            assert np.array_equal(original.value, loaded.value), (
                original.name
            )
        ids = rng.integers(1, 10, size=(10, 5))
        assert np.array_equal(model.log_prob(ids), restored.log_prob(ids))


class TestMemoryAccounting:
    def test_footprint_counts_live_arrays(self, rng):
        model = _make_model()
        params = model.num_parameters()
        layers = model.hidden_layers + [model.out_proj]
        mask_bytes = sum(layer.mask.nbytes for layer in layers)
        assert model.checkpoint_bytes() == params * 4
        # Fresh model: float64 masters + their gradient accumulators +
        # bool masks, no derived caches yet.
        assert model.memory_bytes() == params * 16 + mask_bytes
        ids = rng.integers(1, 10, size=(4, 5))
        # First inference builds every fused float32 cache (casting via
        # the float64 masked-weight buffers, which stay allocated for
        # reuse by the training forward/backward), plus the contiguous
        # transposed copy of each tied-projection table.
        model.log_prob(ids)
        masked_bytes = sum(
            layer.weight.value.nbytes for layer in layers
        )
        table_t_bytes = 4 * sum(t.size for t in model.tables)
        expected = (
            params * 20 + mask_bytes + masked_bytes + table_t_bytes
        )
        assert model.memory_bytes() == expected
        model.forward(ids, training=True)  # reuses the same buffers
        assert model.memory_bytes() == expected


class TestEmbedGather:
    def test_block_gather_matches_per_position(self, rng):
        """The grouped np.take embed equals the naive per-position one."""
        model = _make_model()
        ids = rng.integers(1, 10, size=(9, 5))
        blocks = [
            model.tables[model.var_vocabs[i]].value[ids[:, i]]
            for i in range(model.num_vars)
        ]
        reference = np.concatenate(blocks, axis=1)
        assert np.array_equal(model._embed(ids), reference)
        fused = model._embed_fused(ids)
        assert fused.dtype == np.float32
        assert np.allclose(fused, reference.astype(np.float32))
