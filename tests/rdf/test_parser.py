"""Tests for N-Triples IO and the SPARQL-subset parser."""

import pytest

from repro.rdf import (
    ParseError,
    TripleStore,
    count_bgp,
    format_sparql,
    load_ntriples,
    parse_sparql,
    write_ntriples,
)
from repro.rdf.parser import parse_ntriples_line
from repro.rdf.terms import Variable


class TestNTriplesLine:
    def test_uris(self):
        got = parse_ntriples_line("<a> <p> <b> .")
        assert got == ("a", "p", "b")

    def test_literal_object(self):
        got = parse_ntriples_line('<a> <p> "hello" .')
        assert got == ("a", "p", '"hello"')

    def test_typed_literal(self):
        got = parse_ntriples_line(
            '<a> <p> "42"^^<http://www.w3.org/2001/XMLSchema#int> .'
        )
        assert got == ("a", "p", '"42"')

    def test_language_tag(self):
        assert parse_ntriples_line('<a> <p> "hi"@en .') == ("a", "p", '"hi"')

    def test_blank_node(self):
        assert parse_ntriples_line("_:b1 <p> <c> .") == ("_:b1", "p", "c")

    def test_comment_and_blank_skipped(self):
        assert parse_ntriples_line("# comment") is None
        assert parse_ntriples_line("   ") is None

    def test_missing_dot_rejected(self):
        with pytest.raises(ParseError):
            parse_ntriples_line("<a> <p> <b>")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_ntriples_line("a p b .")


class TestNTriplesRoundtrip:
    def test_write_then_load(self, tmp_path):
        triples = [
            ("s1", "p1", "o1"),
            ("s1", "p2", '"lit"'),
            ("s2", "p1", "o1"),
        ]
        path = tmp_path / "data.nt"
        assert write_ntriples(path, triples) == 3
        store = load_ntriples(path)
        assert len(store) == 3
        back = {
            store.dictionary.decode_triple(t) for t in store
        }
        assert back == set(triples)


class TestSparqlParser:
    def test_star_query(self, books_store):
        query = parse_sparql(
            "SELECT ?x WHERE { ?x <hasAuthor> <StephenKing> . "
            "?x <genre> <Horror> . }",
            books_store.dictionary,
        )
        assert query.size == 2
        assert query.is_star()
        assert count_bgp(books_store, query) == 2

    def test_semicolon_shorthand(self, books_store):
        query = parse_sparql(
            "SELECT ?x WHERE { ?x <hasAuthor> <StephenKing> ; "
            "<genre> <Horror> . }",
            books_store.dictionary,
        )
        assert query.size == 2
        assert query.is_star()

    def test_chain_query(self, books_store):
        query = parse_sparql(
            "SELECT ?x ?y WHERE { ?x <hasAuthor> ?y . ?y <bornIn> <USA> . }",
            books_store.dictionary,
        )
        assert query.is_chain()
        assert count_bgp(books_store, query) == 2

    def test_unknown_term_rejected(self, books_store):
        with pytest.raises(ParseError):
            parse_sparql(
                "SELECT ?x WHERE { ?x <hasAuthor> <NoSuchAuthor> . }",
                books_store.dictionary,
            )

    def test_missing_braces_rejected(self, books_store):
        with pytest.raises(ParseError):
            parse_sparql("SELECT ?x WHERE ?x <p> <o> .", books_store.dictionary)

    def test_empty_where_rejected(self, books_store):
        with pytest.raises(ParseError):
            parse_sparql("SELECT ?x WHERE { }", books_store.dictionary)

    def test_variables_normalised(self, books_store):
        query = parse_sparql(
            "SELECT ?x WHERE { ?x <genre> <Horror> . }",
            books_store.dictionary,
        )
        assert query.variables == (Variable("x"),)


class TestFormatter:
    def test_roundtrip_through_text(self, books_store):
        original = parse_sparql(
            "SELECT ?x ?y WHERE { ?x <hasAuthor> ?y . ?y <bornIn> <USA> . }",
            books_store.dictionary,
        )
        text = format_sparql(original, books_store.dictionary)
        reparsed = parse_sparql(text, books_store.dictionary)
        assert reparsed.canonical_key() == original.canonical_key()
