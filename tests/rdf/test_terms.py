"""Unit tests for terms, variables, and triple patterns."""

import pytest

from repro.rdf.terms import TriplePattern, Variable, is_bound, pattern


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_question_mark_normalised(self):
        assert Variable("?x") == Variable("x")

    def test_hashable_and_usable_as_key(self):
        bindings = {Variable("x"): 5}
        assert bindings[Variable("?x")] == 5

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_repr(self):
        assert repr(Variable("x")) == "?x"


class TestTriplePattern:
    def test_fully_bound(self):
        tp = TriplePattern(1, 2, 3)
        assert tp.is_fully_bound
        assert tp.num_bound == 3
        assert tp.variables == ()

    def test_partially_bound(self):
        tp = TriplePattern(Variable("x"), 2, Variable("y"))
        assert not tp.is_fully_bound
        assert tp.num_bound == 1
        assert tp.variables == (Variable("x"), Variable("y"))

    def test_is_bound_helper(self):
        assert is_bound(7)
        assert not is_bound(Variable("x"))

    def test_bind_replaces_known_variables(self):
        tp = TriplePattern(Variable("x"), 2, Variable("y"))
        bound = tp.bind({Variable("x"): 9})
        assert bound.s == 9
        assert bound.o == Variable("y")

    def test_bind_leaves_constants(self):
        tp = TriplePattern(1, 2, 3)
        assert tp.bind({Variable("x"): 9}) == tp

    def test_as_triple_roundtrip(self):
        assert TriplePattern(1, 2, 3).as_triple() == (1, 2, 3)

    def test_as_triple_rejects_variables(self):
        with pytest.raises(ValueError):
            TriplePattern(Variable("x"), 2, 3).as_triple()

    def test_iteration_order(self):
        tp = TriplePattern(1, 2, 3)
        assert list(tp) == [1, 2, 3]

    def test_repeated_variable_listed_twice(self):
        tp = TriplePattern(Variable("x"), 2, Variable("x"))
        assert tp.variables == (Variable("x"), Variable("x"))


class TestPatternHelper:
    def test_strings_become_variables(self):
        tp = pattern("x", 1, "y")
        assert tp.s == Variable("x")
        assert tp.p == 1
        assert tp.o == Variable("y")

    def test_ints_stay_terms(self):
        tp = pattern(1, 2, 3)
        assert tp.is_fully_bound
