"""Unit and property tests for the indexed triple store."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import TripleStore
from repro.rdf.terms import TriplePattern, Variable, pattern

triples_strategy = st.lists(
    st.tuples(
        st.integers(1, 12), st.integers(1, 4), st.integers(1, 12)
    ),
    max_size=60,
)


class TestMutation:
    def test_add_and_len(self, tiny_store):
        assert len(tiny_store) == 8

    def test_duplicate_add_ignored(self, tiny_store):
        assert tiny_store.add(1, 1, 2) is False
        assert len(tiny_store) == 8

    def test_add_all_returns_new_count(self):
        store = TripleStore()
        added = store.add_all([(1, 1, 2), (1, 1, 2), (2, 1, 3)])
        assert added == 2

    def test_contains(self, tiny_store):
        assert (1, 1, 2) in tiny_store
        assert (9, 9, 9) not in tiny_store


class TestAccessors:
    def test_objects_of(self, tiny_store):
        assert tiny_store.objects_of(1, 1) == {2, 3}
        assert tiny_store.objects_of(1, 3) == set()

    def test_subjects_of(self, tiny_store):
        assert tiny_store.subjects_of(2, 4) == {1, 2, 3}

    def test_predicates_between(self, tiny_store):
        assert tiny_store.predicates_between(1, 2) == {1}

    def test_out_predicates(self, tiny_store):
        assert tiny_store.out_predicates(1) == {1, 2}

    def test_degrees(self, tiny_store):
        assert tiny_store.out_degree(1) == 3
        assert tiny_store.in_degree(4) == 3
        assert tiny_store.predicate_count(2) == 3

    def test_nodes_sorted_and_complete(self, tiny_store):
        assert tiny_store.nodes() == [1, 2, 3, 4, 5, 6]

    def test_out_edges_flat(self, tiny_store):
        assert sorted(tiny_store.out_edges(1)) == [(1, 2), (1, 3), (2, 4)]

    def test_in_edges_flat(self, tiny_store):
        assert sorted(tiny_store.in_edges(4)) == [(1, 2), (2, 2), (3, 2)]

    def test_adjacency_cache_invalidated_on_add(self, tiny_store):
        assert tiny_store.out_edges(5) == []
        tiny_store.add(5, 1, 6)
        assert tiny_store.out_edges(5) == [(1, 6)]


class TestPatternMatching:
    def test_fully_bound_hit_and_miss(self, tiny_store):
        assert list(tiny_store.match_pattern(pattern(1, 1, 2))) == [
            (1, 1, 2)
        ]
        assert list(tiny_store.match_pattern(pattern(1, 1, 9))) == []

    def test_sp_bound(self, tiny_store):
        got = set(tiny_store.match_pattern(pattern(1, 1, "o")))
        assert got == {(1, 1, 2), (1, 1, 3)}

    def test_po_bound(self, tiny_store):
        got = set(tiny_store.match_pattern(pattern("s", 2, 4)))
        assert got == {(1, 2, 4), (2, 2, 4), (3, 2, 4)}

    def test_so_bound(self, tiny_store):
        got = set(tiny_store.match_pattern(pattern(1, "p", 3)))
        assert got == {(1, 1, 3)}

    def test_s_only(self, tiny_store):
        got = set(tiny_store.match_pattern(pattern(4, "p", "o")))
        assert got == {(4, 3, 5), (4, 3, 6)}

    def test_p_only(self, tiny_store):
        got = set(tiny_store.match_pattern(pattern("s", 3, "o")))
        assert got == {(4, 3, 5), (4, 3, 6)}

    def test_o_only(self, tiny_store):
        got = set(tiny_store.match_pattern(pattern("s", "p", 3)))
        assert got == {(1, 1, 3), (2, 1, 3)}

    def test_all_unbound(self, tiny_store):
        assert len(list(tiny_store.match_pattern(pattern("s", "p", "o")))) == 8

    def test_repeated_variable_so(self):
        store = TripleStore()
        store.add_all([(1, 1, 1), (1, 1, 2)])
        got = list(store.match_pattern(pattern("x", 1, "x")))
        assert got == [(1, 1, 1)]

    def test_count_matches_enumeration_for_each_shape(self, tiny_store):
        shapes = [
            pattern(1, 1, 2),
            pattern(1, 1, "o"),
            pattern("s", 2, 4),
            pattern(1, "p", 3),
            pattern(4, "p", "o"),
            pattern("s", 3, "o"),
            pattern("s", "p", 3),
            pattern("s", "p", "o"),
        ]
        for tp in shapes:
            assert tiny_store.count_pattern(tp) == len(
                list(tiny_store.match_pattern(tp))
            )


class TestStoreProperties:
    @given(triples_strategy)
    @settings(max_examples=50, deadline=None)
    def test_every_access_path_is_consistent(self, triples):
        """All index permutations agree with a brute-force scan."""
        store = TripleStore()
        store.add_all(triples)
        unique = set(triples)
        assert len(store) == len(unique)
        for s, p, o in unique:
            assert o in store.objects_of(s, p)
            assert s in store.subjects_of(p, o)
            assert p in store.predicates_between(s, o)
            assert (p, o) in store.out_edges(s)
            assert (s, p) in store.in_edges(o)

    @given(triples_strategy, st.integers(1, 12), st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_count_pattern_equals_scan(self, triples, s, p):
        store = TripleStore()
        store.add_all(triples)
        tp = TriplePattern(s, p, Variable("o"))
        brute = sum(
            1 for (ts, tpred, _) in set(triples) if ts == s and tpred == p
        )
        assert store.count_pattern(tp) == brute

    @given(triples_strategy)
    @settings(max_examples=30, deadline=None)
    def test_degree_sums_equal_triple_count(self, triples):
        store = TripleStore()
        store.add_all(triples)
        out_total = sum(store.out_degree(n) for n in store.nodes())
        in_total = sum(store.in_degree(n) for n in store.nodes())
        assert out_total == len(store)
        assert in_total == len(store)


class TestFromLexical:
    def test_dictionary_attached(self, books_store):
        assert books_store.dictionary is not None
        assert books_store.dictionary.num_predicates == 3

    def test_counts(self, books_store):
        assert len(books_store) == 5
        king = books_store.dictionary.nodes.lookup("StephenKing")
        author = books_store.dictionary.predicates.lookup("hasAuthor")
        assert books_store.subjects_of(author, king) == {
            books_store.dictionary.nodes.lookup("TheShining"),
            books_store.dictionary.nodes.lookup("IT"),
        }

    def test_memory_accounting_positive(self, books_store):
        assert books_store.memory_bytes() > 0


class TestGenerationCounter:
    """Regression tests: no cached view may survive a mutation.

    The store stamps every lazily built structure (columnar snapshot,
    adjacency lists, legacy dict indexes, node cache) with the
    generation at build time; ``add`` bumps the generation, so a cache
    built before the mutation can never be served after it.
    """

    def test_generation_counts_new_triples_only(self):
        store = TripleStore()
        assert store.generation == 0
        store.add(1, 1, 2)
        store.add(1, 1, 2)  # duplicate: no state change, no bump
        store.add(2, 1, 3)
        assert store.generation == 2

    def test_adjacency_not_stale_after_cached_build(self, tiny_store):
        # Build and hold the caches, then mutate.
        assert tiny_store.out_edges(1) == [(1, 2), (1, 3), (2, 4)]
        assert (3, 2) in tiny_store.in_edges(4)
        tiny_store.add(1, 3, 9)
        assert (3, 9) in tiny_store.out_edges(1)
        tiny_store.add(9, 1, 4)
        assert (9, 1) in tiny_store.in_edges(4)

    def test_nodes_cache_refreshes(self, tiny_store):
        assert 42 not in tiny_store.nodes()
        tiny_store.add(42, 1, 1)
        assert 42 in tiny_store.nodes()

    def test_backend_view_refreshes(self, tiny_store):
        assert 2 not in tiny_store.backend.out_predicates(4).tolist()
        tiny_store.add(4, 2, 7)
        assert 7 in tiny_store.backend.objects_of(4, 2).tolist()
        assert 4 in tiny_store.backend.pred_slice(2)[0].tolist()

    def test_count_pattern_after_mutation(self, tiny_store):
        before = tiny_store.count_pattern(pattern("s", 1, "o"))
        tiny_store.add(7, 1, 8)
        assert tiny_store.count_pattern(pattern("s", 1, "o")) == before + 1
