"""Unit tests for query patterns and topology classification."""

import pytest

from repro.rdf.pattern import (
    QueryPattern,
    Topology,
    chain_pattern,
    star_pattern,
)
from repro.rdf.terms import TriplePattern, Variable


def v(name):
    return Variable(name)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            QueryPattern([])

    def test_size_and_join_count(self):
        q = star_pattern(v("x"), [(1, 2), (3, 4)])
        assert q.size == 2
        assert q.join_count() == 1

    def test_star_constructor(self):
        q = star_pattern(v("x"), [(1, v("y")), (2, 5)])
        assert q.triples[0] == TriplePattern(v("x"), 1, v("y"))
        assert q.triples[1] == TriplePattern(v("x"), 2, 5)

    def test_chain_constructor(self):
        q = chain_pattern([v("a"), 1, v("b"), 2, v("c")])
        assert q.triples == (
            TriplePattern(v("a"), 1, v("b")),
            TriplePattern(v("b"), 2, v("c")),
        )

    def test_chain_constructor_rejects_even_length(self):
        with pytest.raises(ValueError):
            chain_pattern([v("a"), 1])

    def test_variables_first_occurrence_order(self):
        q = chain_pattern([v("a"), 1, v("b"), 2, v("c")])
        assert q.variables == (v("a"), v("b"), v("c"))


class TestTopology:
    def test_single(self):
        q = QueryPattern([TriplePattern(v("x"), 1, 2)])
        assert q.topology() is Topology.SINGLE

    def test_star(self):
        q = star_pattern(v("x"), [(1, v("y")), (2, v("z"))])
        assert q.topology() is Topology.STAR
        assert q.is_star()
        assert not q.is_chain()

    def test_star_with_bound_centre(self):
        q = star_pattern(7, [(1, v("y")), (2, v("z"))])
        assert q.topology() is Topology.STAR

    def test_chain(self):
        q = chain_pattern([v("a"), 1, v("b"), 2, v("c")])
        assert q.topology() is Topology.CHAIN
        assert q.is_chain()
        assert not q.is_star()

    def test_composite(self):
        # Star of two triples plus a chain hop off one arm.
        q = QueryPattern(
            [
                TriplePattern(v("x"), 1, v("y")),
                TriplePattern(v("x"), 2, v("z")),
                TriplePattern(v("z"), 3, v("w")),
            ]
        )
        assert q.topology() is Topology.COMPOSITE

    def test_two_triple_chain_not_star(self):
        q = chain_pattern([v("a"), 1, v("b"), 1, v("c")])
        assert q.topology() is Topology.CHAIN


class TestOrdering:
    def test_star_node_order_centre_first(self):
        q = star_pattern(v("x"), [(1, v("y")), (2, 9)])
        assert q.node_order() == [v("x"), v("y"), 9]

    def test_chain_node_order_follows_walk(self):
        q = chain_pattern([v("a"), 1, v("b"), 2, v("c")])
        assert q.node_order() == [v("a"), v("b"), v("c")]

    def test_edge_order_indexes_occurrences(self):
        q = star_pattern(v("x"), [(5, v("y")), (5, v("z"))])
        assert q.edge_order() == [(0, 5), (1, 5)]


class TestCanonicalKey:
    def test_variable_names_do_not_matter(self):
        q1 = star_pattern(v("x"), [(1, v("y"))])
        q2 = star_pattern(v("a"), [(1, v("b"))])
        assert q1.canonical_key() == q2.canonical_key()

    def test_terms_do_matter(self):
        q1 = star_pattern(v("x"), [(1, 5)])
        q2 = star_pattern(v("x"), [(1, 6)])
        assert q1.canonical_key() != q2.canonical_key()

    def test_shared_structure_preserved(self):
        shared = chain_pattern([v("a"), 1, v("b"), 2, v("b")])
        distinct = chain_pattern([v("a"), 1, v("b"), 2, v("c")])
        assert shared.canonical_key() != distinct.canonical_key()
