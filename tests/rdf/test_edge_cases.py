"""Edge cases across the RDF substrate that the main suites skip."""

import numpy as np
import pytest

from repro.rdf import (
    QueryPattern,
    TripleStore,
    count_bgp,
    format_sparql,
    iter_bindings,
    parse_sparql,
)
from repro.rdf.pattern import star_pattern
from repro.rdf.terms import TriplePattern, Variable


def v(name):
    return Variable(name)


class TestVariablePredicates:
    """Queries with unbound predicates (the competitors can't answer
    these, but the matcher must)."""

    def test_variable_predicate_counts(self, tiny_store):
        q = QueryPattern([TriplePattern(1, v("p"), v("o"))])
        assert count_bgp(tiny_store, q) == 3

    def test_shared_predicate_variable(self, tiny_store):
        # Two triples forced to use the same predicate.
        q = QueryPattern(
            [
                TriplePattern(1, v("p"), v("a")),
                TriplePattern(2, v("p"), v("b")),
            ]
        )
        # p=1: 2 * 1; p=2: 1 * 1 -> 3.
        assert count_bgp(tiny_store, q) == 3

    def test_predicate_equals_node_variable(self, tiny_store):
        """A variable shared between predicate and node positions is
        exotic but legal; the matcher must respect the equality."""
        store = TripleStore()
        store.add_all([(1, 2, 3), (2, 5, 6)])
        q = QueryPattern(
            [
                TriplePattern(1, v("x"), 3),
                TriplePattern(v("x"), 5, v("o")),
            ]
        )
        # x must be 2 (the predicate of the first triple and subject of
        # the second).
        assert count_bgp(store, q) == 1


class TestEmptyAndDegenerate:
    def test_empty_store_counts_zero(self):
        store = TripleStore()
        q = star_pattern(v("x"), [(1, v("y")), (2, v("z"))])
        assert count_bgp(store, q) == 0

    def test_bindings_on_empty_store(self):
        store = TripleStore()
        q = QueryPattern([TriplePattern(v("s"), 1, v("o"))])
        assert list(iter_bindings(store, q)) == []

    def test_single_triple_store(self):
        store = TripleStore()
        store.add(1, 1, 1)  # a self-loop
        q = QueryPattern([TriplePattern(v("x"), 1, v("x"))])
        assert count_bgp(store, q) == 1

    def test_duplicate_triple_patterns_in_query(self, tiny_store):
        """The same pattern twice adds no constraint: same count."""
        single = QueryPattern([TriplePattern(v("x"), 2, 4)])
        doubled = QueryPattern(
            [TriplePattern(v("x"), 2, 4), TriplePattern(v("x"), 2, 4)]
        )
        assert count_bgp(tiny_store, single) == count_bgp(
            tiny_store, doubled
        )


class TestSparqlLiterals:
    def test_literal_roundtrip(self):
        store = TripleStore.from_lexical(
            [("book1", "title", '"A Title"'), ("book1", "year", '"1999"')]
        )
        q = parse_sparql(
            'SELECT ?b WHERE { ?b <title> "A Title" . }',
            store.dictionary,
        )
        assert count_bgp(store, q) == 1
        text = format_sparql(q, store.dictionary)
        assert '"A Title"' in text

    def test_formatted_star_asserts_all_variables(self, books_store):
        q = parse_sparql(
            "SELECT ?x WHERE { ?x <hasAuthor> ?who . }",
            books_store.dictionary,
        )
        text = format_sparql(q, books_store.dictionary)
        assert "?x" in text and "?who" in text


class TestStoreScaling:
    def test_memory_monotone_in_triples(self):
        small = TripleStore()
        small.add_all([(i, 1, i + 1) for i in range(10)])
        large = TripleStore()
        large.add_all([(i, 1, i + 1) for i in range(100)])
        assert large.memory_bytes() > small.memory_bytes()

    def test_count_pattern_all_shapes_on_random_graph(self, rng):
        """count_pattern never disagrees with match_pattern, including
        repeated-variable shapes, across a random graph."""
        store = TripleStore()
        triples = {
            (
                int(rng.integers(1, 10)),
                int(rng.integers(1, 4)),
                int(rng.integers(1, 10)),
            )
            for _ in range(60)
        }
        store.add_all(triples)
        shapes = [
            TriplePattern(v("x"), v("p"), v("x")),
            TriplePattern(v("x"), v("x"), v("y")),
            TriplePattern(v("a"), v("a"), v("a")),
        ]
        for tp in shapes:
            query = QueryPattern([tp])
            assert store.count_pattern(tp) == len(
                list(store.match_pattern(tp))
            )
            assert count_bgp(store, query) == len(
                list(store.match_pattern(tp))
            )
