"""Unit and property tests for the columnar permutation index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import TripleStore
from repro.rdf.columnar import ColumnarIndex, expand_ranges, in_sorted

triples_strategy = st.lists(
    st.tuples(
        st.integers(1, 12), st.integers(1, 4), st.integers(1, 12)
    ),
    max_size=60,
)


def build(triples):
    return ColumnarIndex.from_triples(set(triples))


class TestConstruction:
    def test_empty(self):
        col = build([])
        assert col.size == 0
        assert col.subjects().size == 0
        assert col.nodes().size == 0
        assert col.objects_of(1, 1).size == 0
        assert not col.contains(1, 1, 1)
        assert col.memory_bytes() == 0

    def test_permutations_sorted(self):
        col = build([(3, 1, 2), (1, 2, 3), (2, 1, 1), (1, 1, 5)])
        spo = list(zip(col.spo_s, col.spo_p, col.spo_o))
        assert spo == sorted(spo)
        pos = list(zip(col.pos_p, col.pos_o, col.pos_s))
        assert pos == sorted(pos)
        osp = list(zip(col.osp_o, col.osp_s, col.osp_p))
        assert osp == sorted(osp)
        pso = list(zip(col.pso_p, col.pso_s, col.pso_o))
        assert pso == sorted(pso)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ColumnarIndex(
                np.array([1, 2]), np.array([1]), np.array([1, 2])
            )


class TestLookups:
    @given(triples_strategy)
    @settings(max_examples=60, deadline=None)
    def test_lookups_match_brute_force(self, triples):
        triples = set(triples)
        col = build(triples)
        subjects = {s for s, _, _ in triples}
        predicates = {p for _, p, _ in triples}
        objects = {o for _, _, o in triples}
        assert set(col.subjects().tolist()) == subjects
        assert set(col.predicates().tolist()) == predicates
        assert set(col.objects().tolist()) == objects
        assert set(col.nodes().tolist()) == subjects | objects
        for s in list(subjects)[:5]:
            for p in predicates:
                expected = sorted(
                    o for s2, p2, o in triples if s2 == s and p2 == p
                )
                assert col.objects_of(s, p).tolist() == expected
        for p in predicates:
            for o in list(objects)[:5]:
                expected = sorted(
                    s2 for s2, p2, o2 in triples if p2 == p and o2 == o
                )
                assert col.subjects_of(p, o).tolist() == expected
        for s, p, o in list(triples)[:10]:
            assert col.contains(s, p, o)
        assert not col.contains(99, 99, 99)

    @given(triples_strategy)
    @settings(max_examples=60, deadline=None)
    def test_degrees_and_counts(self, triples):
        triples = set(triples)
        col = build(triples)
        for s in {t[0] for t in triples}:
            assert col.out_degree(s) == sum(
                1 for t in triples if t[0] == s
            )
        for o in {t[2] for t in triples}:
            assert col.in_degree(o) == sum(
                1 for t in triples if t[2] == o
            )
        for p in {t[1] for t in triples}:
            assert col.predicate_count(p) == sum(
                1 for t in triples if t[1] == p
            )
            subs, fanouts = col.predicate_subject_stats(p)
            assert set(subs.tolist()) == {
                t[0] for t in triples if t[1] == p
            }
            assert int(fanouts.sum()) == col.predicate_count(p)

    @given(triples_strategy, st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_vectorized_sp_primitives(self, triples, p):
        triples = set(triples)
        col = build(triples)
        probe = np.arange(0, 14, dtype=np.int64)
        counts = col.sp_counts(probe, p)
        for s, count in zip(probe.tolist(), counts.tolist()):
            assert count == sum(
                1 for t in triples if t[0] == s and t[1] == p
            )
        for o in range(1, 13):
            mask = col.sp_have_object(probe, p, o)
            for s, hit in zip(probe.tolist(), mask.tolist()):
                assert hit == ((s, p, o) in triples)


class TestHelpers:
    def test_expand_ranges(self):
        starts = np.array([2, 10, 5], dtype=np.int64)
        lengths = np.array([3, 0, 2], dtype=np.int64)
        assert expand_ranges(starts, lengths).tolist() == [2, 3, 4, 5, 6]

    def test_expand_ranges_empty(self):
        assert expand_ranges(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        ).size == 0

    def test_in_sorted(self):
        hay = np.array([2, 4, 4, 9], dtype=np.int64)
        needles = np.array([1, 2, 3, 4, 9, 10], dtype=np.int64)
        assert in_sorted(hay, needles).tolist() == [
            False, True, False, True, True, False,
        ]

    def test_in_sorted_empty_haystack(self):
        assert in_sorted(
            np.empty(0, dtype=np.int64), np.array([1, 2])
        ).tolist() == [False, False]


class TestStoreIntegration:
    def test_store_snapshot_tracks_generation(self):
        store = TripleStore()
        store.add(1, 1, 2)
        first = store.columnar
        assert first.size == 1
        assert store.columnar is first  # cached while unchanged
        store.add(2, 1, 3)
        second = store.columnar
        assert second is not first
        assert second.size == 2

    def test_memory_accounting(self):
        store = TripleStore()
        store.add_all([(1, 1, 2), (2, 1, 3)])
        assert store.memory_bytes() == 2 * 96
        assert store.columnar.memory_bytes() == 2 * 96
