"""Hypothesis property tests: vectorized counters == generic matcher.

Random small graphs and random star/chain queries; the vectorized
columnar counters, the dict-era Python reference counters, and the
backtracking matcher must agree *exactly* on every case.  The ``slow``
variants rerun the same properties with a much deeper example budget
for the nightly CI job.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import TripleStore
from repro.rdf.fastcount import (
    _count_chain_python,
    _count_star_python,
    count_chain,
    count_query,
    count_star,
)
from repro.rdf.matcher import count_bgp
from repro.rdf.pattern import chain_pattern, star_pattern
from repro.rdf.terms import TriplePattern, Variable

MAX_NODE = 10
MAX_PRED = 3

triples_strategy = st.lists(
    st.tuples(
        st.integers(1, MAX_NODE),
        st.integers(1, MAX_PRED),
        st.integers(1, MAX_NODE),
    ),
    min_size=1,
    max_size=50,
)

#: object position: bound id, or None meaning "fresh distinct variable"
object_strategy = st.one_of(
    st.none(), st.integers(1, MAX_NODE)
)

star_strategy = st.tuples(
    triples_strategy,
    st.one_of(st.none(), st.integers(1, MAX_NODE)),  # centre
    st.lists(
        st.tuples(st.integers(1, MAX_PRED), object_strategy),
        min_size=1,
        max_size=4,
    ),
)

chain_strategy = st.tuples(
    triples_strategy,
    st.lists(st.integers(1, MAX_PRED), min_size=1, max_size=4),
    st.lists(st.booleans(), min_size=2, max_size=5),  # node bound?
    st.lists(st.integers(1, MAX_NODE), min_size=2, max_size=5),
)


def _store(triples):
    store = TripleStore()
    store.add_all(triples)
    return store


def _star_query(centre, pairs):
    centre_term = Variable("c") if centre is None else centre
    built = []
    for i, (p, o) in enumerate(pairs):
        term = Variable(f"o{i}") if o is None else o
        built.append((p, term))
    return star_pattern(centre_term, built)


def _chain_query(predicates, bound_flags, values):
    terms = []
    for i in range(len(predicates) + 1):
        bound = bound_flags[i % len(bound_flags)]
        value = values[i % len(values)]
        terms.append(value if bound else Variable(f"n{i}"))
        if i < len(predicates):
            terms.append(predicates[i])
    return chain_pattern(terms)


def _check_star(triples, centre, pairs):
    store = _store(triples)
    query = _star_query(centre, pairs)
    truth = count_bgp(store, query)
    fast = count_star(store, query)
    slow = _count_star_python(store, query)
    assert fast is not None and slow is not None
    assert fast == truth, (sorted(set(triples)), query)
    assert slow == truth
    assert count_query(store, query) == truth


def _check_chain(triples, predicates, bound_flags, values):
    store = _store(triples)
    query = _chain_query(predicates, bound_flags, values)
    truth = count_bgp(store, query)
    fast = count_chain(store, query)
    slow = _count_chain_python(store, query)
    assert fast is not None and slow is not None
    assert fast == truth, (sorted(set(triples)), query)
    assert slow == truth
    assert count_query(store, query) == truth


def _check_single_patterns(triples, probes):
    store = _store(triples)
    for s, p, o, mask in probes:
        tp = TriplePattern(
            s if mask & 1 else Variable("s"),
            p if mask & 2 else Variable("p"),
            o if mask & 4 else Variable("o"),
        )
        matched = list(store.match_pattern(tp))
        brute = [
            t
            for t in set(triples)
            if (not mask & 1 or t[0] == s)
            and (not mask & 2 or t[1] == p)
            and (not mask & 4 or t[2] == o)
        ]
        assert sorted(matched) == sorted(brute)
        assert store.count_pattern(tp) == len(brute)


probes_strategy = st.lists(
    st.tuples(
        st.integers(1, MAX_NODE),
        st.integers(1, MAX_PRED),
        st.integers(1, MAX_NODE),
        st.integers(0, 7),
    ),
    max_size=10,
)


class TestCountersAgreeWithMatcher:
    @given(star_strategy)
    @settings(max_examples=120, deadline=None)
    def test_star(self, case):
        _check_star(*case)

    @given(chain_strategy)
    @settings(max_examples=120, deadline=None)
    def test_chain(self, case):
        _check_chain(*case)

    @given(triples_strategy, probes_strategy)
    @settings(max_examples=80, deadline=None)
    def test_single_patterns(self, triples, probes):
        _check_single_patterns(triples, probes)


@pytest.mark.slow
class TestCountersAgreeDeep:
    """Nightly-budget reruns of the same properties."""

    @given(star_strategy)
    @settings(max_examples=1_000, deadline=None)
    def test_star_deep(self, case):
        _check_star(*case)

    @given(chain_strategy)
    @settings(max_examples=1_000, deadline=None)
    def test_chain_deep(self, case):
        _check_chain(*case)

    @given(triples_strategy, probes_strategy)
    @settings(max_examples=500, deadline=None)
    def test_single_patterns_deep(self, triples, probes):
        _check_single_patterns(triples, probes)


class TestOverflowFallback:
    def test_star_overflow_falls_back_to_python(self, monkeypatch):
        """Huge per-triple fan-outs must not silently wrap int64."""
        import repro.rdf.fastcount as fc

        monkeypatch.setattr(fc, "_INT64_SAFE", 4.0)
        store = _store(
            [(1, 1, o) for o in range(2, 6)]
            + [(1, 2, o) for o in range(2, 6)]
        )
        query = _star_query(None, [(1, None), (2, None)])
        assert fc.count_star(store, query) == count_bgp(store, query)

    def test_chain_overflow_falls_back_to_python(self, monkeypatch):
        import repro.rdf.fastcount as fc

        monkeypatch.setattr(fc, "_INT64_SAFE", 1.0)
        store = _store([(1, 1, 2), (2, 1, 3), (2, 1, 4)])
        query = _chain_query([1, 1], [False, False, False], [1, 2, 3])
        assert fc.count_chain(store, query) == count_bgp(store, query)
