"""Tests for exact BGP evaluation — the ground-truth oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import TripleStore, count_bgp, iter_bindings
from repro.rdf.pattern import QueryPattern, chain_pattern, star_pattern
from repro.rdf.terms import TriplePattern, Variable


def v(name):
    return Variable(name)


class TestSinglePattern:
    def test_bound_pattern_counts_one(self, tiny_store):
        q = QueryPattern([TriplePattern(1, 1, 2)])
        assert count_bgp(tiny_store, q) == 1

    def test_missing_pattern_counts_zero(self, tiny_store):
        q = QueryPattern([TriplePattern(9, 1, 2)])
        assert count_bgp(tiny_store, q) == 0

    def test_single_variable(self, tiny_store):
        q = QueryPattern([TriplePattern(1, 1, v("o"))])
        assert count_bgp(tiny_store, q) == 2


class TestStarQueries:
    def test_two_arm_star(self, tiny_store):
        # ?x with a p1 edge and a p2 edge to 4: subjects 1, 2, 3?
        # 3 has no p1 edge -> subjects 1 (p1 objects {2,3}) and 2 ({3}).
        q = star_pattern(v("x"), [(1, v("y")), (2, 4)])
        assert count_bgp(tiny_store, q) == 3

    def test_bag_semantics_over_distinct_objects(self, tiny_store):
        # Both object variables range over p1-objects of the same subject:
        # subject 1 contributes 2*2, subject 2 contributes 1*1.
        q = star_pattern(v("x"), [(1, v("y")), (1, v("z"))])
        assert count_bgp(tiny_store, q) == 5

    def test_bound_centre(self, tiny_store):
        q = star_pattern(1, [(1, v("y")), (2, v("z"))])
        assert count_bgp(tiny_store, q) == 2


class TestChainQueries:
    def test_two_hop_chain(self, tiny_store):
        # a -p2-> b -p3-> c : (1,2,4),(2,2,4),(3,2,4) x (4,3,5),(4,3,6)
        q = chain_pattern([v("a"), 2, v("b"), 3, v("c")])
        assert count_bgp(tiny_store, q) == 6

    def test_chain_with_bound_tail(self, tiny_store):
        q = chain_pattern([v("a"), 2, v("b"), 3, 5])
        assert count_bgp(tiny_store, q) == 3

    def test_dead_chain(self, tiny_store):
        q = chain_pattern([v("a"), 3, v("b"), 1, v("c")])
        assert count_bgp(tiny_store, q) == 0


class TestBindings:
    def test_iter_bindings_complete(self, tiny_store):
        q = star_pattern(v("x"), [(2, 4)])
        got = {b[v("x")] for b in iter_bindings(tiny_store, q)}
        assert got == {1, 2, 3}

    def test_shared_variable_conflicts_pruned(self, tiny_store):
        # ?x -p1-> ?y and ?y -p2-> 4: y in {2,3} both with p2 edge to 4.
        q = chain_pattern([v("x"), 1, v("y"), 2, 4])
        bindings = list(iter_bindings(tiny_store, q))
        assert len(bindings) == 3
        for b in bindings:
            assert 4 in tiny_store.objects_of(b[v("y")], 2)

    def test_count_matches_enumeration(self, tiny_store):
        q = star_pattern(v("x"), [(1, v("y")), (2, v("z"))])
        assert count_bgp(tiny_store, q) == len(
            list(iter_bindings(tiny_store, q))
        )


def brute_force_count(triples, query):
    """Reference counter: enumerate all variable assignments."""
    triples = set(triples)
    variables = list(dict.fromkeys(
        t for tp in query.triples for t in tp.variables
    ))
    domain = sorted(
        {x for t in triples for x in (t[0], t[2])}
        | {t[1] for t in triples}
    )
    count = 0

    def assign(idx, bindings):
        nonlocal count
        if idx == len(variables):
            for tp in query.triples:
                resolved = tuple(
                    bindings[t] if isinstance(t, Variable) else t
                    for t in tp
                )
                if resolved not in triples:
                    return
            count += 1
            return
        for value in domain:
            bindings[variables[idx]] = value
            assign(idx + 1, bindings)
        del bindings[variables[idx]]

    assign(0, {})
    return count


small_triples = st.lists(
    st.tuples(st.integers(1, 5), st.integers(1, 2), st.integers(1, 5)),
    min_size=1,
    max_size=15,
)


class TestAgainstBruteForce:
    @given(small_triples, st.integers(1, 2), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_star_counts(self, triples, p2, o2):
        store = TripleStore()
        store.add_all(triples)
        query = star_pattern(v("x"), [(1, v("y")), (p2, o2)])
        assert count_bgp(store, query) == brute_force_count(triples, query)

    @given(small_triples, st.integers(1, 2), st.integers(1, 2))
    @settings(max_examples=40, deadline=None)
    def test_chain_counts(self, triples, p1, p2):
        store = TripleStore()
        store.add_all(triples)
        query = chain_pattern([v("a"), p1, v("b"), p2, v("c")])
        assert count_bgp(store, query) == brute_force_count(triples, query)

    @given(small_triples)
    @settings(max_examples=30, deadline=None)
    def test_repeated_variable_cycle(self, triples):
        store = TripleStore()
        store.add_all(triples)
        # ?x -1-> ?y -2-> ?x : a cycle, exercises conflict detection.
        query = QueryPattern(
            [
                TriplePattern(v("x"), 1, v("y")),
                TriplePattern(v("y"), 2, v("x")),
            ]
        )
        assert count_bgp(store, query) == brute_force_count(triples, query)
