"""Tests for tree-query detection and the message-passing counter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import TripleStore, count_bgp
from repro.rdf.pattern import QueryPattern, chain_pattern, star_pattern
from repro.rdf.terms import TriplePattern, Variable
from repro.rdf.treecount import count_tree, is_tree_query


def v(name):
    return Variable(name)


def tree_query():
    """x -1-> y, x -2-> z, z -3-> w : a genuine branching tree."""
    return QueryPattern(
        [
            TriplePattern(v("x"), 1, v("y")),
            TriplePattern(v("x"), 2, v("z")),
            TriplePattern(v("z"), 3, v("w")),
        ]
    )


class TestIsTreeQuery:
    def test_branching_tree(self):
        assert is_tree_query(tree_query())

    def test_star_and_chain_are_trees(self):
        assert is_tree_query(star_pattern(v("x"), [(1, v("a")), (2, v("b"))]))
        assert is_tree_query(chain_pattern([v("a"), 1, v("b"), 2, v("c")]))

    def test_cycle_rejected(self):
        cycle = QueryPattern(
            [
                TriplePattern(v("x"), 1, v("y")),
                TriplePattern(v("y"), 2, v("x")),
            ]
        )
        assert not is_tree_query(cycle)

    def test_self_loop_rejected(self):
        loop = QueryPattern([TriplePattern(v("x"), 1, v("x"))])
        assert not is_tree_query(loop)

    def test_unbound_predicate_rejected(self):
        q = QueryPattern([TriplePattern(v("x"), v("p"), v("y"))])
        assert not is_tree_query(q)

    def test_inverted_edge_tree(self):
        """Edges pointing toward the root still form a tree."""
        q = QueryPattern(
            [
                TriplePattern(v("y"), 1, v("x")),
                TriplePattern(v("x"), 2, v("z")),
            ]
        )
        assert is_tree_query(q)


class TestCountTree:
    def test_known_count(self, tiny_store):
        # x -1-> y, x -2-> z(=4), 4 -3-> w.
        # Subjects with p1 and p2: 1 (2 y's), 2 (1 y); z must be 4 which
        # has two p3 edges -> (2 + 1) * 2 = 6.
        q = QueryPattern(
            [
                TriplePattern(v("x"), 1, v("y")),
                TriplePattern(v("x"), 2, v("z")),
                TriplePattern(v("z"), 3, v("w")),
            ]
        )
        assert count_tree(tiny_store, q) == 6
        assert count_bgp(tiny_store, q) == 6

    def test_star_and_chain_special_cases(self, tiny_store):
        star = star_pattern(v("x"), [(1, v("a")), (2, v("b"))])
        chain = chain_pattern([v("a"), 2, v("b"), 3, v("c")])
        assert count_tree(tiny_store, star) == count_bgp(tiny_store, star)
        assert count_tree(tiny_store, chain) == count_bgp(
            tiny_store, chain
        )

    def test_bound_leaf(self, tiny_store):
        q = QueryPattern(
            [
                TriplePattern(v("x"), 2, 4),
                TriplePattern(4, 3, v("w")),
            ]
        )
        assert count_tree(tiny_store, q) == count_bgp(tiny_store, q)

    def test_inverted_edge_count(self, tiny_store):
        # y -1-> x(unbound root via in-edge), x -2-> 4? Actually:
        # ?y -1-> ?x . ?x -2-> 4 (x is object of first, subject of 2nd).
        q = QueryPattern(
            [
                TriplePattern(v("y"), 1, v("x")),
                TriplePattern(v("x"), 2, 4),
            ]
        )
        assert count_tree(tiny_store, q) == count_bgp(tiny_store, q)

    def test_repeated_variable_not_applicable(self, tiny_store):
        q = QueryPattern(
            [
                TriplePattern(v("x"), 1, v("y")),
                TriplePattern(v("x"), 2, v("y")),
            ]
        )
        assert count_tree(tiny_store, q) is None

    @given(
        st.lists(
            st.tuples(
                st.integers(1, 8), st.integers(1, 3), st.integers(1, 8)
            ),
            min_size=2,
            max_size=40,
        ),
        st.integers(1, 3),
        st.integers(1, 3),
        st.integers(1, 3),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_matcher_on_random_graphs(
        self, triples, p1, p2, p3
    ):
        store = TripleStore()
        store.add_all(triples)
        q = QueryPattern(
            [
                TriplePattern(v("x"), p1, v("y")),
                TriplePattern(v("x"), p2, v("z")),
                TriplePattern(v("z"), p3, v("w")),
            ]
        )
        assert count_tree(store, q) == count_bgp(store, q)


class TestTreeSampling:
    def test_instances_are_trees(self, lubm_store, rng):
        from repro.sampling.trees import sample_tree_instance

        found = 0
        for _ in range(50):
            instance = sample_tree_instance(lubm_store, 3, rng)
            if instance is None:
                continue
            found += 1
            nodes = {n for s, _, o in instance for n in (s, o)}
            assert len(nodes) == len(instance) + 1
            for s, p, o in instance:
                assert (s, p, o) in lubm_store
        assert found > 10

    def test_workload_labels_exact(self, lubm_store):
        from repro.sampling.trees import generate_tree_workload

        workload = generate_tree_workload(lubm_store, 3, 25, seed=4)
        assert len(workload) > 10
        for record in workload:
            assert record.topology == "tree"
            assert record.cardinality == count_bgp(
                lubm_store, record.query
            )

    def test_framework_trains_on_trees(self, lubm_store):
        from repro.core.framework import LMKG
        from repro.core.lmkg_s import LMKGSConfig
        from repro.sampling.trees import generate_tree_workload

        framework = LMKG(
            lubm_store,
            grouping="specialized",
            lmkgs_config=LMKGSConfig(hidden_sizes=(32, 32), epochs=10),
        )
        framework.fit(shapes=[("tree", 3)], queries_per_shape=120)
        test = generate_tree_workload(lubm_store, 3, 15, seed=99)
        for record in test:
            estimate = framework.estimate(record.query)
            assert np.isfinite(estimate)
            assert estimate >= 0.0
