"""Property tests for the array-native bulk ingest path.

The contract: ingesting any batch — duplicate-heavy, overlapping the
existing content, arbitrary id ranges — through ``add_all`` must leave
the store observationally identical to feeding the same triples through
the per-triple ``add`` reference, with the generation bumped exactly
once per batch that added anything.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import TripleStore
from repro.rdf.columnar import PERMUTATION_COLUMNS, pack_rows
from repro.rdf.store import _coerce_batch

triples_strategy = st.lists(
    st.tuples(
        st.integers(1, 12), st.integers(1, 4), st.integers(1, 12)
    ),
    max_size=60,
)

#: Ids far outside the packable-key range force the void-record fallback.
huge_triples_strategy = st.lists(
    st.tuples(
        st.integers(1, 2**62), st.integers(1, 2**62), st.integers(1, 2**62)
    ),
    max_size=30,
)


def reference_store(batches):
    """The per-triple ground truth: every batch through ``add``."""
    store = TripleStore()
    for batch in batches:
        for s, p, o in batch:
            store.add(s, p, o)
    return store


def bulk_store(batches, as_array=True):
    store = TripleStore()
    for batch in batches:
        if as_array:
            batch = np.array(list(batch), dtype=np.int64).reshape(-1, 3)
        store.add_all(batch)
    return store


def assert_identical_columns(a: TripleStore, b: TripleStore) -> None:
    col_a, col_b = a.columnar, b.columnar
    assert col_a.size == col_b.size
    for name in PERMUTATION_COLUMNS:
        assert np.array_equal(
            getattr(col_a, name), getattr(col_b, name)
        ), f"column {name} diverged"


class TestBatchEquivalence:
    @given(st.lists(triples_strategy, min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_bulk_batches_match_per_triple_reference(self, batches):
        """Duplicate-heavy random batches: array path == add loop."""
        reference = reference_store(batches)
        bulk = bulk_store(batches)
        assert len(bulk) == len(reference)
        assert_identical_columns(reference, bulk)
        assert set(bulk._triples) == set(reference._triples)

    @given(st.lists(triples_strategy, min_size=1, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_iterable_input_matches_array_input(self, batches):
        assert_identical_columns(
            bulk_store(batches, as_array=True),
            bulk_store(batches, as_array=False),
        )

    @given(st.lists(huge_triples_strategy, min_size=1, max_size=3))
    @settings(max_examples=25, deadline=None)
    def test_void_fallback_for_unpackable_ids(self, batches):
        """Ids too large for int64 key packing use the bytewise path."""
        reference = reference_store(batches)
        bulk = bulk_store(batches)
        assert_identical_columns(reference, bulk)

    @given(triples_strategy, triples_strategy)
    @settings(max_examples=40, deadline=None)
    def test_mixed_add_then_bulk_then_add(self, first, second):
        """Interleaving mutation styles keeps every path consistent."""
        reference = TripleStore()
        mixed = TripleStore()
        for s, p, o in first:
            reference.add(s, p, o)
            mixed.add(s, p, o)
        for s, p, o in second:
            reference.add(s, p, o)
        mixed.add_all(np.array(list(second), dtype=np.int64).reshape(-1, 3))
        extra = (99, 1, 99)
        reference.add(*extra)
        mixed.add(*extra)
        assert_identical_columns(reference, mixed)


class TestGenerationSemantics:
    def test_generation_bumps_once_per_batch(self):
        store = TripleStore()
        before = store.generation
        store.add_all([(1, 1, 2), (2, 1, 3), (3, 1, 4), (1, 1, 2)])
        assert store.generation == before + 1

    def test_all_duplicate_batch_is_a_noop(self):
        store = TripleStore()
        store.add_all([(1, 1, 2), (2, 1, 3)])
        generation = store.generation
        index = store.columnar
        assert store.add_all([(1, 1, 2), (2, 1, 3), (1, 1, 2)]) == 0
        assert store.generation == generation
        # The cached snapshot must survive a no-op batch untouched.
        assert store.columnar is index

    def test_empty_batch_is_a_noop(self):
        store = TripleStore()
        store.add_all([(1, 1, 2)])
        generation = store.generation
        assert store.add_all([]) == 0
        assert store.add_all(np.empty((0, 3), dtype=np.int64)) == 0
        assert store.generation == generation

    def test_batch_invalidates_all_caches(self):
        store = TripleStore()
        store.add_all([(1, 1, 2), (2, 2, 3)])
        index = store.columnar
        nodes = store.nodes()
        assert store.out_edges(1) == [(1, 2)]
        assert 9 not in nodes
        added = store.add_all([(9, 1, 1), (1, 1, 2)])
        assert added == 1
        assert store.columnar is not index
        assert 9 in store.nodes()
        assert store.out_edges(9) == [(1, 1)]
        assert store.backend.objects_of(9, 1).tolist() == [1]

    @given(st.lists(triples_strategy, min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_generation_cache_behaviour_matches_reference(self, batches):
        """Snapshots are reused while unchanged, replaced after changes."""
        store = TripleStore()
        for batch in batches:
            before = store.columnar
            rows = np.array(list(batch), dtype=np.int64).reshape(-1, 3)
            added = store.add_all(rows)
            after = store.columnar
            if added:
                assert after is not before
                assert after.size == before.size + added
            else:
                assert after is before


class TestChunkedIngest:
    def test_batches_accumulate_without_consolidation(self):
        """Chunked bulk ingest must not rebuild the index per batch."""
        store = TripleStore()
        for start in range(0, 40, 10):
            rows = np.array(
                [(s, 1, s + 1) for s in range(start, start + 10)],
                dtype=np.int64,
            )
            assert store.add_all(rows) == 10
        assert len(store._pending) == 4
        assert len(store) == 40
        # Membership probes between batches scan pending — no rebuild.
        assert (5, 1, 6) in store
        assert (5, 1, 7) not in store
        assert store.add(5, 1, 6) is False
        assert len(store._pending) == 4
        # Overlap with both committed-free pending batches resolves.
        assert store.add_all([(5, 1, 6), (95, 1, 96)]) == 1
        assert len(store) == 41
        # One consolidation serves the read.
        assert store.columnar.size == 41
        assert store._pending == []

    def test_chunked_equals_single_batch(self):
        rng = np.random.default_rng(3)
        rows = np.column_stack(
            [
                rng.integers(1, 50, 400),
                rng.integers(1, 5, 400),
                rng.integers(1, 50, 400),
            ]
        ).astype(np.int64)
        whole = TripleStore()
        whole.add_all(rows)
        chunked = TripleStore()
        for start in range(0, 400, 64):
            chunked.add_all(rows[start: start + 64])
        assert_identical_columns(whole, chunked)


class TestInputValidation:
    def test_wrong_shape_rejected(self):
        store = TripleStore()
        with pytest.raises(ValueError):
            store.add_all(np.ones((4, 2), dtype=np.int64))
        with pytest.raises(ValueError):
            store.add_all(np.ones((2, 3, 1), dtype=np.int64))

    def test_coerce_accepts_generators(self):
        rows = _coerce_batch((s, 1, s + 1) for s in range(3))
        assert rows.shape == (3, 3)
        assert rows.dtype == np.int64

    def test_returns_number_actually_added(self):
        store = TripleStore()
        assert store.add_all([(1, 1, 2), (1, 1, 2), (2, 1, 3)]) == 2
        assert store.add_all([(2, 1, 3), (3, 1, 4)]) == 1
        assert len(store) == 3


class TestPackRows:
    def test_pack_rows_identifies_duplicates(self):
        rows = np.array(
            [[1, 2, 3], [4, 5, 6], [1, 2, 3]], dtype=np.int64
        )
        packed = pack_rows(rows)
        assert packed[0] == packed[2]
        assert packed[0] != packed[1]

    def test_pack_rows_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            pack_rows(np.ones((3, 2), dtype=np.int64))
