"""Serial-vs-parallel labeling equivalence and failure-path tests.

Pooled labeling (:mod:`repro.rdf.parallel`) must return byte-identical
counts in identical order to running
:func:`repro.rdf.fastcount.count_query` serially — for any worker
count, chunking, or completion order — and must fail loudly (never
silently diverge) when a worker crashes or mutates its shared
snapshot.
"""

import multiprocessing

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import ReadOnlyStoreError, SnapshotError, TripleStore
from repro.rdf.fastcount import count_query
from repro.rdf.parallel import (
    ParallelLabelingError,
    chunk_queries,
    label_queries,
    label_serial,
)
from repro.rdf.pattern import QueryPattern, chain_pattern, star_pattern
from repro.rdf.terms import Variable

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAVE_FORK, reason="needs the fork start method"
)


def build_store(rng, triples=500, nodes=40, predicates=4):
    store = TripleStore()
    rows = np.column_stack(
        [
            rng.integers(1, nodes, triples),
            rng.integers(1, predicates + 1, triples),
            rng.integers(1, nodes, triples),
        ]
    ).astype(np.int64)
    store.add_all(rows)
    return store


def build_queries(count=24, predicates=4):
    """A deterministic mix of star and chain queries, bound and not."""
    queries = []
    for i in range(count):
        p1 = 1 + i % predicates
        p2 = 1 + (i + 1) % predicates
        if i % 2 == 0:
            queries.append(
                star_pattern(
                    Variable("c"),
                    [(p1, Variable(f"o{i}")), (p2, Variable(f"q{i}"))],
                )
            )
        else:
            start = Variable("a") if i % 3 else (1 + i % 20)
            queries.append(
                chain_pattern(
                    [start, p1, Variable("b"), p2, Variable("c")]
                )
            )
    return queries


@pytest.fixture
def graph_store():
    return build_store(np.random.default_rng(42))


@pytest.fixture
def snapshot(graph_store, tmp_path):
    directory = tmp_path / "snap"
    graph_store.save_snapshot(directory)
    return directory


class TestChunking:
    def test_covers_every_query_once_in_order(self):
        queries = build_queries(23)
        tasks = chunk_queries(queries, workers=4, chunk_size=None)
        flat = [q for _, chunk in tasks for q in chunk]
        assert flat == queries
        offsets = [offset for offset, _ in tasks]
        assert offsets == sorted(offsets)

    def test_more_chunks_than_workers(self):
        tasks = chunk_queries(build_queries(24), 2, None)
        assert len(tasks) > 2

    def test_explicit_chunk_size(self):
        tasks = chunk_queries(build_queries(10), 2, chunk_size=3)
        assert [len(c) for _, c in tasks] == [3, 3, 3, 1]

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError, match="chunk_size"):
            chunk_queries(build_queries(4), 2, chunk_size=0)


class TestSerialPaths:
    """Paths that never spawn a pool must still be exact."""

    def test_workers_1_matches_count_query(self, graph_store):
        queries = build_queries()
        assert label_queries(queries, store=graph_store) == [
            count_query(graph_store, q) for q in queries
        ]

    def test_empty_workload(self, graph_store):
        assert label_queries([], store=graph_store, workers=4) == []

    def test_single_query_skips_pool(self, graph_store):
        queries = build_queries(1)
        assert label_queries(
            queries, store=graph_store, workers=8
        ) == label_serial(graph_store, queries)

    def test_snapshot_dir_only_serial(self, graph_store, snapshot):
        queries = build_queries()
        assert label_queries(
            queries, snapshot_dir=snapshot, workers=1
        ) == label_serial(graph_store, queries)

    def test_requires_a_source(self):
        with pytest.raises(ValueError, match="store or a snapshot"):
            label_queries(build_queries(2))

    def test_workers_validated(self, graph_store):
        with pytest.raises(ValueError, match="workers"):
            label_queries(
                build_queries(2), store=graph_store, workers=0
            )


@needs_fork
class TestPooledEquivalence:
    def test_pooled_matches_serial(self, graph_store, snapshot):
        queries = build_queries(40)
        serial = label_serial(graph_store, queries)
        pooled = label_queries(
            queries, snapshot_dir=snapshot, workers=2
        )
        assert pooled == serial

    def test_workers_exceed_chunks(self, graph_store, snapshot):
        """More workers than shards: the pool shrinks, results don't."""
        queries = build_queries(3)
        pooled = label_queries(
            queries,
            snapshot_dir=snapshot,
            workers=16,
            chunk_size=2,
        )
        assert pooled == label_serial(graph_store, queries)

    def test_chunk_size_one(self, graph_store, snapshot):
        queries = build_queries(7)
        pooled = label_queries(
            queries, snapshot_dir=snapshot, workers=2, chunk_size=1
        )
        assert pooled == label_serial(graph_store, queries)

    def test_store_without_snapshot_is_resnapshotted(self, graph_store):
        """No on-disk image: one is written to a tempdir for the pool."""
        queries = build_queries(12)
        assert graph_store.snapshot_source is None
        pooled = label_queries(queries, store=graph_store, workers=2)
        assert pooled == label_serial(graph_store, queries)

    def test_pool_tempdir_is_not_recorded_as_source(self, graph_store):
        """The throwaway pool snapshot dies with the pool; a second
        pooled call must re-snapshot, not attach to the deleted path."""
        queries = build_queries(10)
        serial = label_serial(graph_store, queries)
        assert label_queries(
            queries, store=graph_store, workers=2
        ) == serial
        # The tempdir must not linger as the store's on-disk image...
        assert graph_store.snapshot_source is None
        # ...so the next pooled call works instead of hanging on a
        # nonexistent directory (regression: save_snapshot used to
        # record the soon-deleted tempdir).
        assert label_queries(
            queries, store=graph_store, workers=2
        ) == serial

    def test_workers_none_uses_core_count(self, graph_store, snapshot):
        queries = build_queries(8)
        pooled = label_queries(
            queries, snapshot_dir=snapshot, workers=None
        )
        assert pooled == label_serial(graph_store, queries)

    @given(data=st.data())
    @settings(max_examples=5, deadline=None)
    def test_property_pooled_equals_serial(self, data, tmp_path_factory):
        """Random graphs x random worker/chunk settings: byte-identical."""
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        store = build_store(
            rng,
            triples=data.draw(st.integers(2, 300)),
            nodes=data.draw(st.integers(2, 30)),
        )
        queries = build_queries(data.draw(st.integers(2, 30)))
        workers = data.draw(st.integers(2, 5))
        chunk_size = data.draw(
            st.one_of(st.none(), st.integers(1, 8))
        )
        directory = tmp_path_factory.mktemp("snaps") / "snap"
        store.save_snapshot(directory)
        pooled = label_queries(
            queries,
            snapshot_dir=directory,
            workers=workers,
            chunk_size=chunk_size,
        )
        assert pooled == label_serial(store, queries)


class _ExplodingPattern(QueryPattern):
    """A query whose classification blows up inside the worker."""

    def topology(self):
        raise RuntimeError("injected labeling crash")


@needs_fork
class TestFailurePaths:
    def test_crashed_worker_raises_with_traceback(
        self, graph_store, snapshot
    ):
        queries = build_queries(6)
        queries[4] = _ExplodingPattern(queries[4].triples)
        with pytest.raises(
            ParallelLabelingError, match="injected labeling crash"
        ) as excinfo:
            label_queries(queries, snapshot_dir=snapshot, workers=2)
        # The worker-side traceback must survive the process boundary.
        assert "Traceback" in str(excinfo.value)

    def test_crash_in_serial_path_propagates_directly(self, graph_store):
        queries = [_ExplodingPattern(build_queries(1)[0].triples)]
        with pytest.raises(RuntimeError, match="injected"):
            label_queries(queries, store=graph_store, workers=1)

    def test_vanished_snapshot_fails_loudly_not_hanging(
        self, graph_store, snapshot
    ):
        """A snapshot that disappears between parent check and worker
        attach must raise, not make the pool respawn workers forever."""
        import shutil

        store = TripleStore.load_snapshot(snapshot)
        shutil.rmtree(snapshot)
        # The parent still trusts its (memmapped, resident) store and
        # its recorded source; the workers' attach fails and must
        # surface as ParallelLabelingError with the worker traceback.
        with pytest.raises(
            ParallelLabelingError, match="failed to attach"
        ):
            label_queries(
                build_queries(6),
                store=store,
                snapshot_dir=snapshot,
                workers=2,
            )

    def test_corrupted_snapshot_dir_raises_before_pooling(
        self, snapshot
    ):
        """snapshot_dir without a store is checksum-verified once in
        the parent — corruption raises SnapshotError, it never labels
        against bit-rotted columns (workers attach with verify=False)."""
        column = snapshot / "spo_s.npy"
        data = bytearray(column.read_bytes())
        data[-8:] = (123456789).to_bytes(8, "little", signed=True)
        column.write_bytes(bytes(data))
        for workers in (1, 4):
            with pytest.raises(SnapshotError, match="checksum"):
                label_queries(
                    build_queries(4),
                    snapshot_dir=snapshot,
                    workers=workers,
                )


class TestReadOnlyWorkerGuard:
    """Workers share one snapshot; mutating it must be loud, not silent.

    A worker that demoted its copy to private in-memory arrays would
    keep answering while diverging from every sibling process mapping
    the same files — so the worker attach mode forbids mutation
    entirely, and the parent-side path re-snapshots when its own store
    no longer matches the on-disk image.
    """

    def test_read_only_store_rejects_add(self, snapshot):
        worker_view = TripleStore.load_snapshot(snapshot, read_only=True)
        assert worker_view.read_only
        with pytest.raises(ReadOnlyStoreError, match="read-only"):
            worker_view.add(900, 1, 901)

    def test_read_only_store_rejects_add_all(self, snapshot):
        worker_view = TripleStore.load_snapshot(snapshot, read_only=True)
        with pytest.raises(ReadOnlyStoreError, match="diverge"):
            worker_view.add_all([(900, 1, 901)])

    def test_read_only_rejection_leaves_store_intact(
        self, graph_store, snapshot
    ):
        worker_view = TripleStore.load_snapshot(snapshot, read_only=True)
        with pytest.raises(ReadOnlyStoreError):
            worker_view.add(900, 1, 901)
        assert len(worker_view) == len(graph_store)
        assert worker_view.generation == 0
        queries = build_queries(6)
        assert label_serial(worker_view, queries) == label_serial(
            graph_store, queries
        )

    def test_default_load_still_demotes_privately(
        self, graph_store, snapshot
    ):
        """Without read_only, mutation copies locally: the snapshot on
        disk — and any sibling mapping it — is untouched."""
        writable = TripleStore.load_snapshot(snapshot)
        sibling = TripleStore.load_snapshot(snapshot, read_only=True)
        assert writable.add(900, 1, 901)
        assert (900, 1, 901) in writable
        assert (900, 1, 901) not in sibling
        assert len(sibling) == len(graph_store)

    def test_snapshot_source_invalidated_by_mutation(self, snapshot):
        store = TripleStore.load_snapshot(snapshot)
        assert store.snapshot_source == snapshot
        store.add(900, 1, 901)
        assert store.snapshot_source is None

    @needs_fork
    def test_demoted_parent_is_resnapshotted_not_stale(self, snapshot):
        """A parent that mutated after loading must not hand workers the
        stale directory: pooled counts reflect the mutated store."""
        store = TripleStore.load_snapshot(snapshot)
        centre = 900
        for i in range(5):
            store.add(centre, 1, 910 + i)
            store.add(centre, 2, 920 + i)
        query = star_pattern(
            centre, [(1, Variable("x")), (2, Variable("y"))]
        )
        queries = build_queries(6) + [query]
        pooled = label_queries(
            queries, store=store, snapshot_dir=snapshot, workers=2
        )
        assert pooled == label_serial(store, queries)
        assert pooled[-1] == 25  # 5 p1-objects x 5 p2-objects

    def test_save_snapshot_sets_source(self, graph_store, tmp_path):
        directory = tmp_path / "fresh"
        graph_store.save_snapshot(directory)
        assert graph_store.snapshot_source == directory

    def test_worker_attach_skips_dictionary(self, tmp_path):
        """Workers count ids, never decode terms: the attach mode must
        not re-parse (and privately duplicate) the dictionaries."""
        store = TripleStore.from_lexical(
            [("a", "p", "b"), ("a", "p", "c"), ("b", "q", "c")]
        )
        directory = tmp_path / "lex"
        store.save_snapshot(directory)
        worker_view = TripleStore.load_snapshot(
            directory, read_only=True, load_dictionary=False
        )
        assert worker_view.dictionary is None
        queries = build_queries(4)
        assert label_serial(worker_view, queries) == label_serial(
            store, queries
        )
        # The default load still brings the dictionary back.
        full = TripleStore.load_snapshot(directory)
        assert full.dictionary is not None
