"""The specialised star/chain counters must agree with the matcher."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import TripleStore, count_bgp
from repro.rdf.fastcount import count_chain, count_query, count_star
from repro.rdf.pattern import QueryPattern, chain_pattern, star_pattern
from repro.rdf.terms import TriplePattern, Variable


def v(name):
    return Variable(name)


triples_strategy = st.lists(
    st.tuples(st.integers(1, 8), st.integers(1, 3), st.integers(1, 8)),
    min_size=1,
    max_size=40,
)


class TestApplicability:
    def test_star_with_unbound_predicate_not_applicable(self, tiny_store):
        q = star_pattern(v("x"), [(v("p"), v("y")), (2, 4)])
        assert count_star(tiny_store, q) is None

    def test_star_with_shared_object_variable_not_applicable(
        self, tiny_store
    ):
        q = star_pattern(v("x"), [(1, v("y")), (2, v("y"))])
        assert count_star(tiny_store, q) is None

    def test_chain_with_cycle_not_applicable(self, tiny_store):
        q = QueryPattern(
            [
                TriplePattern(v("a"), 1, v("b")),
                TriplePattern(v("b"), 2, v("a")),
            ]
        )
        assert count_chain(tiny_store, q) is None

    def test_count_query_falls_back_gracefully(self, tiny_store):
        q = star_pattern(v("x"), [(1, v("y")), (2, v("y"))])
        assert count_query(tiny_store, q) == count_bgp(tiny_store, q)


class TestKnownCounts:
    def test_star(self, tiny_store):
        q = star_pattern(v("x"), [(1, v("y")), (2, 4)])
        assert count_star(tiny_store, q) == 3

    def test_star_bound_centre(self, tiny_store):
        q = star_pattern(1, [(1, v("y")), (2, v("z"))])
        assert count_star(tiny_store, q) == 2

    def test_chain(self, tiny_store):
        q = chain_pattern([v("a"), 2, v("b"), 3, v("c")])
        assert count_chain(tiny_store, q) == 6

    def test_chain_bound_endpoints(self, tiny_store):
        q = chain_pattern([1, 2, v("b"), 3, 5])
        assert count_chain(tiny_store, q) == 1

    def test_single_pattern_via_count_query(self, tiny_store):
        q = QueryPattern([TriplePattern(v("s"), 2, v("o"))])
        assert count_query(tiny_store, q) == 3


class TestAgainstMatcher:
    @given(
        triples_strategy,
        st.integers(1, 3),
        st.integers(1, 3),
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_star_two_arms(self, triples, p1, p2, unbind1, unbind2):
        store = TripleStore()
        store.add_all(triples)
        o1 = v("y1") if unbind1 else 3
        o2 = v("y2") if unbind2 else 4
        query = star_pattern(v("x"), [(p1, o1), (p2, o2)])
        fast = count_star(store, query)
        assert fast is not None
        assert fast == count_bgp(store, query)

    @given(
        triples_strategy,
        st.integers(1, 3),
        st.integers(1, 3),
        st.sampled_from(["vvv", "bvv", "vvb", "bvb"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_chain_two_hops(self, triples, p1, p2, binding):
        store = TripleStore()
        store.add_all(triples)
        terms = [
            v("a") if binding[0] == "v" else 1,
            p1,
            v("b") if binding[1] == "v" else 2,
            p2,
            v("c") if binding[2] == "v" else 3,
        ]
        query = chain_pattern(terms)
        fast = count_chain(store, query)
        assert fast is not None
        assert fast == count_bgp(store, query)

    @given(triples_strategy, st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_three_arm_star(self, triples, p):
        store = TripleStore()
        store.add_all(triples)
        query = star_pattern(
            v("x"), [(1, v("y1")), (2, v("y2")), (p, v("y3"))]
        )
        assert count_star(store, query) == count_bgp(store, query)


class TestOnRealDataset:
    def test_random_queries_agree(self, lubm_store, rng):
        from repro.sampling import generate_workload
        from repro.rdf import matcher

        for topology in ("star", "chain"):
            workload = generate_workload(
                lubm_store, topology, 3, 25, seed=int(rng.integers(1000))
            )
            for record in workload.records:
                assert record.cardinality == matcher.count_bgp(
                    lubm_store, record.query
                )
