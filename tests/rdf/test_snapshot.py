"""Round-trip and corruption tests for columnar store persistence.

Save → load (memmap and eager) must be observationally identical to the
original store for every consumer: pattern lookups, the exact matcher,
the vectorized star/chain counters, and the random-walk samplers.
Corrupted, truncated, or version-mismatched snapshots must fail with a
clean :class:`SnapshotError`, never garbage results.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import TripleStore
from repro.rdf.columnar import (
    MANIFEST_NAME,
    PERMUTATION_COLUMNS,
    ColumnarIndex,
    SnapshotError,
)
from repro.rdf import fastcount
from repro.rdf.matcher import count_bgp
from repro.rdf.pattern import chain_pattern, star_pattern
from repro.rdf.terms import Variable, pattern
from repro.sampling.random_walk import sample_instances
from repro.sampling.workload import generate_workload

triples_strategy = st.lists(
    st.tuples(
        st.integers(1, 12), st.integers(1, 4), st.integers(1, 12)
    ),
    max_size=60,
)


@pytest.fixture
def graph_store() -> TripleStore:
    """A deterministic ~600-triple hub graph, dense enough to sample."""
    rng = np.random.default_rng(12)
    store = TripleStore()
    rows = np.column_stack(
        [
            rng.integers(1, 60, 700),
            rng.integers(1, 6, 700),
            rng.integers(1, 60, 700),
        ]
    ).astype(np.int64)
    store.add_all(rows)
    return store


def roundtrip(store, tmp_path, mmap_mode="r"):
    directory = tmp_path / "snap"
    store.save_snapshot(directory)
    return TripleStore.load_snapshot(directory, mmap_mode=mmap_mode)


PATTERN_SHAPES = [
    lambda s, p, o: pattern(s, p, o),
    lambda s, p, o: pattern(s, p, Variable("o")),
    lambda s, p, o: pattern(Variable("s"), p, o),
    lambda s, p, o: pattern(s, Variable("p"), o),
    lambda s, p, o: pattern(s, Variable("p"), Variable("o")),
    lambda s, p, o: pattern(Variable("s"), p, Variable("o")),
    lambda s, p, o: pattern(Variable("s"), Variable("p"), o),
    lambda s, p, o: pattern(Variable("s"), Variable("p"), Variable("o")),
]


class TestRoundTrip:
    @pytest.mark.parametrize("mmap_mode", ["r", None])
    def test_pattern_lookups_identical(
        self, graph_store, tmp_path, mmap_mode
    ):
        loaded = roundtrip(graph_store, tmp_path, mmap_mode)
        assert len(loaded) == len(graph_store)
        probes = list(graph_store)[::37] + [(99, 99, 99)]
        for s, p, o in probes:
            for shape in PATTERN_SHAPES:
                tp = shape(s, p, o)
                assert loaded.count_pattern(tp) == \
                    graph_store.count_pattern(tp)
                assert sorted(loaded.match_pattern(tp)) == \
                    sorted(graph_store.match_pattern(tp))

    @pytest.mark.parametrize("mmap_mode", ["r", None])
    def test_slices_identical(self, graph_store, tmp_path, mmap_mode):
        loaded = roundtrip(graph_store, tmp_path, mmap_mode)
        original = graph_store.columnar
        reloaded = loaded.columnar
        for s in range(0, 62):
            assert np.array_equal(
                original.out_slice(s)[0], reloaded.out_slice(s)[0]
            )
            assert np.array_equal(
                original.in_slice(s)[1], reloaded.in_slice(s)[1]
            )
        for p in range(0, 8):
            assert np.array_equal(
                original.pred_slice(p)[0], reloaded.pred_slice(p)[0]
            )
            for o in range(0, 62, 7):
                assert np.array_equal(
                    original.subjects_of(p, o), reloaded.subjects_of(p, o)
                )

    @pytest.mark.parametrize("mmap_mode", ["r", None])
    def test_star_chain_counters_identical(
        self, graph_store, tmp_path, mmap_mode
    ):
        loaded = roundtrip(graph_store, tmp_path, mmap_mode)
        v = Variable
        queries = [
            star_pattern(v("x"), [(1, v("a")), (2, v("b"))]),
            star_pattern(v("x"), [(1, 5), (3, v("b"))]),
            chain_pattern([v("x"), 1, v("y"), 2, v("z")]),
            chain_pattern([3, 1, v("y"), 4, v("z")]),
        ]
        for query in queries:
            expected = fastcount.count_query(graph_store, query)
            assert fastcount.count_query(loaded, query) == expected
            assert count_bgp(loaded, query) == expected

    @pytest.mark.parametrize("mmap_mode", ["r", None])
    def test_sampler_draws_identical(
        self, graph_store, tmp_path, mmap_mode
    ):
        loaded = roundtrip(graph_store, tmp_path, mmap_mode)
        for topology, size in (("star", 2), ("chain", 2)):
            original = sample_instances(
                graph_store, topology, size, 40, seed=9
            )
            reloaded = sample_instances(loaded, topology, size, 40, seed=9)
            assert original == reloaded

    def test_workload_generation_identical(self, graph_store, tmp_path):
        loaded = roundtrip(graph_store, tmp_path)
        original = generate_workload(graph_store, "star", 2, 25, seed=4)
        reloaded = generate_workload(loaded, "star", 2, 25, seed=4)
        assert original.records == reloaded.records

    def test_dictionary_round_trips(self, tmp_path):
        store = TripleStore.from_lexical(
            [
                ("TheShining", "hasAuthor", "StephenKing"),
                ("IT", "hasAuthor", "StephenKing"),
                ("IT", "hasGenre", "Horror"),
            ]
        )
        loaded = roundtrip(store, tmp_path)
        assert loaded.dictionary is not None
        king = loaded.dictionary.nodes.lookup("StephenKing")
        author = loaded.dictionary.predicates.lookup("hasAuthor")
        assert king == store.dictionary.nodes.lookup("StephenKing")
        assert loaded.subjects_of(author, king) == \
            store.subjects_of(author, king)
        assert loaded.dictionary.decode_triple(next(iter(loaded))) == \
            store.dictionary.decode_triple(next(iter(store)))

    def test_empty_store_round_trips(self, tmp_path):
        loaded = roundtrip(TripleStore(), tmp_path)
        assert len(loaded) == 0
        assert loaded.nodes() == []


class TestMemmapSemantics:
    def test_loaded_columns_are_readonly_memmaps(
        self, graph_store, tmp_path
    ):
        loaded = roundtrip(graph_store, tmp_path)
        column = loaded.columnar.spo_s
        assert isinstance(column, np.memmap)
        assert not column.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            column[0] = 123

    def test_mutation_demotes_to_memory_not_in_place(
        self, graph_store, tmp_path
    ):
        directory = tmp_path / "snap"
        graph_store.save_snapshot(directory)
        before = {
            name: np.load(directory / f"{name}.npy")
            for name in PERMUTATION_COLUMNS
        }
        loaded = TripleStore.load_snapshot(directory)
        assert loaded.add(1000, 1000, 1000) is True
        col = loaded.columnar
        assert not isinstance(col.spo_s, np.memmap)
        assert col.contains(1000, 1000, 1000)
        assert len(loaded) == len(graph_store) + 1
        # The on-disk snapshot is untouched.
        for name in PERMUTATION_COLUMNS:
            assert np.array_equal(
                before[name], np.load(directory / f"{name}.npy")
            )

    def test_bulk_mutation_demotes_too(self, graph_store, tmp_path):
        loaded = roundtrip(graph_store, tmp_path)
        added = loaded.add_all(
            np.array([[2000, 1, 2001], [2001, 1, 2002]], dtype=np.int64)
        )
        assert added == 2
        assert not isinstance(loaded.columnar.spo_s, np.memmap)
        assert len(loaded) == len(graph_store) + 2

    def test_duplicate_add_keeps_memmap_backing(
        self, graph_store, tmp_path
    ):
        loaded = roundtrip(graph_store, tmp_path)
        existing = next(iter(loaded))
        assert loaded.add(*existing) is False
        assert isinstance(loaded.columnar.spo_s, np.memmap)

    def test_resave_into_own_directory_is_safe(
        self, graph_store, tmp_path
    ):
        """Regression: re-saving a memmap-backed store onto its own
        snapshot must not truncate the files its columns are mapped
        from (silent corruption)."""
        directory = tmp_path / "snap"
        graph_store.save_snapshot(directory)
        loaded = TripleStore.load_snapshot(directory)
        loaded.save_snapshot(directory)
        reloaded = TripleStore.load_snapshot(directory)
        assert sorted(reloaded) == sorted(graph_store)


class TestCorruption:
    def save(self, tmp_path):
        store = TripleStore()
        store.add_all([(1, 1, 2), (2, 1, 3), (3, 2, 1)])
        directory = tmp_path / "snap"
        store.save_snapshot(directory)
        return directory

    def manifest(self, directory):
        return json.loads((directory / MANIFEST_NAME).read_text())

    def write_manifest(self, directory, manifest):
        (directory / MANIFEST_NAME).write_text(json.dumps(manifest))

    def test_missing_directory(self, tmp_path):
        with pytest.raises(SnapshotError, match="no snapshot manifest"):
            TripleStore.load_snapshot(tmp_path / "nowhere")

    def test_unparseable_manifest(self, tmp_path):
        directory = self.save(tmp_path)
        (directory / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(SnapshotError, match="unreadable"):
            TripleStore.load_snapshot(directory)

    def test_foreign_format_rejected(self, tmp_path):
        directory = self.save(tmp_path)
        manifest = self.manifest(directory)
        manifest["format"] = "parquet"
        self.write_manifest(directory, manifest)
        with pytest.raises(SnapshotError, match="not a repro-columnar"):
            TripleStore.load_snapshot(directory)

    def test_version_mismatch_rejected(self, tmp_path):
        directory = self.save(tmp_path)
        manifest = self.manifest(directory)
        manifest["version"] = 999
        self.write_manifest(directory, manifest)
        with pytest.raises(SnapshotError, match="version 999"):
            TripleStore.load_snapshot(directory)

    def test_missing_column_rejected(self, tmp_path):
        directory = self.save(tmp_path)
        (directory / "pos_o.npy").unlink()
        with pytest.raises(SnapshotError, match="column missing"):
            TripleStore.load_snapshot(directory)

    def test_truncated_column_rejected(self, tmp_path):
        directory = self.save(tmp_path)
        path = directory / "spo_s.npy"
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(SnapshotError):
            TripleStore.load_snapshot(directory)

    def test_length_mismatch_rejected(self, tmp_path):
        directory = self.save(tmp_path)
        np.save(directory / "osp_p.npy", np.array([1, 2], dtype=np.int64))
        with pytest.raises(SnapshotError, match="holds 2 values"):
            TripleStore.load_snapshot(directory)

    def test_wrong_dtype_rejected(self, tmp_path):
        directory = self.save(tmp_path)
        np.save(
            directory / "pso_s.npy",
            np.zeros(3, dtype=np.float64),
        )
        with pytest.raises(SnapshotError, match="dtype"):
            TripleStore.load_snapshot(directory)

    @pytest.mark.parametrize("column", ["spo_o", "pos_s", "osp_p", "pso_o"])
    def test_tampered_content_fails_checksum(self, tmp_path, column):
        """Corruption in ANY permutation must be caught — a checksum
        covering only the SPO columns would silently serve wrong query
        results from the other three (regression)."""
        directory = self.save(tmp_path)
        rows = np.load(directory / f"{column}.npy")
        rows = rows.copy()
        rows[0] += 1
        np.save(directory / f"{column}.npy", rows)
        with pytest.raises(SnapshotError, match="checksum"):
            TripleStore.load_snapshot(directory)
        # Opting out of verification loads without complaint.
        TripleStore.load_snapshot(directory, verify=False)

    def test_missing_dictionary_rejected(self, tmp_path):
        store = TripleStore.from_lexical([("a", "p", "b")])
        directory = tmp_path / "snap"
        store.save_snapshot(directory)
        (directory / "dictionary.json").unlink()
        with pytest.raises(SnapshotError, match="dictionar"):
            TripleStore.load_snapshot(directory)

    def test_tampered_dictionary_fails_checksum(self, tmp_path):
        store = TripleStore.from_lexical([("a", "p", "b")])
        directory = tmp_path / "snap"
        store.save_snapshot(directory)
        payload = json.loads((directory / "dictionary.json").read_text())
        payload["nodes"][0] = "mallory"
        (directory / "dictionary.json").write_text(json.dumps(payload))
        with pytest.raises(SnapshotError, match="checksum"):
            TripleStore.load_snapshot(directory)


class TestColumnarIndexApi:
    def test_save_load_without_store(self, tmp_path):
        index = ColumnarIndex.from_array(
            np.array([[1, 1, 2], [2, 1, 3]], dtype=np.int64)
        )
        index.save(tmp_path / "idx")
        loaded = ColumnarIndex.load(tmp_path / "idx")
        assert loaded.size == 2
        assert np.array_equal(loaded.rows(), index.rows())

    def test_extra_manifest_preserved(self, tmp_path):
        index = ColumnarIndex.from_array(
            np.array([[1, 1, 2]], dtype=np.int64)
        )
        manifest_path = index.save(
            tmp_path / "idx", extra_manifest={"origin": "unit-test"}
        )
        manifest = json.loads(manifest_path.read_text())
        assert manifest["origin"] == "unit-test"
        assert manifest["num_triples"] == 1


@pytest.mark.slow
class TestDeepEquivalence:
    """Nightly tier: memmap-backed and in-memory indexes are
    observationally identical to the matcher and fast counters on
    random graphs."""

    @given(triples_strategy, st.integers(0, 10_000))
    @settings(max_examples=150, deadline=None)
    def test_snapshot_equivalence_under_random_graphs(
        self, tmp_path_factory, triples, salt
    ):
        directory = tmp_path_factory.mktemp("snap") / str(salt)
        store = TripleStore()
        store.add_all(triples)
        store.save_snapshot(directory)
        loaded = TripleStore.load_snapshot(directory)
        assert sorted(loaded) == sorted(store)
        v = Variable
        queries = [
            star_pattern(v("x"), [(1, v("a")), (2, v("b"))]),
            chain_pattern([v("x"), 1, v("y"), 1, v("z")]),
        ]
        for query in queries:
            assert fastcount.count_query(loaded, query) == \
                fastcount.count_query(store, query)
        for s, p, o in list(set(triples))[:10]:
            for shape in PATTERN_SHAPES:
                tp = shape(s, p, o)
                assert loaded.count_pattern(tp) == store.count_pattern(tp)
