"""The `StoreBackend` seam: ShardedBackend ≡ ColumnarBackend, exactly.

The adapter contract promises that sharding is invisible: every lookup,
count, accessor, and labeled query must come back *byte-identical* from
a sharded backend and from the single columnar index over the same
rows, for every pattern shape, across shard counts 1/2/8 and both
routing keys.  Hypothesis drives random small graphs through the whole
contract; the corrupt-manifest tests pin the typed `SnapshotError`
surface a sharded snapshot load relies on.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import TripleStore
from repro.rdf.backend import (
    ColumnarBackend,
    ShardedBackend,
    load_backend,
    read_sharded_manifest,
    shard_of,
    snapshot_format,
)
from repro.rdf.columnar import SnapshotError
from repro.rdf.fastcount import count_query
from repro.rdf.pattern import chain_pattern, star_pattern
from repro.rdf.terms import Variable, pattern

MAX_NODE = 10
MAX_PRED = 3
SHARD_COUNTS = (1, 2, 8)
SHARD_MODES = ("subject", "predicate")

triples_strategy = st.lists(
    st.tuples(
        st.integers(1, MAX_NODE),
        st.integers(1, MAX_PRED),
        st.integers(1, MAX_NODE),
    ),
    min_size=1,
    max_size=50,
)

#: a pattern position: a bound id or None (a fresh distinct variable)
maybe_node = st.one_of(st.none(), st.integers(1, MAX_NODE))
maybe_pred = st.one_of(st.none(), st.integers(1, MAX_PRED))


def _rows(triples):
    return np.array(sorted(set(triples)), dtype=np.int64)


def _backends(triples):
    """(ColumnarBackend, [every sharded layout]) over the same rows."""
    rows = _rows(triples)
    flat = ColumnarBackend.from_rows(rows)
    sharded = [
        ShardedBackend.from_rows(rows, shards, shard_by=mode)
        for shards in SHARD_COUNTS
        for mode in SHARD_MODES
    ]
    return flat, sharded


def _label(backend):
    s = backend.stats()
    return f"{s.num_shards} shard(s) by {s.shard_by}"


class TestLookupEquivalence:
    @given(triples_strategy, maybe_node, maybe_pred, maybe_node)
    @settings(max_examples=150, deadline=None)
    def test_lookup_and_count_every_shape(self, triples, s, p, o):
        """All 8 bound/unbound shapes: identical rows, identical count."""
        flat, sharded = _backends(triples)
        expected = flat.lookup(s, p, o)
        expected_count = flat.count(s, p, o)
        assert expected_count == expected.shape[0]
        for backend in sharded:
            got = backend.lookup(s, p, o)
            assert got.dtype == expected.dtype
            assert np.array_equal(got, expected), _label(backend)
            assert backend.count(s, p, o) == expected_count, _label(backend)

    @given(triples_strategy)
    @settings(max_examples=60, deadline=None)
    def test_rows_and_membership(self, triples):
        flat, sharded = _backends(triples)
        rows = flat.rows()
        probe = np.concatenate([rows, rows + 1]) if rows.size else rows
        for backend in sharded:
            assert backend.size == flat.size
            assert np.array_equal(backend.rows(), rows), _label(backend)
            assert np.array_equal(
                backend.isin_rows(probe), flat.isin_rows(probe)
            ), _label(backend)


class TestAccessorEquivalence:
    @given(triples_strategy, st.integers(1, MAX_NODE),
           st.integers(1, MAX_PRED), st.integers(1, MAX_NODE))
    @settings(max_examples=100, deadline=None)
    def test_point_and_slice_accessors(self, triples, s, p, o):
        flat, sharded = _backends(triples)
        subjects = flat.subjects()
        for backend in sharded:
            note = _label(backend)
            assert backend.contains(s, p, o) == flat.contains(s, p, o), note
            for got, expected in [
                (backend.objects_of(s, p), flat.objects_of(s, p)),
                (backend.subjects_of(p, o), flat.subjects_of(p, o)),
                (backend.predicates_between(s, o),
                 flat.predicates_between(s, o)),
                (backend.out_predicates(s), flat.out_predicates(s)),
            ]:
                assert np.array_equal(got, expected), note
            for got_pair, expected_pair in [
                (backend.out_slice(s), flat.out_slice(s)),
                (backend.in_slice(o), flat.in_slice(o)),
                (backend.pred_slice(p), flat.pred_slice(p)),
                (backend.pred_slice_by_object(p),
                 flat.pred_slice_by_object(p)),
            ]:
                for got, expected in zip(got_pair, expected_pair):
                    assert np.array_equal(got, expected), note
            assert backend.out_degree(s) == flat.out_degree(s), note
            assert backend.in_degree(o) == flat.in_degree(o), note
            assert backend.predicate_count(p) == flat.predicate_count(p)
            assert backend.count_sp(s, p) == flat.count_sp(s, p), note
            assert backend.count_po(p, o) == flat.count_po(p, o), note
            assert backend.count_so(s, o) == flat.count_so(s, o), note
            got_obj, got_len = backend.sp_objects(subjects, p)
            exp_obj, exp_len = flat.sp_objects(subjects, p)
            assert np.array_equal(got_obj, exp_obj), note
            assert np.array_equal(got_len, exp_len), note
            assert np.array_equal(
                backend.sp_counts(subjects, p), flat.sp_counts(subjects, p)
            ), note
            assert np.array_equal(
                backend.sp_have_object(subjects, p, o),
                flat.sp_have_object(subjects, p, o),
            ), note

    @given(triples_strategy)
    @settings(max_examples=60, deadline=None)
    def test_domain_and_stats_accessors(self, triples):
        flat, sharded = _backends(triples)
        for backend in sharded:
            note = _label(backend)
            for got, expected in [
                (backend.subjects(), flat.subjects()),
                (backend.objects(), flat.objects()),
                (backend.predicates(), flat.predicates()),
                (backend.nodes(), flat.nodes()),
            ]:
                assert np.array_equal(got, expected), note
            for got_pair, expected_pair in [
                (backend.subject_degrees(), flat.subject_degrees()),
                (backend.object_degrees(), flat.object_degrees()),
                (backend.predicate_triple_counts(),
                 flat.predicate_triple_counts()),
                (backend.distinct_sp_pairs(), flat.distinct_sp_pairs()),
            ]:
                for got, expected in zip(got_pair, expected_pair):
                    assert np.array_equal(got, expected), note
            for p in range(1, MAX_PRED + 1):
                for got, expected in zip(
                    backend.predicate_subject_stats(p),
                    flat.predicate_subject_stats(p),
                ):
                    assert np.array_equal(got, expected), note
                for got, expected in zip(
                    backend.predicate_object_stats(p),
                    flat.predicate_object_stats(p),
                ):
                    assert np.array_equal(got, expected), note
            assert list(backend.subject_predicate_groups()) == list(
                flat.subject_predicate_groups()
            ), note


class TestFacadeEquivalence:
    """TripleStore over a sharded backend answers like the flat store."""

    @given(triples_strategy, maybe_node, maybe_pred, maybe_node)
    @settings(max_examples=100, deadline=None)
    def test_match_and_count_pattern(self, triples, s, p, o):
        flat, sharded = _backends(triples)
        reference = TripleStore.from_backend(flat)
        tp = pattern(
            s if s is not None else Variable("s"),
            p if p is not None else Variable("p"),
            o if o is not None else Variable("o"),
        )
        repeated = pattern(Variable("x"), 1, Variable("x"))
        for backend in sharded:
            store = TripleStore.from_backend(backend)
            note = _label(backend)
            assert list(store.match_pattern(tp)) == list(
                reference.match_pattern(tp)
            ), note
            assert store.count_pattern(tp) == reference.count_pattern(tp)
            assert list(store.match_pattern(repeated)) == list(
                reference.match_pattern(repeated)
            ), note

    @given(
        triples_strategy,
        st.one_of(st.none(), st.integers(1, MAX_NODE)),
        st.lists(
            st.tuples(st.integers(1, MAX_PRED), maybe_node),
            min_size=1,
            max_size=3,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_star_labeling(self, triples, centre, pairs):
        flat, sharded = _backends(triples)
        reference = TripleStore.from_backend(flat)
        centre_term = Variable("c") if centre is None else centre
        edges = [
            (p, Variable(f"o{i}") if o is None else o)
            for i, (p, o) in enumerate(pairs)
        ]
        query = star_pattern(centre_term, edges)
        expected = count_query(reference, query)
        for backend in sharded:
            store = TripleStore.from_backend(backend)
            assert count_query(store, query) == expected, _label(backend)

    @given(
        triples_strategy,
        st.lists(st.integers(1, MAX_PRED), min_size=1, max_size=3),
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_chain_labeling(self, triples, predicates, bind_head, bind_tail):
        flat, sharded = _backends(triples)
        reference = TripleStore.from_backend(flat)
        nodes = [Variable(f"v{i}") for i in range(len(predicates) + 1)]
        if bind_head:
            nodes[0] = 1
        if bind_tail:
            nodes[-1] = 2
        terms = []
        for i, node in enumerate(nodes):
            terms.append(node)
            if i < len(predicates):
                terms.append(predicates[i])
        query = chain_pattern(terms)
        expected = count_query(reference, query)
        for backend in sharded:
            store = TripleStore.from_backend(backend)
            assert count_query(store, query) == expected, _label(backend)


@pytest.fixture
def rows():
    rng = np.random.default_rng(42)
    raw = rng.integers(1, 40, size=(300, 3))
    return np.unique(raw, axis=0).astype(np.int64)


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("shard_by", SHARD_MODES)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_save_load_byte_identical(self, rows, tmp_path, shards, shard_by):
        backend = ShardedBackend.from_rows(rows, shards, shard_by=shard_by)
        backend.save(tmp_path / "snap")
        assert snapshot_format(tmp_path / "snap") == "repro-sharded"
        loaded, manifest = load_backend(tmp_path / "snap")
        assert isinstance(loaded, ShardedBackend)
        assert loaded.num_shards == shards
        assert loaded.shard_by == shard_by
        assert manifest["num_triples"] == rows.shape[0]
        assert np.array_equal(loaded.rows(), backend.rows())
        assert np.array_equal(loaded.rows(), rows)
        stats = loaded.stats()
        assert stats.backend == "sharded"
        assert stats.num_shards == shards
        assert stats.attached_shards == shards

    def test_flat_snapshot_loads_columnar(self, rows, tmp_path):
        ColumnarBackend.from_rows(rows).save(tmp_path / "snap")
        loaded, _ = load_backend(tmp_path / "snap")
        assert isinstance(loaded, ColumnarBackend)
        assert np.array_equal(loaded.rows(), rows)

    def test_shard_ids_on_flat_snapshot_rejected(self, rows, tmp_path):
        ColumnarBackend.from_rows(rows).save(tmp_path / "snap")
        with pytest.raises(SnapshotError, match="not sharded"):
            load_backend(tmp_path / "snap", shard_ids=[0])

    def test_store_save_snapshot_reshards(self, rows, tmp_path):
        store = TripleStore.from_backend(ColumnarBackend.from_rows(rows))
        store.save_snapshot(tmp_path / "snap", shards=2)
        loaded = TripleStore.load_snapshot(tmp_path / "snap")
        assert isinstance(loaded.backend, ShardedBackend)
        assert np.array_equal(loaded.backend.rows(), rows)

    def test_partial_attach_is_the_shard_subgraph(self, rows, tmp_path):
        backend = ShardedBackend.from_rows(rows, 4)
        backend.save(tmp_path / "snap")
        owners = shard_of(rows[:, 0], 4)
        partial = ShardedBackend.load(tmp_path / "snap", shard_ids=[1, 3])
        keep = (owners == 1) | (owners == 3)
        expected = rows[keep]
        assert partial.size == expected.shape[0]
        assert np.array_equal(
            partial.rows(),
            expected[np.lexsort((expected[:, 2], expected[:, 1],
                                 expected[:, 0]))],
        )
        assert not partial.fully_attached
        assert partial.stats().attached_shards == 2

    def test_partial_attach_refuses_save(self, rows, tmp_path):
        ShardedBackend.from_rows(rows, 4).save(tmp_path / "snap")
        partial = ShardedBackend.load(tmp_path / "snap", shard_ids=[0])
        with pytest.raises(SnapshotError, match="partially attached"):
            partial.save(tmp_path / "copy")

    def test_missing_shard_id_rejected(self, rows, tmp_path):
        ShardedBackend.from_rows(rows, 2).save(tmp_path / "snap")
        with pytest.raises(SnapshotError, match="does not exist"):
            ShardedBackend.load(tmp_path / "snap", shard_ids=[5])


class TestCorruptManifests:
    """Every tampering mode fails loudly with a typed SnapshotError."""

    def _save(self, rows, directory, shards=2):
        ShardedBackend.from_rows(rows, shards).save(directory)
        return directory / "manifest.json"

    def _rewrite(self, path, **overrides):
        manifest = json.loads(path.read_text())
        manifest.update(overrides)
        path.write_text(json.dumps(manifest))

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(SnapshotError, match="no snapshot manifest"):
            read_sharded_manifest(tmp_path)

    def test_unparsable_manifest(self, rows, tmp_path):
        path = self._save(rows, tmp_path / "snap")
        path.write_text("{not json")
        with pytest.raises(SnapshotError, match="unreadable"):
            read_sharded_manifest(tmp_path / "snap")

    def test_foreign_format(self, rows, tmp_path):
        path = self._save(rows, tmp_path / "snap")
        self._rewrite(path, format="parquet")
        with pytest.raises(SnapshotError, match="not a repro-sharded"):
            read_sharded_manifest(tmp_path / "snap")

    def test_wrong_version(self, rows, tmp_path):
        path = self._save(rows, tmp_path / "snap")
        self._rewrite(path, version=99)
        with pytest.raises(SnapshotError, match="version"):
            ShardedBackend.load(tmp_path / "snap")

    def test_wrong_routing(self, rows, tmp_path):
        path = self._save(rows, tmp_path / "snap")
        self._rewrite(path, routing="md5")
        with pytest.raises(SnapshotError, match="routes by"):
            ShardedBackend.load(tmp_path / "snap")

    def test_invalid_shard_by(self, rows, tmp_path):
        path = self._save(rows, tmp_path / "snap")
        self._rewrite(path, shard_by="object")
        with pytest.raises(SnapshotError, match="invalid shard_by"):
            ShardedBackend.load(tmp_path / "snap")

    def test_shard_entry_count_mismatch(self, rows, tmp_path):
        path = self._save(rows, tmp_path / "snap")
        self._rewrite(path, num_shards=3)
        with pytest.raises(SnapshotError, match="shard entries"):
            ShardedBackend.load(tmp_path / "snap")

    def test_missing_shard_directory(self, rows, tmp_path):
        self._save(rows, tmp_path / "snap")
        import shutil

        shutil.rmtree(tmp_path / "snap" / "shard-0001")
        with pytest.raises(SnapshotError):
            ShardedBackend.load(tmp_path / "snap")

    def test_total_triple_count_mismatch(self, rows, tmp_path):
        path = self._save(rows, tmp_path / "snap")
        manifest = json.loads(path.read_text())
        manifest["num_triples"] += 1
        path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="sums to"):
            ShardedBackend.load(tmp_path / "snap")

    def test_per_shard_triple_count_mismatch(self, rows, tmp_path):
        path = self._save(rows, tmp_path / "snap")
        manifest = json.loads(path.read_text())
        manifest["shards"][0]["num_triples"] += 1
        path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="manifest says"):
            ShardedBackend.load(tmp_path / "snap")

    def test_swapped_in_shard_rejected(self, rows, tmp_path):
        """A shard from a different snapshot has the wrong checksum."""
        import shutil

        self._save(rows, tmp_path / "a")
        self._save(rows[: rows.shape[0] // 2], tmp_path / "b")
        target = tmp_path / "a" / "shard-0000"
        shutil.rmtree(target)
        shutil.copytree(tmp_path / "b" / "shard-0000", target)
        with pytest.raises(
            SnapshotError, match="does not belong to this snapshot|says"
        ):
            ShardedBackend.load(tmp_path / "a")

    def test_tampered_shard_column(self, rows, tmp_path):
        self._save(rows, tmp_path / "snap")
        column = next((tmp_path / "snap" / "shard-0000").glob("spo_s.npy"))
        blob = bytearray(column.read_bytes())
        blob[-1] ^= 0xFF
        column.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError):
            ShardedBackend.load(tmp_path / "snap", verify=True)


class TestShardedMatchPool:
    def test_match_patterns_fans_out_byte_identical(self, rows, tmp_path):
        from repro.rdf.parallel import match_patterns, match_serial

        store = TripleStore.from_backend(ColumnarBackend.from_rows(rows))
        snap = tmp_path / "sharded"
        store.save_snapshot(snap, record_source=False, shards=2)
        patterns = [
            pattern(Variable("s"), p, Variable("o"))
            for p in range(1, MAX_PRED + 1)
        ] + [
            pattern(Variable("x"), 1, Variable("x")),
            pattern(int(rows[0, 0]), Variable("p"), Variable("o")),
            pattern(Variable("s"), Variable("p"), int(rows[0, 2])),
            pattern(Variable("s"), Variable("p"), Variable("o")),
        ]
        expected = match_serial(store, patterns)
        got = match_patterns(patterns, snapshot_dir=snap, workers=2)
        assert len(got) == len(expected)
        for a, b in zip(expected, got):
            assert a.dtype == b.dtype
            assert np.array_equal(a, b)
