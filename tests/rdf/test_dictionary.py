"""Unit tests for dictionary encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rdf.dictionary import UNBOUND_ID, GraphDictionary, TermDictionary


class TestTermDictionary:
    def test_ids_start_at_one(self):
        d = TermDictionary()
        assert d.encode("a") == 1
        assert d.encode("b") == 2

    def test_encode_is_idempotent(self):
        d = TermDictionary()
        assert d.encode("a") == d.encode("a")
        assert len(d) == 1

    def test_decode_roundtrip(self):
        d = TermDictionary()
        for term in ("x", "y", "z"):
            assert d.decode(d.encode(term)) == term

    def test_lookup_missing_returns_none(self):
        d = TermDictionary()
        assert d.lookup("ghost") is None

    def test_decode_unbound_id_rejected(self):
        d = TermDictionary()
        d.encode("a")
        with pytest.raises(KeyError):
            d.decode(UNBOUND_ID)

    def test_decode_unknown_id_rejected(self):
        d = TermDictionary()
        with pytest.raises(KeyError):
            d.decode(1)

    def test_contains(self):
        d = TermDictionary()
        d.encode("a")
        assert "a" in d
        assert "b" not in d

    def test_items_in_id_order(self):
        d = TermDictionary()
        d.encode("c")
        d.encode("a")
        assert list(d.items()) == [("c", 1), ("a", 2)]

    @given(st.lists(st.text(min_size=1), min_size=1, unique=True))
    def test_ids_dense_and_bijective(self, terms):
        d = TermDictionary()
        ids = [d.encode(t) for t in terms]
        assert sorted(ids) == list(range(1, len(terms) + 1))
        assert [d.decode(i) for i in ids] == terms


class TestGraphDictionary:
    def test_nodes_and_predicates_separate(self):
        g = GraphDictionary()
        s, p, o = g.encode_triple("alice", "knows", "bob")
        assert (s, p, o) == (1, 1, 2)
        assert g.num_nodes == 2
        assert g.num_predicates == 1

    def test_subject_object_share_id_space(self):
        g = GraphDictionary()
        g.encode_triple("a", "p", "b")
        s2, _, o2 = g.encode_triple("b", "p", "a")
        # "b" as subject reuses its object id and vice versa.
        assert (s2, o2) == (2, 1)

    def test_decode_triple_roundtrip(self):
        g = GraphDictionary()
        encoded = g.encode_triple("a", "p", "b")
        assert g.decode_triple(encoded) == ("a", "p", "b")
