"""Tests for graph statistics (Table I inputs)."""

import numpy as np

from repro.rdf.stats import (
    compute_stats,
    correlation_factor,
    degree_distribution,
    gini,
    predicate_cooccurrence,
    predicate_histogram,
)


class TestGini:
    def test_uniform_is_zero(self):
        assert abs(gini(np.array([5, 5, 5, 5]))) < 1e-9

    def test_concentrated_is_high(self):
        skewed = gini(np.array([100, 1, 1, 1]))
        assert skewed > 0.6

    def test_empty_and_zero(self):
        assert gini(np.array([])) == 0.0
        assert gini(np.array([0, 0])) == 0.0

    def test_monotone_in_skew(self):
        mild = gini(np.array([3, 2, 2, 1]))
        strong = gini(np.array([7, 1, 0, 0]))
        assert strong > mild


class TestComputeStats:
    def test_tiny_store(self, tiny_store):
        stats = compute_stats(tiny_store, "tiny")
        assert stats.num_triples == 8
        assert stats.num_entities == 6
        assert stats.num_predicates == 3
        assert stats.max_out_degree == 3
        assert stats.max_in_degree == 3

    def test_table_row_formatting(self, tiny_store):
        name, triples, entities, preds = compute_stats(
            tiny_store, "tiny"
        ).table_row()
        assert name == "tiny"
        assert triples == "8"
        assert preds == "3"

    def test_si_formatting(self, lubm_store):
        stats = compute_stats(lubm_store, "lubm")
        assert "K" in stats.table_row()[1] or "M" in stats.table_row()[1]


class TestPredicateStats:
    def test_histogram_sums_to_triples(self, tiny_store):
        hist = predicate_histogram(tiny_store)
        assert sum(hist.values()) == len(tiny_store)

    def test_cooccurrence_counts(self, tiny_store):
        cooc = predicate_cooccurrence(tiny_store)
        # Subjects 1 and 2 both emit predicates {1, 2}.
        assert cooc[(1, 2)] == 2

    def test_correlation_factor_positive_correlation(self, tiny_store):
        # p1 and p2 co-occur on 2 of 4 subjects; independent expectation
        # is lower, so the factor exceeds 1.
        assert correlation_factor(tiny_store, 1, 2) > 1.0

    def test_degree_distribution(self, tiny_store):
        dist = dict(degree_distribution(tiny_store))
        assert dist[3] == 1  # subject 1
        assert dist[2] == 2  # subjects 2 and 4
        assert dist[1] == 1  # subject 3


class TestDatasetCharacter:
    """The synthetic datasets must show the paper's statistical traits."""

    def test_lubm_shape(self, lubm_store):
        stats = compute_stats(lubm_store, "lubm")
        assert stats.num_predicates <= 19
        assert stats.num_triples > 2_000
        # triples per entity around 3-4, like real LUBM.
        ratio = stats.num_triples / stats.num_entities
        assert 2.0 < ratio < 6.0

    def test_swdf_many_predicates(self, swdf_store):
        stats = compute_stats(swdf_store, "swdf")
        assert stats.num_predicates > 100

    def test_swdf_skewed_degrees(self, swdf_store):
        # SWDF's skew sits on the *in*-degree side: prolific authors are
        # the objects of many dc:creator triples.
        stats = compute_stats(swdf_store, "swdf")
        assert stats.degree_gini > 0.1
        mean_in = stats.num_triples / stats.num_entities
        assert stats.max_in_degree > 5 * mean_in
