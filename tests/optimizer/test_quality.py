"""Tests for the plan-quality harness."""

import math

import pytest

from repro.baselines import IndependenceEstimator
from repro.baselines.base import CardinalityEstimator
from repro.optimizer import plan_quality
from repro.optimizer.quality import (
    PlanQualityReport,
    QueryPlanOutcome,
    plan_query,
)
from repro.rdf.fastcount import count_query
from repro.rdf.pattern import QueryPattern, star_pattern
from repro.rdf.terms import TriplePattern, Variable


def v(name):
    return Variable(name)


class OracleEstimator(CardinalityEstimator):
    """Answers with the exact count — must plan perfectly."""

    name = "oracle"

    def __init__(self, store):
        self.store = store

    def estimate(self, query):
        return float(count_query(self.store, query))


class AdversarialEstimator(CardinalityEstimator):
    """Returns the negated true count, inverting every comparison."""

    name = "adversarial"

    def __init__(self, store):
        self.store = store

    def estimate(self, query):
        # Clamping in estimator_cost_fn floors this at 0, making all
        # prefixes look free — the optimizer picks arbitrarily.
        return -float(count_query(self.store, query))


def star_queries(store, count=5):
    preds = store.predicates()
    queries = []
    for i in range(count):
        chosen = [preds[(i + j) % len(preds)] for j in range(3)]
        queries.append(
            star_pattern(
                v("x"),
                [(p, v(f"o{j}")) for j, p in enumerate(chosen)],
            )
        )
    return queries


class TestPlanQuery:
    def test_oracle_is_always_optimal(self, lubm_store):
        est = OracleEstimator(lubm_store)
        for q in star_queries(lubm_store, 3):
            outcome = plan_query(lubm_store, est, q)
            assert outcome.is_optimal
            assert outcome.suboptimality == pytest.approx(1.0)

    def test_suboptimality_never_below_one(self, lubm_store):
        est = IndependenceEstimator(lubm_store)
        for q in star_queries(lubm_store, 3):
            outcome = plan_query(lubm_store, est, q)
            assert outcome.suboptimality >= 1.0 - 1e-9


class TestOutcome:
    def test_zero_optimal_zero_chosen_is_perfect(self):
        outcome = QueryPlanOutcome(
            chosen_order=(0, 1),
            optimal_order=(1, 0),
            chosen_true_cost=0.0,
            optimal_true_cost=0.0,
        )
        assert outcome.suboptimality == 1.0
        assert outcome.is_optimal

    def test_zero_optimal_positive_chosen_is_infinite(self):
        outcome = QueryPlanOutcome(
            chosen_order=(0, 1),
            optimal_order=(1, 0),
            chosen_true_cost=3.0,
            optimal_true_cost=0.0,
        )
        assert math.isinf(outcome.suboptimality)
        assert not outcome.is_optimal


class TestReport:
    def test_report_aggregates(self, lubm_store):
        est = OracleEstimator(lubm_store)
        report = plan_quality(lubm_store, est, star_queries(lubm_store, 4))
        assert report.fraction_optimal == 1.0
        assert report.mean_suboptimality == pytest.approx(1.0)
        assert report.max_suboptimality == pytest.approx(1.0)
        assert "oracle" in report.summary_row()

    def test_empty_report_is_vacuously_perfect(self):
        report = PlanQualityReport(estimator_name="none", outcomes=[])
        assert report.fraction_optimal == 1.0

    def test_max_size_filters_large_queries(self, lubm_store):
        est = OracleEstimator(lubm_store)
        queries = star_queries(lubm_store, 2)
        report = plan_quality(lubm_store, est, queries, max_size=2)
        assert len(report.outcomes) == 0

    def test_percentile_monotone(self, lubm_store):
        est = IndependenceEstimator(lubm_store)
        report = plan_quality(lubm_store, est, star_queries(lubm_store, 5))
        assert report.percentile(50) <= report.percentile(95) + 1e-12
