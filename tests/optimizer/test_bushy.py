"""Tests for bushy join trees and the left-deep/bushy comparison."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizer import (
    BushyPlan,
    bushy_best_plan,
    left_deep_best_plan,
    left_deep_vs_bushy,
    true_cost_fn,
)
from repro.rdf import TripleStore
from repro.rdf.pattern import QueryPattern, chain_pattern, star_pattern
from repro.rdf.terms import TriplePattern, Variable


def v(name):
    return Variable(name)


def chain_of(size, preds=None):
    preds = preds or list(range(1, size + 1))
    terms = []
    for i in range(size):
        terms.extend([Variable(f"n{i}"), preds[i]])
    terms.append(Variable(f"n{size}"))
    return chain_pattern(terms)


def random_store(seed, triples=60, nodes=12, preds=4):
    rng = np.random.default_rng(seed)
    store = TripleStore()
    for _ in range(triples):
        store.add(
            int(rng.integers(1, nodes)),
            int(rng.integers(1, preds + 1)),
            int(rng.integers(1, nodes)),
        )
    return store


class TestBushyPlanStructure:
    def test_leaf_properties(self):
        leaf = BushyPlan(cost=0.0, leaf=3)
        assert leaf.is_leaf
        assert leaf.indices() == (3,)
        assert leaf.depth() == 1
        assert leaf.is_left_deep()
        assert leaf.render() == "3"

    def test_join_node_properties(self):
        left = BushyPlan(cost=0.0, leaf=0)
        right = BushyPlan(cost=0.0, leaf=1)
        join = BushyPlan(cost=5.0, left=left, right=right)
        assert not join.is_leaf
        assert join.indices() == (0, 1)
        assert join.depth() == 2
        assert join.is_left_deep()
        assert join.render() == "(0 x 1)"

    def test_bushy_tree_is_not_left_deep(self):
        quad = BushyPlan(
            cost=0.0,
            left=BushyPlan(
                cost=0.0,
                left=BushyPlan(cost=0.0, leaf=0),
                right=BushyPlan(cost=0.0, leaf=1),
            ),
            right=BushyPlan(
                cost=0.0,
                left=BushyPlan(cost=0.0, leaf=2),
                right=BushyPlan(cost=0.0, leaf=3),
            ),
        )
        assert not quad.is_left_deep()
        assert quad.indices() == (0, 1, 2, 3)


class TestOptimality:
    def test_single_pattern(self, tiny_store):
        q = QueryPattern([TriplePattern(v("s"), 1, v("o"))])
        plan = bushy_best_plan(q, true_cost_fn(tiny_store))
        assert plan.is_leaf
        assert plan.cost == 0.0

    def test_two_patterns_any_tree_same_cost(self, tiny_store):
        # With join-output accounting, both 2-pattern plans cost
        # card(full) — the DP must still produce a valid tree.
        q = chain_pattern([v("x"), 1, v("y"), 2, v("z")])
        oracle = true_cost_fn(tiny_store)
        plan = bushy_best_plan(q, oracle)
        assert plan.indices() == (0, 1)
        assert plan.cost == oracle(q)

    def test_plan_covers_all_patterns(self, lubm_store):
        preds = lubm_store.predicates()[:4]
        q = star_pattern(
            v("x"), [(p, v(f"o{i}")) for i, p in enumerate(preds)]
        )
        plan = bushy_best_plan(q, true_cost_fn(lubm_store))
        assert plan.indices() == (0, 1, 2, 3)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_bushy_never_worse_than_left_deep(self, seed):
        store = random_store(seed)
        q = chain_of(4, preds=[1, 2, 3, 4])
        oracle = true_cost_fn(store)
        left_deep, bushy = left_deep_vs_bushy(q, oracle)
        assert bushy <= left_deep + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_left_deep_restriction_really_restricts(self, seed):
        store = random_store(seed)
        q = chain_of(4, preds=[1, 2, 3, 4])
        plan = left_deep_best_plan(q, true_cost_fn(store))
        assert plan.is_left_deep()

    def test_bushy_wins_on_a_crafted_chain(self):
        """Two selective ends, one huge middle join: bushy joins the
        halves first; left-deep must drag a big intermediate along."""
        store = TripleStore()
        # Segment 1 (p1): 2 edges into a hub layer.
        for i in range(2):
            store.add(100 + i, 1, 200)
        # Segment 2 (p2): hub 200 fans out to 30 nodes.
        for i in range(30):
            store.add(200, 2, 300 + i)
        # Segment 3 (p3): every 300-node reaches hub 400.
        for i in range(30):
            store.add(300 + i, 3, 400)
        # Segment 4 (p4): 400 reaches 2 sinks.
        for i in range(2):
            store.add(400, 4, 500 + i)
        q = chain_of(4)
        oracle = true_cost_fn(store)
        left_deep, bushy = left_deep_vs_bushy(q, oracle)
        assert bushy <= left_deep

    def test_disconnected_query_still_plans(self, tiny_store):
        q = QueryPattern(
            [
                TriplePattern(v("a"), 1, v("b")),
                TriplePattern(v("c"), 3, v("d")),
            ]
        )
        plan = bushy_best_plan(q, true_cost_fn(tiny_store))
        assert plan.indices() == (0, 1)


class TestAccountingConsistency:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_left_deep_tree_cost_is_sum_of_join_outputs(self, seed):
        store = random_store(seed)
        q = chain_of(3, preds=[1, 2, 3])
        oracle = true_cost_fn(store)
        plan = left_deep_best_plan(q, oracle)

        def join_outputs(node):
            if node.is_leaf:
                return 0.0
            indices = node.indices()
            sub = QueryPattern([q.triples[i] for i in indices])
            return (
                oracle(sub)
                + join_outputs(node.left)
                + join_outputs(node.right)
            )

        assert plan.cost == pytest.approx(join_outputs(plan))


class TestBushyExecution:
    """The hash-join executor measures what the bushy C_out predicts."""

    def test_result_matches_exact_count(self, tiny_store):
        from repro.optimizer import bushy_best_plan, execute_plan
        from repro.rdf import count_bgp

        q = chain_pattern([v("x"), 1, v("y"), 2, v("z")])
        plan = bushy_best_plan(q, true_cost_fn(tiny_store))
        execution = execute_plan(tiny_store, q, plan)
        assert execution.result_size == count_bgp(tiny_store, q)

    def test_measured_cout_equals_plan_cost(self, tiny_store):
        from repro.optimizer import bushy_best_plan, execute_plan

        q = chain_pattern([v("x"), 1, v("y"), 2, v("z"), 3, v("w")])
        oracle = true_cost_fn(tiny_store)
        plan = bushy_best_plan(q, oracle)
        execution = execute_plan(tiny_store, q, plan)
        assert execution.cout == pytest.approx(plan.cost)
        assert execution.rendered == plan.render()

    def test_rejects_partial_plan(self, tiny_store):
        from repro.optimizer import BushyPlan, execute_plan

        q = chain_pattern([v("x"), 1, v("y"), 2, v("z")])
        with pytest.raises(ValueError, match="cover exactly"):
            execute_plan(
                tiny_store, q, BushyPlan(cost=0.0, leaf=0)
            )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_execution_agrees_with_matcher_property(self, seed):
        from repro.optimizer import bushy_best_plan, execute_plan
        from repro.rdf import count_bgp

        store = random_store(seed)
        q = chain_of(4, preds=[1, 2, 3, 4])
        oracle = true_cost_fn(store)
        plan = bushy_best_plan(q, oracle)
        execution = execute_plan(store, q, plan)
        assert execution.result_size == count_bgp(store, q)
        assert execution.cout == pytest.approx(plan.cost)

    def test_disconnected_cross_product(self, tiny_store):
        from repro.optimizer import bushy_best_plan, execute_plan
        from repro.rdf import count_bgp

        q = QueryPattern(
            [
                TriplePattern(v("a"), 1, v("b")),
                TriplePattern(v("c"), 3, v("d")),
            ]
        )
        plan = bushy_best_plan(q, true_cost_fn(tiny_store))
        execution = execute_plan(tiny_store, q, plan)
        assert execution.result_size == count_bgp(tiny_store, q)

    def test_repeated_variable_across_subtrees(self, tiny_store):
        from repro.optimizer import BushyPlan, execute_plan
        from repro.rdf import count_bgp

        # Star: both arms share ?x; join on it.
        q = star_pattern(v("x"), [(1, v("a")), (2, 4)])
        plan = BushyPlan(
            cost=0.0,
            left=BushyPlan(cost=0.0, leaf=0),
            right=BushyPlan(cost=0.0, leaf=1),
        )
        execution = execute_plan(tiny_store, q, plan)
        assert execution.result_size == count_bgp(tiny_store, q)
