"""Tests for join-order plan structures and connectivity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizer import (
    connected_orders,
    is_connected_order,
    prefix_patterns,
)
from repro.optimizer.plans import JoinPlan, pattern_variables
from repro.rdf.pattern import QueryPattern, chain_pattern, star_pattern
from repro.rdf.terms import TriplePattern, Variable


def v(name):
    return Variable(name)


class TestConnectivity:
    def test_chain_in_order_is_connected(self):
        q = chain_pattern([v("a"), 1, v("b"), 2, v("c")])
        assert is_connected_order(q, (0, 1))
        assert is_connected_order(q, (1, 0))

    def test_disjoint_patterns_are_disconnected(self):
        q = QueryPattern(
            [
                TriplePattern(v("a"), 1, v("b")),
                TriplePattern(v("c"), 2, v("d")),
            ]
        )
        assert not is_connected_order(q, (0, 1))

    def test_fully_bound_pattern_never_breaks_connectivity(self):
        q = QueryPattern(
            [
                TriplePattern(v("a"), 1, v("b")),
                TriplePattern(1, 2, 3),
            ]
        )
        assert is_connected_order(q, (0, 1))
        assert is_connected_order(q, (1, 0))

    def test_three_step_chain_requires_adjacency(self):
        # Joining the two chain ends first is a cross product.
        q = chain_pattern([v("a"), 1, v("b"), 2, v("c"), 3, v("d")])
        assert not is_connected_order(q, (0, 2, 1))
        assert is_connected_order(q, (0, 1, 2))
        assert is_connected_order(q, (1, 0, 2))
        assert is_connected_order(q, (2, 1, 0))


class TestConnectedOrders:
    def test_star_all_orders_connected(self):
        q = star_pattern(v("x"), [(1, v("a")), (2, v("b")), (3, v("c"))])
        assert len(list(connected_orders(q))) == 6

    def test_chain_filters_cross_products(self):
        q = chain_pattern([v("a"), 1, v("b"), 2, v("c"), 3, v("d")])
        orders = list(connected_orders(q))
        assert all(is_connected_order(q, o) for o in orders)
        # 3-pattern chain: orders starting at an end or the middle —
        # (0,1,2),(1,0,2),(1,2,0),(2,1,0) are the connected ones.
        assert sorted(orders) == [
            (0, 1, 2),
            (1, 0, 2),
            (1, 2, 0),
            (2, 1, 0),
        ]

    def test_disconnected_query_falls_back_to_all_orders(self):
        q = QueryPattern(
            [
                TriplePattern(v("a"), 1, v("b")),
                TriplePattern(v("c"), 2, v("d")),
            ]
        )
        assert sorted(connected_orders(q)) == [(0, 1), (1, 0)]


class TestPrefixPatterns:
    def test_prefixes_grow_one_pattern_at_a_time(self):
        q = star_pattern(v("x"), [(1, v("a")), (2, v("b")), (3, v("c"))])
        prefixes = prefix_patterns(q, (2, 0, 1))
        assert [len(p.triples) for p in prefixes] == [1, 2, 3]
        assert prefixes[0].triples[0] is q.triples[2]
        assert prefixes[-1].size == q.size

    def test_prefix_respects_order(self):
        q = chain_pattern([v("a"), 1, v("b"), 2, v("c")])
        prefixes = prefix_patterns(q, (1, 0))
        assert prefixes[0].triples == (q.triples[1],)
        assert prefixes[1].triples == (q.triples[1], q.triples[0])


class TestJoinPlan:
    def test_len_is_order_length(self):
        plan = JoinPlan(order=(2, 0, 1), cost=5.0)
        assert len(plan) == 3

    def test_pattern_variables_indexes_by_pattern(self):
        q = chain_pattern([v("a"), 1, v("b"), 2, v("c")])
        variables = pattern_variables(q)
        assert variables[0] == {v("a"), v("b")}
        assert variables[1] == {v("b"), v("c")}


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=2, max_value=5), st.randoms())
def test_connected_orders_are_valid_permutations(size, rand):
    terms = []
    for i in range(size):
        terms.extend([Variable(f"n{i}"), i + 1])
    terms.append(Variable(f"n{size}"))
    q = chain_pattern(terms)
    for order in connected_orders(q):
        assert sorted(order) == list(range(size))
        assert is_connected_order(q, order)
