"""Tests for cost model and join-order enumeration strategies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import IndependenceEstimator
from repro.optimizer import (
    Optimizer,
    cout_cost,
    dp_best_order,
    estimator_cost_fn,
    exhaustive_best_order,
    greedy_order,
    true_cost_fn,
)
from repro.rdf import count_bgp
from repro.rdf.pattern import QueryPattern, chain_pattern, star_pattern
from repro.rdf.terms import TriplePattern, Variable


def v(name):
    return Variable(name)


def star3(centre="x"):
    return star_pattern(
        v(centre), [(1, v("a")), (2, v("b")), (3, v("c"))]
    )


class TestCoutCost:
    def test_single_pattern_costs_zero(self, tiny_store):
        q = QueryPattern([TriplePattern(v("s"), 1, v("o"))])
        assert cout_cost(q, (0,), true_cost_fn(tiny_store)) == 0.0

    def test_cost_sums_proper_prefixes(self, tiny_store):
        # (?x p1 ?y), (?y p2 4): prefix (?x p1 ?y) has 3 matches.
        q = chain_pattern([v("x"), 1, v("y"), 2, 4])
        cost = cout_cost(q, (0, 1), true_cost_fn(tiny_store))
        assert cost == 3.0
        # The other direction: (?y p2 4) alone has 3 matches.
        cost_rev = cout_cost(q, (1, 0), true_cost_fn(tiny_store))
        assert cost_rev == 3.0

    def test_estimator_cost_clamps_negative(self, tiny_store):
        class Negative:
            name = "neg"

            def estimate(self, query):
                return -5.0

        from repro.baselines.base import CardinalityEstimator

        est = Negative()
        fn = estimator_cost_fn.__wrapped__ if hasattr(
            estimator_cost_fn, "__wrapped__"
        ) else estimator_cost_fn
        # estimator_cost_fn only needs .estimate
        model = fn(est)
        q = QueryPattern([TriplePattern(v("s"), 1, v("o"))])
        assert model(q) == 0.0


class TestOptimalEnumeration:
    def test_dp_matches_exhaustive_on_oracle(self, lubm_store):
        oracle = true_cost_fn(lubm_store)
        preds = lubm_store.predicates()[:3]
        q = star_pattern(
            v("x"), [(p, v(f"o{i}")) for i, p in enumerate(preds)]
        )
        dp = dp_best_order(q, oracle)
        ex = exhaustive_best_order(q, oracle)
        assert dp.cost == pytest.approx(ex.cost)

    def test_dp_single_pattern(self, tiny_store):
        q = QueryPattern([TriplePattern(v("s"), 1, v("o"))])
        plan = dp_best_order(q, true_cost_fn(tiny_store))
        assert plan.order == (0,)
        assert plan.cost == 0.0

    def test_dp_picks_selective_side_first(self, tiny_store):
        # (?x p1 ?y) has 3 matches; (?y p3 ?z) has 2. Starting from the
        # cheaper pattern is optimal for this chain.
        q = chain_pattern([v("x"), 1, v("y"), 3, v("z")])
        plan = dp_best_order(q, true_cost_fn(tiny_store))
        assert plan.order == (1, 0)
        assert plan.cost == 2.0

    def test_exhaustive_reports_true_minimum(self, tiny_store):
        q = chain_pattern([v("x"), 1, v("y"), 2, v("z")])
        oracle = true_cost_fn(tiny_store)
        plan = exhaustive_best_order(q, oracle)
        assert plan.cost == min(
            cout_cost(q, (0, 1), oracle), cout_cost(q, (1, 0), oracle)
        )

    def test_disconnected_query_still_plans(self, tiny_store):
        q = QueryPattern(
            [
                TriplePattern(v("a"), 1, v("b")),
                TriplePattern(v("c"), 3, v("d")),
            ]
        )
        plan = dp_best_order(q, true_cost_fn(tiny_store))
        assert sorted(plan.order) == [0, 1]
        # Cross product is forced; the cheaper side leads.
        assert plan.cost == 2.0  # (?c p3 ?d) has 2 matches


class TestGreedy:
    def test_greedy_returns_connected_permutation(self, lubm_store):
        preds = lubm_store.predicates()[:4]
        q = star_pattern(
            v("x"), [(p, v(f"o{i}")) for i, p in enumerate(preds)]
        )
        plan = greedy_order(q, true_cost_fn(lubm_store))
        assert sorted(plan.order) == list(range(4))

    def test_greedy_never_beats_dp(self, lubm_store):
        oracle = true_cost_fn(lubm_store)
        preds = lubm_store.predicates()[:3]
        q = star_pattern(
            v("x"), [(p, v(f"o{i}")) for i, p in enumerate(preds)]
        )
        greedy = greedy_order(q, oracle)
        dp = dp_best_order(q, oracle)
        assert cout_cost(q, greedy.order, oracle) >= dp.cost


class TestOptimizerFacade:
    def test_accepts_estimator(self, lubm_store):
        est = IndependenceEstimator(lubm_store)
        opt = Optimizer(est)
        preds = lubm_store.predicates()[:2]
        q = star_pattern(
            v("x"), [(p, v(f"o{i}")) for i, p in enumerate(preds)]
        )
        plan = opt.optimize(q)
        assert sorted(plan.order) == [0, 1]

    def test_accepts_bare_cost_model(self, tiny_store):
        opt = Optimizer(true_cost_fn(tiny_store), strategy="exhaustive")
        q = chain_pattern([v("x"), 1, v("y"), 3, v("z")])
        assert opt.optimize(q).order == (1, 0)

    def test_rejects_unknown_strategy(self, tiny_store):
        with pytest.raises(ValueError, match="unknown strategy"):
            Optimizer(true_cost_fn(tiny_store), strategy="quantum")


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_dp_equals_exhaustive_property(seed):
    """DP and exhaustive search agree on random small graphs."""
    import numpy as np

    from repro.rdf import TripleStore

    rng = np.random.default_rng(seed)
    store = TripleStore()
    for _ in range(40):
        store.add(
            int(rng.integers(1, 8)),
            int(rng.integers(1, 4)),
            int(rng.integers(1, 8)),
        )
    q = chain_pattern([v("x"), 1, v("y"), 2, v("z"), 3, v("w")])
    oracle = true_cost_fn(store)
    assert dp_best_order(q, oracle).cost == pytest.approx(
        exhaustive_best_order(q, oracle).cost
    )
