"""Tests for the pipelined plan executor."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizer import execute_order, prefix_patterns
from repro.rdf import count_bgp
from repro.rdf.pattern import QueryPattern, chain_pattern, star_pattern
from repro.rdf.terms import TriplePattern, Variable


def v(name):
    return Variable(name)


class TestExecuteOrder:
    def test_result_size_matches_exact_count(self, tiny_store):
        q = star_pattern(v("x"), [(1, v("y")), (2, 4)])
        execution = execute_order(tiny_store, q, (0, 1))
        assert execution.result_size == count_bgp(tiny_store, q)

    def test_intermediates_equal_prefix_cardinalities(self, tiny_store):
        q = chain_pattern([v("x"), 1, v("y"), 2, v("z")])
        for order in ((0, 1), (1, 0)):
            execution = execute_order(tiny_store, q, order)
            prefixes = prefix_patterns(q, order)[:-1]
            expected = tuple(
                count_bgp(tiny_store, p) for p in prefixes
            )
            assert execution.intermediate_sizes == expected
            assert execution.cout == sum(expected)

    def test_empty_prefix_short_circuits(self, tiny_store):
        # First pattern matches nothing: zero work afterwards.
        q = QueryPattern(
            [
                TriplePattern(99, 1, v("y")),
                TriplePattern(v("y"), 2, v("z")),
            ]
        )
        execution = execute_order(tiny_store, q, (0, 1))
        assert execution.intermediate_sizes == (0,)
        assert execution.result_size == 0
        assert execution.probes == 1

    def test_probe_count_reflects_pipeline_fanout(self, tiny_store):
        # Level 1: 1 probe producing k bindings; level 2: k probes.
        q = chain_pattern([v("x"), 1, v("y"), 2, v("z")])
        execution = execute_order(tiny_store, q, (0, 1))
        assert execution.probes == 1 + execution.intermediate_sizes[0]

    def test_rejects_non_permutation(self, tiny_store):
        q = chain_pattern([v("x"), 1, v("y"), 2, v("z")])
        with pytest.raises(ValueError, match="not a permutation"):
            execute_order(tiny_store, q, (0, 0))
        with pytest.raises(ValueError, match="not a permutation"):
            execute_order(tiny_store, q, (0,))

    def test_order_independence_of_result(self, lubm_store):
        preds = lubm_store.predicates()[:3]
        q = star_pattern(
            v("x"), [(p, v(f"o{i}")) for i, p in enumerate(preds)]
        )
        sizes = {
            execute_order(lubm_store, q, order).result_size
            for order in ((0, 1, 2), (2, 1, 0), (1, 0, 2))
        }
        assert len(sizes) == 1

    def test_repeated_variable_filtering(self, tiny_store):
        # ?x p1 ?x never matches in the tiny graph (no self loops).
        q = QueryPattern(
            [
                TriplePattern(v("x"), 1, v("y")),
                TriplePattern(v("y"), 1, v("y")),
            ]
        )
        execution = execute_order(tiny_store, q, (0, 1))
        assert execution.result_size == 0


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_executor_agrees_with_matcher_property(seed):
    """On random graphs, executed result sizes equal exact counts."""
    import numpy as np

    from repro.rdf import TripleStore

    rng = np.random.default_rng(seed)
    store = TripleStore()
    for _ in range(60):
        store.add(
            int(rng.integers(1, 10)),
            int(rng.integers(1, 4)),
            int(rng.integers(1, 10)),
        )
    q = chain_pattern([v("x"), 1, v("y"), 2, v("z")])
    for order in ((0, 1), (1, 0)):
        execution = execute_order(store, q, order)
        assert execution.result_size == count_bgp(store, q)
