"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.dataset == "lubm"
        assert args.scale == 1.0

    def test_train_shapes(self):
        args = build_parser().parse_args(
            ["train", "--shapes", "star:2", "chain:3", "--out", "/tmp/x"]
        )
        assert args.shapes == ["star:2", "chain:3"]

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_shape_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "train",
                    "--scale",
                    "0.25",
                    "--shapes",
                    "star-two",
                    "--out",
                    str(tmp_path / "x.npz"),
                ]
            )


class TestCommands:
    def test_stats_runs(self, capsys):
        assert main(["stats", "--dataset", "lubm", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "triples:" in out
        assert "predicates:" in out

    def test_workload_tsv(self, capsys):
        code = main(
            [
                "workload",
                "--dataset",
                "lubm",
                "--scale",
                "0.25",
                "--topology",
                "chain",
                "--size",
                "2",
                "--count",
                "5",
            ]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("topology")
        assert len(lines) == 6
        assert all("chain\t2\t" in line for line in lines[1:])

    def test_train_then_estimate(self, tmp_path, capsys):
        checkpoint = tmp_path / "model.npz"
        code = main(
            [
                "train",
                "--dataset",
                "lubm",
                "--scale",
                "0.25",
                "--shapes",
                "star:2",
                "--epochs",
                "3",
                "--queries",
                "80",
                "--hidden",
                "16",
                "--out",
                str(checkpoint),
            ]
        )
        assert code == 0
        assert checkpoint.exists()
        capsys.readouterr()
        code = main(
            [
                "estimate",
                "--dataset",
                "lubm",
                "--scale",
                "0.25",
                "--checkpoint",
                str(checkpoint),
                "--query",
                "SELECT ?x WHERE { ?x <ub:advisor> ?y . "
                "?x <ub:takesCourse> ?z . }",
                "--exact",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "estimate:" in out
        assert "q-error:" in out

    def test_train_lmkg_u_single_shape_only(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "train",
                    "--scale",
                    "0.25",
                    "--model",
                    "lmkg-u",
                    "--shapes",
                    "star:2",
                    "chain:2",
                    "--out",
                    str(tmp_path / "u.npz"),
                ]
            )

    def test_ntriples_input(self, tmp_path, capsys):
        nt = tmp_path / "g.nt"
        nt.write_text(
            "<a> <p> <b> .\n<b> <p> <c> .\n<a> <q> <c> .\n"
        )
        code = main(["stats", "--ntriples", str(nt)])
        assert code == 0
        assert "triples:         3" in capsys.readouterr().out


class TestPlanCommand:
    QUERY = (
        "SELECT ?x WHERE { ?x <ub:advisor> ?y . "
        "?x <ub:takesCourse> ?z . }"
    )

    def test_plan_with_each_estimator(self, capsys):
        from repro.cli import main

        for estimator in ("exact", "indep", "bayesnet"):
            code = main(
                [
                    "plan",
                    "--dataset",
                    "lubm",
                    "--scale",
                    "0.25",
                    "--query",
                    self.QUERY,
                    "--estimator",
                    estimator,
                ]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert "chosen order:" in out
            assert "optimal order:" in out

    def test_plan_execute_reports_intermediates(self, capsys):
        from repro.cli import main

        code = main(
            [
                "plan",
                "--dataset",
                "lubm",
                "--scale",
                "0.25",
                "--query",
                self.QUERY,
                "--estimator",
                "exact",
                "--execute",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "executed:" in out
        assert "index probes" in out

    def test_plan_rejects_single_pattern(self):
        import pytest

        from repro.cli import main

        with pytest.raises(SystemExit, match="two triple patterns"):
            main(
                [
                    "plan",
                    "--dataset",
                    "lubm",
                    "--scale",
                    "0.25",
                    "--query",
                    "SELECT ?x WHERE { ?x <ub:advisor> ?y . }",
                ]
            )


class TestRangeModelCommands:
    def test_train_then_estimate_range_model(self, tmp_path, capsys):
        from repro.cli import main

        checkpoint = tmp_path / "range.npz"
        code = main(
            [
                "train",
                "--dataset",
                "lubm",
                "--scale",
                "0.25",
                "--model",
                "lmkg-s-range",
                "--shapes",
                "star:2",
                "--epochs",
                "3",
                "--queries",
                "60",
                "--hidden",
                "16",
                "--out",
                str(checkpoint),
            ]
        )
        assert code == 0
        assert checkpoint.exists()
        capsys.readouterr()
        code = main(
            [
                "estimate",
                "--dataset",
                "lubm",
                "--scale",
                "0.25",
                "--model",
                "lmkg-s-range",
                "--checkpoint",
                str(checkpoint),
                "--query",
                "SELECT ?x WHERE { ?x <ub:advisor> ?y . "
                "?x <ub:takesCourse> ?z . FILTER(?y >= 1 && ?y <= 500) }",
                "--exact",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "estimate:" in out
        assert "q-error:" in out


class TestSnapshotCommands:
    def save(self, tmp_path, capsys):
        directory = tmp_path / "snap"
        code = main(
            [
                "snapshot",
                "save",
                "--dataset",
                "lubm",
                "--scale",
                "0.25",
                "--out",
                str(directory),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "snapshotted to" in out
        return directory

    def test_save_then_load(self, tmp_path, capsys):
        directory = self.save(tmp_path, capsys)
        assert (directory / "manifest.json").is_file()
        code = main(["snapshot", "load", "--dir", str(directory)])
        assert code == 0
        out = capsys.readouterr().out
        assert "memory-mapped" in out
        assert "triples:" in out
        assert "dictionary:  yes" in out

    def test_load_eager(self, tmp_path, capsys):
        directory = self.save(tmp_path, capsys)
        code = main(
            ["snapshot", "load", "--dir", str(directory), "--eager"]
        )
        assert code == 0
        assert "(eager)" in capsys.readouterr().out

    def test_load_missing_dir_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="snapshot load failed"):
            main(["snapshot", "load", "--dir", str(tmp_path / "nope")])

    def test_load_corrupted_fails_cleanly(self, tmp_path, capsys):
        directory = self.save(tmp_path, capsys)
        (directory / "spo_s.npy").write_bytes(b"garbage")
        with pytest.raises(SystemExit, match="snapshot load failed"):
            main(["snapshot", "load", "--dir", str(directory)])

    def test_snapshot_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["snapshot"])

    def test_saved_snapshot_reusable_from_api(self, tmp_path, capsys):
        from repro.datasets import load_dataset
        from repro.rdf import TripleStore

        directory = self.save(tmp_path, capsys)
        loaded = TripleStore.load_snapshot(directory)
        direct = load_dataset("lubm", scale=0.25)
        assert len(loaded) == len(direct)
        assert set(loaded) == set(direct)


class TestSnapshotInfo:
    def save(self, tmp_path, capsys):
        directory = tmp_path / "snap"
        assert (
            main(
                [
                    "snapshot",
                    "save",
                    "--dataset",
                    "lubm",
                    "--scale",
                    "0.25",
                    "--out",
                    str(directory),
                ]
            )
            == 0
        )
        capsys.readouterr()
        return directory

    def test_flat_layout_human_output(self, tmp_path, capsys):
        directory = self.save(tmp_path, capsys)
        assert main(["snapshot", "info", "--dir", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "(flat)" in out
        assert "repro-columnar" in out
        assert "dictionary:  yes" in out
        assert "crc32:" in out

    def test_flat_layout_json(self, tmp_path, capsys):
        import json

        from repro.rdf import TripleStore

        directory = self.save(tmp_path, capsys)
        assert (
            main(["snapshot", "info", "--dir", str(directory), "--json"])
            == 0
        )
        info = json.loads(capsys.readouterr().out)
        assert info["layout"] == "flat"
        assert info["format"] == "repro-columnar"
        assert info["has_dictionary"] is True
        assert info["crc32"]
        store = TripleStore.load_snapshot(directory)
        assert info["num_triples"] == len(store)
        assert (
            info["dictionary_checksum"]
            == store.dictionary.checksum()
        )

    def test_sharded_layout_lists_per_shard_rows(
        self, tmp_path, capsys
    ):
        import json

        from repro.datasets import load_dataset

        store = load_dataset("lubm", scale=0.25)
        directory = tmp_path / "sharded"
        store.save_snapshot(directory, shards=2)
        assert (
            main(["snapshot", "info", "--dir", str(directory), "--json"])
            == 0
        )
        info = json.loads(capsys.readouterr().out)
        assert info["layout"] == "sharded"
        assert info["num_shards"] == 2
        assert len(info["shards"]) == 2
        assert (
            sum(entry["num_triples"] for entry in info["shards"])
            == len(store)
        )
        for entry in info["shards"]:
            assert entry["crc32"]
        capsys.readouterr()
        assert main(["snapshot", "info", "--dir", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "(sharded)" in out
        assert "shard 0:" in out and "shard 1:" in out

    def test_missing_dir_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="snapshot inspection"):
            main(["snapshot", "info", "--dir", str(tmp_path / "nope")])


class TestMaintainCommands:
    def materialize(self, tmp_path, capsys):
        """One full maintain run against a saved snapshot."""
        snapshot = tmp_path / "snap"
        assert (
            main(
                [
                    "snapshot",
                    "save",
                    "--dataset",
                    "lubm",
                    "--scale",
                    "0.25",
                    "--out",
                    str(snapshot),
                ]
            )
            == 0
        )
        capsys.readouterr()
        state = tmp_path / "state"
        base = [
            "maintain",
            "run",
            "--snapshot",
            str(snapshot),
            "--state-dir",
            str(state),
            "--shapes",
            "star:2",
            "--queries",
            "25",
            "--epochs",
            "2",
            "--hidden",
            "16",
        ]
        return snapshot, state, base

    def test_run_full_then_noop_then_status(self, tmp_path, capsys):
        import json

        snapshot, state, base = self.materialize(tmp_path, capsys)
        assert main(base + ["--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["action"] == "full"
        assert report["run"] == 1
        assert (state / "watermark.json").is_file()
        assert (
            state / "checkpoints" / "gen-0001" / "watermark.json"
        ).is_file()
        # Second run: the snapshot has not moved, nothing to do.
        assert main(base) == 0
        out = capsys.readouterr().out
        assert "action:      noop" in out
        assert "generation:  1" in out
        # Status agrees, with a passing freshness verdict.
        status_args = [
            "maintain",
            "status",
            "--snapshot",
            str(snapshot),
            "--state-dir",
            str(state),
            "--shapes",
            "star:2",
        ]
        assert main(status_args + ["--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["watermark"]["run"] == 1
        assert status["freshness"]["status"] == "pass"
        assert status["plan"]["full"] is False
        assert main(status_args) == 0
        out = capsys.readouterr().out
        assert "watermark:   generation 1" in out
        assert "freshness:   pass" in out
        assert "next run:    noop" in out

    def test_status_before_first_run(self, tmp_path, capsys):
        snapshot, state, _ = self.materialize(tmp_path, capsys)
        assert (
            main(
                [
                    "maintain",
                    "status",
                    "--snapshot",
                    str(snapshot),
                    "--state-dir",
                    str(tmp_path / "virgin"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "watermark:   none" in out
        assert "next run:    full rebuild" in out

    def test_dry_run_publishes_nothing(self, tmp_path, capsys):
        import json

        _, state, base = self.materialize(tmp_path, capsys)
        assert main(base + ["--dry-run", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["action"] == "dry-run"
        assert report["run"] == 0
        assert not (state / "watermark.json").exists()

    def test_requires_dictionary_encoded_store(
        self, tmp_path, capsys
    ):
        from repro.rdf import TripleStore

        bare = TripleStore()
        bare.add_all([(1, 1, 2), (2, 1, 3), (1, 2, 3)])
        snapshot = tmp_path / "bare"
        bare.save_snapshot(snapshot)
        with pytest.raises(SystemExit, match="dictionary"):
            main(
                [
                    "maintain",
                    "run",
                    "--snapshot",
                    str(snapshot),
                    "--state-dir",
                    str(tmp_path / "state"),
                ]
            )

    def test_bad_snapshot_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="snapshot load failed"):
            main(
                [
                    "maintain",
                    "run",
                    "--snapshot",
                    str(tmp_path / "nope"),
                    "--state-dir",
                    str(tmp_path / "state"),
                ]
            )


class TestLabelCommand:
    def test_label_serial(self, capsys):
        code = main(
            [
                "label",
                "--dataset",
                "lubm",
                "--scale",
                "0.25",
                "--topology",
                "star",
                "--size",
                "2",
                "--count",
                "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "labelled 20 star:2 queries" in out
        assert "serial" in out

    def test_label_workers_against_snapshot(self, tmp_path, capsys):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs the fork start method")
        directory = tmp_path / "snap"
        code = main(
            [
                "snapshot",
                "save",
                "--dataset",
                "lubm",
                "--scale",
                "0.25",
                "--out",
                str(directory),
            ]
        )
        assert code == 0
        capsys.readouterr()
        out_path = tmp_path / "train.tsv"
        code = main(
            [
                "label",
                "--snapshot",
                str(directory),
                "--topology",
                "chain",
                "--size",
                "2",
                "--count",
                "25",
                "--workers",
                "2",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 workers, shared snapshot" in out
        assert "written to" in out
        from repro.sampling.io import load_workload

        records = load_workload(out_path)
        assert len(records) == 25

    def test_label_workers_match_serial_output(self, tmp_path, capsys):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs the fork start method")
        serial_path = tmp_path / "serial.tsv"
        pooled_path = tmp_path / "pooled.tsv"
        base = [
            "label",
            "--dataset",
            "lubm",
            "--scale",
            "0.25",
            "--count",
            "15",
            "--seed",
            "3",
        ]
        assert main(base + ["--out", str(serial_path)]) == 0
        assert (
            main(base + ["--workers", "2", "--out", str(pooled_path)])
            == 0
        )
        capsys.readouterr()
        assert serial_path.read_text() == pooled_path.read_text()

    def test_label_negative_workers_rejected(self):
        with pytest.raises(SystemExit, match="--workers must be >= 0"):
            main(
                [
                    "label",
                    "--dataset",
                    "lubm",
                    "--scale",
                    "0.25",
                    "--count",
                    "5",
                    "--workers",
                    "-3",
                ]
            )

    def test_label_bad_snapshot_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="snapshot load failed"):
            main(
                [
                    "label",
                    "--snapshot",
                    str(tmp_path / "nope"),
                    "--count",
                    "5",
                ]
            )


class TestWorkloadOut:
    def test_workload_out_round_trips(self, tmp_path, capsys):
        from repro.cli import main
        from repro.sampling.io import load_workload

        path = tmp_path / "wl.tsv"
        code = main(
            [
                "workload",
                "--dataset",
                "lubm",
                "--scale",
                "0.25",
                "--topology",
                "star",
                "--size",
                "2",
                "--count",
                "10",
                "--out",
                str(path),
            ]
        )
        assert code == 0
        assert "written to" in capsys.readouterr().out
        assert len(load_workload(path)) > 0
