"""Tests for range-query support (§IV future work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lmkg_s import LMKGSConfig
from repro.core.ranges import (
    EquiDepthHistogram,
    HistogramRangeEstimator,
    LMKGSRange,
    PredicateHistograms,
    RangeConstraint,
    RangeQuery,
    count_range_query,
    generate_range_workload,
)
from repro.rdf import count_bgp
from repro.rdf.pattern import QueryPattern, chain_pattern, star_pattern
from repro.rdf.terms import TriplePattern, Variable


def v(name):
    return Variable(name)


class TestRangeConstraint:
    def test_contains_inclusive(self):
        c = RangeConstraint(0, 5, 10)
        assert c.contains(5)
        assert c.contains(10)
        assert not c.contains(4)
        assert not c.contains(11)

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError, match="empty range"):
            RangeConstraint(0, 10, 5)

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            RangeConstraint(-1, 0, 5)


class TestRangeQuery:
    def test_rejects_out_of_bounds_constraint(self):
        base = QueryPattern([TriplePattern(v("s"), 1, v("o"))])
        with pytest.raises(ValueError, match="has 1 triples"):
            RangeQuery(base, (RangeConstraint(1, 0, 5),))

    def test_rejects_duplicate_constraints(self):
        base = QueryPattern([TriplePattern(v("s"), 1, v("o"))])
        with pytest.raises(ValueError, match="one range constraint"):
            RangeQuery(
                base,
                (RangeConstraint(0, 0, 5), RangeConstraint(0, 2, 3)),
            )

    def test_constraint_lookup(self):
        base = QueryPattern([TriplePattern(v("s"), 1, v("o"))])
        constraint = RangeConstraint(0, 0, 5)
        query = RangeQuery(base, (constraint,))
        assert query.constraint_for(0) is constraint
        assert query.constraint_for(1) is None


class TestCountRangeQuery:
    def test_unconstrained_equals_bgp_count(self, tiny_store):
        base = star_pattern(v("x"), [(1, v("a")), (2, v("b"))])
        assert count_range_query(
            tiny_store, RangeQuery(base)
        ) == count_bgp(tiny_store, base)

    def test_range_filters_objects(self, tiny_store):
        # (?x p1 ?o): objects are 2, 3, 3 — range [3, 3] keeps two.
        base = QueryPattern([TriplePattern(v("x"), 1, v("o"))])
        query = RangeQuery(base, (RangeConstraint(0, 3, 3),))
        assert count_range_query(tiny_store, query) == 2

    def test_full_range_keeps_everything(self, tiny_store):
        base = QueryPattern([TriplePattern(v("x"), 1, v("o"))])
        query = RangeQuery(base, (RangeConstraint(0, 0, 10**6),))
        assert count_range_query(tiny_store, query) == count_bgp(
            tiny_store, base
        )

    def test_empty_intersection(self, tiny_store):
        base = QueryPattern([TriplePattern(v("x"), 1, v("o"))])
        query = RangeQuery(base, (RangeConstraint(0, 100, 200),))
        assert count_range_query(tiny_store, query) == 0

    def test_multi_constraint_chain(self, tiny_store):
        # Chain x-p1->y-p2->z: constrain both join node and end node.
        base = chain_pattern([v("x"), 1, v("y"), 2, v("z")])
        query = RangeQuery(
            base,
            (RangeConstraint(0, 3, 3), RangeConstraint(1, 4, 4)),
        )
        # y must be 3 (pairs: 1-p1->3, 2-p1->3), z must be 4 (3-p2->4).
        assert count_range_query(tiny_store, query) == 2

    def test_constraint_on_bound_object(self, tiny_store):
        base = QueryPattern([TriplePattern(v("x"), 2, 4)])
        keeps = RangeQuery(base, (RangeConstraint(0, 4, 4),))
        drops = RangeQuery(base, (RangeConstraint(0, 5, 9),))
        assert count_range_query(tiny_store, keeps) == 3
        assert count_range_query(tiny_store, drops) == 0


class TestEquiDepthHistogram:
    def test_full_range_selectivity_is_one(self):
        hist = EquiDepthHistogram(list(range(100)), num_buckets=8)
        assert hist.selectivity(0, 99) == pytest.approx(1.0)

    def test_half_range_on_uniform_data(self):
        hist = EquiDepthHistogram(list(range(1000)), num_buckets=16)
        assert hist.selectivity(0, 499) == pytest.approx(0.5, abs=0.05)

    def test_empty_range(self):
        hist = EquiDepthHistogram([1, 2, 3])
        assert hist.selectivity(10, 5) == 0.0
        assert hist.selectivity(100, 200) == 0.0

    def test_skewed_data_equi_depth(self):
        # 90% of mass at value 1: a narrow range around it captures it.
        values = [1] * 900 + list(range(2, 102))
        hist = EquiDepthHistogram(values, num_buckets=10)
        assert hist.selectivity(1, 1) >= 0.8

    def test_rejects_empty_values(self):
        with pytest.raises(ValueError, match="no values"):
            EquiDepthHistogram([])

    def test_rejects_zero_buckets(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            EquiDepthHistogram([1], num_buckets=0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=1000),
            min_size=1,
            max_size=200,
        ),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    )
    def test_selectivity_bounded_property(self, values, a, b):
        hist = EquiDepthHistogram(values, num_buckets=8)
        low, high = min(a, b), max(a, b)
        assert -1e-9 <= hist.selectivity(low, high) <= 1.0 + 1e-9


class TestPredicateHistograms:
    def test_per_predicate_selectivity(self, tiny_store):
        hists = PredicateHistograms(tiny_store, num_buckets=4)
        # All p2 objects are 4.
        assert hists.selectivity(2, 4, 4) == pytest.approx(1.0)
        assert hists.selectivity(2, 5, 9) == pytest.approx(0.0)

    def test_unknown_predicate_uses_global(self, tiny_store):
        hists = PredicateHistograms(tiny_store)
        assert 0.0 <= hists.selectivity(99, 0, 100) <= 1.0
        assert hists.selectivity(99, 0, 100) == pytest.approx(1.0)

    def test_unbound_predicate_uses_global(self, tiny_store):
        hists = PredicateHistograms(tiny_store)
        assert hists.selectivity(None, 0, 10**6) == pytest.approx(1.0)

    def test_memory_reported(self, tiny_store):
        assert PredicateHistograms(tiny_store).memory_bytes() > 0


class TestGenerateRangeWorkload:
    def test_records_have_exact_labels(self, lubm_store):
        records = generate_range_workload(
            lubm_store, "star", 2, num_queries=15, seed=3
        )
        assert records
        for record in records[:5]:
            assert record.cardinality == count_range_query(
                lubm_store, record.query
            )

    def test_constrained_count_never_exceeds_base(self, lubm_store):
        records = generate_range_workload(
            lubm_store, "star", 2, num_queries=15, seed=4
        )
        for record in records:
            if record.query.constraints:
                base_count = count_bgp(lubm_store, record.query.base)
                assert record.cardinality <= base_count

    def test_some_queries_get_constraints(self, lubm_store):
        records = generate_range_workload(
            lubm_store, "star", 2, num_queries=20, seed=5
        )
        assert any(r.query.constraints for r in records)


class TestLMKGSRange:
    @pytest.fixture(scope="class")
    def trained(self, lubm_store):
        records = generate_range_workload(
            lubm_store, "star", 2, num_queries=150, seed=6
        )
        model = LMKGSRange(
            lubm_store,
            ["star"],
            2,
            LMKGSConfig(epochs=30, hidden_sizes=(64, 64)),
        )
        model.fit(records)
        return model, records

    def test_input_width_extends_base(self, lubm_store):
        model = LMKGSRange(lubm_store, ["star"], 2)
        assert model.input_width == model._base.input_width + 2

    def test_featurize_marks_constraints(self, lubm_store, trained):
        model, records = trained
        constrained = next(
            r for r in records if r.query.constraints
        )
        features = model.featurize([constrained.query])
        idx = constrained.query.constraints[0].triple_index
        slot = model._base.input_width + idx
        assert features[0, slot] <= 1.0

    def test_estimates_are_positive(self, trained):
        model, records = trained
        for record in records[:10]:
            assert model.estimate(record.query) >= 0.0

    def test_estimate_before_fit_raises(self, lubm_store):
        model = LMKGSRange(lubm_store, ["star"], 2)
        base = star_pattern(v("x"), [(1, v("a")), (2, v("b"))])
        with pytest.raises(RuntimeError, match="before fit"):
            model.estimate(RangeQuery(base))

    def test_learns_training_distribution(self, trained):
        from repro.core.metrics import q_errors

        model, records = trained
        estimates = model.estimate_batch([r.query for r in records])
        errors = q_errors(
            estimates, [r.cardinality for r in records]
        )
        # Trained on these queries: median training q-error must be low.
        assert float(np.median(errors)) < 5.0

    def test_memory_includes_histograms(self, trained, lubm_store):
        model, _ = trained
        assert (
            model.memory_bytes()
            > PredicateHistograms(lubm_store).memory_bytes()
        )


class TestHistogramRangeEstimator:
    def test_constraint_shrinks_estimate(self, lubm_store):
        est = HistogramRangeEstimator(lubm_store)
        preds = lubm_store.predicates()[:2]
        base = star_pattern(
            v("x"), [(p, v(f"o{i}")) for i, p in enumerate(preds)]
        )
        objects = lubm_store.backend.predicate_object_stats(preds[0])[
            0
        ].tolist()
        mid = objects[len(objects) // 2]
        unconstrained = est.estimate(RangeQuery(base))
        constrained = est.estimate(
            RangeQuery(
                base, (RangeConstraint(0, objects[0], mid),)
            )
        )
        assert constrained <= unconstrained + 1e-9


class TestRangeCheckpointing:
    def test_save_load_round_trip(self, lubm_store, tmp_path):
        records = generate_range_workload(
            lubm_store, "star", 2, num_queries=60, seed=12
        )
        model = LMKGSRange(
            lubm_store,
            ["star"],
            2,
            LMKGSConfig(epochs=5, hidden_sizes=(16, 16)),
        )
        model.fit(records)
        path = tmp_path / "range_model.npz"
        model.save(path)
        restored = LMKGSRange.load(path, lubm_store)
        for record in records[:10]:
            assert restored.estimate(record.query) == pytest.approx(
                model.estimate(record.query), rel=1e-5
            )

    def test_save_before_fit_raises(self, lubm_store, tmp_path):
        model = LMKGSRange(lubm_store, ["star"], 2)
        with pytest.raises(RuntimeError, match="before fit"):
            model.save(tmp_path / "x.npz")


class TestSparqlFilterParsing:
    """FILTER clauses round-trip into RangeQuery constraints."""

    @pytest.fixture
    def lex_store(self):
        from repro.rdf import TripleStore

        return TripleStore.from_lexical(
            [
                ("a", "year", "y1990"),
                ("b", "year", "y2000"),
                ("c", "year", "y2010"),
                ("a", "genre", "Horror"),
                ("b", "genre", "Horror"),
            ]
        )

    def test_parse_two_sided_filter(self, lex_store):
        from repro.core.ranges import parse_sparql_range

        query = parse_sparql_range(
            "SELECT ?x WHERE { ?x <year> ?y . "
            "FILTER(?y >= 2 && ?y <= 5) }",
            lex_store.dictionary,
        )
        assert len(query.constraints) == 1
        constraint = query.constraints[0]
        assert (constraint.low, constraint.high) == (2, 5)
        assert constraint.triple_index == 0

    def test_strict_comparisons_tighten_by_one(self, lex_store):
        from repro.core.ranges import parse_sparql_range

        query = parse_sparql_range(
            "SELECT ?x WHERE { ?x <year> ?y . "
            "FILTER(?y > 2 && ?y < 9) }",
            lex_store.dictionary,
        )
        constraint = query.constraints[0]
        assert (constraint.low, constraint.high) == (3, 8)

    def test_equality_pins_both_bounds(self, lex_store):
        from repro.core.ranges import parse_sparql_range

        query = parse_sparql_range(
            "SELECT ?x WHERE { ?x <year> ?y . FILTER(?y = 7) }",
            lex_store.dictionary,
        )
        constraint = query.constraints[0]
        assert (constraint.low, constraint.high) == (7, 7)

    def test_no_filter_gives_plain_range_query(self, lex_store):
        from repro.core.ranges import parse_sparql_range

        query = parse_sparql_range(
            "SELECT ?x WHERE { ?x <year> ?y . }",
            lex_store.dictionary,
        )
        assert query.constraints == ()

    def test_empty_range_rejected(self, lex_store):
        from repro.core.ranges import parse_sparql_range
        from repro.rdf.parser import ParseError

        with pytest.raises(ParseError, match="empty range"):
            parse_sparql_range(
                "SELECT ?x WHERE { ?x <year> ?y . "
                "FILTER(?y > 5 && ?y < 5) }",
                lex_store.dictionary,
            )

    def test_filter_on_subject_only_variable_rejected(self, lex_store):
        from repro.core.ranges import parse_sparql_range
        from repro.rdf.parser import ParseError

        with pytest.raises(ParseError, match="object variables only"):
            parse_sparql_range(
                "SELECT ?x WHERE { ?x <genre> <Horror> . "
                "FILTER(?x >= 1) }",
                lex_store.dictionary,
            )

    def test_unsupported_condition_rejected(self, lex_store):
        from repro.core.ranges import parse_sparql_range
        from repro.rdf.parser import ParseError

        with pytest.raises(ParseError, match="unsupported FILTER"):
            parse_sparql_range(
                "SELECT ?x WHERE { ?x <year> ?y . "
                "FILTER(regex(?y, 'a')) }",
                lex_store.dictionary,
            )

    def test_parsed_query_counts_correctly(self, lex_store):
        from repro.core.ranges import count_range_query, parse_sparql_range

        # Object ids follow insertion order; filter down to a sub-range
        # and check against a manual count over all object ids.
        query = parse_sparql_range(
            "SELECT ?x WHERE { ?x <year> ?y . FILTER(?y <= 3) }",
            lex_store.dictionary,
        )
        unfiltered = parse_sparql_range(
            "SELECT ?x WHERE { ?x <year> ?y . }",
            lex_store.dictionary,
        )
        assert count_range_query(
            lex_store, query
        ) <= count_range_query(lex_store, unfiltered)

    def test_format_round_trip(self, lex_store):
        from repro.core.ranges import (
            format_sparql_range,
            parse_sparql_range,
        )

        text = (
            "SELECT ?x WHERE { ?x <year> ?y . "
            "FILTER(?y >= 2 && ?y <= 5) }"
        )
        query = parse_sparql_range(text, lex_store.dictionary)
        rendered = format_sparql_range(query, lex_store.dictionary)
        reparsed = parse_sparql_range(rendered, lex_store.dictionary)
        assert reparsed.constraints == query.constraints
        assert reparsed.base.triples == query.base.triples
