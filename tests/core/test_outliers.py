"""Tests for the outlier buffer (§VIII-C's proposed improvement)."""

import pytest

from repro.core.outliers import BufferedEstimator, OutlierBuffer
from repro.rdf.pattern import star_pattern
from repro.rdf.terms import Variable
from repro.sampling.workload import QueryRecord


def v(name):
    return Variable(name)


def record(obj_id, card):
    query = star_pattern(v("x"), [(1, obj_id), (2, v("y"))])
    return QueryRecord(query, "star", 2, card)


@pytest.fixture
def records():
    return [record(i, card) for i, card in enumerate(
        [5, 10_000, 3, 800, 90_000, 12, 2_500], start=1
    )]


class TestOutlierBuffer:
    def test_stores_heaviest(self, records):
        buffer = OutlierBuffer(capacity=2)
        stored = buffer.fit(records)
        assert stored == 2
        assert buffer.lookup(records[4].query) == 90_000
        assert buffer.lookup(records[1].query) == 10_000
        assert buffer.lookup(records[0].query) is None

    def test_threshold_is_smallest_buffered(self, records):
        buffer = OutlierBuffer(capacity=3)
        buffer.fit(records)
        assert buffer.threshold == 2_500

    def test_zero_capacity(self, records):
        buffer = OutlierBuffer(capacity=0)
        assert buffer.fit(records) == 0
        assert buffer.lookup(records[1].query) is None

    def test_variable_renaming_invariant(self, records):
        buffer = OutlierBuffer(capacity=1)
        buffer.fit(records)
        renamed = star_pattern(v("a"), [(1, 5), (2, v("b"))])
        assert buffer.lookup(renamed) == 90_000

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            OutlierBuffer(capacity=-1)

    def test_refit_clears_old_entries(self, records):
        buffer = OutlierBuffer(capacity=2)
        buffer.fit(records)
        buffer.fit(records[:1])
        assert buffer.lookup(records[4].query) is None
        assert buffer.lookup(records[0].query) == 5


class _ConstantModel:
    name = "const"

    def estimate(self, query):
        return 42.0

    def memory_bytes(self):
        return 1000


class TestBufferedEstimator:
    def test_buffer_hit_returns_exact(self, records):
        wrapped = BufferedEstimator(
            _ConstantModel(), records, capacity=2
        )
        assert wrapped.estimate(records[4].query) == 90_000.0
        assert wrapped.hits == 1

    def test_miss_delegates(self, records):
        wrapped = BufferedEstimator(
            _ConstantModel(), records, capacity=1
        )
        assert wrapped.estimate(records[0].query) == 42.0
        assert wrapped.misses == 1

    def test_memory_includes_buffer(self, records):
        wrapped = BufferedEstimator(
            _ConstantModel(), records, capacity=3
        )
        assert wrapped.memory_bytes() == 1000 + 3 * 64

    def test_name_derived(self, records):
        wrapped = BufferedEstimator(
            _ConstantModel(), records, capacity=1
        )
        assert wrapped.name == "const+buf"

    def test_improves_real_model_on_outliers(self, lubm_store):
        """Wrapping LMKG-S with a buffer fixes exactly the Fig. 5
        failure: the buffered variant answers the heaviest training
        queries exactly."""
        from repro.core.lmkg_s import LMKGS, LMKGSConfig
        from repro.core.metrics import q_errors
        from repro.sampling import generate_workload

        workload = generate_workload(lubm_store, "star", 2, 250, seed=60)
        model = LMKGS(
            lubm_store,
            ["star"],
            2,
            LMKGSConfig(hidden_sizes=(32, 32), epochs=15),
        )
        model.fit(workload.records)
        buffered = BufferedEstimator(model, workload.records, capacity=20)
        # Select the heaviest records with the buffer's own rule so a
        # cardinality tie at the boundary cannot pick different records.
        heavy = sorted(
            workload.records, key=lambda r: r.cardinality, reverse=True
        )[:20]
        raw_err = q_errors(
            [model.estimate(r.query) for r in heavy],
            [r.cardinality for r in heavy],
        )
        buf_err = q_errors(
            [buffered.estimate(r.query) for r in heavy],
            [r.cardinality for r in heavy],
        )
        assert buf_err.max() == 1.0
        assert buf_err.mean() <= raw_err.mean()
