"""Tests for composite-query decomposition and estimate combination."""

import pytest

from repro.core.decomposition import (
    combine_estimates,
    decompose,
    shared_variables,
)
from repro.rdf.pattern import (
    QueryPattern,
    Topology,
    chain_pattern,
    star_pattern,
)
from repro.rdf.terms import TriplePattern, Variable


def v(name):
    return Variable(name)


class TestDecompose:
    def test_star_passes_through(self):
        q = star_pattern(v("x"), [(1, v("y")), (2, v("z"))])
        assert decompose(q) == [q]

    def test_chain_passes_through(self):
        q = chain_pattern([v("a"), 1, v("b"), 2, v("c")])
        assert decompose(q) == [q]

    def test_star_plus_tail(self):
        """A star with a chain hop off one arm splits into both parts."""
        q = QueryPattern(
            [
                TriplePattern(v("x"), 1, v("y")),
                TriplePattern(v("x"), 2, v("z")),
                TriplePattern(v("z"), 3, v("w")),
            ]
        )
        parts = decompose(q)
        assert len(parts) == 2
        topologies = sorted(p.topology().value for p in parts)
        assert topologies == ["single", "star"]

    def test_flower_splits_into_star_and_chain(self):
        q = QueryPattern(
            [
                TriplePattern(v("x"), 1, v("y")),
                TriplePattern(v("x"), 2, v("z")),
                TriplePattern(v("z"), 3, v("w")),
                TriplePattern(v("w"), 4, v("u")),
            ]
        )
        parts = decompose(q)
        kinds = sorted(p.topology().value for p in parts)
        assert kinds == ["chain", "star"]
        chain = next(p for p in parts if p.topology() is Topology.CHAIN)
        assert chain.size == 2

    def test_all_triples_preserved(self):
        q = QueryPattern(
            [
                TriplePattern(v("x"), 1, v("y")),
                TriplePattern(v("x"), 2, v("z")),
                TriplePattern(v("z"), 3, v("w")),
            ]
        )
        parts = decompose(q)
        total = sum(p.size for p in parts)
        assert total == q.size


class TestSharedVariables:
    def test_join_variable_found(self):
        star = star_pattern(v("x"), [(1, v("y")), (2, v("z"))])
        tail = QueryPattern([TriplePattern(v("z"), 3, v("w"))])
        shared = shared_variables([star, tail])
        assert shared == {v("z"): 2}

    def test_disjoint_components(self):
        a = star_pattern(v("x"), [(1, v("y")), (2, 5)])
        b = QueryPattern([TriplePattern(v("u"), 3, v("w"))])
        assert shared_variables([a, b]) == {}


class TestCombine:
    def test_independent_components_multiply(self, tiny_store):
        a = star_pattern(v("x"), [(1, v("y")), (2, 4)])
        b = QueryPattern([TriplePattern(v("u"), 3, v("w"))])
        combined = combine_estimates(tiny_store, [a, b], [3.0, 2.0])
        assert combined == 6.0

    def test_shared_variable_divides_by_domain(self, tiny_store):
        star = star_pattern(v("x"), [(1, v("y")), (2, v("z"))])
        tail = QueryPattern([TriplePattern(v("z"), 3, v("w"))])
        combined = combine_estimates(tiny_store, [star, tail], [6.0, 2.0])
        assert combined == pytest.approx(12.0 / tiny_store.num_nodes)

    def test_validation(self, tiny_store):
        with pytest.raises(ValueError):
            combine_estimates(tiny_store, [], [])
        with pytest.raises(ValueError):
            combine_estimates(
                tiny_store,
                [star_pattern(v("x"), [(1, 2), (2, 3)])],
                [1.0, 2.0],
            )
