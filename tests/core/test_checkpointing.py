"""Round-trip tests for LMKG-S and LMKG-U checkpoints."""

import numpy as np
import pytest

from repro.core.lmkg_s import LMKGS, LMKGSConfig
from repro.core.lmkg_u import LMKGU, LMKGUConfig
from repro.sampling import generate_workload


@pytest.fixture(scope="module")
def lubm_store():
    from repro.datasets import load_dataset

    return load_dataset("lubm", scale=0.5, seed=1)


@pytest.fixture(scope="module")
def star_workload(lubm_store):
    return generate_workload(lubm_store, "star", 2, 200, seed=70)


class TestLMKGSCheckpoint:
    def test_roundtrip_identical_estimates(
        self, lubm_store, star_workload, tmp_path
    ):
        model = LMKGS(
            lubm_store,
            ["star"],
            2,
            LMKGSConfig(hidden_sizes=(32, 32), epochs=8),
        )
        model.fit(star_workload.records)
        path = tmp_path / "lmkgs.npz"
        model.save(path)
        restored = LMKGS.load(path, lubm_store)
        queries = [r.query for r in star_workload.records[:25]]
        assert np.allclose(
            model.estimate_batch(queries),
            restored.estimate_batch(queries),
        )

    def test_metadata_restored(self, lubm_store, star_workload, tmp_path):
        config = LMKGSConfig(
            encoding="pattern",
            term_encoding="binary",
            hidden_sizes=(16,),
            epochs=3,
        )
        model = LMKGS(lubm_store, ["star"], 2, config)
        model.fit(star_workload.records[:100])
        path = tmp_path / "p.npz"
        model.save(path)
        restored = LMKGS.load(path, lubm_store)
        assert restored.config.encoding == "pattern"
        assert restored.topologies == ("star",)
        assert restored.max_size == 2
        assert restored.scaler.span == pytest.approx(model.scaler.span)

    def test_save_before_fit_rejected(self, lubm_store, tmp_path):
        model = LMKGS(lubm_store, ["star"], 2)
        with pytest.raises(RuntimeError):
            model.save(tmp_path / "x.npz")


class TestLMKGUCheckpoint:
    def test_roundtrip_identical_estimates(
        self, lubm_store, star_workload, tmp_path
    ):
        model = LMKGU(
            lubm_store,
            "star",
            2,
            LMKGUConfig(
                hidden_sizes=(32, 32),
                epochs=1,
                training_samples=1_500,
                particles=64,
            ),
        )
        model.fit()
        path = tmp_path / "lmkgu.npz"
        model.save(path)
        restored = LMKGU.load(path, lubm_store)
        assert restored.universe == model.universe
        assert restored.topology == "star"
        assert restored.size == 2
        for record in star_workload.records[:10]:
            assert restored.estimate(record.query) == pytest.approx(
                model.estimate(record.query)
            )

    def test_save_before_fit_rejected(self, lubm_store, tmp_path):
        model = LMKGU(lubm_store, "star", 2)
        with pytest.raises(RuntimeError):
            model.save(tmp_path / "x.npz")


class TestFrameworkCheckpoint:
    """LMKG.save/load: the whole façade round-trips as one directory."""

    @pytest.fixture(scope="class")
    def fitted(self, lubm_store):
        from repro.core.framework import LMKG

        framework = LMKG(
            lubm_store,
            model_type="supervised",
            grouping="size",
            lmkgs_config=LMKGSConfig(hidden_sizes=(32, 32), epochs=8),
        )
        framework.fit(
            shapes=[("star", 2), ("chain", 2)], queries_per_shape=150
        )
        return framework

    def test_roundtrip_identical_estimates(
        self, lubm_store, fitted, tmp_path
    ):
        from repro.core.framework import LMKG
        from repro.sampling import generate_workload

        fitted.save(tmp_path / "ckpt")
        restored = LMKG.load(tmp_path / "ckpt", lubm_store)
        star = generate_workload(lubm_store, "star", 2, 15, seed=91)
        chain = generate_workload(lubm_store, "chain", 2, 15, seed=92)
        queries = [r.query for r in list(star) + list(chain)]
        assert (
            restored.estimate_batch(queries).tolist()
            == fitted.estimate_batch(queries).tolist()
        )

    def test_manifest_and_routing_metadata(
        self, lubm_store, fitted, tmp_path
    ):
        import json

        from repro.core.framework import LMKG

        manifest_path = fitted.save(tmp_path / "meta")
        manifest = json.loads(manifest_path.read_text())
        assert manifest["format"] == "repro-lmkg-framework"
        assert manifest["grouping"]["name"] == "size"
        restored = LMKG.load(tmp_path / "meta", lubm_store)
        assert restored.num_models() == fitted.num_models()
        assert restored._group_max_size == fitted._group_max_size
        assert restored._group_topologies == fitted._group_topologies
        assert restored.grouping.name == fitted.grouping.name

    def test_specialized_tuple_keys_roundtrip(
        self, lubm_store, star_workload, tmp_path
    ):
        from repro.core.framework import LMKG

        framework = LMKG(
            lubm_store,
            grouping="specialized",
            lmkgs_config=LMKGSConfig(hidden_sizes=(16,), epochs=3),
        )
        framework.fit(
            shapes=[("star", 2)], workload=star_workload.records[:100]
        )
        framework.save(tmp_path / "spec")
        restored = LMKG.load(tmp_path / "spec", lubm_store)
        assert ("star", 2) in restored.models

    def test_unsupervised_roundtrip(self, lubm_store, tmp_path):
        from repro.core.framework import LMKG

        framework = LMKG(
            lubm_store,
            model_type="unsupervised",
            lmkgu_config=LMKGUConfig(
                embed_dim=8,
                hidden_sizes=(16,),
                epochs=1,
                training_samples=800,
                particles=32,
            ),
        )
        framework.fit(shapes=[("star", 2)])
        framework.save(tmp_path / "unsup")
        restored = LMKG.load(tmp_path / "unsup", lubm_store)
        assert restored.model_type == "unsupervised"
        assert isinstance(restored.models[("star", 2)], LMKGU)
        # The round trip preserves the float64 training masters exactly
        # (the fused float32 inference caches are derived, not stored).
        original = framework.models[("star", 2)].model
        loaded = restored.models[("star", 2)].model
        for a, b in zip(original.parameters(), loaded.parameters()):
            assert b.value.dtype == np.float64
            assert np.array_equal(a.value, b.value), a.name

    def test_save_before_fit_rejected(self, lubm_store, tmp_path):
        from repro.core.framework import LMKG

        with pytest.raises(RuntimeError):
            LMKG(lubm_store).save(tmp_path / "x")

    def test_load_against_different_graph_rejected(
        self, fitted, tmp_path
    ):
        """A checkpoint must refuse a store it was not trained on —
        matching encoder widths would otherwise serve garbage."""
        from repro.core.framework import CheckpointError, LMKG
        from repro.datasets import load_dataset

        other = load_dataset("lubm", scale=0.25, seed=9)
        fitted.save(tmp_path / "mismatch")
        with pytest.raises(CheckpointError, match="different graph"):
            LMKG.load(tmp_path / "mismatch", other)

    def test_load_missing_or_corrupt_rejected(
        self, lubm_store, fitted, tmp_path
    ):
        from repro.core.framework import CheckpointError, LMKG

        with pytest.raises(CheckpointError, match="manifest"):
            LMKG.load(tmp_path / "nope", lubm_store)
        fitted.save(tmp_path / "bad")
        (tmp_path / "bad" / "manifest.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="corrupt"):
            LMKG.load(tmp_path / "bad", lubm_store)
