"""Round-trip tests for LMKG-S and LMKG-U checkpoints."""

import numpy as np
import pytest

from repro.core.lmkg_s import LMKGS, LMKGSConfig
from repro.core.lmkg_u import LMKGU, LMKGUConfig
from repro.sampling import generate_workload


@pytest.fixture(scope="module")
def lubm_store():
    from repro.datasets import load_dataset

    return load_dataset("lubm", scale=0.5, seed=1)


@pytest.fixture(scope="module")
def star_workload(lubm_store):
    return generate_workload(lubm_store, "star", 2, 200, seed=70)


class TestLMKGSCheckpoint:
    def test_roundtrip_identical_estimates(
        self, lubm_store, star_workload, tmp_path
    ):
        model = LMKGS(
            lubm_store,
            ["star"],
            2,
            LMKGSConfig(hidden_sizes=(32, 32), epochs=8),
        )
        model.fit(star_workload.records)
        path = tmp_path / "lmkgs.npz"
        model.save(path)
        restored = LMKGS.load(path, lubm_store)
        queries = [r.query for r in star_workload.records[:25]]
        assert np.allclose(
            model.estimate_batch(queries),
            restored.estimate_batch(queries),
        )

    def test_metadata_restored(self, lubm_store, star_workload, tmp_path):
        config = LMKGSConfig(
            encoding="pattern",
            term_encoding="binary",
            hidden_sizes=(16,),
            epochs=3,
        )
        model = LMKGS(lubm_store, ["star"], 2, config)
        model.fit(star_workload.records[:100])
        path = tmp_path / "p.npz"
        model.save(path)
        restored = LMKGS.load(path, lubm_store)
        assert restored.config.encoding == "pattern"
        assert restored.topologies == ("star",)
        assert restored.max_size == 2
        assert restored.scaler.span == pytest.approx(model.scaler.span)

    def test_save_before_fit_rejected(self, lubm_store, tmp_path):
        model = LMKGS(lubm_store, ["star"], 2)
        with pytest.raises(RuntimeError):
            model.save(tmp_path / "x.npz")


class TestLMKGUCheckpoint:
    def test_roundtrip_identical_estimates(
        self, lubm_store, star_workload, tmp_path
    ):
        model = LMKGU(
            lubm_store,
            "star",
            2,
            LMKGUConfig(
                hidden_sizes=(32, 32),
                epochs=1,
                training_samples=1_500,
                particles=64,
            ),
        )
        model.fit()
        path = tmp_path / "lmkgu.npz"
        model.save(path)
        restored = LMKGU.load(path, lubm_store)
        assert restored.universe == model.universe
        assert restored.topology == "star"
        assert restored.size == 2
        for record in star_workload.records[:10]:
            assert restored.estimate(record.query) == pytest.approx(
                model.estimate(record.query)
            )

    def test_save_before_fit_rejected(self, lubm_store, tmp_path):
        model = LMKGU(lubm_store, "star", 2)
        with pytest.raises(RuntimeError):
            model.save(tmp_path / "x.npz")
