"""Tests for workload-shift detection and the adaptive execution loop."""

import pytest

from repro.core.framework import LMKG
from repro.core.lmkg_s import LMKGSConfig
from repro.core.monitor import (
    AdaptiveLMKG,
    DriftReport,
    WorkloadMonitor,
    total_variation,
)
from repro.rdf.pattern import chain_pattern, star_pattern
from repro.rdf.terms import Variable


def v(name):
    return Variable(name)


class TestTotalVariation:
    def test_identical_distributions(self):
        d = {("star", 2): 0.5, ("chain", 2): 0.5}
        assert total_variation(d, dict(d)) == 0.0

    def test_disjoint_distributions(self):
        a = {("star", 2): 1.0}
        b = {("chain", 3): 1.0}
        assert total_variation(a, b) == 1.0

    def test_partial_overlap(self):
        a = {("star", 2): 1.0}
        b = {("star", 2): 0.5, ("chain", 2): 0.5}
        assert total_variation(a, b) == pytest.approx(0.5)

    def test_symmetry(self):
        a = {("star", 2): 0.7, ("chain", 2): 0.3}
        b = {("star", 2): 0.2, ("star", 3): 0.8}
        assert total_variation(a, b) == pytest.approx(
            total_variation(b, a)
        )


class TestWorkloadMonitor:
    def test_no_drift_before_min_queries(self):
        monitor = WorkloadMonitor(min_queries=10, threshold=0.1)
        monitor.set_reference({("star", 2): 1.0})
        for _ in range(9):
            monitor.observe(("chain", 5))
        assert monitor.check() is None

    def test_no_drift_without_reference(self):
        monitor = WorkloadMonitor(min_queries=1)
        monitor.observe(("star", 2))
        assert monitor.check() is None

    def test_detects_full_shift(self):
        monitor = WorkloadMonitor(min_queries=20, threshold=0.5)
        monitor.set_reference({("star", 2): 1.0})
        for _ in range(30):
            monitor.observe(("chain", 5))
        report = monitor.check()
        assert report is not None
        assert report.distance == pytest.approx(1.0)
        assert ("chain", 5) in report.emerging
        assert ("star", 2) in report.fading

    def test_stable_workload_stays_quiet(self):
        monitor = WorkloadMonitor(min_queries=20, threshold=0.25)
        monitor.set_reference({("star", 2): 0.5, ("chain", 2): 0.5})
        for i in range(100):
            monitor.observe(("star", 2) if i % 2 else ("chain", 2))
        assert monitor.check() is None

    def test_emerging_requires_hot_share(self):
        monitor = WorkloadMonitor(
            min_queries=20, threshold=0.3, hot_share=0.5
        )
        monitor.set_reference({("star", 2): 1.0})
        # Three shapes at ~33% each: drifted, but no single shape is hot.
        for i in range(60):
            monitor.observe(
                [("chain", 3), ("chain", 5), ("star", 8)][i % 3]
            )
        report = monitor.check()
        assert report is not None
        assert report.emerging == ()

    def test_covered_shape_not_emerging(self):
        monitor = WorkloadMonitor(min_queries=10, threshold=0.2)
        monitor.set_reference({("star", 2): 0.9, ("chain", 2): 0.1})
        for _ in range(50):
            monitor.observe(("chain", 2))
        report = monitor.check()
        assert report is not None
        assert ("chain", 2) not in report.emerging
        assert ("star", 2) in report.fading

    def test_window_evicts_old_observations(self):
        monitor = WorkloadMonitor(window_size=10, min_queries=1)
        for _ in range(10):
            monitor.observe(("star", 2))
        for _ in range(10):
            monitor.observe(("chain", 3))
        assert monitor.window_shares() == {("chain", 3): 1.0}

    def test_reset_clears_window(self):
        monitor = WorkloadMonitor(min_queries=1)
        monitor.observe(("star", 2))
        monitor.reset()
        assert monitor.window_shares() == {}

    def test_reference_normalised(self):
        monitor = WorkloadMonitor()
        monitor.set_reference({("star", 2): 2.0, ("chain", 2): 2.0})
        assert monitor.reference == {
            ("star", 2): 0.5,
            ("chain", 2): 0.5,
        }

    def test_uniform_reference_from_shapes(self):
        monitor = WorkloadMonitor()
        monitor.set_reference_from_shapes([("star", 2), ("chain", 3)])
        assert monitor.reference[("star", 2)] == pytest.approx(0.5)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            WorkloadMonitor(threshold=0.0)
        with pytest.raises(ValueError):
            WorkloadMonitor(window_size=0)
        with pytest.raises(ValueError):
            WorkloadMonitor().set_reference({})
        with pytest.raises(ValueError):
            WorkloadMonitor().set_reference_from_shapes([])

    def test_observe_query_extracts_shape(self):
        monitor = WorkloadMonitor(min_queries=1)
        monitor.observe_query(
            star_pattern(v("x"), [(1, v("a")), (2, v("b"))])
        )
        assert monitor.window_shares() == {("star", 2): 1.0}


@pytest.fixture(scope="module")
def fitted_framework(lubm_store):
    framework = LMKG(
        lubm_store,
        model_type="supervised",
        grouping="specialized",
        lmkgs_config=LMKGSConfig(epochs=10, hidden_sizes=(32, 32)),
    )
    framework.fit(shapes=[("star", 2)], queries_per_shape=100)
    return framework


class TestAdaptiveLMKG:
    def _star(self, store, size=2):
        preds = store.predicates()[:size]
        return star_pattern(
            v("x"), [(p, v(f"o{i}")) for i, p in enumerate(preds)]
        )

    def _chain(self, store):
        preds = store.predicates()
        return chain_pattern(
            [v("x"), preds[0], v("y"), preds[1], v("z")]
        )

    def test_reference_inferred_from_framework(
        self, fitted_framework
    ):
        adaptive = AdaptiveLMKG(fitted_framework)
        assert ("star", 2) in adaptive.monitor.reference

    def test_estimates_flow_through(self, fitted_framework, lubm_store):
        adaptive = AdaptiveLMKG(
            fitted_framework,
            WorkloadMonitor(min_queries=10_000),
        )
        adaptive.monitor.set_reference({("star", 2): 1.0})
        estimate = adaptive.estimate(self._star(lubm_store))
        assert estimate >= 0.0
        assert adaptive.events == []

    def test_drift_triggers_model_creation(
        self, fitted_framework, lubm_store
    ):
        monitor = WorkloadMonitor(
            min_queries=20, threshold=0.5, hot_share=0.3
        )
        monitor.set_reference({("star", 2): 1.0})
        adaptive = AdaptiveLMKG(
            fitted_framework, monitor, queries_per_shape=60
        )
        chain_query = self._chain(lubm_store)
        for _ in range(25):
            adaptive.estimate(chain_query)
        # First chain query cold-starts a model; drift then fires.
        assert ("chain", 2) in adaptive.cold_starts
        assert adaptive.events, "drift should have fired"
        # The new model answers chains now.
        key = fitted_framework.grouping.key("chain", 2)
        assert key in fitted_framework.models
        # Reference rolled over to the drifted distribution.
        assert ("chain", 2) in adaptive.monitor.reference

    def test_fading_shape_dropped_for_specialized_grouping(
        self, lubm_store
    ):
        framework = LMKG(
            lubm_store,
            model_type="supervised",
            grouping="specialized",
            lmkgs_config=LMKGSConfig(epochs=5, hidden_sizes=(16, 16)),
        )
        framework.fit(
            shapes=[("star", 2), ("chain", 2)], queries_per_shape=60
        )
        monitor = WorkloadMonitor(
            min_queries=20, threshold=0.4, cold_share=0.01
        )
        monitor.set_reference(
            {("star", 2): 0.5, ("chain", 2): 0.5}
        )
        adaptive = AdaptiveLMKG(framework, monitor)
        star_query = self._star(lubm_store)
        for _ in range(30):
            adaptive.estimate(star_query)
        assert adaptive.events
        event = adaptive.events[0]
        assert ("chain", 2) in event.dropped
        key = framework.grouping.key("chain", 2)
        assert key not in framework.models
