"""Tests for the NeuroCard-style universal LMKG-U model."""

import numpy as np
import pytest

from repro.core.lmkg_u import LMKGU, LMKGUConfig
from repro.core.lmkg_u_universal import UniversalLMKGU
from repro.rdf.pattern import QueryPattern, chain_pattern, star_pattern
from repro.rdf.terms import TriplePattern, Variable
from repro.sampling import generate_workload


def v(name):
    return Variable(name)


def small_config(**overrides):
    defaults = dict(
        epochs=1,
        hidden_sizes=(24, 24),
        embed_dim=8,
        training_samples=1_500,
        particles=32,
        seed=3,
    )
    defaults.update(overrides)
    return LMKGUConfig(**defaults)


@pytest.fixture(scope="module")
def universal(lubm_store):
    model = UniversalLMKGU(
        lubm_store,
        [("star", 2), ("chain", 2), ("star", 3)],
        small_config(),
    )
    model.fit()
    return model


class TestConstruction:
    def test_rejects_empty_shapes(self, lubm_store):
        with pytest.raises(ValueError, match="at least one shape"):
            UniversalLMKGU(lubm_store, [])

    def test_rejects_bad_topology(self, lubm_store):
        with pytest.raises(ValueError, match="unsupported topology"):
            UniversalLMKGU(lubm_store, [("cycle", 2)])

    def test_rejects_bad_size(self, lubm_store):
        with pytest.raises(ValueError):
            UniversalLMKGU(lubm_store, [("star", 0)])

    def test_deduplicates_shapes(self, lubm_store):
        model = UniversalLMKGU(
            lubm_store, [("star", 2), ("star", 2)], small_config()
        )
        assert model.shapes == [("star", 2)]

    def test_positions_cover_largest_shape(self, lubm_store):
        model = UniversalLMKGU(
            lubm_store, [("star", 2), ("chain", 5)], small_config()
        )
        assert model.num_positions == 1 + (2 * 5 + 1)


class TestTraining:
    def test_universes_recorded(self, universal):
        assert set(universal.universes) == {
            ("star", 2),
            ("chain", 2),
            ("star", 3),
        }
        assert universal.total_universe == sum(
            universal.universes.values()
        )

    def test_budgets_proportional_to_universes(self, lubm_store):
        model = UniversalLMKGU(
            lubm_store,
            [("star", 2), ("chain", 2)],
            small_config(training_samples=3_000),
        )
        budgets = model._sample_budgets()
        universes = {
            shape: budgets[shape] for shape in model.shapes
        }
        # The bigger universe gets the bigger slice.
        star_u, chain_u = (
            budgets[("star", 2)],
            budgets[("chain", 2)],
        )
        assert star_u > chain_u  # LUBM stars outnumber chains

    def test_history_non_empty(self, universal):
        assert universal.history
        assert all(np.isfinite(loss) for loss in universal.history)


class TestEstimation:
    def test_estimates_covered_shapes(self, universal, lubm_store):
        for topology, size in (("star", 2), ("chain", 2), ("star", 3)):
            workload = generate_workload(
                lubm_store, topology, size, num_queries=5, seed=8
            )
            for record in workload.records:
                estimate = universal.estimate(record.query)
                assert np.isfinite(estimate)
                assert estimate >= 0.0

    def test_rejects_uncovered_shape(self, universal, lubm_store):
        preds = lubm_store.predicates()
        big = chain_pattern(
            [v("a"), preds[0], v("b"), preds[1], v("c"),
             preds[0], v("d")]
        )
        with pytest.raises(ValueError, match="does not cover"):
            universal.estimate(big)

    def test_rejects_composite(self, universal, lubm_store):
        preds = lubm_store.predicates()
        composite = QueryPattern(
            [
                TriplePattern(v("a"), preds[0], v("b")),
                TriplePattern(v("c"), preds[1], v("b")),
                TriplePattern(v("c"), preds[0], v("d")),
            ]
        )
        with pytest.raises(ValueError, match="star and chain"):
            universal.estimate(composite)

    def test_estimate_before_fit_raises(self, lubm_store):
        model = UniversalLMKGU(
            lubm_store, [("star", 2)], small_config()
        )
        with pytest.raises(RuntimeError, match="before fit"):
            model.estimate(
                star_pattern(v("x"), [(1, v("a")), (2, v("b"))])
            )

    def test_repeated_variable_rejected(self, universal, lubm_store):
        preds = lubm_store.predicates()[:2]
        q = star_pattern(v("x"), [(preds[0], v("o")), (preds[1], v("o"))])
        with pytest.raises(ValueError, match="repeats a variable"):
            universal.estimate(q)


class TestSingleModelTrade:
    """§VII-B: one model for everything costs less memory."""

    def test_memory_below_per_shape_models(self, lubm_store, universal):
        per_shape_total = 0
        for topology, size in universal.shapes:
            model = LMKGU(lubm_store, topology, size, small_config())
            model.build_model()
            per_shape_total += model.memory_bytes()
        assert universal.memory_bytes() < per_shape_total

    def test_reasonable_accuracy_on_medians(self, universal, lubm_store):
        from repro.core.metrics import q_errors

        workload = generate_workload(
            lubm_store, "star", 2, num_queries=25, seed=9
        )
        estimates = [
            universal.estimate(r.query) for r in workload.records
        ]
        errors = q_errors(
            estimates, [r.cardinality for r in workload.records]
        )
        # Loose sanity bound at this tiny budget: the single model must
        # be in the right order of magnitude on the median query.
        assert float(np.median(errors)) < 100.0


class TestCheckpointing:
    def test_save_load_round_trip(self, universal, lubm_store, tmp_path):
        path = tmp_path / "universal.npz"
        universal.save(path)
        restored = UniversalLMKGU.load(path, lubm_store)
        assert restored.shapes == universal.shapes
        assert restored.universes == universal.universes
        workload = generate_workload(
            lubm_store, "star", 2, num_queries=5, seed=10
        )
        for record in workload.records:
            assert restored.estimate(record.query) == pytest.approx(
                universal.estimate(record.query), rel=1e-5
            )

    def test_save_before_fit_raises(self, lubm_store, tmp_path):
        model = UniversalLMKGU(
            lubm_store, [("star", 2)], small_config()
        )
        with pytest.raises(RuntimeError, match="before fit"):
            model.save(tmp_path / "x.npz")
