"""Tests for the compound supervised+unsupervised estimator."""

import math

import pytest

from repro.core.compound import CompoundEstimator, ShapeWeights, _safe_log
from repro.rdf.pattern import QueryPattern, chain_pattern, star_pattern
from repro.rdf.terms import TriplePattern, Variable
from repro.sampling.workload import QueryRecord


def v(name):
    return Variable(name)


class Constant:
    """Stub model answering a fixed value."""

    def __init__(self, value, memory=100):
        self.value = value
        self._memory = memory
        self.calls = 0

    def estimate(self, query):
        self.calls += 1
        return self.value

    def memory_bytes(self):
        return self._memory


def star_query():
    return star_pattern(v("x"), [(1, v("a")), (2, v("b"))])


def chain_query():
    return chain_pattern([v("x"), 1, v("y"), 2, v("z")])


def record(query, topology, size, cardinality):
    return QueryRecord(
        query=query, topology=topology, size=size, cardinality=cardinality
    )


class TestSafeLog:
    def test_floors_at_one(self):
        assert _safe_log(0.0) == 0.0
        assert _safe_log(0.5) == 0.0

    def test_log_above_one(self):
        assert _safe_log(math.e) == pytest.approx(1.0)


class TestGeometricPolicy:
    def test_geometric_mean_of_estimates(self):
        compound = CompoundEstimator(
            Constant(100.0), Constant(1.0), policy="geometric"
        )
        assert compound.estimate(star_query()) == pytest.approx(10.0)

    def test_identical_models_are_fixed_point(self):
        compound = CompoundEstimator(
            Constant(42.0), Constant(42.0), policy="geometric"
        )
        assert compound.estimate(star_query()) == pytest.approx(42.0)

    def test_geometric_minimises_worst_qerror(self):
        # Models off by 1/c and c: geometric mean is exact.
        truth = 50.0
        compound = CompoundEstimator(
            Constant(truth * 4), Constant(truth / 4), policy="geometric"
        )
        assert compound.estimate(star_query()) == pytest.approx(truth)


class TestRouterPolicy:
    def test_star_routes_to_unsupervised(self):
        sup, uns = Constant(1.0), Constant(2.0)
        compound = CompoundEstimator(sup, uns, policy="router")
        assert compound.estimate(star_query()) == 2.0
        assert sup.calls == 0

    def test_chain_routes_to_supervised(self):
        sup, uns = Constant(1.0), Constant(2.0)
        compound = CompoundEstimator(sup, uns, policy="router")
        assert compound.estimate(chain_query()) == 1.0
        assert uns.calls == 0


class TestValidatedPolicy:
    def test_requires_validation_workload(self):
        with pytest.raises(ValueError, match="validation"):
            CompoundEstimator(
                Constant(1.0), Constant(1.0), policy="validated"
            )

    def test_better_model_gets_heavier_weight(self):
        # Supervised is exact on the validation set, unsupervised off 10x.
        validation = [record(star_query(), "star", 2, 100)]
        compound = CompoundEstimator(
            Constant(100.0),
            Constant(1000.0),
            policy="validated",
            validation=validation,
        )
        weights = compound.weight_for(("star", 2))
        assert weights.supervised > 0.9
        estimate = compound.estimate(star_query())
        # Blended estimate leans towards the supervised answer.
        assert estimate < 200.0

    def test_tied_models_split_evenly(self):
        validation = [record(star_query(), "star", 2, 100)]
        compound = CompoundEstimator(
            Constant(200.0),
            Constant(50.0),
            policy="validated",
            validation=validation,
        )
        weights = compound.weight_for(("star", 2))
        assert weights.supervised == pytest.approx(0.5)

    def test_unseen_shape_defaults_to_even_split(self):
        validation = [record(star_query(), "star", 2, 100)]
        compound = CompoundEstimator(
            Constant(100.0),
            Constant(400.0),
            policy="validated",
            validation=validation,
        )
        weights = compound.weight_for(("chain", 5))
        assert weights.supervised == 0.5
        assert weights.unsupervised == 0.5

    def test_perfect_models_split_evenly(self):
        validation = [record(star_query(), "star", 2, 100)]
        compound = CompoundEstimator(
            Constant(100.0),
            Constant(100.0),
            policy="validated",
            validation=validation,
        )
        assert compound.weight_for(("star", 2)).supervised == 0.5


class TestFacade:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            CompoundEstimator(
                Constant(1.0), Constant(1.0), policy="democracy"
            )

    def test_memory_sums_models(self):
        compound = CompoundEstimator(
            Constant(1.0, memory=100),
            Constant(1.0, memory=50),
            policy="geometric",
        )
        assert compound.memory_bytes() == 150

    def test_shape_weights_complement(self):
        weights = ShapeWeights(supervised=0.7)
        assert weights.unsupervised == pytest.approx(0.3)


class TestOnRealModels:
    """Integration: compound over actually trained LMKG models."""

    @pytest.fixture(scope="class")
    def trained(self, lubm_store):
        from repro.core.framework import LMKG
        from repro.core.lmkg_s import LMKGSConfig
        from repro.core.lmkg_u import LMKGUConfig
        from repro.sampling import generate_workload

        shapes = [("star", 2)]
        sup = LMKG(
            lubm_store,
            model_type="supervised",
            lmkgs_config=LMKGSConfig(epochs=20, hidden_sizes=(64, 64)),
        )
        sup.fit(shapes=shapes, queries_per_shape=200)
        uns = LMKG(
            lubm_store,
            model_type="unsupervised",
            lmkgu_config=LMKGUConfig(
                epochs=1,
                hidden_sizes=(32, 32),
                training_samples=1_000,
                particles=32,
            ),
        )
        uns.fit(shapes=shapes)
        validation = generate_workload(
            lubm_store, "star", 2, num_queries=20, seed=77
        ).records
        return sup, uns, validation

    def test_all_policies_produce_positive_estimates(self, trained):
        sup, uns, validation = trained
        query = validation[0].query
        for policy in ("geometric", "router"):
            compound = CompoundEstimator(sup, uns, policy=policy)
            assert compound.estimate(query) >= 0.0
        compound = CompoundEstimator(
            sup, uns, policy="validated", validation=validation
        )
        assert compound.estimate(query) >= 0.0

    def test_validated_weights_exist_for_seen_shape(self, trained):
        sup, uns, validation = trained
        compound = CompoundEstimator(
            sup, uns, policy="validated", validation=validation
        )
        weights = compound.weight_for(("star", 2))
        assert 0.0 <= weights.supervised <= 1.0
