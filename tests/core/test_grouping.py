"""Tests for model grouping strategies."""

import pytest

from repro.core.grouping import (
    SingleGrouping,
    SizeGrouping,
    SpecializedGrouping,
    TypeGrouping,
    group_extent,
    make_grouping,
)
from repro.rdf.pattern import star_pattern
from repro.rdf.terms import Variable
from repro.sampling.workload import QueryRecord


def record(topology, size, card=10):
    query = star_pattern(
        Variable("x"), [(1, Variable(f"y{i}")) for i in range(size)]
    )
    return QueryRecord(query, topology, size, card)


class TestKeys:
    def test_specialized(self):
        g = SpecializedGrouping()
        assert g.key("star", 2) == ("star", 2)
        assert g.key("star", 2) != g.key("star", 3)
        assert g.key("star", 2) != g.key("chain", 2)

    def test_type(self):
        g = TypeGrouping()
        assert g.key("star", 2) == g.key("star", 8)
        assert g.key("star", 2) != g.key("chain", 2)

    def test_size(self):
        g = SizeGrouping(boundaries=(4,))
        assert g.key("star", 2) == g.key("chain", 4)
        assert g.key("star", 5) == g.key("chain", 8)
        assert g.key("star", 4) != g.key("star", 5)

    def test_size_multiple_boundaries(self):
        g = SizeGrouping(boundaries=(2, 5))
        assert g.key("star", 2) == "size<=2"
        assert g.key("star", 4) == "size<=5"
        assert g.key("star", 9) == "size>5"

    def test_single(self):
        g = SingleGrouping()
        assert g.key("star", 2) == g.key("chain", 8)

    def test_empty_boundaries_rejected(self):
        with pytest.raises(ValueError):
            SizeGrouping(boundaries=())


class TestPartition:
    def test_specialized_partition(self):
        records = [record("star", 2), record("star", 3), record("chain", 2)]
        groups = SpecializedGrouping().partition(records)
        assert len(groups) == 3

    def test_single_partition(self):
        records = [record("star", 2), record("chain", 5)]
        groups = SingleGrouping().partition(records)
        assert len(groups) == 1
        assert len(groups["all"]) == 2

    def test_size_partition(self):
        records = [record("star", 2), record("chain", 3), record("star", 8)]
        groups = SizeGrouping(boundaries=(4,)).partition(records)
        assert len(groups["size<=4"]) == 2
        assert len(groups["size>4"]) == 1


class TestHelpers:
    def test_factory(self):
        assert isinstance(make_grouping("type"), TypeGrouping)
        assert make_grouping("size", boundaries=(3,)).boundaries == (3,)
        with pytest.raises(KeyError):
            make_grouping("galactic")

    def test_group_extent(self):
        records = [record("star", 2), record("chain", 5)]
        topologies, max_size = group_extent(records)
        assert topologies == ["chain", "star"]
        assert max_size == 5
