"""The unified Estimator protocol: template hooks, validation, clamp."""

import numpy as np
import pytest

from repro.core.estimator import (
    Estimator,
    EstimatorContractError,
    finalize_estimates,
)


class LoopingStub(Estimator):
    """Per-query hook only; the base class supplies the batch loop."""

    name = "loop-stub"

    def __init__(self, value=5.0):
        self.value = value
        self.calls = 0

    def _estimate_one(self, query):
        self.calls += 1
        return self.value


class VectorStub(Estimator):
    """Batch hook only; returns whatever it was told to."""

    name = "vector-stub"

    def __init__(self, raw):
        self.raw = raw

    def _estimate_batch(self, queries):
        return self.raw


class TestDerivedSurfaces:
    def test_estimate_derives_from_batch(self):
        stub = LoopingStub(3.5)
        assert stub.estimate("q") == 3.5
        assert stub.calls == 1

    def test_default_batch_loops_per_query_hook(self):
        stub = LoopingStub(2.0)
        batch = stub.estimate_batch(["a", "b", "c"])
        assert batch.tolist() == [2.0, 2.0, 2.0]
        assert batch.dtype == np.float64
        assert stub.calls == 3

    def test_empty_batch_short_circuits(self):
        stub = LoopingStub()
        assert stub.estimate_batch([]).size == 0
        assert stub.calls == 0

    def test_neither_hook_implemented(self):
        with pytest.raises(NotImplementedError, match="neither"):
            Estimator().estimate_batch(["q"])

    def test_default_memory_bytes(self):
        assert LoopingStub().memory_bytes() == 0


class TestValidationAndClamp:
    """The one clamp site every estimator's output passes through."""

    def test_negatives_clamped_to_zero(self):
        stub = VectorStub(np.array([-3.0, 0.0, 7.5]))
        assert stub.estimate_batch([1, 2, 3]).tolist() == [0.0, 0.0, 7.5]

    def test_negative_per_query_estimate_clamped(self):
        assert LoopingStub(-12.0).estimate("q") == 0.0

    def test_nan_is_a_contract_error(self):
        stub = VectorStub(np.array([1.0, float("nan")]))
        with pytest.raises(EstimatorContractError, match="non-finite"):
            stub.estimate_batch([1, 2])

    def test_inf_is_a_contract_error(self):
        stub = VectorStub(np.array([float("inf")]))
        with pytest.raises(EstimatorContractError, match="non-finite"):
            stub.estimate_batch([1])

    def test_wrong_length_is_a_contract_error(self):
        stub = VectorStub(np.array([1.0, 2.0]))
        with pytest.raises(EstimatorContractError, match="shape"):
            stub.estimate_batch([1, 2, 3])

    def test_wrong_rank_is_a_contract_error(self):
        stub = VectorStub(np.ones((2, 2)))
        with pytest.raises(EstimatorContractError, match="shape"):
            stub.estimate_batch([1, 2])

    def test_list_results_coerced_to_float64(self):
        stub = VectorStub([1, 2, 3])
        batch = stub.estimate_batch(["a", "b", "c"])
        assert batch.dtype == np.float64
        assert batch.tolist() == [1.0, 2.0, 3.0]

    def test_finalize_names_the_offender(self):
        with pytest.raises(EstimatorContractError, match="wj"):
            finalize_estimates([float("nan")], 1, "wj")


class TestConformance:
    """Every shipped estimator family speaks the protocol."""

    def test_baselines_subclass_estimator(self):
        from repro.baselines import (
            BayesNetEstimator,
            CharacteristicSets,
            Impr,
            IndependenceEstimator,
            JSUB,
            MSCN,
            SumRDF,
            WanderJoin,
        )

        for cls in (
            BayesNetEstimator,
            CharacteristicSets,
            Impr,
            IndependenceEstimator,
            JSUB,
            MSCN,
            SumRDF,
            WanderJoin,
        ):
            assert issubclass(cls, Estimator), cls

    def test_core_models_subclass_estimator(self):
        from repro.core import (
            LMKG,
            LMKGS,
            LMKGU,
            BufferedEstimator,
            CompoundEstimator,
            UniversalLMKGU,
        )
        from repro.core.monitor import AdaptiveLMKG

        for cls in (
            LMKG,
            LMKGS,
            LMKGU,
            BufferedEstimator,
            CompoundEstimator,
            UniversalLMKGU,
            AdaptiveLMKG,
        ):
            assert issubclass(cls, Estimator), cls
