"""Cross-cutting property-based tests on core invariants.

These run hypothesis over randomly built graphs and queries, checking
invariants the unit tests only spot-check:

- encoders are injective over bound queries of one shape,
- the estimator protocol (estimate >= 0, finite) holds for every
  estimator on every valid query,
- decomposition preserves the triple multiset and never emits composites,
- q-error scoring is scale-symmetric.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import decompose
from repro.core.encoders import make_encoders
from repro.core.metrics import q_error
from repro.core.pattern_bound import PatternBoundEncoder
from repro.core.sg_encoding import SGEncoding
from repro.rdf.pattern import (
    QueryPattern,
    Topology,
    chain_pattern,
    star_pattern,
)
from repro.rdf.terms import TriplePattern, Variable


def v(name):
    return Variable(name)


# Strategy: a random star query over small domains, possibly unbound.
def star_queries(max_arms=3):
    term = st.one_of(st.integers(1, 30), st.none())

    @st.composite
    def build(draw):
        arms = draw(st.integers(2, max_arms))
        centre = draw(term)
        centre_term = v("c") if centre is None else centre
        pairs = []
        for i in range(arms):
            p = draw(st.integers(1, 7))
            o = draw(term)
            pairs.append((p, v(f"o{i}") if o is None else o))
        return star_pattern(centre_term, pairs)

    return build()


def chain_queries(max_hops=3):
    term = st.one_of(st.integers(1, 30), st.none())

    @st.composite
    def build(draw):
        hops = draw(st.integers(2, max_hops))
        terms = []
        for i in range(hops + 1):
            value = draw(term)
            terms.append(v(f"n{i}") if value is None else value)
            if i < hops:
                terms.append(draw(st.integers(1, 7)))
        return chain_pattern(terms)

    return build()


class TestEncoderInjectivity:
    @given(star_queries(), star_queries())
    @settings(max_examples=60, deadline=None)
    def test_sg_encoding_separates_distinct_stars(self, q1, q2):
        nodes, preds = make_encoders(30, 7, "binary")
        enc = SGEncoding.for_query_size(3, nodes, preds)
        if q1.canonical_key() == q2.canonical_key():
            return
        v1, v2 = enc.encode(q1), enc.encode(q2)
        # Distinct canonical queries of equal size must featurize apart
        # (pairs may legitimately collide across *sizes* after padding —
        # not generated here).
        if q1.size == q2.size:
            assert not np.array_equal(v1, v2)

    @given(chain_queries(), chain_queries())
    @settings(max_examples=60, deadline=None)
    def test_pattern_bound_separates_distinct_chains(self, q1, q2):
        nodes, preds = make_encoders(30, 7, "binary")
        enc = PatternBoundEncoder("chain", 3, nodes, preds)
        # Degenerate draws (all nodes equal) classify as stars; skip them.
        if not (q1.is_chain() and q2.is_chain()):
            return
        if q1.topology() is not Topology.CHAIN:
            return
        if q2.topology() is not Topology.CHAIN:
            return
        if q1.canonical_key() == q2.canonical_key():
            return
        if q1.size != q2.size:
            return
        assert not np.array_equal(enc.encode(q1), enc.encode(q2))


class TestDecompositionInvariants:
    @st.composite
    @staticmethod
    def composite_query(draw):
        triples = [
            TriplePattern(v("x"), draw(st.integers(1, 5)), v("y")),
            TriplePattern(v("x"), draw(st.integers(1, 5)), v("z")),
        ]
        extra = draw(st.integers(1, 3))
        prev = v("z")
        for i in range(extra):
            nxt = v(f"t{i}")
            triples.append(
                TriplePattern(prev, draw(st.integers(1, 5)), nxt)
            )
            prev = nxt
        return QueryPattern(triples)

    @given(composite_query())
    @settings(max_examples=60, deadline=None)
    def test_triples_preserved_and_no_composites(self, query):
        parts = decompose(query)
        flattened = [tp for part in parts for tp in part.triples]
        assert sorted(map(repr, flattened)) == sorted(
            map(repr, query.triples)
        )
        for part in parts:
            assert part.topology() is not Topology.COMPOSITE


class TestQErrorProperties:
    @given(st.floats(1, 1e6), st.floats(1.0, 1e4))
    @settings(max_examples=60)
    def test_scale_symmetry(self, truth, factor):
        # Symmetry holds while both sides stay above the clamp at 1.
        if truth / factor < 1.0:
            return
        over = q_error(truth * factor, truth)
        under = q_error(truth / factor, truth)
        assert over == pytest.approx(under, rel=1e-6)

    @given(st.floats(1, 1e6), st.floats(1, 1e6), st.floats(1, 1e6))
    @settings(max_examples=60)
    def test_weak_transitivity_bound(self, a, b, c):
        """q(a,c) <= q(a,b) * q(b,c): the q-error is a metric-like ratio."""
        assert q_error(a, c) <= q_error(a, b) * q_error(b, c) * (1 + 1e-9)


class TestEstimatorProtocol:
    """Every estimator answers every valid query with a finite
    non-negative number on a real (small) dataset."""

    @pytest.fixture(scope="class")
    def setup(self):
        from repro.baselines import (
            CharacteristicSets,
            Impr,
            IndependenceEstimator,
            JSUB,
            SumRDF,
            WanderJoin,
        )
        from repro.datasets import load_dataset
        from repro.sampling import generate_workload

        store = load_dataset("lubm", scale=0.5, seed=1)
        estimators = [
            CharacteristicSets(store),
            SumRDF(store, target_buckets=64),
            IndependenceEstimator(store),
            WanderJoin(store, walks_per_run=10, runs=2, seed=0),
            JSUB(store, walks_per_run=10, runs=2, seed=0),
            Impr(store, walks_per_run=10, runs=2, seed=0),
        ]
        queries = [
            r.query
            for topology in ("star", "chain")
            for r in generate_workload(
                store, topology, 2, 15, seed=80
            ).records
        ]
        return estimators, queries

    def test_all_finite_nonnegative(self, setup):
        estimators, queries = setup
        for estimator in estimators:
            for query in queries:
                value = estimator.estimate(query)
                assert np.isfinite(value), estimator.name
                assert value >= 0.0, estimator.name
