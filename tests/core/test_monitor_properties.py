"""Property-based tests for the workload drift monitor.

Hypothesis-checked invariants the unit tests only spot-check:

- within one window, the drift verdict depends on the *distribution*
  of observed shapes, not their order,
- ``reset()`` restores a clean slate: a reset monitor is
  indistinguishable from a freshly built one with the same reference,
- total-variation distance is a bounded symmetric divergence,
- the reference profile is scale-invariant under normalisation.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.monitor import WorkloadMonitor, total_variation

SHAPES = [
    ("star", 2),
    ("star", 3),
    ("chain", 2),
    ("chain", 3),
    ("tree", 4),
]

#: Shorter than the monitors' window below, so no observation is ever
#: evicted — eviction is (intentionally) order-dependent.
shape_sequences = st.lists(
    st.sampled_from(SHAPES), min_size=1, max_size=60
)

shape_distributions = st.dictionaries(
    st.sampled_from(SHAPES),
    st.floats(0.01, 1.0),
    min_size=1,
    max_size=len(SHAPES),
)


def make_monitor():
    monitor = WorkloadMonitor(
        window_size=100, threshold=0.2, min_queries=1, hot_share=0.1
    )
    monitor.set_reference({("star", 2): 0.5, ("chain", 2): 0.5})
    return monitor


def feed(monitor, shapes):
    for shape in shapes:
        monitor.observe(shape)


@settings(max_examples=60, deadline=None)
@given(shapes=shape_sequences, seed=st.integers(0, 2**32 - 1))
def test_drift_verdict_is_permutation_invariant(shapes, seed):
    shuffled = list(shapes)
    random.Random(seed).shuffle(shuffled)
    ordered, permuted = make_monitor(), make_monitor()
    feed(ordered, shapes)
    feed(permuted, shuffled)
    assert ordered.window_shares() == pytest.approx(
        permuted.window_shares()
    )
    first, second = ordered.check(), permuted.check()
    assert (first is None) == (second is None)
    if first is not None:
        assert first.distance == pytest.approx(second.distance)
        assert first.emerging == second.emerging
        assert first.fading == second.fading


@settings(max_examples=60, deadline=None)
@given(before=shape_sequences, after=shape_sequences)
def test_reset_restores_a_clean_slate(before, after):
    monitor = make_monitor()
    feed(monitor, before)
    monitor.reset()
    assert monitor.window_shares() == {}
    assert monitor.check() is None
    # After reset, the monitor behaves exactly like a fresh one fed
    # the same observations under the same reference.
    fresh = make_monitor()
    feed(monitor, after)
    feed(fresh, after)
    assert monitor.window_shares() == fresh.window_shares()
    assert monitor.check() == fresh.check()


@settings(max_examples=100, deadline=None)
@given(a=shape_distributions, b=shape_distributions)
def test_total_variation_is_a_bounded_symmetric_divergence(a, b):
    distance = total_variation(a, b)
    assert total_variation(a, a) == pytest.approx(0.0)
    assert distance == pytest.approx(total_variation(b, a))
    # Bounded by the distributions' masses (= 1 when normalised).
    bound = 0.5 * (sum(a.values()) + sum(b.values()))
    assert 0.0 <= distance <= bound + 1e-9


@settings(max_examples=60, deadline=None)
@given(
    shares=shape_distributions,
    factor=st.floats(0.1, 100.0),
)
def test_reference_is_scale_invariant(shares, factor):
    plain, scaled = WorkloadMonitor(), WorkloadMonitor()
    plain.set_reference(shares)
    scaled.set_reference(
        {shape: share * factor for shape, share in shares.items()}
    )
    assert plain.reference == pytest.approx(scaled.reference)
    assert sum(plain.reference.values()) == pytest.approx(1.0)
