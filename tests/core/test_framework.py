"""Tests for the LMKG framework façade: grouping, routing, decomposition."""

import pytest

from repro.core.framework import LMKG, EstimationError
from repro.core.lmkg_s import LMKGSConfig
from repro.core.lmkg_u import LMKGUConfig
from repro.rdf.pattern import QueryPattern, chain_pattern, star_pattern
from repro.rdf.terms import TriplePattern, Variable
from repro.sampling import generate_workload

FAST_S = LMKGSConfig(hidden_sizes=(32, 32), epochs=15, seed=0)
FAST_U = LMKGUConfig(
    embed_dim=8,
    hidden_sizes=(32, 32),
    epochs=2,
    training_samples=2_000,
    particles=64,
    seed=0,
)


def v(name):
    return Variable(name)


@pytest.fixture(scope="module")
def lubm_store():
    from repro.datasets import load_dataset

    return load_dataset("lubm", scale=0.5, seed=1)


@pytest.fixture(scope="module")
def supervised(lubm_store):
    framework = LMKG(
        lubm_store,
        model_type="supervised",
        grouping="size",
        lmkgs_config=FAST_S,
    )
    framework.fit(
        shapes=[("star", 2), ("chain", 2)], queries_per_shape=250
    )
    return framework


class TestConstruction:
    def test_unknown_model_type(self, lubm_store):
        with pytest.raises(ValueError):
            LMKG(lubm_store, model_type="semi-supervised")

    def test_unsupervised_forces_specialized(self, lubm_store):
        framework = LMKG(
            lubm_store, model_type="unsupervised", grouping="single"
        )
        assert framework.grouping.name == "specialized"

    def test_grouping_by_name_or_instance(self, lubm_store):
        from repro.core.grouping import TypeGrouping

        by_name = LMKG(lubm_store, grouping="type")
        by_instance = LMKG(lubm_store, grouping=TypeGrouping())
        assert by_name.grouping.name == by_instance.grouping.name


class TestCreationPhase:
    def test_report_lists_models(self, supervised):
        assert supervised.num_models() >= 1
        assert supervised.memory_bytes() > 0

    def test_workload_override(self, lubm_store):
        workload = generate_workload(lubm_store, "star", 2, 150, seed=42)
        framework = LMKG(
            lubm_store, grouping="specialized", lmkgs_config=FAST_S
        )
        report = framework.fit(
            shapes=[("star", 2)], workload=workload.records
        )
        assert report.training_records[("star", 2)] == len(workload)

    def test_unsupervised_creation(self, lubm_store):
        framework = LMKG(
            lubm_store, model_type="unsupervised", lmkgu_config=FAST_U
        )
        report = framework.fit(shapes=[("star", 2)])
        assert ("star", 2) in report.model_keys


class TestExecutionPhase:
    def test_star_and_chain_routed(self, supervised, lubm_store):
        star = generate_workload(lubm_store, "star", 2, 5, seed=9)
        chain = generate_workload(lubm_store, "chain", 2, 5, seed=9)
        for record in list(star) + list(chain):
            assert supervised.estimate(record.query) >= 0.0

    def test_single_triple_exact(self, supervised, lubm_store):
        tp = next(iter(lubm_store))
        query = QueryPattern([TriplePattern(tp[0], tp[1], v("o"))])
        expected = lubm_store.count_pattern(query.triples[0])
        assert supervised.estimate(query) == float(expected)

    def test_missing_model_raises(self, supervised):
        big = star_pattern(
            v("x"), [(1, v(f"y{i}")) for i in range(8)]
        )
        with pytest.raises(EstimationError):
            supervised.estimate(big)

    def test_composite_query_decomposed(self, supervised, lubm_store):
        """star + tail composite routes through decomposition and the
        single-triple exact path."""
        star = generate_workload(lubm_store, "star", 2, 10, seed=30)
        record = star.records[0]
        tail_var = record.query.variables[-1]
        composite = QueryPattern(
            list(record.query.triples)
            + [TriplePattern(tail_var, 1, v("tail"))]
        )
        estimate = supervised.estimate(composite)
        assert estimate >= 0.0

    def test_unsupervised_size_pinned(self, lubm_store):
        framework = LMKG(
            lubm_store, model_type="unsupervised", lmkgu_config=FAST_U
        )
        framework.fit(shapes=[("star", 2)])
        query3 = star_pattern(
            v("x"), [(1, v("a")), (2, v("b")), (3, v("c"))]
        )
        with pytest.raises(EstimationError):
            framework.estimate(query3)


class TestEstimateBatch:
    def test_matches_estimate_loop(self, supervised, lubm_store):
        """The batched router must agree with the per-query path."""
        import numpy as np

        star = generate_workload(lubm_store, "star", 2, 20, seed=11)
        chain = generate_workload(lubm_store, "chain", 2, 20, seed=12)
        queries = [r.query for r in list(star) + list(chain)]
        loop = [supervised.estimate(q) for q in queries]
        batch = supervised.estimate_batch(queries)
        assert len(batch) == len(queries)
        assert np.allclose(loop, batch, rtol=1e-6)

    def test_single_triples_exact_in_batch(self, supervised, lubm_store):
        tp = next(iter(lubm_store))
        query = QueryPattern([TriplePattern(tp[0], tp[1], v("o"))])
        expected = float(lubm_store.count_pattern(query.triples[0]))
        assert supervised.estimate_batch([query]).tolist() == [expected]

    def test_returns_ndarray(self, supervised, lubm_store):
        """The unified Estimator protocol: float64 ndarray, like the
        baselines."""
        import numpy as np

        star = generate_workload(lubm_store, "star", 2, 5, seed=13)
        batch = supervised.estimate_batch([r.query for r in star])
        assert isinstance(batch, np.ndarray)
        assert batch.dtype == np.float64
        assert np.all(batch >= 0.0)

    def test_list_shim_for_existing_callers(self, supervised, lubm_store):
        """Migration shim: pre-redesign callers did
        ``list(framework.estimate_batch(qs))`` (the old List[float]
        return); iterating the ndarray must keep working and yield the
        same per-query floats."""
        star = generate_workload(lubm_store, "star", 2, 10, seed=14)
        queries = [r.query for r in star]
        batch = supervised.estimate_batch(queries)
        as_list = list(batch)
        assert len(as_list) == len(queries)
        assert all(isinstance(float(value), float) for value in as_list)
        assert as_list == [float(value) for value in batch]

    def test_empty_batch(self, supervised):
        assert supervised.estimate_batch([]).size == 0

    def test_missing_model_raises_in_batch(self, supervised):
        big = star_pattern(
            v("x"), [(1, v(f"y{i}")) for i in range(8)]
        )
        with pytest.raises(EstimationError):
            supervised.estimate_batch([big])

    def test_loop_fallback_for_models_without_batch(
        self, supervised, lubm_store
    ):
        """A model exposing only estimate() is looped, so callers get
        one API regardless of model support."""

        class LoopOnly:
            calls = 0

            def estimate(self, query):
                LoopOnly.calls += 1
                return 7.0

        framework = LMKG(
            lubm_store, model_type="supervised", grouping="size"
        )
        key = framework.grouping.key("star", 2)
        framework.models[key] = LoopOnly()
        framework._group_max_size[key] = 2
        framework._group_topologies[key] = {"star"}
        queries = [
            star_pattern(v("x"), [(1, v("a")), (2, v("b"))]),
            star_pattern(v("x"), [(2, v("a")), (3, v("b"))]),
        ]
        estimates = framework.estimate_batch(queries)
        assert estimates.tolist() == [7.0, 7.0]
        assert LoopOnly.calls == 2

    def test_unsupervised_batch(self, lubm_store):
        framework = LMKG(
            lubm_store, model_type="unsupervised", lmkgu_config=FAST_U
        )
        framework.fit(shapes=[("star", 2)])
        star = generate_workload(lubm_store, "star", 2, 8, seed=21)
        estimates = framework.estimate_batch(
            [r.query for r in star]
        )
        assert len(estimates) == len(star)
        assert all(e >= 0.0 for e in estimates)
