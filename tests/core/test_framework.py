"""Tests for the LMKG framework façade: grouping, routing, decomposition."""

import pytest

from repro.core.framework import LMKG, EstimationError
from repro.core.lmkg_s import LMKGSConfig
from repro.core.lmkg_u import LMKGUConfig
from repro.rdf.pattern import QueryPattern, chain_pattern, star_pattern
from repro.rdf.terms import TriplePattern, Variable
from repro.sampling import generate_workload

FAST_S = LMKGSConfig(hidden_sizes=(32, 32), epochs=15, seed=0)
FAST_U = LMKGUConfig(
    embed_dim=8,
    hidden_sizes=(32, 32),
    epochs=2,
    training_samples=2_000,
    particles=64,
    seed=0,
)


def v(name):
    return Variable(name)


@pytest.fixture(scope="module")
def lubm_store():
    from repro.datasets import load_dataset

    return load_dataset("lubm", scale=0.5, seed=1)


@pytest.fixture(scope="module")
def supervised(lubm_store):
    framework = LMKG(
        lubm_store,
        model_type="supervised",
        grouping="size",
        lmkgs_config=FAST_S,
    )
    framework.fit(
        shapes=[("star", 2), ("chain", 2)], queries_per_shape=250
    )
    return framework


class TestConstruction:
    def test_unknown_model_type(self, lubm_store):
        with pytest.raises(ValueError):
            LMKG(lubm_store, model_type="semi-supervised")

    def test_unsupervised_forces_specialized(self, lubm_store):
        framework = LMKG(
            lubm_store, model_type="unsupervised", grouping="single"
        )
        assert framework.grouping.name == "specialized"

    def test_grouping_by_name_or_instance(self, lubm_store):
        from repro.core.grouping import TypeGrouping

        by_name = LMKG(lubm_store, grouping="type")
        by_instance = LMKG(lubm_store, grouping=TypeGrouping())
        assert by_name.grouping.name == by_instance.grouping.name


class TestCreationPhase:
    def test_report_lists_models(self, supervised):
        assert supervised.num_models() >= 1
        assert supervised.memory_bytes() > 0

    def test_workload_override(self, lubm_store):
        workload = generate_workload(lubm_store, "star", 2, 150, seed=42)
        framework = LMKG(
            lubm_store, grouping="specialized", lmkgs_config=FAST_S
        )
        report = framework.fit(
            shapes=[("star", 2)], workload=workload.records
        )
        assert report.training_records[("star", 2)] == len(workload)

    def test_unsupervised_creation(self, lubm_store):
        framework = LMKG(
            lubm_store, model_type="unsupervised", lmkgu_config=FAST_U
        )
        report = framework.fit(shapes=[("star", 2)])
        assert ("star", 2) in report.model_keys


class TestExecutionPhase:
    def test_star_and_chain_routed(self, supervised, lubm_store):
        star = generate_workload(lubm_store, "star", 2, 5, seed=9)
        chain = generate_workload(lubm_store, "chain", 2, 5, seed=9)
        for record in list(star) + list(chain):
            assert supervised.estimate(record.query) >= 0.0

    def test_single_triple_exact(self, supervised, lubm_store):
        tp = next(iter(lubm_store))
        query = QueryPattern([TriplePattern(tp[0], tp[1], v("o"))])
        expected = lubm_store.count_pattern(query.triples[0])
        assert supervised.estimate(query) == float(expected)

    def test_missing_model_raises(self, supervised):
        big = star_pattern(
            v("x"), [(1, v(f"y{i}")) for i in range(8)]
        )
        with pytest.raises(EstimationError):
            supervised.estimate(big)

    def test_composite_query_decomposed(self, supervised, lubm_store):
        """star + tail composite routes through decomposition and the
        single-triple exact path."""
        star = generate_workload(lubm_store, "star", 2, 10, seed=30)
        record = star.records[0]
        tail_var = record.query.variables[-1]
        composite = QueryPattern(
            list(record.query.triples)
            + [TriplePattern(tail_var, 1, v("tail"))]
        )
        estimate = supervised.estimate(composite)
        assert estimate >= 0.0

    def test_unsupervised_size_pinned(self, lubm_store):
        framework = LMKG(
            lubm_store, model_type="unsupervised", lmkgu_config=FAST_U
        )
        framework.fit(shapes=[("star", 2)])
        query3 = star_pattern(
            v("x"), [(1, v("a")), (2, v("b")), (3, v("c"))]
        )
        with pytest.raises(EstimationError):
            framework.estimate(query3)
