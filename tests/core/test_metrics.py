"""Tests for the q-error metric and summaries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import q_error, q_errors, summarize


class TestQError:
    def test_perfect_estimate(self):
        assert q_error(100, 100) == 1.0

    def test_symmetric(self):
        assert q_error(10, 100) == q_error(100, 10) == 10.0

    def test_clamps_below_one(self):
        # An estimator answering 0 is scored as answering 1.
        assert q_error(0, 50) == 50.0
        assert q_error(0.2, 50) == 50.0

    def test_minimum_is_one(self):
        assert q_error(3, 3) >= 1.0

    @given(
        st.floats(1, 1e9),
        st.floats(1, 1e9),
    )
    @settings(max_examples=60)
    def test_always_at_least_one(self, est, tru):
        assert q_error(est, tru) >= 1.0


class TestQErrors:
    def test_vectorised(self):
        errors = q_errors([1, 10, 100], [1, 100, 10])
        assert np.allclose(errors, [1, 10, 10])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            q_errors([1, 2], [1])


class TestSummarize:
    def test_known_aggregates(self):
        summary = summarize([1, 1, 1, 1], [1, 2, 4, 8])
        assert summary.count == 4
        assert summary.max == 8.0
        assert np.isclose(summary.mean, (1 + 2 + 4 + 8) / 4)
        assert np.isclose(summary.geometric_mean, (1 * 2 * 4 * 8) ** 0.25)
        assert np.isclose(summary.median, 3.0)

    def test_empty_summary_is_nan(self):
        summary = summarize([], [])
        assert summary.count == 0
        assert np.isnan(summary.mean)

    def test_row_renders(self):
        row = summarize([2], [4]).row()
        assert "mean" in row and "max" in row
