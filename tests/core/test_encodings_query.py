"""Tests for the pattern-bound and SG query encodings."""

import numpy as np
import pytest

from repro.core.encoders import make_encoders
from repro.core.pattern_bound import PatternBoundEncoder
from repro.core.sg_encoding import SGEncoding
from repro.rdf.pattern import chain_pattern, star_pattern
from repro.rdf.terms import Variable


def v(name):
    return Variable(name)


@pytest.fixture
def encoders():
    return make_encoders(31, 7, "binary")  # 5-bit nodes, 3-bit predicates


class TestPatternBound:
    def test_width_formula(self, encoders):
        nodes, preds = encoders
        enc = PatternBoundEncoder("star", 3, nodes, preds)
        assert enc.width == 5 + 3 * (3 + 5)

    def test_star_roundtrip_structure(self, encoders):
        nodes, preds = encoders
        enc = PatternBoundEncoder("star", 2, nodes, preds)
        query = star_pattern(v("x"), [(1, 9), (2, v("y"))])
        vec = enc.encode(query)
        assert vec.shape == (enc.width,)
        # Subject unbound -> first 5 bits zero.
        assert np.all(vec[:5] == 0)

    def test_triple_order_canonicalised(self, encoders):
        nodes, preds = encoders
        enc = PatternBoundEncoder("star", 2, nodes, preds)
        q1 = star_pattern(v("x"), [(1, 9), (2, 11)])
        q2 = star_pattern(v("x"), [(2, 11), (1, 9)])
        assert np.array_equal(enc.encode(q1), enc.encode(q2))

    def test_chain_preserves_walk_order(self, encoders):
        nodes, preds = encoders
        enc = PatternBoundEncoder("chain", 2, nodes, preds)
        q1 = chain_pattern([v("a"), 1, v("b"), 2, v("c")])
        q2 = chain_pattern([v("a"), 2, v("b"), 1, v("c")])
        assert not np.array_equal(enc.encode(q1), enc.encode(q2))

    def test_smaller_query_padded(self, encoders):
        nodes, preds = encoders
        enc = PatternBoundEncoder("star", 4, nodes, preds)
        query = star_pattern(v("x"), [(1, 9), (2, 11)])
        vec = enc.encode(query)
        pad = 2 * (3 + 5)
        assert np.all(vec[-pad:] == 0)

    def test_oversized_query_rejected(self, encoders):
        nodes, preds = encoders
        enc = PatternBoundEncoder("star", 2, nodes, preds)
        query = star_pattern(
            v("x"), [(1, v("a")), (2, v("b")), (3, v("c"))]
        )
        with pytest.raises(ValueError):
            enc.encode(query)

    def test_wrong_topology_rejected(self, encoders):
        nodes, preds = encoders
        enc = PatternBoundEncoder("star", 3, nodes, preds)
        with pytest.raises(ValueError):
            enc.encode(chain_pattern([v("a"), 1, v("b"), 2, v("c")]))

    def test_distinct_queries_distinct_vectors(self, encoders):
        nodes, preds = encoders
        enc = PatternBoundEncoder("star", 2, nodes, preds)
        q1 = star_pattern(v("x"), [(1, 9), (2, 11)])
        q2 = star_pattern(v("x"), [(1, 9), (2, 12)])
        q3 = star_pattern(v("x"), [(1, 9), (2, v("y"))])
        vecs = [enc.encode(q) for q in (q1, q2, q3)]
        assert not np.array_equal(vecs[0], vecs[1])
        assert not np.array_equal(vecs[0], vecs[2])

    def test_batch_shape(self, encoders):
        nodes, preds = encoders
        enc = PatternBoundEncoder("star", 2, nodes, preds)
        queries = [
            star_pattern(v("x"), [(1, 9), (2, 11)]),
            star_pattern(v("x"), [(1, v("y")), (2, 11)]),
        ]
        assert enc.encode_batch(queries).shape == (2, enc.width)


class TestSGEncoding:
    def test_width_components(self, encoders):
        nodes, preds = encoders
        enc = SGEncoding(3, 2, nodes, preds)
        assert enc.a_width == 3 * 3 * 2
        assert enc.x_width == 3 * 5
        assert enc.e_width == 2 * 3
        assert enc.width == enc.a_width + enc.x_width + enc.e_width

    def test_for_query_size(self, encoders):
        nodes, preds = encoders
        enc = SGEncoding.for_query_size(3, nodes, preds)
        assert enc.max_nodes == 4
        assert enc.max_edges == 3

    def test_paper_figure2_star(self, encoders):
        """The Fig. 2 example: ?Book :hasAuthor :StephenKing ;
        :genre :Horror — A has edges node0->node1 (edge 0) and
        node0->node2 (edge 1)."""
        nodes, preds = encoders
        enc = SGEncoding(3, 2, nodes, preds)
        query = star_pattern(v("book"), [(3, 1), (2, 4)])
        a, x, e = enc.components(query)
        assert a[0, 1, 0] == 1.0  # first edge: centre -> first object
        assert a[0, 2, 1] == 1.0  # second edge: centre -> second object
        assert a.sum() == 2.0
        # Node 0 is the unbound book -> zero row in X.
        assert np.all(x[0] == 0)

    def test_star_and_chain_distinguished_by_a(self, encoders):
        """The adjacency tensor separates topologies even when terms
        coincide — the core claim of the SG-Encoding."""
        nodes, preds = encoders
        enc = SGEncoding(3, 2, nodes, preds)
        star = star_pattern(v("x"), [(1, v("y")), (2, v("z"))])
        chain = chain_pattern([v("x"), 1, v("y"), 2, v("z")])
        a_star, _, e_star = enc.components(star)
        a_chain, _, e_chain = enc.components(chain)
        assert np.array_equal(e_star, e_chain)
        assert not np.array_equal(a_star, a_chain)

    def test_chain_adjacency_path(self, encoders):
        nodes, preds = encoders
        enc = SGEncoding(3, 2, nodes, preds)
        chain = chain_pattern([v("a"), 1, v("b"), 2, v("c")])
        a, _, _ = enc.components(chain)
        assert a[0, 1, 0] == 1.0
        assert a[1, 2, 1] == 1.0

    def test_too_many_nodes_rejected(self, encoders):
        nodes, preds = encoders
        enc = SGEncoding(2, 2, nodes, preds)
        with pytest.raises(ValueError):
            enc.encode(star_pattern(v("x"), [(1, v("y")), (2, v("z"))]))

    def test_too_many_edges_rejected(self, encoders):
        nodes, preds = encoders
        enc = SGEncoding(4, 1, nodes, preds)
        with pytest.raises(ValueError):
            enc.encode(star_pattern(v("x"), [(1, v("y")), (2, v("z"))]))

    def test_flatten_consistent_with_components(self, encoders):
        nodes, preds = encoders
        enc = SGEncoding(3, 2, nodes, preds)
        query = star_pattern(v("x"), [(1, 9), (2, v("y"))])
        a, x, e = enc.components(query)
        flat = enc.encode(query)
        assert np.array_equal(
            flat, np.concatenate([a.ravel(), x.ravel(), e.ravel()])
        )

    def test_self_loop_representable(self, encoders):
        """(?x, p, ?x) — a self-join the one-hot-free encodings support."""
        from repro.rdf.pattern import QueryPattern
        from repro.rdf.terms import TriplePattern

        nodes, preds = encoders
        enc = SGEncoding(3, 2, nodes, preds)
        query = QueryPattern([TriplePattern(v("x"), 1, v("x"))])
        a, _, _ = enc.components(query)
        assert a[0, 0, 0] == 1.0
