"""Tests for term-level one-hot and binary encodings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoders import (
    TermEncoder,
    binary_width,
    decode_binary,
    encode_binary,
    encode_one_hot,
    make_encoders,
    one_hot_width,
)
from repro.rdf.terms import Variable


class TestWidths:
    def test_one_hot_width_is_domain(self):
        assert one_hot_width(7) == 7

    def test_binary_width_examples(self):
        # Paper example: 3 unique subjects -> 2 bits.
        assert binary_width(3) == 2
        assert binary_width(1) == 1
        assert binary_width(7) == 3
        assert binary_width(8) == 4

    def test_invalid_domain(self):
        with pytest.raises(ValueError):
            binary_width(0)
        with pytest.raises(ValueError):
            one_hot_width(0)


class TestOneHot:
    def test_paper_example(self):
        # "one-hot encoding for the subject with id 2 will be [010]".
        assert np.array_equal(encode_one_hot(2, 3), [0.0, 1.0, 0.0])

    def test_variable_is_zero_vector(self):
        assert np.array_equal(encode_one_hot(Variable("x"), 3), [0, 0, 0])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            encode_one_hot(4, 3)
        with pytest.raises(ValueError):
            encode_one_hot(0, 3)


class TestBinary:
    def test_paper_example(self):
        # "the binary encoding of the subject with id 2 will be [10]"
        # (LSB-first here: 2 = 0b10 -> [0, 1]).
        vec = encode_binary(2, 3)
        assert decode_binary(vec) == 2

    def test_variable_is_zero_vector(self):
        vec = encode_binary(Variable("x"), 100)
        assert np.all(vec == 0)
        assert decode_binary(vec) == 0

    @given(st.integers(1, 500))
    @settings(max_examples=60)
    def test_roundtrip(self, term_id):
        vec = encode_binary(term_id, 500)
        assert decode_binary(vec) == term_id

    @given(st.integers(1, 499), st.integers(1, 499))
    @settings(max_examples=60)
    def test_injective(self, a, b):
        if a == b:
            return
        assert not np.array_equal(
            encode_binary(a, 500), encode_binary(b, 500)
        )

    def test_zero_never_collides_with_term(self):
        """The all-zero (unbound) vector differs from every real id."""
        for term_id in range(1, 32):
            assert decode_binary(encode_binary(term_id, 31)) != 0


class TestTermEncoder:
    def test_kind_dispatch(self):
        assert TermEncoder(10, "binary").width == binary_width(10)
        assert TermEncoder(10, "one_hot").width == 10

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            TermEncoder(10, "gray_code")

    def test_make_encoders(self):
        nodes, preds = make_encoders(100, 20, "binary")
        assert nodes.domain == 100
        assert preds.domain == 20

    def test_binary_much_smaller_than_one_hot(self):
        """The size argument for binary encoding on heterogeneous KGs."""
        binary = TermEncoder(1_000_000, "binary")
        assert binary.width <= 20
