"""Tests for the workload-driven model planner (§IV)."""

import pytest

from repro.core.planner import (
    ModelPlanner,
    WorkloadProfile,
    project_lmkgs_bytes,
)
from repro.rdf.pattern import star_pattern
from repro.rdf.terms import Variable
from repro.sampling.workload import QueryRecord


def v(name):
    return Variable(name)


def record(topology, size):
    query = star_pattern(
        v("x"), [(1, v(f"y{i}")) for i in range(size)]
    )
    return QueryRecord(query, topology, size, 10)


def skewed_workload():
    """70% star:2, 20% chain:2, 10% star:5."""
    return (
        [record("star", 2)] * 70
        + [record("chain", 2)] * 20
        + [record("star", 5)] * 10
    )


class TestWorkloadProfile:
    def test_shares_sum_to_one(self):
        profile = WorkloadProfile.from_records(skewed_workload())
        assert sum(profile.shares.values()) == pytest.approx(1.0)
        assert profile.shares[("star", 2)] == pytest.approx(0.7)

    def test_hot_shapes_ordered(self):
        profile = WorkloadProfile.from_records(skewed_workload())
        hot = profile.hot_shapes(threshold=0.15)
        assert hot == [("star", 2), ("chain", 2)]


class TestProjection:
    def test_grows_with_size(self, tiny_store):
        small = project_lmkgs_bytes(tiny_store, 2)
        large = project_lmkgs_bytes(tiny_store, 8)
        assert large > small

    def test_matches_real_model(self, lubm_store):
        """The projection must equal the built model's footprint."""
        from repro.core.lmkg_s import LMKGS, LMKGSConfig
        from repro.sampling import generate_workload

        workload = generate_workload(lubm_store, "star", 2, 60, seed=8)
        model = LMKGS(
            lubm_store,
            ["star"],
            2,
            LMKGSConfig(hidden_sizes=(64, 64), epochs=1),
        )
        model.fit(workload.records)
        projected = project_lmkgs_bytes(
            lubm_store, 2, hidden_sizes=(64, 64)
        )
        assert projected == model.memory_bytes()


class TestPlanner:
    def test_unlimited_budget_specialises_hot_shapes(self, lubm_store):
        planner = ModelPlanner(lubm_store, hot_threshold=0.15)
        plan = planner.plan(skewed_workload())
        groupings = [m.grouping for m in plan.models]
        # star:2 and chain:2 clear the 15% bar; star:5 lands in the
        # grouped fallback model.
        assert groupings.count("specialized") == 2
        assert groupings.count("size") == 1
        assert plan.uncovered == pytest.approx(0.0)
        assert plan.coverage == pytest.approx(1.0)

    def test_tiny_budget_falls_back_to_grouped(self, lubm_store):
        planner = ModelPlanner(lubm_store, hidden_sizes=(64, 64))
        one_model = project_lmkgs_bytes(
            lubm_store, 5, hidden_sizes=(64, 64)
        )
        plan = planner.plan(skewed_workload(), budget_bytes=one_model)
        # Not enough budget for specialised models plus the grouped one;
        # everything must fit within the cap.
        assert plan.total_bytes <= one_model

    def test_zero_budget_covers_nothing(self, lubm_store):
        planner = ModelPlanner(lubm_store)
        plan = planner.plan(skewed_workload(), budget_bytes=0)
        assert not plan.models
        assert plan.uncovered == pytest.approx(1.0)

    def test_empty_workload_rejected(self, lubm_store):
        with pytest.raises(ValueError):
            ModelPlanner(lubm_store).plan([])

    def test_plan_shapes_feed_framework(self, lubm_store):
        """End-to-end: plan -> fit the planned shapes -> estimate."""
        from repro.core.framework import LMKG
        from repro.core.lmkg_s import LMKGSConfig
        from repro.sampling import generate_workload

        workload = (
            generate_workload(lubm_store, "star", 2, 80, seed=9).records
            + generate_workload(lubm_store, "chain", 2, 20, seed=10).records
        )
        plan = ModelPlanner(lubm_store).plan(workload)
        framework = LMKG(
            lubm_store,
            grouping="specialized",
            lmkgs_config=LMKGSConfig(hidden_sizes=(32,), epochs=5),
        )
        framework.fit(shapes=plan.shapes(), workload=workload)
        assert framework.estimate(workload[0].query) >= 0.0
