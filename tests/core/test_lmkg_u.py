"""Tests for the unsupervised autoregressive estimator LMKG-U."""

import numpy as np
import pytest

from repro.core.lmkg_u import LMKGU, LMKGUConfig
from repro.core.metrics import q_errors
from repro.rdf.pattern import QueryPattern, chain_pattern, star_pattern
from repro.rdf.terms import TriplePattern, Variable
from repro.sampling import generate_workload

FAST = LMKGUConfig(
    embed_dim=16,
    hidden_sizes=(64, 64),
    epochs=6,
    training_samples=6_000,
    particles=128,
    seed=0,
)


def v(name):
    return Variable(name)


@pytest.fixture(scope="module")
def lubm_store():
    from repro.datasets import load_dataset

    return load_dataset("lubm", scale=0.5, seed=1)


@pytest.fixture(scope="module")
def star_model(lubm_store):
    model = LMKGU(lubm_store, "star", 2, FAST)
    model.fit()
    return model


@pytest.fixture(scope="module")
def chain_model(lubm_store):
    model = LMKGU(lubm_store, "chain", 2, FAST)
    model.fit()
    return model


class TestConfiguration:
    def test_unknown_topology_rejected(self, lubm_store):
        with pytest.raises(ValueError):
            LMKGU(lubm_store, "clique", 2)

    def test_estimate_before_fit_rejected(self, lubm_store):
        model = LMKGU(lubm_store, "star", 2, FAST)
        with pytest.raises(RuntimeError):
            model.estimate(star_pattern(v("x"), [(1, v("a")), (2, v("b"))]))

    def test_size_mismatch_rejected(self, star_model):
        with pytest.raises(ValueError):
            star_model.estimate(star_pattern(v("x"), [(1, v("a"))]))

    def test_wrong_topology_rejected(self, star_model):
        with pytest.raises(ValueError):
            star_model.estimate(
                chain_pattern([v("a"), 1, v("b"), 2, v("c")])
            )

    def test_extra_variable_sharing_rejected(self, star_model):
        query = star_pattern(v("x"), [(1, v("y")), (2, v("y"))])
        with pytest.raises(ValueError):
            star_model.estimate(query)


class TestTraining:
    def test_nll_decreases(self, star_model):
        assert star_model.history[-1] < star_model.history[0]

    def test_universe_is_exact(self, star_model, lubm_store):
        from repro.sampling import count_star_instances

        assert star_model.universe == count_star_instances(lubm_store, 2)


class TestEstimationAccuracy:
    def test_star_accuracy(self, star_model, lubm_store):
        workload = generate_workload(lubm_store, "star", 2, 80, seed=21)
        estimates = [star_model.estimate(r.query) for r in workload]
        errors = q_errors(estimates, workload.cardinalities())
        assert np.exp(np.log(errors).mean()) < 6.0

    def test_chain_accuracy(self, chain_model, lubm_store):
        workload = generate_workload(lubm_store, "chain", 2, 80, seed=22)
        estimates = [chain_model.estimate(r.query) for r in workload]
        errors = q_errors(estimates, workload.cardinalities())
        assert np.exp(np.log(errors).mean()) < 6.0

    def test_fully_bound_probability_path(self, star_model, lubm_store):
        """A fully bound query takes the deterministic (1-particle) path
        and still lands near the true count."""
        from repro.sampling import StarSampler

        instance = StarSampler(lubm_store, 2, seed=3).sample()
        s, p1, o1, p2, o2 = instance
        query = QueryPattern(
            [TriplePattern(s, p1, o1), TriplePattern(s, p2, o2)]
        )
        estimate = star_model.estimate(query)
        assert estimate >= 0.0
        assert np.isfinite(estimate)

    def test_estimates_nonnegative_and_finite(self, star_model, lubm_store):
        workload = generate_workload(lubm_store, "star", 2, 30, seed=23)
        for record in workload:
            estimate = star_model.estimate(record.query)
            assert estimate >= 0.0
            assert np.isfinite(estimate)


class TestIntrospection:
    def test_memory_accounting(self, star_model):
        # Paper-facing checkpoint size stays float32; the in-memory
        # footprint additionally counts the float64 masters, the bool
        # layer masks, and every derived cache currently alive.
        params = star_model.num_parameters()
        assert star_model.checkpoint_bytes() == params * 4
        # Force every fused float32 cache into existence.
        star_model.model.log_prob(
            np.zeros((1, star_model.num_positions), dtype=np.int64)
        )
        footprint = star_model.memory_bytes()
        layers = star_model.model.hidden_layers + [
            star_model.model.out_proj
        ]
        mask_bytes = sum(layer.mask.nbytes for layer in layers)
        assert footprint >= params * 20 + mask_bytes
        # Bounded: masters + grads + fused (+ transposed tied-projection
        # tables) + masked training weights + masks.
        assert footprint <= params * 32 + mask_bytes

    def test_log_likelihood_diagnostic(self, star_model, lubm_store):
        from repro.sampling import sample_instances

        instances, _ = sample_instances(lubm_store, "star", 2, 50, seed=5)
        ll = star_model.log_likelihood(np.array(instances))
        assert np.isfinite(ll)
        assert ll < 0.0


class TestCheckpointSampler:
    """Sampler identity across save/load: the seed keys the noise
    substreams, so a reloaded model must reproduce its estimates."""

    CONFIG = LMKGUConfig(
        embed_dim=8,
        hidden_sizes=(32,),
        epochs=1,
        training_samples=1_000,
        particles=32,
        seed=7,
        chunk_budget=200_000,
    )

    def test_round_trip_with_non_default_seed(self, lubm_store, tmp_path):
        model = LMKGU(lubm_store, "star", 2, self.CONFIG)
        model.fit()
        workload = generate_workload(lubm_store, "star", 2, 12, seed=43)
        queries = [r.query for r in workload]
        before = model.estimate_batch(queries)
        path = tmp_path / "seeded.npz"
        model.save(path)
        fresh = LMKGU.load(path, lubm_store)
        assert fresh.config.seed == 7
        assert fresh.config.chunk_budget == 200_000
        assert np.array_equal(before, fresh.estimate_batch(queries)), (
            "reloaded model drew from differently-keyed noise streams"
        )

    def test_legacy_checkpoint_defaults_gracefully(
        self, lubm_store, tmp_path
    ):
        """Pre-sampler-meta checkpoints (no ``_meta_sampler`` entry)
        load with seed 0 and auto-tuned blocking — the old loader's
        behaviour — instead of crashing."""
        import dataclasses

        from repro.nn.serialization import load_arrays, save_arrays

        config = dataclasses.replace(self.CONFIG, seed=0)
        model = LMKGU(lubm_store, "star", 2, config)
        model.fit()
        path = tmp_path / "modern.npz"
        model.save(path)
        arrays = load_arrays(path)
        assert "_meta_sampler" in arrays
        del arrays["_meta_sampler"]
        legacy_path = tmp_path / "legacy.npz"
        save_arrays(legacy_path, arrays)
        legacy = LMKGU.load(legacy_path, lubm_store)
        assert legacy.config.seed == 0
        assert legacy.config.chunk_budget is None
        workload = generate_workload(lubm_store, "star", 2, 6, seed=47)
        estimates = legacy.estimate_batch([r.query for r in workload])
        assert np.isfinite(estimates).all()
        assert (estimates >= 0.0).all()


class TestInferenceTrunk:
    """The fused float32 sweep: block-width invariance, float64 parity,
    and fused-cache invalidation through continued training."""

    def test_estimates_invariant_to_block_width(
        self, star_model, lubm_store
    ):
        """The chunk is a pure throughput knob: per-(query, position)
        noise substreams give every query the same draws regardless of
        how the batch is blocked.  Residual differences come only from
        BLAS shape-dependent rounding flipping near-tied Gumbel draws,
        which is rare."""
        import dataclasses

        workload = generate_workload(lubm_store, "star", 2, 40, seed=31)
        queries = [r.query for r in workload]
        original = star_model.config
        try:
            star_model.config = dataclasses.replace(
                original, chunk_budget=10**9
            )
            wide = star_model.estimate_batch(queries)
            star_model.config = dataclasses.replace(
                original, chunk_budget=1
            )
            narrow = star_model.estimate_batch(queries)
        finally:
            star_model.config = original
        rel = np.abs(wide - narrow) / np.maximum(
            np.maximum(wide, narrow), 1.0
        )
        assert np.median(rel) < 1e-5
        assert np.mean(rel < 1e-4) >= 0.9

    def test_qerror_parity_float32_vs_float64(
        self, star_model, lubm_store
    ):
        """The q-error distribution of float32 fused estimates matches
        the float64 trunk on a fixed workload."""
        workload = generate_workload(lubm_store, "star", 2, 100, seed=33)
        queries = [r.query for r in workload]
        truths = workload.cardinalities()
        e32 = star_model.estimate_batch(queries)
        star_model.model.set_inference_dtype(np.float64)
        try:
            e64 = star_model.estimate_batch(queries)
        finally:
            star_model.model.set_inference_dtype(np.float32)
        q32 = np.log(q_errors(e32, truths))
        q64 = np.log(q_errors(e64, truths))
        geomean32 = np.exp(q32.mean())
        geomean64 = np.exp(q64.mean())
        assert abs(geomean32 - geomean64) / geomean64 < 0.1
        p90_32 = np.exp(np.quantile(q32, 0.9))
        p90_64 = np.exp(np.quantile(q64, 0.9))
        assert abs(p90_32 - p90_64) / p90_64 < 0.25

    def test_refit_invalidates_fused_caches(self, lubm_store, tmp_path):
        """fit -> estimate -> keep training -> estimate must match a
        fresh-cache run from the checkpointed masters bit for bit."""
        import dataclasses

        from repro.sampling import sample_instances

        config = LMKGUConfig(
            embed_dim=8,
            hidden_sizes=(32,),
            epochs=1,
            training_samples=1_000,
            particles=32,
            chunk_budget=200_000,
        )
        model = LMKGU(lubm_store, "star", 2, config)
        model.fit()
        workload = generate_workload(lubm_store, "star", 2, 12, seed=41)
        queries = [r.query for r in workload]
        before = model.estimate_batch(queries)  # builds fused caches
        instances, _ = sample_instances(
            lubm_store, "star", 2, 512, seed=77
        )
        model.model.fit(np.array(instances), epochs=1, batch_size=128)
        after = model.estimate_batch(queries)
        path = tmp_path / "u.npz"
        model.save(path)
        fresh = LMKGU.load(path, lubm_store)
        fresh.config = dataclasses.replace(
            fresh.config, chunk_budget=config.chunk_budget
        )
        assert np.array_equal(after, fresh.estimate_batch(queries)), (
            "stale fused caches survived continued training"
        )
        assert not np.array_equal(before, after)

    def test_invariant_when_vocab_exceeds_column_chunk(
        self, star_model, lubm_store, monkeypatch
    ):
        """Row-budget invariance must hold in the streamed-head regime:
        with the column chunk forced below the vocabulary size every
        head pass takes the multi-chunk path, and the fixed vocab-space
        column grid keeps each row's reduction order — hence each
        query's draws — independent of the row blocking."""
        import dataclasses

        import repro.nn.masked as masked

        vocab = max(star_model.model.vocab_sizes)
        assert vocab > 257  # the monkeypatched chunk must actually split
        monkeypatch.setattr(masked, "_HEAD_COL_CHUNK", 257)
        workload = generate_workload(lubm_store, "star", 2, 12, seed=37)
        queries = [r.query for r in workload]
        original = star_model.config
        try:
            star_model.config = dataclasses.replace(
                original, chunk_budget=10**9
            )
            wide = star_model.estimate_batch(queries)
            star_model.config = dataclasses.replace(
                original, chunk_budget=1
            )
            narrow = star_model.estimate_batch(queries)
        finally:
            star_model.config = original
        rel = np.abs(wide - narrow) / np.maximum(
            np.maximum(wide, narrow), 1.0
        )
        assert np.median(rel) < 1e-5
        assert np.mean(rel < 1e-4) >= 0.9

    def test_block_width_autotuned_and_cached(self, star_model, lubm_store):
        from repro.core.lmkg_u import _CHUNK_BUDGETS

        workload = generate_workload(lubm_store, "star", 2, 30, seed=35)
        queries = [r.query for r in workload]
        star_model._tuned_chunk = None
        star_model._tuned_cover = 0
        star_model.estimate_batch(queries)
        candidates = sorted(
            {star_model._queries_per_block(b) for b in _CHUNK_BUDGETS}
        )
        measurable = [c for c in candidates if c <= len(queries)]
        if len(measurable) >= 2:
            tuned = star_model._tuned_chunk
            assert tuned in measurable
            star_model.estimate_batch(queries)
            assert star_model._tuned_chunk == tuned
        else:
            # Too narrow to time: calibration defers to larger batches
            # instead of pinning a winner measured on a tiny prefix.
            assert star_model._tuned_chunk is None
