"""Tests for the unsupervised autoregressive estimator LMKG-U."""

import numpy as np
import pytest

from repro.core.lmkg_u import LMKGU, LMKGUConfig
from repro.core.metrics import q_errors
from repro.rdf.pattern import QueryPattern, chain_pattern, star_pattern
from repro.rdf.terms import TriplePattern, Variable
from repro.sampling import generate_workload

FAST = LMKGUConfig(
    embed_dim=16,
    hidden_sizes=(64, 64),
    epochs=6,
    training_samples=6_000,
    particles=128,
    seed=0,
)


def v(name):
    return Variable(name)


@pytest.fixture(scope="module")
def lubm_store():
    from repro.datasets import load_dataset

    return load_dataset("lubm", scale=0.5, seed=1)


@pytest.fixture(scope="module")
def star_model(lubm_store):
    model = LMKGU(lubm_store, "star", 2, FAST)
    model.fit()
    return model


@pytest.fixture(scope="module")
def chain_model(lubm_store):
    model = LMKGU(lubm_store, "chain", 2, FAST)
    model.fit()
    return model


class TestConfiguration:
    def test_unknown_topology_rejected(self, lubm_store):
        with pytest.raises(ValueError):
            LMKGU(lubm_store, "clique", 2)

    def test_estimate_before_fit_rejected(self, lubm_store):
        model = LMKGU(lubm_store, "star", 2, FAST)
        with pytest.raises(RuntimeError):
            model.estimate(star_pattern(v("x"), [(1, v("a")), (2, v("b"))]))

    def test_size_mismatch_rejected(self, star_model):
        with pytest.raises(ValueError):
            star_model.estimate(star_pattern(v("x"), [(1, v("a"))]))

    def test_wrong_topology_rejected(self, star_model):
        with pytest.raises(ValueError):
            star_model.estimate(
                chain_pattern([v("a"), 1, v("b"), 2, v("c")])
            )

    def test_extra_variable_sharing_rejected(self, star_model):
        query = star_pattern(v("x"), [(1, v("y")), (2, v("y"))])
        with pytest.raises(ValueError):
            star_model.estimate(query)


class TestTraining:
    def test_nll_decreases(self, star_model):
        assert star_model.history[-1] < star_model.history[0]

    def test_universe_is_exact(self, star_model, lubm_store):
        from repro.sampling import count_star_instances

        assert star_model.universe == count_star_instances(lubm_store, 2)


class TestEstimationAccuracy:
    def test_star_accuracy(self, star_model, lubm_store):
        workload = generate_workload(lubm_store, "star", 2, 80, seed=21)
        estimates = [star_model.estimate(r.query) for r in workload]
        errors = q_errors(estimates, workload.cardinalities())
        assert np.exp(np.log(errors).mean()) < 6.0

    def test_chain_accuracy(self, chain_model, lubm_store):
        workload = generate_workload(lubm_store, "chain", 2, 80, seed=22)
        estimates = [chain_model.estimate(r.query) for r in workload]
        errors = q_errors(estimates, workload.cardinalities())
        assert np.exp(np.log(errors).mean()) < 6.0

    def test_fully_bound_probability_path(self, star_model, lubm_store):
        """A fully bound query takes the deterministic (1-particle) path
        and still lands near the true count."""
        from repro.sampling import StarSampler

        instance = StarSampler(lubm_store, 2, seed=3).sample()
        s, p1, o1, p2, o2 = instance
        query = QueryPattern(
            [TriplePattern(s, p1, o1), TriplePattern(s, p2, o2)]
        )
        estimate = star_model.estimate(query)
        assert estimate >= 0.0
        assert np.isfinite(estimate)

    def test_estimates_nonnegative_and_finite(self, star_model, lubm_store):
        workload = generate_workload(lubm_store, "star", 2, 30, seed=23)
        for record in workload:
            estimate = star_model.estimate(record.query)
            assert estimate >= 0.0
            assert np.isfinite(estimate)


class TestIntrospection:
    def test_memory_accounting(self, star_model):
        assert star_model.memory_bytes() == star_model.num_parameters() * 4

    def test_log_likelihood_diagnostic(self, star_model, lubm_store):
        from repro.sampling import sample_instances

        instances, _ = sample_instances(lubm_store, "star", 2, 50, seed=5)
        ll = star_model.log_likelihood(np.array(instances))
        assert np.isfinite(ll)
        assert ll < 0.0
