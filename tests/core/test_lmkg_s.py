"""Tests for the supervised estimator LMKG-S."""

import numpy as np
import pytest

from repro.core.lmkg_s import LMKGS, LMKGSConfig
from repro.core.metrics import q_errors
from repro.sampling import generate_workload

FAST = LMKGSConfig(hidden_sizes=(64, 64), epochs=30, seed=0)


@pytest.fixture(scope="module")
def star_workload(lubm_store):
    return generate_workload(lubm_store, "star", 2, 400, seed=10)


@pytest.fixture(scope="module")
def trained_model(lubm_store, star_workload):
    model = LMKGS(lubm_store, ["star"], 2, FAST)
    model.fit(star_workload.records)
    return model


# Module-scoped store fixture mirrors: redeclare as module fixtures.
@pytest.fixture(scope="module")
def lubm_store():
    from repro.datasets import load_dataset

    return load_dataset("lubm", scale=0.5, seed=1)


class TestConfiguration:
    def test_pattern_encoding_needs_single_topology(self, lubm_store):
        with pytest.raises(ValueError):
            LMKGS(
                lubm_store,
                ["star", "chain"],
                2,
                LMKGSConfig(encoding="pattern"),
            )

    def test_unknown_encoding_rejected(self, lubm_store):
        with pytest.raises(ValueError):
            LMKGS(lubm_store, ["star"], 2, LMKGSConfig(encoding="onehot2"))

    def test_unknown_loss_rejected(self, lubm_store, star_workload):
        model = LMKGS(
            lubm_store, ["star"], 2, LMKGSConfig(loss="hinge", epochs=1)
        )
        with pytest.raises(ValueError):
            model.fit(star_workload.records[:10])

    def test_empty_workload_rejected(self, lubm_store):
        model = LMKGS(lubm_store, ["star"], 2, FAST)
        with pytest.raises(ValueError):
            model.fit([])

    def test_estimate_before_fit_rejected(self, lubm_store):
        model = LMKGS(lubm_store, ["star"], 2, FAST)
        with pytest.raises(RuntimeError):
            model.estimate(None)


class TestTraining:
    def test_loss_decreases(self, trained_model):
        losses = trained_model.history.losses
        assert losses[-1] < losses[0]

    def test_training_accuracy_reasonable(
        self, trained_model, star_workload
    ):
        queries = [r.query for r in star_workload.records]
        cards = star_workload.cardinalities()
        estimates = trained_model.estimate_batch(queries)
        errors = q_errors(estimates, cards)
        assert np.exp(np.log(errors).mean()) < 3.0

    def test_generalisation(self, lubm_store, trained_model):
        held_out = generate_workload(lubm_store, "star", 2, 100, seed=77)
        estimates = trained_model.estimate_batch(
            [r.query for r in held_out.records]
        )
        errors = q_errors(estimates, held_out.cardinalities())
        # Held-out geometric-mean q-error must beat a factor-10 guesser.
        assert np.exp(np.log(errors).mean()) < 10.0

    def test_estimates_positive(self, trained_model, star_workload):
        estimates = trained_model.estimate_batch(
            [r.query for r in star_workload.records[:20]]
        )
        assert np.all(estimates >= 1.0)

    def test_deterministic_given_seed(self, lubm_store, star_workload):
        records = star_workload.records[:100]
        a = LMKGS(lubm_store, ["star"], 2, FAST)
        a.fit(records)
        b = LMKGS(lubm_store, ["star"], 2, FAST)
        b.fit(records)
        q = records[0].query
        assert a.estimate(q) == b.estimate(q)


class TestEncodingVariants:
    @pytest.mark.parametrize("encoding", ["sg", "pattern"])
    def test_both_encodings_train(
        self, lubm_store, star_workload, encoding
    ):
        config = LMKGSConfig(
            encoding=encoding, hidden_sizes=(32,), epochs=10
        )
        model = LMKGS(lubm_store, ["star"], 2, config)
        model.fit(star_workload.records[:150])
        estimate = model.estimate(star_workload.records[0].query)
        assert estimate >= 1.0

    def test_mixed_topology_model_with_sg(self, lubm_store):
        star = generate_workload(lubm_store, "star", 2, 150, seed=1)
        chain = generate_workload(lubm_store, "chain", 2, 150, seed=2)
        model = LMKGS(lubm_store, ["star", "chain"], 2, FAST)
        model.fit(star.records + chain.records)
        assert model.estimate(star.records[0].query) >= 1.0
        assert model.estimate(chain.records[0].query) >= 1.0

    def test_grouped_model_handles_smaller_sizes(self, lubm_store):
        size2 = generate_workload(lubm_store, "star", 2, 120, seed=3)
        size3 = generate_workload(lubm_store, "star", 3, 120, seed=4)
        model = LMKGS(lubm_store, ["star"], 3, FAST)
        model.fit(size2.records + size3.records)
        assert model.estimate(size2.records[0].query) >= 1.0


class TestIntrospection:
    def test_memory_accounting(self, trained_model):
        assert (
            trained_model.memory_bytes()
            == trained_model.num_parameters() * 4
        )

    def test_input_width_matches_encoder(self, trained_model):
        features = trained_model.featurize(
            [
                generate_workload(
                    trained_model.store, "star", 2, 1, seed=9
                ).records[0].query
            ]
        )
        assert features.shape[1] == trained_model.input_width
