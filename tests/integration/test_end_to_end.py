"""End-to-end integration: the full pipeline on a real dataset, plus
shape-level checks of the paper's headline claims at test scale."""

import numpy as np
import pytest

from repro import (
    LMKG,
    LMKGSConfig,
    LMKGUConfig,
    load_dataset,
    summarize,
)
from repro.baselines import (
    CharacteristicSets,
    IndependenceEstimator,
    WanderJoin,
)
from repro.core.metrics import q_errors
from repro.rdf import count_bgp, format_sparql, parse_sparql
from repro.sampling import generate_test_queries, generate_workload


@pytest.fixture(scope="module")
def store():
    return load_dataset("lubm", scale=0.5, seed=1)


@pytest.fixture(scope="module")
def supervised(store):
    framework = LMKG(
        store,
        model_type="supervised",
        grouping="size",
        lmkgs_config=LMKGSConfig(hidden_sizes=(128, 128), epochs=40, seed=0),
    )
    framework.fit(
        shapes=[("star", 2), ("star", 3), ("chain", 2), ("chain", 3)],
        queries_per_shape=400,
    )
    return framework


@pytest.fixture(scope="module")
def test_queries(store):
    return {
        ("star", 2): generate_test_queries(store, "star", 2, 8, seed=91),
        ("chain", 2): generate_test_queries(store, "chain", 2, 8, seed=92),
        ("star", 3): generate_test_queries(store, "star", 3, 8, seed=93),
    }


class TestFullPipeline:
    def test_estimates_entire_test_set(self, supervised, test_queries):
        for workload in test_queries.values():
            for record in workload:
                estimate = supervised.estimate(record.query)
                assert np.isfinite(estimate)
                assert estimate >= 0.0

    def test_accuracy_across_shapes(self, supervised, test_queries):
        for (topology, size), workload in test_queries.items():
            estimates = [supervised.estimate(r.query) for r in workload]
            summary = summarize(estimates, workload.cardinalities())
            assert summary.geometric_mean < 12.0, (topology, size)

    def test_sparql_text_to_estimate(self, store, supervised):
        """Text query -> parse -> estimate -> compare to exact count."""
        d = store.dictionary
        advisor = "ub:advisor"
        takes = "ub:takesCourse"
        text = (
            f"SELECT ?x WHERE {{ ?x <{advisor}> ?y . "
            f"?x <{takes}> ?z . }}"
        )
        query = parse_sparql(text, d)
        truth = count_bgp(store, query)
        estimate = supervised.estimate(query)
        assert truth > 0
        assert max(estimate, 1) / truth < 60
        assert truth / max(estimate, 1) < 60
        # And back to text.
        assert "SELECT" in format_sparql(query, d)


class TestPaperClaims:
    """Shape-level versions of the paper's headline comparisons."""

    def test_lmkgs_beats_independence(self, store, supervised):
        """Claim (§I): correlation-aware learned estimates beat the
        independence assumption on star queries."""
        indep = IndependenceEstimator(store)
        workload = generate_workload(store, "star", 2, 80, seed=95)
        cards = workload.cardinalities()
        lmkg_err = q_errors(
            [supervised.estimate(r.query) for r in workload], cards
        )
        indep_err = q_errors(
            [indep.estimate(r.query) for r in workload], cards
        )
        assert np.exp(np.log(lmkg_err).mean()) < np.exp(
            np.log(indep_err).mean()
        )

    def test_lmkgs_stable_across_sizes(self, store, supervised):
        """Claim (Fig. 8): LMKG-S accuracy does not collapse as the join
        count grows (unlike the sampling competitors)."""
        g2 = summarize(
            *self._est(supervised, store, "star", 2)
        ).geometric_mean
        g3 = summarize(
            *self._est(supervised, store, "star", 3)
        ).geometric_mean
        assert g3 < 10 * max(g2, 1.0)

    @staticmethod
    def _est(framework, store, topology, size):
        workload = generate_workload(store, topology, size, 50, seed=97)
        estimates = [framework.estimate(r.query) for r in workload]
        return estimates, workload.cardinalities()

    def test_wj_degrades_with_query_size_lmkgs_does_not(
        self, store, supervised
    ):
        """Claim (Fig. 8): WJ's walks dead-end more often on longer
        chains, while LMKG-S stays flat.  Compare failure rates."""
        wj = WanderJoin(store, walks_per_run=30, runs=3, seed=0)
        small = generate_workload(store, "chain", 2, 25, seed=98)
        large = generate_workload(store, "chain", 3, 25, seed=99)
        zero_small = sum(
            1 for r in small if wj.estimate(r.query) == 0.0
        )
        zero_large = sum(
            1 for r in large if wj.estimate(r.query) == 0.0
        )
        assert zero_large >= zero_small
        # LMKG-S never returns a hard zero.
        assert all(
            supervised.estimate(r.query) > 0.0 for r in large
        )

    def test_cset_strong_on_stars_weak_on_chains(self, store):
        """Claim (Fig. 10): CSET is tailored to stars; its chain
        extension is cruder."""
        cset = CharacteristicSets(store)
        star = generate_workload(store, "star", 2, 50, seed=100)
        chain = generate_workload(store, "chain", 2, 50, seed=101)
        star_g = np.exp(
            np.log(
                q_errors(
                    [cset.estimate(r.query) for r in star],
                    star.cardinalities(),
                )
            ).mean()
        )
        chain_g = np.exp(
            np.log(
                q_errors(
                    [cset.estimate(r.query) for r in chain],
                    chain.cardinalities(),
                )
            ).mean()
        )
        assert star_g < chain_g


class TestUnsupervisedIntegration:
    def test_lmkgu_full_pipeline(self, store):
        framework = LMKG(
            store,
            model_type="unsupervised",
            lmkgu_config=LMKGUConfig(
                embed_dim=16,
                hidden_sizes=(64, 64),
                epochs=4,
                training_samples=5_000,
                particles=128,
                seed=0,
            ),
        )
        framework.fit(shapes=[("chain", 2)])
        workload = generate_workload(store, "chain", 2, 40, seed=102)
        estimates = [framework.estimate(r.query) for r in workload]
        summary = summarize(estimates, workload.cardinalities())
        assert summary.geometric_mean < 8.0
