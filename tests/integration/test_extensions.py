"""Integration: the extension subsystems working together end to end.

The original integration suite covers the paper's pipeline (train →
estimate → evaluate).  These tests chain the extensions: learned
estimates driving the join-order optimizer, the compound estimator
inside the adaptive execution loop, and range models over the same
store and workload machinery.
"""

import numpy as np
import pytest

from repro.core.compound import CompoundEstimator
from repro.core.framework import LMKG
from repro.core.lmkg_s import LMKGSConfig
from repro.core.lmkg_u import LMKGU, LMKGUConfig
from repro.core.monitor import AdaptiveLMKG, WorkloadMonitor
from repro.core.ranges import (
    LMKGSRange,
    generate_range_workload,
)
from repro.optimizer import (
    Optimizer,
    cout_cost,
    execute_order,
    plan_quality,
    true_cost_fn,
)
from repro.sampling import generate_workload


@pytest.fixture(scope="module")
def trained_framework(lubm_store):
    framework = LMKG(
        lubm_store,
        model_type="supervised",
        grouping="size",
        lmkgs_config=LMKGSConfig(epochs=25, hidden_sizes=(64, 64)),
    )
    framework.fit(
        shapes=[("star", 2), ("star", 3), ("chain", 2)],
        queries_per_shape=250,
    )
    return framework


class _FrameworkEstimator:
    name = "lmkg-s"

    def __init__(self, framework):
        self.framework = framework

    def estimate(self, query):
        return self.framework.estimate(query)


class TestLearnedPlanning:
    def test_learned_estimates_drive_the_optimizer(
        self, trained_framework, lubm_store
    ):
        workload = generate_workload(
            lubm_store, "star", 3, num_queries=10, seed=44
        )
        estimator = _FrameworkEstimator(trained_framework)
        optimizer = Optimizer(estimator)
        oracle = true_cost_fn(lubm_store)
        for record in workload.records[:5]:
            plan = optimizer.optimize(record.query)
            execution = execute_order(
                lubm_store, record.query, plan.order
            )
            # The chosen plan must compute the correct result and its
            # measured C_out must equal the oracle cost of that order.
            from repro.rdf import count_bgp

            assert execution.result_size == count_bgp(
                lubm_store, record.query
            )
            assert execution.cout == pytest.approx(
                cout_cost(record.query, plan.order, oracle)
            )

    def test_plan_quality_report_over_learned_model(
        self, trained_framework, lubm_store
    ):
        workload = generate_workload(
            lubm_store, "star", 3, num_queries=8, seed=45
        )
        report = plan_quality(
            lubm_store,
            _FrameworkEstimator(trained_framework),
            [r.query for r in workload.records],
        )
        assert len(report.outcomes) == len(workload.records)
        assert report.mean_suboptimality >= 1.0


class TestCompoundInsideAdaptiveLoop:
    def test_adaptive_loop_over_compound_models(
        self, trained_framework, lubm_store
    ):
        lmkg_u = LMKGU(
            lubm_store,
            "star",
            2,
            LMKGUConfig(
                epochs=1,
                hidden_sizes=(16, 16),
                embed_dim=8,
                training_samples=500,
                particles=16,
            ),
        )
        lmkg_u.fit()
        compound = CompoundEstimator(
            trained_framework, lmkg_u, policy="geometric"
        )
        workload = generate_workload(
            lubm_store, "star", 2, num_queries=15, seed=46
        )
        monitor = WorkloadMonitor(min_queries=10**6)
        monitor.set_reference({("star", 2): 1.0})
        for record in workload.records:
            estimate = compound.estimate(record.query)
            monitor.observe_query(record.query)
            assert np.isfinite(estimate)
            assert estimate >= 0.0
        assert monitor.window_shares() == {("star", 2): 1.0}


class TestRangeOverSharedSubstrate:
    def test_range_model_shares_store_and_buckets(self, lubm_store):
        records = generate_range_workload(
            lubm_store, "star", 2, num_queries=80, seed=47
        )
        model = LMKGSRange(
            lubm_store,
            ["star"],
            2,
            LMKGSConfig(epochs=10, hidden_sizes=(32, 32)),
        )
        model.fit(records)
        estimates = model.estimate_batch([r.query for r in records])
        assert np.all(np.isfinite(estimates))
        assert np.all(estimates >= 0.0)
