"""Generative fuzzing of the estimate contract, end to end.

Arbitrary queries — grounded in the served vocabulary, spiked with
never-seen terms and malformed text — round-trip through
parse → admission → estimate → serve, with and without injected
faults.  The invariants:

- every estimate is finite and >= 0 (raw and in log space),
- batch answers == serial answers for the same queries,
- degraded (fallback) answers obey the same contract and are flagged,
- the HTTP error taxonomy is *exact*: the server's status matches an
  oracle running the same parse + admission locally — malformed text
  is a 400, an uncovered shape a 422, never a 500 or a dropped socket.

Failing examples are persisted to ``tests/replay/corpus/`` (the last,
minimized reproduction per property) and replayed by
``test_corpus.py`` forever after.
"""

import http.client
import json
import math

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")

import hypothesis as hyp  # noqa: E402
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.framework import EstimationError  # noqa: E402
from repro.replay.strategies import (  # noqa: E402
    estimate_bodies,
    fuzz_settings,
    malformed_texts,
    query_texts,
    vocab_sample,
)

SETTINGS = fuzz_settings(default_examples=25)


@pytest.fixture(scope="module")
def vocab(replay_store):
    return vocab_sample(replay_store, limit=120, seed=2)


def post_estimate(host, port, body, timeout=30):
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(
            "POST",
            "/estimate",
            body=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def expected_status(harness, body):
    """The taxonomy oracle: what the server *must* answer, derived by
    running the same body validation + parse + admission locally."""
    if not isinstance(body, dict) or "queries" not in body:
        return 400
    texts = body["queries"]
    if (
        not isinstance(texts, list)
        or not texts
        or not all(isinstance(t, str) for t in texts)
    ):
        return 400
    try:
        queries = harness.service.parse_queries(texts)
    except Exception:
        return 400
    admission = harness.runtime.admission
    if admission is not None:
        try:
            admission.admit_all(queries)
        except Exception:
            return 422
    return 200


class TestEstimatorContract:
    @given(data=st.data())
    @settings(**SETTINGS)
    def test_estimates_finite_nonnegative(
        self, data, harness, vocab, record_counterexample
    ):
        nodes, predicates = vocab
        text = data.draw(
            query_texts(nodes, predicates, unknown_rate=0.15)
        )
        try:
            queries = harness.service.parse_queries([text])
        except Exception:
            return  # unparseable spike: the taxonomy test's domain
        framework = harness.service.framework
        try:
            value = float(framework.estimate(queries[0]))
        except EstimationError:
            # shape outside the trained manifest — admission's 422
            # domain, not an estimator-contract violation
            return
        try:
            assert math.isfinite(value), f"estimate {value!r}"
            assert value >= 0.0, f"estimate {value!r}"
            assert math.isfinite(math.log2(value + 1.0))
            hyp.target(float(len(queries[0].triples)))
        except AssertionError:
            record_counterexample(
                "estimator_contract",
                {
                    "kind": "estimator_contract",
                    "queries": [text],
                    "note": "finite/non-negative estimate violated",
                    "added": "fuzz",
                },
            )
            raise

    @given(data=st.data())
    @settings(**SETTINGS)
    def test_batch_equals_serial(
        self, data, harness, vocab, record_counterexample
    ):
        nodes, predicates = vocab
        texts = data.draw(
            st.lists(
                query_texts(nodes, predicates, unknown_rate=0.0),
                min_size=1,
                max_size=4,
            )
        )
        try:
            queries = harness.service.parse_queries(texts)
        except Exception:
            return
        framework = harness.service.framework
        try:
            batch = np.asarray(
                framework.estimate_batch(queries), dtype=np.float64
            )
        except EstimationError:
            # the batch path refused (uncovered shape): the serial
            # path must refuse the same batch too
            with pytest.raises(EstimationError):
                [framework.estimate(q) for q in queries]
            return
        try:
            serial = np.asarray(
                [framework.estimate(q) for q in queries],
                dtype=np.float64,
            )
            np.testing.assert_allclose(batch, serial, rtol=1e-6)
        except AssertionError:
            record_counterexample(
                "batch_serial",
                {
                    "kind": "estimator_contract",
                    "queries": texts,
                    "note": "batch != serial",
                    "added": "fuzz",
                },
            )
            raise


class TestServeTaxonomy:
    @given(data=st.data())
    @settings(**SETTINGS)
    def test_status_matches_oracle(
        self, data, harness, vocab, record_counterexample
    ):
        nodes, predicates = vocab
        body = data.draw(estimate_bodies(nodes, predicates))
        try:
            status, payload = post_estimate(
                harness.host, harness.port, body
            )
            expected = expected_status(harness, body)
            if status != 429:  # shed is always acceptable
                assert status == expected, (
                    f"server {status} != oracle {expected}: {payload}"
                )
            if status == 200:
                estimates = payload["estimates"]
                assert len(estimates) == len(body["queries"])
                assert payload["count"] == len(estimates)
                for value in estimates:
                    assert math.isfinite(value) and value >= 0
                hyp.target(float(len(estimates)))
        except AssertionError:
            record_counterexample(
                "serve_taxonomy",
                {
                    "kind": "serve_taxonomy",
                    "body": body,
                    "note": "taxonomy or 200-contract violated",
                    "added": "fuzz",
                },
            )
            raise

    @given(data=st.data())
    @settings(**SETTINGS)
    def test_malformed_is_always_400(
        self, data, harness, record_counterexample
    ):
        text = data.draw(malformed_texts())
        hyp.assume(
            expected_status(harness, {"queries": [text]}) == 400
        )
        try:
            status, payload = post_estimate(
                harness.host, harness.port, {"queries": [text]}
            )
            assert status == 400, f"{status}: {payload}"
        except AssertionError:
            record_counterexample(
                "malformed_400",
                {
                    "kind": "serve_taxonomy",
                    "queries": [text],
                    "expect_status": 400,
                    "note": "malformed text not answered with 400",
                    "added": "fuzz",
                },
            )
            raise


class TestDegradedConformance:
    @pytest.fixture(scope="class")
    def faulty_server(self, snapshot_dir, harness):
        """Supervised workers whose model path fails every 2nd batch:
        a worker-side fault is an infrastructure error, so the backend
        falls back to the independence baseline immediately (``workers=1``
        would instead 500 poison batches while the breaker is closed —
        the containment path, not the degradation path under test)."""
        from repro.replay import ReplayHarness
        from repro.serve import FaultSpec

        h = ReplayHarness(
            snapshot_dir,
            harness.checkpoint_dir,
            workers=2,
            fault_spec=FaultSpec(fail_every=2),
            max_delay_ms=1.0,
        )
        h.wait_ready()
        yield h
        h.close()

    @given(data=st.data())
    @settings(**SETTINGS)
    def test_degraded_answers_conform(
        self, data, faulty_server, vocab, record_counterexample
    ):
        nodes, predicates = vocab
        texts = data.draw(
            st.lists(
                query_texts(nodes, predicates, unknown_rate=0.0),
                min_size=1,
                max_size=3,
            )
        )
        hyp.assume(
            expected_status(faulty_server, {"queries": texts}) == 200
        )
        try:
            status, payload = post_estimate(
                faulty_server.host, faulty_server.port, {"queries": texts}
            )
            assert status in (200, 429), f"{status}: {payload}"
            if status == 200:
                assert isinstance(payload["degraded"], bool)
                for value in payload["estimates"]:
                    assert math.isfinite(value) and value >= 0
        except AssertionError:
            record_counterexample(
                "degraded_conformance",
                {
                    "kind": "serve_taxonomy",
                    "queries": texts,
                    "note": "degraded answer broke the contract",
                    "added": "fuzz",
                },
            )
            raise

    def test_faults_actually_degrade(self, faulty_server, vocab):
        """Sanity: the fault spec really exercises the fallback path."""
        nodes, predicates = vocab
        degraded = 0
        for _ in range(6):
            status, payload = post_estimate(
                faulty_server.host,
                faulty_server.port,
                {
                    "queries": [
                        "SELECT ?s ?o0 ?o1 WHERE { ?s <ub:advisor> ?o0 . "
                        "?s <ub:takesCourse> ?o1 . }"
                    ]
                },
            )
            assert status == 200
            degraded += bool(payload["degraded"])
        assert degraded > 0
