"""Counterexample corpus: persistence mechanics + deterministic replay.

The seed entries under ``tests/replay/corpus/`` are replayed through the
live server on every run — once the fuzzer (or a human) finds a
contract violation, it stays found.
"""

import http.client
import json
import math
from pathlib import Path

import pytest

from repro.replay import iter_corpus, save_counterexample
from repro.replay.corpus import CorpusError, entry_name

CORPUS_DIR = Path(__file__).parent / "corpus"


def post_estimate(harness, body):
    conn = http.client.HTTPConnection(
        harness.host, harness.port, timeout=30
    )
    try:
        conn.request(
            "POST",
            "/estimate",
            body=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        return response.status, payload
    finally:
        conn.close()


class TestMechanics:
    def test_save_and_iter(self, tmp_path):
        payload = {"kind": "serve_taxonomy", "queries": ["SELECT"]}
        path = save_counterexample(tmp_path, payload)
        entries = list(iter_corpus(tmp_path))
        assert entries == [(path, payload)]

    def test_content_addressed_idempotent(self, tmp_path):
        payload = {"kind": "estimator_contract", "queries": ["a"]}
        first = save_counterexample(tmp_path, payload)
        second = save_counterexample(tmp_path, payload)
        assert first == second
        assert len(list(tmp_path.glob("*.json"))) == 1
        assert first.name == entry_name(payload)

    def test_kind_required(self, tmp_path):
        with pytest.raises(CorpusError):
            save_counterexample(tmp_path, {"queries": ["a"]})

    def test_missing_directory_is_empty(self, tmp_path):
        assert list(iter_corpus(tmp_path / "nope")) == []

    def test_unreadable_entry_raises(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json")
        with pytest.raises(CorpusError):
            list(iter_corpus(tmp_path))

    def test_entry_without_kind_raises(self, tmp_path):
        (tmp_path / "x.json").write_text(json.dumps({"queries": []}))
        with pytest.raises(CorpusError):
            list(iter_corpus(tmp_path))


_SEEDS = list(iter_corpus(CORPUS_DIR))


def test_seed_corpus_not_empty():
    assert _SEEDS, "tests/replay/corpus must carry seed entries"


@pytest.mark.parametrize(
    "path,entry", _SEEDS, ids=[p.name for p, _ in _SEEDS]
)
def test_replay_corpus_entry(harness, path, entry):
    """Every persisted counterexample still satisfies the contract."""
    body = (
        entry["body"]
        if "body" in entry
        else {"queries": entry["queries"]}
    )
    status, payload = post_estimate(harness, body)
    expected = entry.get("expect_status")
    if expected is not None:
        assert status == expected, (
            f"{path.name}: expected {expected}, got {status} "
            f"({payload})"
        )
    else:
        assert status in (200, 400, 422), (
            f"{path.name}: taxonomy breach: {status} ({payload})"
        )
    if status == 200:
        estimates = payload["estimates"]
        assert len(estimates) == len(body["queries"])
        for value in estimates:
            assert value >= 0
            assert math.isfinite(value)
