"""The open-loop driver against the live harness.

Clean replay, overload shedding with server-derived backoff, and
deadline accounting.
"""

import pytest

from repro.replay import ReplayDriver, generate_trace
from repro.replay.driver import _retry_after_s


@pytest.fixture(scope="module")
def small_trace(replay_store):
    return generate_trace(
        replay_store, rate_qps=30.0, duration_s=3.0, seed=21
    )


class TestRetryAfterParsing:
    def test_json_field_wins(self):
        assert _retry_after_s(
            {"retry_after_s": 0.25}, {"retry-after": "3"}
        ) == pytest.approx(0.25)

    def test_header_fallback(self):
        assert _retry_after_s({}, {"retry-after": "3"}) == pytest.approx(
            3.0
        )

    def test_default(self):
        assert _retry_after_s({}, {}) == pytest.approx(1.0)
        assert _retry_after_s(
            {}, {"retry-after": "soon"}
        ) == pytest.approx(1.0)


class TestCleanReplay:
    def test_all_ok_at_offered_rate(self, harness, small_trace):
        driver = ReplayDriver(
            harness.host, harness.port, deadline_s=10.0
        )
        report, outcomes = driver.run(small_trace)
        assert report.requests == len(small_trace)
        assert report.errors == 0, report.status_counts
        assert report.shed == 0
        assert report.completed == len(small_trace)
        assert report.achieved_fraction > 0.9
        assert report.latency_ms["p99"] > 0
        # open-loop invariant: every outcome ties back to an arrival
        assert len(outcomes) == len(small_trace)

    def test_rate_scale_compresses_schedule(self, harness, replay_store):
        trace = generate_trace(
            replay_store, rate_qps=10.0, duration_s=2.0, seed=3
        )
        driver = ReplayDriver(
            harness.host, harness.port, deadline_s=10.0, rate_scale=4.0
        )
        report, _ = driver.run(trace)
        assert report.errors == 0
        # 2 s of trace replayed 4x faster finishes well under 2 s
        assert report.duration_s < 1.5
        assert report.offered_rate_qps == pytest.approx(
            trace.offered_rate_qps * 4.0, rel=0.05
        )


class TestOverload:
    @pytest.fixture(scope="class")
    def tiny_server(self, snapshot_dir, harness):
        """A deliberately under-provisioned server: one worker thread,
        batch of 2, queue of 2 — reuses the session checkpoint so no
        refit."""
        from repro.replay import ReplayHarness

        h = ReplayHarness(
            snapshot_dir,
            harness.checkpoint_dir,
            workers=1,
            max_batch=2,
            max_delay_ms=25.0,
            max_queue=2,
        )
        h.wait_ready()
        yield h
        h.close()

    def test_sheds_and_honors_retry_after(
        self, tiny_server, replay_store
    ):
        trace = generate_trace(
            replay_store,
            rate_qps=1500.0,
            duration_s=0.2,
            mix=[("star", 2, 1.0)],
            seed=9,
            arrivals="uniform",
        )
        driver = ReplayDriver(
            tiny_server.host,
            tiny_server.port,
            deadline_s=5.0,
            connections=16,
            max_retries=2,
        )
        report, outcomes = driver.run(trace)
        # conservation: every request ends exactly one way
        assert (
            report.completed + report.shed + report.errors
            == report.requests
        )
        assert report.errors == 0, report.status_counts
        # the queue of 2 cannot absorb a 1500 qps burst
        assert report.shed > 0 or report.retries > 0
        # derived backoff reached the client and was honored
        if report.shed:
            assert report.retries > 0

    def test_deadline_misses_recorded(self, tiny_server, replay_store):
        trace = generate_trace(
            replay_store,
            rate_qps=200.0,
            duration_s=0.2,
            mix=[("star", 2, 1.0)],
            seed=10,
            arrivals="uniform",
        )
        driver = ReplayDriver(
            tiny_server.host,
            tiny_server.port,
            deadline_s=0.05,
            connections=1,
            max_retries=0,
        )
        report, outcomes = driver.run(trace)
        assert report.deadline_missed > 0
        missed = [o for o in outcomes if o.deadline_missed]
        assert all(o.status == 0 for o in missed)
