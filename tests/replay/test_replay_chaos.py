"""Chaos under load: the full storm against a live replay.

The ISSUE's acceptance gate: a timeline of worker kills, live
incremental maintenance, and checkpoint corruption completes mid-replay
with **zero non-{200,429} responses** and bounded p99 inflation.
"""

import json

import pytest

from repro.replay import (
    ReplayDriver,
    SLO,
    generate_trace,
    parse_timeline,
    start_timeline,
)

TIMELINE = """
at 0.5s: kill worker
at 1.0s: mutate 400
at 1.5s: maintain
at 2.5s: mutate 200
at 3.0s: maintain
at 3.5s: corrupt next checkpoint garbage-manifest
at 4.0s: mutate 150
at 4.2s: maintain
"""


@pytest.fixture(scope="module")
def chaos_result(harness, replay_store):
    """One storm per module: replay + timeline, shared by the asserts."""
    trace = generate_trace(
        replay_store, rate_qps=40.0, duration_s=7.0, seed=33
    )
    driver = ReplayDriver(harness.host, harness.port, deadline_s=15.0)

    baseline, _ = driver.run(
        generate_trace(replay_store, rate_qps=40.0, duration_s=2.0, seed=34)
    )

    steps = parse_timeline(TIMELINE)
    thread, log = start_timeline(steps, harness)
    report, outcomes = driver.run(trace)
    thread.join(timeout=180.0)
    assert not thread.is_alive(), "timeline did not finish"
    return baseline, report, outcomes, log


class TestChaosGates:
    def test_timeline_all_steps_succeeded(self, chaos_result):
        _, _, _, log = chaos_result
        failed = [e for e in log if not e["ok"]]
        assert not failed, json.dumps(failed, indent=2)
        assert len(log) == 8

    def test_zero_non_200_429(self, chaos_result):
        _, report, outcomes, _ = chaos_result
        assert report.errors == 0, report.status_counts
        assert set(report.status_counts) <= {"200", "429"}

    def test_achieved_rate_held(self, chaos_result):
        _, report, _, _ = chaos_result
        assert report.achieved_fraction >= 0.8, report.to_dict()

    def test_p99_inflation_bounded(self, chaos_result):
        baseline, report, _, _ = chaos_result
        assert baseline.latency_ms["p99"] > 0
        # chaos may inflate the tail, but not unboundedly: stay within
        # 25x the quiet p99 (and an absolute 5 s ceiling).
        ceiling = max(25 * baseline.latency_ms["p99"], 1000.0)
        assert report.latency_ms["p99"] <= min(ceiling, 5000.0), (
            f"p99 {report.latency_ms['p99']:.0f} ms vs quiet "
            f"{baseline.latency_ms['p99']:.0f} ms"
        )

    def test_maintenance_went_incremental(self, chaos_result):
        _, _, _, log = chaos_result
        maintains = [e for e in log if e["action"] == "maintain"]
        assert len(maintains) == 3
        # the session harness may have maintained before; at least the
        # later runs must take the vocabulary-preserving fast path.
        assert any(
            "incremental" in e["detail"] for e in maintains
        ), [e["detail"] for e in maintains]

    def test_corrupt_publish_rejected_409(self, chaos_result):
        _, _, _, log = chaos_result
        last = [e for e in log if e["action"] == "maintain"][-1]
        assert "409" in last["detail"], last["detail"]
        assert "previous generation keeps serving" in last["detail"]

    def test_slo_verdict_records_the_gate(self, chaos_result):
        _, report, _, _ = chaos_result
        report.evaluate(
            SLO(
                p99_ms=5000.0,
                max_shed_rate=0.2,
                min_achieved_fraction=0.8,
                max_error_rate=0.0,
            )
        )
        assert report.verdict == "ok", report.violations

    def test_server_healthy_after_the_storm(self, harness):
        import http.client

        conn = http.client.HTTPConnection(
            harness.host, harness.port, timeout=30
        )
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 200
            assert payload["status"] == "ok"
        finally:
            conn.close()
