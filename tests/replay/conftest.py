"""Shared replay fixtures: one live harness per session + corpus hook.

The harness is the real serving stack (supervised workers, scheduler,
admission, hot reload) on an ephemeral port — session-scoped because
its startup fit costs seconds.  Chaos tests kill its workers; the
supervisor restarts them, so later tests see a healthy pool.

``record_counterexample`` is the fuzz suite's persistence hook: each
property overwrites its slot on every failing example, and the session
finalizer writes the *last* one — the minimized reproduction hypothesis
replays at the end of shrinking — into ``tests/replay/corpus/``.
"""

from pathlib import Path

import pytest

from repro.serve import FitDefaults

#: small but non-trivial startup-fit: seconds, not minutes.
FIT = FitDefaults(
    shapes=(("star", 2), ("star", 3), ("chain", 2), ("chain", 3)),
    queries_per_shape=100,
    epochs=4,
    hidden_sizes=(32, 32),
)

CORPUS_DIR = Path(__file__).parent / "corpus"


@pytest.fixture(scope="session")
def fit_defaults():
    return FIT


@pytest.fixture(scope="session")
def replay_store():
    from repro.datasets import load_dataset

    return load_dataset("lubm", scale=0.25, seed=1)


@pytest.fixture(scope="session")
def snapshot_dir(replay_store, tmp_path_factory):
    directory = tmp_path_factory.mktemp("replay") / "snapshot"
    replay_store.save_snapshot(directory)
    return directory


@pytest.fixture(scope="session")
def harness(snapshot_dir):
    from repro.replay import ReplayHarness

    h = ReplayHarness(
        snapshot_dir,
        workers=2,
        fit_defaults=FIT,
        max_batch=64,
        max_delay_ms=2.0,
        maintain_options={"shapes": FIT.shapes, "queries_per_shape": 40},
        seed=0,
    )
    h.wait_ready()
    yield h
    h.close()


_pending_counterexamples = {}


@pytest.fixture(scope="session")
def record_counterexample():
    """Overwrite-latest failure recorder; flushed to the corpus at
    session end (the last recorded example per slot is the one
    hypothesis minimized)."""

    def _record(slot: str, payload: dict) -> None:
        _pending_counterexamples[slot] = payload

    yield _record
    from repro.replay import save_counterexample

    for payload in _pending_counterexamples.values():
        save_counterexample(CORPUS_DIR, payload)
