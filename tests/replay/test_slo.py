"""SLO report building and error-budget verdicts (pure, no server)."""

import pytest

from repro.replay import (
    SLO,
    RequestOutcome,
    SLOReport,
    build_report,
    format_report,
)


def outcomes_ok(n, latency_s=0.01):
    return [
        RequestOutcome(offset_s=i * 0.01, status=200, latency_s=latency_s)
        for i in range(n)
    ]


class TestBuildReport:
    def test_counts_and_percentiles(self):
        outcomes = outcomes_ok(98) + [
            RequestOutcome(1.0, 429, 0.0),
            RequestOutcome(1.0, 0, 0.0, error="boom"),
        ]
        # one slow success dominates the tail
        outcomes[0] = RequestOutcome(0.0, 200, 0.5)
        report = build_report(
            outcomes, offered_rate_qps=50.0, duration_s=2.0
        )
        assert report.requests == 100
        assert report.completed == 98
        assert report.shed == 1
        assert report.errors == 1
        assert report.status_counts["429"] == 1
        assert report.status_counts["transport"] == 1
        assert report.latency_ms["p50"] == pytest.approx(10.0, abs=2.0)
        assert report.latency_ms["max"] == pytest.approx(500.0, abs=1.0)
        assert report.latency_ms["p99"] > report.latency_ms["p50"]
        assert report.achieved_rate_qps == pytest.approx(49.0)

    def test_degraded_and_deadline_accounting(self):
        outcomes = [
            RequestOutcome(0.0, 200, 0.01, degraded=True, retries=2),
            RequestOutcome(0.1, 0, 0.0, deadline_missed=True),
        ]
        report = build_report(outcomes, 10.0, 1.0)
        assert report.degraded == 1
        assert report.deadline_missed == 1
        assert report.retries == 2

    def test_empty_outcomes(self):
        report = build_report([], 10.0, 1.0)
        assert report.requests == 0
        assert report.latency_ms == {}


class TestEvaluate:
    def test_clean_run_passes(self):
        report = build_report(outcomes_ok(100), 50.0, 2.0)
        report.evaluate(SLO(p99_ms=100.0, min_achieved_fraction=0.9))
        assert report.verdict == "ok"
        assert report.violations == []

    def test_p99_violation(self):
        report = build_report(outcomes_ok(100, latency_s=0.2), 50.0, 2.0)
        report.evaluate(SLO(p99_ms=100.0, min_achieved_fraction=0.5))
        assert report.verdict == "violated"
        assert any("p99" in v for v in report.violations)

    def test_error_budget_zero_tolerance(self):
        outcomes = outcomes_ok(99) + [
            RequestOutcome(1.0, 500, 0.01)
        ]
        report = build_report(outcomes, 50.0, 2.0)
        report.evaluate(SLO(p99_ms=1000.0, min_achieved_fraction=0.5))
        assert report.verdict == "violated"
        assert any("error rate" in v for v in report.violations)

    def test_shed_budget(self):
        outcomes = outcomes_ok(90) + [
            RequestOutcome(1.0, 429, 0.0) for _ in range(10)
        ]
        report = build_report(outcomes, 50.0, 2.0)
        report.evaluate(
            SLO(
                p99_ms=1000.0,
                max_shed_rate=0.05,
                min_achieved_fraction=0.5,
            )
        )
        assert any("shed" in v for v in report.violations)

    def test_achieved_fraction_violation(self):
        report = build_report(outcomes_ok(50), 100.0, 2.0)
        report.evaluate(SLO(p99_ms=1000.0, min_achieved_fraction=0.95))
        assert any("achieved" in v for v in report.violations)

    def test_roundtrip_dict(self):
        report = build_report(outcomes_ok(10), 10.0, 1.0)
        report.evaluate(SLO())
        clone = SLOReport.from_dict(report.to_dict())
        assert clone.verdict == report.verdict
        assert clone.latency_ms == report.latency_ms
        assert clone.requests == report.requests

    def test_format_report_mentions_verdict(self):
        report = build_report(outcomes_ok(10), 10.0, 1.0)
        report.evaluate(SLO())
        text = format_report(report)
        assert "verdict" in text
        assert "offered" in text
