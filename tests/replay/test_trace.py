"""Trace generation and the recorded-trace format."""

import collections

import pytest

from repro.rdf import parse_sparql
from repro.replay import (
    DEFAULT_MIX,
    covering_shapes,
    generate_trace,
    load_trace,
    parse_mix,
    save_trace,
)
from repro.replay.trace import TraceFormatError


@pytest.fixture(scope="module")
def trace(replay_store):
    return generate_trace(
        replay_store, rate_qps=50.0, duration_s=6.0, seed=11
    )


class TestGeneration:
    def test_deterministic(self, replay_store):
        a = generate_trace(replay_store, 20.0, 3.0, seed=5)
        b = generate_trace(replay_store, 20.0, 3.0, seed=5)
        assert [e.text for e in a] == [e.text for e in b]
        assert [e.offset_s for e in a] == [e.offset_s for e in b]

    def test_seed_changes_trace(self, replay_store):
        a = generate_trace(replay_store, 20.0, 3.0, seed=5)
        b = generate_trace(replay_store, 20.0, 3.0, seed=6)
        assert [e.text for e in a] != [e.text for e in b]

    def test_rate_and_duration_roughly_honored(self, trace):
        assert 4.0 <= trace.duration_s <= 6.5
        # Poisson arrivals: allow generous slack around the target.
        assert 30.0 <= trace.offered_rate_qps <= 75.0

    def test_offsets_non_decreasing(self, trace):
        offsets = [e.offset_s for e in trace]
        assert offsets == sorted(offsets)

    def test_mix_shapes_present(self, trace):
        shapes = {(e.topology, e.size) for e in trace}
        expected = {(t, s) for t, s, _ in DEFAULT_MIX}
        assert shapes == expected

    def test_zipf_concentrates_popularity(self, replay_store):
        """High skew makes one hot query dominate; zero skew spreads."""
        skewed = generate_trace(
            replay_store,
            80.0,
            6.0,
            mix=[("star", 2, 1.0)],
            seed=3,
            zipf_s=2.0,
        )
        flat = generate_trace(
            replay_store,
            80.0,
            6.0,
            mix=[("star", 2, 1.0)],
            seed=3,
            zipf_s=0.0,
        )
        top_skewed = collections.Counter(
            e.text for e in skewed
        ).most_common(1)[0][1]
        top_flat = collections.Counter(
            e.text for e in flat
        ).most_common(1)[0][1]
        assert top_skewed > 2 * top_flat

    def test_uniform_arrivals_grid(self, replay_store):
        trace = generate_trace(
            replay_store, 10.0, 2.0, seed=1, arrivals="uniform"
        )
        gaps = [
            b.offset_s - a.offset_s
            for a, b in zip(trace.events, trace.events[1:])
        ]
        assert all(abs(gap - 0.1) < 1e-6 for gap in gaps)

    def test_queries_parse(self, trace, replay_store):
        for event in list(trace)[:40]:
            query = parse_sparql(event.text, replay_store.dictionary)
            assert len(query.triples) == event.size

    def test_compound_is_single_disconnected_bgp(self, replay_store):
        trace = generate_trace(
            replay_store, 10.0, 2.0, mix=[("compound", 4, 1.0)], seed=2
        )
        event = trace.events[0]
        query = parse_sparql(event.text, replay_store.dictionary)
        assert len(query.triples) == 4

    def test_range_events_rejected_by_parser(self, replay_store):
        """Range queries carry FILTER — the serving parser 400s them,
        which is why they stay out of SLO-gated mixes."""
        trace = generate_trace(
            replay_store, 5.0, 2.0, mix=[("range", 2, 1.0)], seed=2
        )
        with pytest.raises(Exception):
            parse_sparql(trace.events[0].text, replay_store.dictionary)


class TestRoundTrip:
    def test_save_load_identity(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t.trace")
        loaded = load_trace(path)
        assert loaded.events == trace.events
        assert loaded.meta["rate_qps"] == trace.meta["rate_qps"]

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("offset\tstar\t2\tSELECT\n")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_decreasing_offsets_rejected(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t.trace")
        lines = path.read_text().splitlines()
        lines.append("0.000001\tstar\t2\t" + trace.events[0].text)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text(
            "# repro-trace v1\n# offset_s\ttopology\tsize\tquery\n"
        )
        with pytest.raises(TraceFormatError):
            load_trace(path)


class TestMixAndShapes:
    def test_parse_mix(self):
        assert parse_mix(["star:2:0.5", "chain:3"]) == [
            ("star", 2, 0.5),
            ("chain", 3, 1.0),
        ]

    @pytest.mark.parametrize(
        "bad", ["star", "cycle:2", "star:x", "star:0", "star:2:-1"]
    )
    def test_parse_mix_rejects(self, bad):
        with pytest.raises(TraceFormatError):
            parse_mix([bad])

    def test_covering_shapes(self, replay_store):
        trace = generate_trace(
            replay_store,
            10.0,
            2.0,
            mix=[("star", 3, 1.0), ("compound", 5, 1.0)],
            seed=4,
        )
        shapes = covering_shapes(trace)
        assert ("star", 3) in shapes
        assert ("star", 2) in shapes  # compound's star component
        assert ("chain", 3) in shapes  # compound's chain component
