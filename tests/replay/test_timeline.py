"""The chaos timeline DSL: parsing and scheduled execution."""

import threading
import time

import pytest

from repro.replay import (
    TimelineError,
    TimelineStep,
    parse_timeline,
    run_timeline,
    start_timeline,
)

SCRIPT = """
# a storm
at 0.05s: kill worker
at 0.02s: reload ; at 0.03s: mutate 500
at 0.04s: maintain full
at 0.01s: corrupt next checkpoint garbage-manifest
"""


class FakeContext:
    """Records every call; raises when told to."""

    def __init__(self, fail_on=()):
        self.calls = []
        self.fail_on = set(fail_on)

    def _call(self, name, *args):
        self.calls.append((name, args))
        if name in self.fail_on:
            raise RuntimeError(f"boom in {name}")
        return f"did {name}"

    def kill_worker(self, index=None):
        return self._call("kill_worker", index)

    def reload(self, checkpoint=None, snapshot=None):
        return self._call("reload", checkpoint, snapshot)

    def mutate(self, count):
        return self._call("mutate", count)

    def maintain(self, full=False):
        return self._call("maintain", full)

    def corrupt_next_checkpoint(self, mode):
        return self._call("corrupt_next_checkpoint", mode)

    def corrupt_checkpoint(self, path, mode):
        return self._call("corrupt_checkpoint", path, mode)


class TestParse:
    def test_parses_and_sorts(self):
        steps = parse_timeline(SCRIPT)
        assert [s.action for s in steps] == [
            "corrupt_next_checkpoint",
            "reload",
            "mutate",
            "maintain",
            "kill_worker",
        ]
        assert steps[0].args == ("garbage-manifest",)
        assert steps[3].args == ("full",)

    def test_semicolons_and_comments(self):
        steps = parse_timeline(
            "# comment\nat 1s: reload; at 2s: mutate 3\n"
        )
        assert len(steps) == 2

    def test_explicit_corrupt_checkpoint(self):
        (step,) = parse_timeline(
            "at 1s: corrupt checkpoint /tmp/ckpt truncate-model"
        )
        assert step.action == "corrupt_checkpoint"
        assert step.args == ("/tmp/ckpt", "truncate-model")

    def test_default_corruption_mode(self):
        (step,) = parse_timeline("at 1s: corrupt next checkpoint")
        assert step.args[0] in (
            "truncate-model",
            "garbage-manifest",
            "garbage-artifact",
            "future-schema",
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "kill worker",  # missing 'at'
            "at 5: reload",  # time without 's'
            "at -1s: reload",  # negative
            "at 5s reload",  # missing ':'
            "at 5s: explode",  # unknown action
            "at 5s: kill worker one",  # non-int index
            "at 5s: mutate",  # missing count
            "at 5s: mutate 0",  # count < 1
            "at 5s: maintain quick",  # unknown flag
            "at 5s: corrupt next checkpoint eat-disk",  # unknown mode
            "at 5s: corrupt checkpoint",  # missing dir
        ],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(TimelineError):
            parse_timeline(bad)

    def test_empty_script_is_empty(self):
        assert parse_timeline("# nothing\n\n") == []


class TestRun:
    def test_executes_in_order_with_args(self):
        context = FakeContext()
        log = run_timeline(parse_timeline(SCRIPT), context)
        assert [name for name, _ in context.calls] == [
            "corrupt_next_checkpoint",
            "reload",
            "mutate",
            "maintain",
            "kill_worker",
        ]
        assert ("mutate", (500,)) in context.calls
        assert ("maintain", (True,)) in context.calls
        assert all(entry["ok"] for entry in log)
        assert log[1]["detail"] == "did reload"

    def test_fail_soft_continues(self):
        context = FakeContext(fail_on={"reload"})
        steps = parse_timeline(
            "at 0.01s: reload\nat 0.02s: mutate 2\n"
        )
        log = run_timeline(steps, context)
        assert log[0]["ok"] is False
        assert "boom in reload" in log[0]["detail"]
        assert log[1]["ok"] is True  # the storm went on

    def test_honors_schedule(self):
        context = FakeContext()
        steps = parse_timeline("at 0.15s: reload")
        t0 = time.monotonic()
        log = run_timeline(steps, context)
        assert time.monotonic() - t0 >= 0.15
        assert log[0]["started_s"] >= 0.15

    def test_stop_event_aborts(self):
        context = FakeContext()
        stop = threading.Event()
        stop.set()
        log = run_timeline(
            [TimelineStep(5.0, "reload", ())], context, stop
        )
        assert log == []
        assert context.calls == []

    def test_start_timeline_thread(self):
        context = FakeContext()
        thread, log = start_timeline(
            parse_timeline("at 0.01s: mutate 7"), context
        )
        thread.join(5.0)
        assert not thread.is_alive()
        assert log[0]["ok"] is True
        assert context.calls == [("mutate", (7,))]
