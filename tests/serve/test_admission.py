"""Admission control: trained-shape manifest, parse-time rejection."""

import pytest

from repro.sampling import generate_workload
from repro.serve.admission import AdmissionError, ShapeManifest


@pytest.fixture(scope="module")
def manifest(service):
    return ShapeManifest.from_framework(service.framework)


def _queries(store, shape, size, n=3, seed=23):
    workload = generate_workload(store, shape, size, n, seed=seed)
    return [record.query for record in workload]


class TestManifest:
    def test_probes_actual_routing(self, manifest):
        # conftest fits star:2 and chain:2; the probe must find exactly
        # the shapes the framework's grouping would route.
        assert 2 in manifest.covered.get("star", frozenset())
        assert 2 in manifest.covered.get("chain", frozenset())

    def test_dict_roundtrip(self, manifest):
        payload = manifest.to_dict()
        rebuilt = ShapeManifest.from_dict(payload)
        assert rebuilt.covered == manifest.covered
        # JSON-ready: sizes are sorted lists
        assert all(
            sizes == sorted(sizes) for sizes in payload.values()
        )

    def test_empty_manifest_rejects_everything(self, service):
        empty = ShapeManifest()
        queries = _queries(service.store, "star", 2)
        reason = empty.rejection_reason(queries[0])
        assert reason is not None
        assert "star:2" in reason


class TestAdmit:
    def test_covered_shape_admitted(self, manifest, star_queries):
        manifest.admit_all(star_queries[:5])  # must not raise

    def test_single_triple_always_admitted(self, manifest, service):
        queries = _queries(service.store, "star", 2)
        single = queries[0].triples[:1]
        from repro.rdf.pattern import QueryPattern

        manifest.admit_all([QueryPattern(single)])

    def test_uncovered_size_rejected(self, manifest, service):
        queries = _queries(service.store, "star", 3)
        with pytest.raises(AdmissionError) as excinfo:
            manifest.admit_all(queries)
        assert excinfo.value.reason == "uncovered_shape"
        assert excinfo.value.query_index == 0

    def test_query_index_points_at_offender(
        self, manifest, service, star_queries
    ):
        bad = _queries(service.store, "star", 3, n=1)
        batch = star_queries[:2] + bad
        with pytest.raises(AdmissionError) as excinfo:
            manifest.admit_all(batch)
        assert excinfo.value.query_index == 2

    def test_admitted_queries_actually_estimate(
        self, manifest, service, star_queries
    ):
        """Soundness: what admission admits, the framework answers."""
        manifest.admit_all(star_queries)
        values = service.framework.estimate_batch(star_queries)
        assert values.shape == (len(star_queries),)

    def test_rejected_queries_actually_fail(self, manifest, service):
        """The rejected query would have raised downstream anyway."""
        from repro.core.framework import EstimationError

        queries = _queries(service.store, "chain", 4, n=1)
        assert manifest.rejection_reason(queries[0]) is not None
        with pytest.raises(EstimationError):
            service.framework.estimate_batch(queries)
