"""`python -m repro serve` end-to-end: the real subprocess, real HTTP.

The shape the CI `serving-smoke` job runs: save a snapshot, start the
server against it, wait for /healthz, fire concurrent requests, and
check the answers against the served checkpoint loaded client-side.
"""

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

QUERY = (
    "SELECT ?x ?y WHERE { ?x <ub:advisor> ?y . "
    "?x <ub:takesCourse> ?z . }"
)


def post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


@pytest.fixture(scope="module")
def served(snapshot_dir, tmp_path_factory):
    """A live `python -m repro serve` subprocess on an ephemeral port."""
    checkpoint = tmp_path_factory.mktemp("cli-serve") / "ckpt"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--snapshot",
            str(snapshot_dir),
            "--port",
            "0",
            "--fit-queries",
            "100",
            "--fit-epochs",
            "4",
            "--save-checkpoint",
            str(checkpoint),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    port = None
    try:
        deadline = time.monotonic() + 180.0
        for line in process.stdout:
            if "serving" in line and "http://" in line:
                port = int(line.split("http://", 1)[1]
                           .split(" ", 1)[0].rsplit(":", 1)[1])
                break
            if time.monotonic() > deadline:
                break
        assert port is not None, "server never reported its port"
        base = f"http://127.0.0.1:{port}"
        # Wait for /healthz to answer.
        for _ in range(600):
            try:
                with urllib.request.urlopen(
                    f"{base}/healthz", timeout=5
                ) as response:
                    if json.load(response)["status"] == "ok":
                        break
            except (urllib.error.URLError, OSError):
                time.sleep(0.1)
        yield base, checkpoint
    finally:
        process.terminate()
        try:
            process.wait(10)
        except subprocess.TimeoutExpired:
            process.kill()


@pytest.fixture(scope="module")
def served_sharded(served, snapshot_dir, tmp_path_factory):
    """`repro serve --shards 2` on the same snapshot and checkpoint.

    Reusing the flat server's saved checkpoint pins the model, so any
    divergence between the two servers is the sharded store's fault.
    """
    _, checkpoint = served
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--snapshot",
            str(snapshot_dir),
            "--shards",
            "2",
            "--port",
            "0",
            "--checkpoint",
            str(checkpoint),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    port = None
    try:
        deadline = time.monotonic() + 180.0
        for line in process.stdout:
            if "serving" in line and "http://" in line:
                port = int(line.split("http://", 1)[1]
                           .split(" ", 1)[0].rsplit(":", 1)[1])
                break
            if time.monotonic() > deadline:
                break
        assert port is not None, "sharded server never reported its port"
        base = f"http://127.0.0.1:{port}"
        for _ in range(600):
            try:
                with urllib.request.urlopen(
                    f"{base}/healthz", timeout=5
                ) as response:
                    if json.load(response)["status"] == "ok":
                        break
            except (urllib.error.URLError, OSError):
                time.sleep(0.1)
        yield base
    finally:
        process.terminate()
        try:
            process.wait(10)
        except subprocess.TimeoutExpired:
            process.kill()


class TestServeCLI:
    def test_estimates_byte_identical_to_framework(
        self, served, service
    ):
        """Acceptance: POST /estimate answers byte-identical to
        Framework.estimate_batch on the same queries.  The served
        framework was fitted with the hidden-size defaults, so compare
        against the checkpoint the server itself saved."""
        from repro.core.framework import LMKG

        base, checkpoint = served
        texts = [QUERY] * 5
        status, payload = post(f"{base}/estimate", {"queries": texts})
        assert status == 200
        framework = LMKG.load(checkpoint, service.store)
        expected = framework.estimate_batch(
            service.parse_queries(texts)
        )
        assert payload["estimates"] == expected.tolist()

    def test_fifty_concurrent_requests_match_serial(
        self, served, service
    ):
        from repro.core.framework import LMKG

        base, checkpoint = served
        framework = LMKG.load(checkpoint, service.store)
        expected = float(
            framework.estimate_batch(service.parse_queries([QUERY]))[0]
        )
        with ThreadPoolExecutor(max_workers=16) as pool:
            responses = list(
                pool.map(
                    lambda _: post(
                        f"{base}/estimate", {"queries": [QUERY]}
                    ),
                    range(50),
                )
            )
        assert all(status == 200 for status, _ in responses)
        values = [payload["estimates"][0] for _, payload in responses]
        assert np.allclose(values, expected, rtol=1e-9)

    def test_sharded_server_byte_identical_50_concurrent(
        self, served, served_sharded
    ):
        """Acceptance: a 2-shard `repro serve --shards 2` answers 50
        concurrent requests byte-identical to the unsharded server."""
        base, _ = served
        expected_status, expected = post(
            f"{base}/estimate", {"queries": [QUERY]}
        )
        assert expected_status == 200
        with ThreadPoolExecutor(max_workers=16) as pool:
            responses = list(
                pool.map(
                    lambda _: post(
                        f"{served_sharded}/estimate", {"queries": [QUERY]}
                    ),
                    range(50),
                )
            )
        assert all(status == 200 for status, _ in responses)
        for _, payload in responses:
            assert payload["estimates"] == expected["estimates"]

    def test_healthz_and_stats_served(self, served):
        base, _ = served
        with urllib.request.urlopen(f"{base}/stats", timeout=30) as r:
            stats = json.load(r)
        assert stats["requests"] >= 1
        assert stats["batches"] >= 1

    def test_malformed_request_400(self, served):
        base, _ = served
        status, payload = post(
            f"{base}/estimate", {"queries": ["SELECT ?x WHERE"]}
        )
        assert status == 400
        assert "error" in payload
