"""Zero-downtime checkpoint hot-reload through POST /admin/reload."""

import json
import shutil
import threading
import urllib.error
import urllib.request

import pytest

from repro.baselines.independence import IndependenceEstimator
from repro.serve import (
    BatchScheduler,
    ResilientBackend,
    ServingRuntime,
    ShapeManifest,
    make_server,
)
from repro.serve.artifacts import load_artifact, save_checkpoint
from repro.serve.faults import corrupt_checkpoint

QUERY = (
    "SELECT ?x ?y WHERE { ?x <ub:advisor> ?y . "
    "?x <ub:takesCourse> ?z . }"
)


@pytest.fixture(scope="module")
def v2_checkpoint(service, tmp_path_factory):
    path = tmp_path_factory.mktemp("reload") / "ckpt-v2"
    save_checkpoint(service.framework, path)
    return path


@pytest.fixture()
def stack(service, v2_checkpoint):
    """A full runtime-backed server (in-process primary, no pool)."""
    backend = ResilientBackend(
        service.framework.estimate_batch,
        fallback=IndependenceEstimator(service.store).estimate_batch,
    )
    scheduler = BatchScheduler(backend, max_batch=32, max_delay_ms=1.0)
    runtime = ServingRuntime(
        service,
        scheduler,
        backend,
        admission=ShapeManifest.from_framework(service.framework),
        artifact=load_artifact(v2_checkpoint),
        checkpoint_dir=v2_checkpoint,
    )
    server = make_server(service, scheduler, port=0, runtime=runtime)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", runtime
    server.shutdown()
    server.server_close()
    scheduler.close()
    thread.join(5.0)


def post(url, body=None):
    data = (
        json.dumps(body).encode("utf-8") if body is not None else b""
    )
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.load(response)


class TestReloadEndpoint:
    def test_reload_bumps_generation(self, stack):
        base_url, runtime = stack
        generation = runtime.generation
        status, payload = post(f"{base_url}/admin/reload")
        assert status == 200, payload
        assert payload["status"] == "reloaded"
        assert payload["generation"] == generation + 1
        assert payload["schema_version"] == 2
        # responses immediately carry the new generation
        status, answer = post(
            f"{base_url}/estimate", {"queries": [QUERY]}
        )
        assert status == 200
        assert answer["generation"] == generation + 1
        assert answer["degraded"] is False

    def test_reload_explicit_checkpoint_body(
        self, stack, v2_checkpoint, tmp_path
    ):
        base_url, runtime = stack
        target = tmp_path / "other"
        shutil.copytree(v2_checkpoint, target)
        status, payload = post(
            f"{base_url}/admin/reload", {"checkpoint": str(target)}
        )
        assert status == 200, payload
        assert payload["checkpoint"] == str(target)
        assert runtime.checkpoint_dir == str(target)

    def test_healthz_reflects_reload(self, stack):
        base_url, runtime = stack
        post(f"{base_url}/admin/reload")
        status, payload = get(f"{base_url}/healthz")
        assert status == 200
        assert payload["checkpoint_generation"] == runtime.generation
        assert payload["checkpoint_schema_version"] == 2
        assert payload["reloads"] == 1
        assert payload["degraded"] is False

    @pytest.mark.parametrize(
        ("mode", "reason"),
        [
            ("truncate-model", "checksum"),
            ("garbage-artifact", "corrupt"),
            ("future-schema", "incompatible"),
        ],
    )
    def test_damaged_checkpoint_typed_409_old_keeps_serving(
        self, stack, v2_checkpoint, tmp_path, mode, reason
    ):
        base_url, runtime = stack
        damaged = tmp_path / f"damaged-{mode}"
        shutil.copytree(v2_checkpoint, damaged)
        corrupt_checkpoint(damaged, mode)
        generation = runtime.generation
        status, payload = post(
            f"{base_url}/admin/reload", {"checkpoint": str(damaged)}
        )
        assert status == 409, payload
        assert payload["reason"] == reason
        # the old checkpoint keeps serving, generation untouched
        assert runtime.generation == generation
        status, answer = post(
            f"{base_url}/estimate", {"queries": [QUERY]}
        )
        assert status == 200
        assert answer["generation"] == generation

    def test_missing_checkpoint_dir_409(self, stack, tmp_path):
        base_url, _ = stack
        status, payload = post(
            f"{base_url}/admin/reload",
            {"checkpoint": str(tmp_path / "void")},
        )
        assert status == 409
        assert payload["reason"] == "missing"


class TestReloadWithoutRuntime:
    def test_501_when_runtime_absent(self, service):
        scheduler = BatchScheduler(
            service.framework.estimate_batch, max_delay_ms=1.0
        )
        server = make_server(service, scheduler, port=0)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        host, port = server.server_address[:2]
        try:
            status, payload = post(
                f"http://{host}:{port}/admin/reload"
            )
            assert status == 501
        finally:
            server.shutdown()
            server.server_close()
            scheduler.close()
            thread.join(5.0)


class TestRuntimeNoPath:
    def test_reload_error_without_any_checkpoint(self, service):
        from repro.serve import ReloadError

        backend = ResilientBackend(service.framework.estimate_batch)
        scheduler = BatchScheduler(backend, max_delay_ms=1.0)
        runtime = ServingRuntime(service, scheduler, backend)
        try:
            with pytest.raises(ReloadError):
                runtime.reload()
        finally:
            scheduler.close()
