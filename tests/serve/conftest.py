"""Shared serving fixtures: one tmpdir snapshot + fitted service."""

import pytest

from repro.serve import EstimatorService, FitDefaults

#: small but non-trivial startup-fit: seconds, not minutes.
FIT = FitDefaults(queries_per_shape=100, epochs=4, hidden_sizes=(32, 32))


@pytest.fixture(scope="session")
def fit_defaults():
    return FIT


@pytest.fixture(scope="session")
def snapshot_dir(tmp_path_factory):
    from repro.datasets import load_dataset

    store = load_dataset("lubm", scale=0.25, seed=1)
    directory = tmp_path_factory.mktemp("serve") / "snapshot"
    store.save_snapshot(directory)
    return directory


@pytest.fixture(scope="session")
def service(snapshot_dir):
    return EstimatorService.from_snapshot(snapshot_dir, fit_defaults=FIT)


@pytest.fixture(scope="session")
def checkpoint_dir(service, tmp_path_factory):
    directory = tmp_path_factory.mktemp("serve-ckpt") / "checkpoint"
    service.framework.save(directory)
    return directory


@pytest.fixture(scope="session")
def star_queries(service):
    """Parsed star queries drawn from the served graph."""
    from repro.sampling import generate_workload

    workload = generate_workload(service.store, "star", 2, 30, seed=17)
    return [record.query for record in workload]
