"""ServingPool: multi-process estimation over one shared snapshot."""

import multiprocessing

import numpy as np
import pytest

from repro.serve import ServingPool, ServingWorkerError

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="needs the fork start method",
)


@needs_fork
class TestServingPool:
    def test_matches_in_process_results(
        self, snapshot_dir, checkpoint_dir, service, star_queries
    ):
        direct = service.framework.estimate_batch(star_queries)
        with ServingPool(snapshot_dir, checkpoint_dir, workers=2) as pool:
            pooled = pool.estimate_batch(star_queries)
        assert pooled.shape == direct.shape
        assert np.allclose(pooled, direct, rtol=1e-9)

    def test_empty_batch(self, snapshot_dir, checkpoint_dir):
        with ServingPool(snapshot_dir, checkpoint_dir, workers=2) as pool:
            assert pool.estimate_batch([]).size == 0

    def test_bad_checkpoint_fails_at_startup(
        self, snapshot_dir, tmp_path
    ):
        with pytest.raises(ServingWorkerError, match="failed to start"):
            ServingPool(snapshot_dir, tmp_path / "no-ckpt", workers=2)

    def test_uncovered_shape_raises_estimation_error(
        self, snapshot_dir, checkpoint_dir, service
    ):
        """EstimationError crosses the process boundary typed, so the
        HTTP layer answers 422 in multi-worker mode too."""
        from repro.core.framework import EstimationError
        from repro.rdf.pattern import star_pattern
        from repro.rdf.terms import Variable

        big = star_pattern(
            Variable("x"), [(p, Variable(f"y{p}")) for p in range(1, 7)]
        )
        with ServingPool(snapshot_dir, checkpoint_dir, workers=2) as pool:
            with pytest.raises(EstimationError):
                pool.estimate_batch([big])

    def test_worker_count_validated(self, snapshot_dir, checkpoint_dir):
        with pytest.raises(ValueError, match="workers"):
            ServingPool(snapshot_dir, checkpoint_dir, workers=0)

    def test_behind_scheduler_coalesces_and_answers(
        self, snapshot_dir, checkpoint_dir, service, star_queries
    ):
        """The pool is a drop-in estimate_batch backend for the
        micro-batching scheduler (the --workers N serve path)."""
        from repro.serve import BatchScheduler

        direct = service.framework.estimate_batch(star_queries)
        with ServingPool(snapshot_dir, checkpoint_dir, workers=2) as pool:
            scheduler = BatchScheduler(
                pool.estimate_batch, max_batch=16, max_delay_ms=2.0
            )
            try:
                values = scheduler.submit(star_queries, timeout=60.0)
            finally:
                scheduler.close()
        assert np.allclose(values, direct, rtol=1e-9)
