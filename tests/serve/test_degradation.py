"""Degraded serving still honours the Estimator contract.

Property-based: whatever batch the scheduler hands a degraded backend,
the fallback's answers must be finite, non-negative, float64, and in
input order — a degraded estimate may be *worse*, never *malformed*.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.independence import IndependenceEstimator
from repro.serve.supervisor import (
    CircuitBreaker,
    ResilientBackend,
    SupervisorError,
)


@pytest.fixture(scope="module")
def fallback(service):
    return IndependenceEstimator(service.store)


@pytest.fixture(scope="module")
def query_pool(service, star_queries):
    """Mixed pool: covered stars plus shapes the models never saw."""
    from repro.sampling import generate_workload

    pool = list(star_queries)
    for shape, size in [("chain", 2), ("star", 3), ("chain", 3)]:
        workload = generate_workload(
            service.store, shape, size, 10, seed=31
        )
        pool.extend(record.query for record in workload)
    return pool


def _degraded_backend(fallback):
    def primary(queries):
        raise SupervisorError("primary is down")

    return ResilientBackend(
        primary,
        fallback=fallback.estimate_batch,
        breaker=CircuitBreaker(failure_threshold=1),
    )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_degraded_batches_satisfy_estimator_contract(
    data, fallback, query_pool
):
    backend = _degraded_backend(fallback)
    batch = data.draw(
        st.lists(
            st.sampled_from(query_pool), min_size=1, max_size=16
        )
    )
    values, meta = backend(batch)
    assert meta["degraded"] is True
    assert meta["backend"] == "fallback"
    assert isinstance(values, np.ndarray)
    assert values.shape == (len(batch),)
    assert values.dtype == np.float64
    assert np.isfinite(values).all()
    assert (values >= 0).all()


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_degraded_values_are_deterministic_and_order_preserving(
    data, fallback, query_pool
):
    backend = _degraded_backend(fallback)
    batch = data.draw(
        st.lists(st.sampled_from(query_pool), min_size=2, max_size=8)
    )
    first, _ = backend(batch)
    again, _ = backend(batch)
    np.testing.assert_array_equal(first, again)
    # per-query values are position-independent: reversing the batch
    # reverses the answers
    rev, _ = backend(list(reversed(batch)))
    np.testing.assert_array_equal(rev, first[::-1])


def test_fallback_covers_shapes_the_models_reject(
    service, fallback, query_pool
):
    """The degradation path answers queries admission would 422 —
    an uncovered shape is still *estimable*, just less accurately."""
    from repro.serve.admission import ShapeManifest

    manifest = ShapeManifest.from_framework(service.framework)
    uncovered = [
        q for q in query_pool if manifest.rejection_reason(q)
    ]
    assert uncovered, "pool should contain uncovered shapes"
    values = fallback.estimate_batch(uncovered)
    assert np.isfinite(values).all()
    assert (values >= 0).all()


def test_scheduler_surfaces_degraded_meta(fallback, star_queries):
    """End-to-end through the scheduler: submit_with_meta carries the
    degradation flag the HTTP layer serialises."""
    from repro.serve.scheduler import BatchScheduler

    backend = _degraded_backend(fallback)
    scheduler = BatchScheduler(backend, max_batch=8, max_delay_ms=1.0)
    try:
        values, meta = scheduler.submit_with_meta(star_queries[:4])
        assert values.shape == (4,)
        assert meta["degraded"] is True
        assert meta["generation"] == 1
    finally:
        scheduler.close()
