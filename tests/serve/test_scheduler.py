"""BatchScheduler: coalescing, flush policy, backpressure, failure."""

import threading
import time

import numpy as np
import pytest

from repro.serve.scheduler import (
    BatchScheduler,
    QueueFullError,
    SchedulerClosedError,
)


class RecordingEstimator:
    """estimate_batch stub: answers float(query), records call widths."""

    def __init__(self):
        self.calls = []
        self.lock = threading.Lock()

    def __call__(self, queries):
        with self.lock:
            self.calls.append(len(queries))
        return np.array([float(q) for q in queries])


class GatedEstimator(RecordingEstimator):
    """Blocks inside the first call until released — lets a test pile
    requests up behind a deterministic in-flight batch."""

    def __init__(self):
        super().__init__()
        self.gate = threading.Event()
        self.entered = threading.Event()
        self._first = True

    def __call__(self, queries):
        first = self._first
        self._first = False
        if first:
            self.entered.set()
            assert self.gate.wait(10.0)
        return super().__call__(queries)


@pytest.fixture
def scheduler_factory():
    made = []

    def make(fn, **kwargs):
        scheduler = BatchScheduler(fn, **kwargs)
        made.append(scheduler)
        return scheduler

    yield make
    for scheduler in made:
        scheduler.close()


class TestCoalescing:
    def test_concurrent_requests_share_one_batch(
        self, scheduler_factory
    ):
        """K requests queued behind an in-flight batch are answered by
        ONE estimate_batch call."""
        estimator = GatedEstimator()
        scheduler = scheduler_factory(
            estimator, max_batch=64, max_delay_ms=50.0
        )
        blocker = scheduler.submit_async([1.0])
        assert estimator.entered.wait(5.0)
        # The worker is stuck inside call #1; these 5 requests pile up.
        futures = [
            scheduler.submit_async([float(i), float(i) + 0.5])
            for i in range(5)
        ]
        estimator.gate.set()
        assert blocker.result(10.0).tolist() == [1.0]
        for i, future in enumerate(futures):
            assert future.result(10.0).tolist() == [
                float(i),
                float(i) + 0.5,
            ]
        # call 1: the blocker alone; call 2: all five requests together.
        assert estimator.calls == [1, 10]
        stats = scheduler.stats()
        assert stats["batches"] == 2
        assert stats["coalesced_requests"] == 5
        assert stats["max_batch_seen"] == 10

    def test_results_split_back_per_request(self, scheduler_factory):
        estimator = RecordingEstimator()
        scheduler = scheduler_factory(estimator, max_delay_ms=1.0)
        a = scheduler.submit([7.0, 8.0])
        b = scheduler.submit([9.0])
        assert a.tolist() == [7.0, 8.0]
        assert b.tolist() == [9.0]

    def test_empty_request_short_circuits(self, scheduler_factory):
        estimator = RecordingEstimator()
        scheduler = scheduler_factory(estimator)
        assert scheduler.submit([]).size == 0
        assert estimator.calls == []


class TestFlushPolicy:
    def test_max_delay_flushes_a_lone_request(self, scheduler_factory):
        """An idle server answers a single request without waiting for
        max_batch company."""
        estimator = RecordingEstimator()
        scheduler = scheduler_factory(
            estimator, max_batch=1024, max_delay_ms=20.0
        )
        start = time.monotonic()
        result = scheduler.submit([3.0], timeout=10.0)
        elapsed = time.monotonic() - start
        assert result.tolist() == [3.0]
        assert estimator.calls == [1]
        assert elapsed < 5.0  # delay-bound, not batch-bound

    def test_max_batch_caps_a_batch(self, scheduler_factory):
        """Pending work beyond max_batch splits into capped batches."""
        estimator = GatedEstimator()
        scheduler = scheduler_factory(
            estimator, max_batch=4, max_delay_ms=50.0
        )
        blocker = scheduler.submit_async([0.0])
        assert estimator.entered.wait(5.0)
        futures = [
            scheduler.submit_async([float(i)]) for i in range(1, 11)
        ]
        estimator.gate.set()
        blocker.result(10.0)
        for i, future in enumerate(futures, start=1):
            assert future.result(10.0).tolist() == [float(i)]
        assert estimator.calls[0] == 1
        assert all(width <= 4 for width in estimator.calls[1:])
        assert sum(estimator.calls) == 11

    def test_oversized_request_stays_atomic(self, scheduler_factory):
        """A single request larger than max_batch is never split."""
        estimator = RecordingEstimator()
        scheduler = scheduler_factory(
            estimator, max_batch=2, max_delay_ms=1.0
        )
        result = scheduler.submit([float(i) for i in range(7)])
        assert result.tolist() == [float(i) for i in range(7)]
        assert 7 in estimator.calls


class TestBackpressure:
    def test_queue_full_rejects(self, scheduler_factory):
        estimator = GatedEstimator()
        scheduler = scheduler_factory(
            estimator, max_batch=1, max_delay_ms=1000.0, max_queue=2
        )
        blocker = scheduler.submit_async([1.0])
        assert estimator.entered.wait(5.0)
        scheduler.submit_async([2.0, 3.0])  # fills the queue
        with pytest.raises(QueueFullError):
            scheduler.submit_async([4.0])
        assert scheduler.stats()["rejected"] == 1
        estimator.gate.set()
        blocker.result(10.0)

    def test_oversized_request_admitted_when_idle(
        self, scheduler_factory
    ):
        """A request larger than max_queue is not permanently
        unservable: an empty queue admits it (429 = retryable)."""
        estimator = RecordingEstimator()
        scheduler = scheduler_factory(
            estimator, max_queue=2, max_delay_ms=1.0
        )
        result = scheduler.submit(
            [float(i) for i in range(5)], timeout=10.0
        )
        assert result.tolist() == [float(i) for i in range(5)]

    def test_nan_from_backend_is_a_contract_error(
        self, scheduler_factory
    ):
        from repro.core.estimator import EstimatorContractError

        scheduler = scheduler_factory(
            lambda queries: np.array([float("nan")]), max_delay_ms=1.0
        )
        with pytest.raises(EstimatorContractError, match="non-finite"):
            scheduler.submit([1.0], timeout=10.0)

    def test_submit_after_close_rejected(self):
        scheduler = BatchScheduler(RecordingEstimator())
        scheduler.close()
        with pytest.raises(SchedulerClosedError):
            scheduler.submit([1.0])

    def test_close_drains_pending(self):
        estimator = GatedEstimator()
        scheduler = BatchScheduler(
            estimator, max_batch=1, max_delay_ms=1000.0
        )
        blocker = scheduler.submit_async([1.0])
        assert estimator.entered.wait(5.0)
        tail = scheduler.submit_async([2.0])
        estimator.gate.set()
        scheduler.close()
        assert blocker.result(1.0).tolist() == [1.0]
        assert tail.result(1.0).tolist() == [2.0]


class TestFailures:
    def test_estimator_error_reaches_every_request(
        self, scheduler_factory
    ):
        boom = RuntimeError("model exploded")

        def failing(queries):
            raise boom

        scheduler = scheduler_factory(failing, max_delay_ms=1.0)
        future = scheduler.submit_async([1.0])
        with pytest.raises(RuntimeError, match="model exploded"):
            future.result(10.0)
        assert scheduler.stats()["errors"] == 1

    def test_poisoned_batch_fails_only_the_offender(
        self, scheduler_factory
    ):
        """A request that makes the coalesced batch raise must not take
        its co-batched neighbours down with it."""
        gate = threading.Event()
        entered = threading.Event()
        state = {"first": True}

        def fn(queries):
            if state["first"]:
                state["first"] = False
                entered.set()
                assert gate.wait(10.0)
                return np.array([float(q) for q in queries])
            if "bad" in queries:
                raise RuntimeError("poison")
            return np.array([float(q) for q in queries])

        scheduler = scheduler_factory(fn, max_batch=64, max_delay_ms=50.0)
        blocker = scheduler.submit_async([0.0])
        assert entered.wait(5.0)
        good = scheduler.submit_async([1.0])
        bad = scheduler.submit_async(["bad"])
        also_good = scheduler.submit_async([2.0])
        gate.set()
        assert blocker.result(10.0).tolist() == [0.0]
        assert good.result(10.0).tolist() == [1.0]
        with pytest.raises(RuntimeError, match="poison"):
            bad.result(10.0)
        assert also_good.result(10.0).tolist() == [2.0]
        assert scheduler.stats()["errors"] == 1

    def test_wrong_shape_is_an_error(self, scheduler_factory):
        scheduler = scheduler_factory(
            lambda queries: np.zeros(0), max_delay_ms=1.0
        )
        with pytest.raises(RuntimeError, match="shape"):
            scheduler.submit([1.0], timeout=10.0)

    def test_bad_policy_rejected(self):
        fn = RecordingEstimator()
        with pytest.raises(ValueError):
            BatchScheduler(fn, max_batch=0)
        with pytest.raises(ValueError):
            BatchScheduler(fn, max_delay_ms=-1.0)
        with pytest.raises(ValueError):
            BatchScheduler(fn, max_queue=0)


class TestStats:
    def test_counters_and_latency(self, scheduler_factory):
        scheduler = scheduler_factory(
            RecordingEstimator(), max_delay_ms=1.0
        )
        for i in range(4):
            scheduler.submit([float(i)])
        stats = scheduler.stats()
        assert stats["requests"] == 4
        assert stats["queries"] == 4
        assert stats["batches"] >= 1
        assert stats["queue_depth"] == 0
        assert stats["latency_ms"]["p50"] >= 0.0
        assert stats["latency_ms"]["p99"] >= stats["latency_ms"]["p50"]
        assert stats["policy"]["max_batch"] == 64
