"""Fault-tolerance layer: breaker, resilient backend, supervised pool."""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.framework import EstimationError
from repro.serve.faults import FaultSpec
from repro.serve.supervisor import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    NoWorkersError,
    ResilientBackend,
    SupervisedPool,
    SupervisorError,
)


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ----------------------------------------------------------------------
# CircuitBreaker (pure unit tests, injectable clock)
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_starts_closed_routing_primary(self):
        breaker = CircuitBreaker()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.route() == "primary"

    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.route() == "fallback"

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_probe_after_timeout(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=5.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.route() == "fallback"
        clock.advance(5.1)
        assert breaker.route() == "primary"  # the probe
        assert breaker.state == BREAKER_HALF_OPEN

    def test_probe_is_single_flight(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=1.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.route() == "primary"
        # while the probe is in flight everyone else degrades
        assert breaker.route() == "fallback"
        assert breaker.route() == "fallback"

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=1.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(2.0)
        breaker.route()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.route() == "primary"

    def test_probe_failure_reopens_full_window(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout_s=5.0, clock=clock
        )
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.1)
        breaker.route()  # probe out
        breaker.record_failure()  # one failure re-opens — no threshold
        assert breaker.state == BREAKER_OPEN
        clock.advance(4.9)
        assert breaker.route() == "fallback"  # window restarted
        clock.advance(0.2)
        assert breaker.route() == "primary"

    def test_opens_counter(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=1.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(2.0)
        breaker.route()
        breaker.record_failure()
        assert breaker.state_dict()["opens"] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout_s=-1.0)


# ----------------------------------------------------------------------
# ResilientBackend (fake callables)
# ----------------------------------------------------------------------


def _ones(queries):
    return np.ones(len(queries), dtype=np.float64)


def _twos(queries):
    return np.full(len(queries), 2.0)


class TestResilientBackend:
    def test_primary_meta(self):
        backend = ResilientBackend(_ones, fallback=_twos)
        values, meta = backend(["q1", "q2"])
        assert values.tolist() == [1.0, 1.0]
        assert meta == {
            "generation": 1,
            "degraded": False,
            "backend": "primary",
        }

    def test_estimation_error_passes_through(self):
        def primary(queries):
            raise EstimationError("uncovered shape")

        backend = ResilientBackend(primary, fallback=_twos)
        with pytest.raises(EstimationError):
            backend(["q"])
        # a per-query 422 is not a primary-path failure
        assert backend.breaker.state == BREAKER_CLOSED

    def test_infrastructure_error_degrades_immediately(self):
        def primary(queries):
            raise SupervisorError("all workers failed")

        backend = ResilientBackend(primary, fallback=_twos)
        values, meta = backend(["q"])
        assert values.tolist() == [2.0]
        assert meta["degraded"] is True
        assert meta["backend"] == "fallback"

    def test_other_errors_propagate_until_breaker_opens(self):
        calls = {"primary": 0}

        def primary(queries):
            calls["primary"] += 1
            raise RuntimeError("boom")

        backend = ResilientBackend(
            primary,
            fallback=_twos,
            breaker=CircuitBreaker(
                failure_threshold=2, clock=FakeClock()
            ),
        )
        # while CLOSED the failure propagates (scheduler isolates it)
        with pytest.raises(RuntimeError):
            backend(["q"])
        # the opening failure itself is served degraded
        values, meta = backend(["q"])
        assert meta["degraded"] is True
        # breaker now open: fallback without touching the primary
        before = calls["primary"]
        values, meta = backend(["q"])
        assert meta["degraded"] is True
        assert calls["primary"] == before

    def test_no_fallback_always_raises(self):
        def primary(queries):
            raise SupervisorError("down")

        backend = ResilientBackend(primary, fallback=None)
        with pytest.raises(SupervisorError):
            backend(["q"])

    def test_fallback_failure_reraises_primary_cause(self):
        def primary(queries):
            raise SupervisorError("primary down")

        def fallback(queries):
            raise RuntimeError("fallback also down")

        backend = ResilientBackend(primary, fallback=fallback)
        with pytest.raises(SupervisorError, match="primary down"):
            backend(["q"])

    def test_half_open_recovery_end_to_end(self):
        clock = FakeClock()
        healthy = {"flag": False}

        def primary(queries):
            if not healthy["flag"]:
                raise SupervisorError("down")
            return _ones(queries)

        backend = ResilientBackend(
            primary,
            fallback=_twos,
            breaker=CircuitBreaker(
                failure_threshold=1, reset_timeout_s=5.0, clock=clock
            ),
        )
        _, meta = backend(["q"])
        assert meta["degraded"] is True
        healthy["flag"] = True
        clock.advance(5.1)
        _, meta = backend(["q"])  # half-open probe hits primary
        assert meta["degraded"] is False
        assert backend.breaker.state == BREAKER_CLOSED

    def test_swap_primary_bumps_generation_and_resets_breaker(self):
        backend = ResilientBackend(_ones, fallback=_twos)
        backend.breaker.record_failure()
        backend.breaker.record_failure()
        backend.breaker.record_failure()
        assert backend.breaker.state == BREAKER_OPEN
        old = backend.swap_primary(_twos)
        assert old is _ones
        assert backend.generation == 2
        assert backend.breaker.state == BREAKER_CLOSED
        values, meta = backend(["q"])
        assert values.tolist() == [2.0]
        assert meta["generation"] == 2

    def test_wait_idle(self):
        backend = ResilientBackend(_ones)
        assert backend.wait_idle(_ones, timeout=0.1)

    def test_stats(self):
        backend = ResilientBackend(_ones, fallback=_twos)
        backend(["q"])
        stats = backend.stats()
        assert stats["primary_batches"] == 1
        assert stats["degraded_batches"] == 0
        assert stats["fallback_available"] is True
        assert stats["circuit_breaker"]["state"] == BREAKER_CLOSED


# ----------------------------------------------------------------------
# SupervisedPool (real worker processes — slower)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def pool(snapshot_dir, checkpoint_dir):
    with SupervisedPool(
        snapshot_dir, checkpoint_dir, workers=2, request_timeout=30.0
    ) as pool:
        yield pool


def _wait(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestSupervisedPool:
    def test_matches_in_process_estimates(
        self, pool, service, star_queries
    ):
        got = pool.estimate_batch(star_queries)
        want = service.framework.estimate_batch(star_queries)
        np.testing.assert_allclose(got, want, rtol=1e-6)

    def test_empty_batch(self, pool):
        assert pool.estimate_batch([]).shape == (0,)

    def test_survives_external_kill(self, pool, star_queries):
        deaths_before = pool.stats()["deaths"]
        victim = pool._workers[0]
        os.kill(victim.process.pid, signal.SIGKILL)
        # the very next batch must succeed (sibling retry), even
        # though the dead worker has not been restarted yet
        values = pool.estimate_batch(star_queries)
        assert values.shape == (len(star_queries),)
        assert np.isfinite(values).all()
        # and the supervisor brings the slot back
        assert _wait(
            lambda: all(
                w["alive"] and w["state"] == "ready"
                for w in pool.stats()["workers"]
            )
        ), pool.stats()
        stats = pool.stats()
        assert stats["deaths"] > deaths_before
        assert stats["restarts_used"] >= 1

    def test_reload_blue_green(
        self, pool, service, star_queries, tmp_path
    ):
        from repro.serve.artifacts import save_checkpoint

        target = tmp_path / "ckpt2"
        save_checkpoint(service.framework, target)
        generation_before = pool.stats()["worker_set_generation"]
        generation = pool.reload(target)
        assert generation == generation_before + 1
        values = pool.estimate_batch(star_queries[:4])
        want = service.framework.estimate_batch(star_queries[:4])
        np.testing.assert_allclose(values, want, rtol=1e-6)

    def test_reload_bad_checkpoint_keeps_old_set(
        self, pool, star_queries, tmp_path
    ):
        with pytest.raises(SupervisorError):
            pool.reload(tmp_path / "does-not-exist")
        # the old set is untouched and still serving
        values = pool.estimate_batch(star_queries[:4])
        assert values.shape == (4,)

    def test_estimation_error_is_not_a_death(self, pool, service):
        from repro.sampling import generate_workload

        uncovered = [
            record.query
            for record in generate_workload(
                service.store, "star", 3, 2, seed=5
            )
        ]
        deaths_before = pool.stats()["deaths"]
        with pytest.raises(EstimationError):
            pool.estimate_batch(uncovered)
        assert pool.stats()["deaths"] == deaths_before


class TestSupervisedPoolFaults:
    def test_kill_fault_mid_request_retries_on_sibling(
        self, snapshot_dir, checkpoint_dir, star_queries
    ):
        # every worker exits hard on its 2nd request: the first batch
        # serves cleanly, the second strands both chunks mid-flight.
        # The client must never notice — stranded chunks wait for the
        # supervisor's restarts (fresh fault counters) and re-run.
        spec = FaultSpec(kill_every=2)
        with SupervisedPool(
            snapshot_dir,
            checkpoint_dir,
            workers=2,
            request_timeout=30.0,
            fault_spec=spec,
            restart_budget=64,
            backoff_base=0.05,
        ) as pool:
            first = pool.estimate_batch(star_queries[:6])
            assert np.isfinite(first).all()
            second = pool.estimate_batch(star_queries[:6])
            assert second.shape == (6,)
            assert np.isfinite(second).all()
            np.testing.assert_allclose(second, first, rtol=1e-6)
            stats = pool.stats()
            assert stats["deaths"] >= 2
            assert stats["chunk_retries"] >= 2

    def test_hang_fault_times_out_and_recovers(
        self, snapshot_dir, checkpoint_dir, star_queries
    ):
        # the worker hangs on its 2nd request; the 1s request timeout
        # declares it hung, kills it, and the restarted worker (fresh
        # counter) serves the retried chunk.
        spec = FaultSpec(hang_every=2, hang_s=60.0)
        with SupervisedPool(
            snapshot_dir,
            checkpoint_dir,
            workers=1,
            request_timeout=1.0,
            fault_spec=spec,
            restart_budget=64,
            backoff_base=0.05,
        ) as pool:
            first = pool.estimate_batch(star_queries[:2])
            assert first.shape == (2,)
            second = pool.estimate_batch(star_queries[:2])
            assert second.shape == (2,)
            assert pool.stats()["timeouts"] >= 1

    def test_restart_budget_exhaustion_fails_slot(
        self, snapshot_dir, checkpoint_dir, star_queries
    ):
        with SupervisedPool(
            snapshot_dir,
            checkpoint_dir,
            workers=1,
            request_timeout=30.0,
            restart_budget=0,
        ) as pool:
            os.kill(pool._workers[0].process.pid, signal.SIGKILL)
            assert _wait(
                lambda: pool.stats()["workers"][0]["state"]
                == "failed"
            ), pool.stats()
            with pytest.raises(NoWorkersError):
                pool.estimate_batch(star_queries[:2])
