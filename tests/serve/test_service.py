"""EstimatorService: snapshot/checkpoint loading and query parsing."""

import numpy as np
import pytest

from repro.rdf.parser import ParseError
from repro.serve import EstimatorService, ServiceError

QUERY = (
    "SELECT ?x ?y WHERE { ?x <ub:advisor> ?y . "
    "?x <ub:takesCourse> ?z . }"
)


class TestConstruction:
    def test_bad_snapshot_rejected(self, tmp_path):
        with pytest.raises(ServiceError, match="snapshot load failed"):
            EstimatorService.from_snapshot(tmp_path / "nope")

    def test_bad_checkpoint_rejected(self, snapshot_dir, tmp_path):
        with pytest.raises(ServiceError, match="checkpoint load failed"):
            EstimatorService.from_snapshot(
                snapshot_dir, tmp_path / "no-ckpt"
            )

    def test_dictionaryless_snapshot_rejected(self, tmp_path):
        """Queries cannot be parsed without the term dictionary."""
        from repro.rdf.store import TripleStore

        store = TripleStore()
        store.add_all([(0, 0, 1), (1, 0, 2), (2, 1, 3)])
        store.save_snapshot(tmp_path / "raw")
        with pytest.raises(ServiceError, match="dictionary"):
            EstimatorService.from_snapshot(tmp_path / "raw")

    def test_checkpoint_answers_like_startup_fit(
        self, snapshot_dir, checkpoint_dir, service, star_queries
    ):
        """A reloaded checkpoint is the served model, bit for bit."""
        reloaded = EstimatorService.from_snapshot(
            snapshot_dir, checkpoint_dir
        )
        assert (
            reloaded.estimate_batch(star_queries).tolist()
            == service.estimate_batch(star_queries).tolist()
        )

    def test_default_fit_is_deterministic(
        self, snapshot_dir, service, fit_defaults
    ):
        """Two processes fitting from the same snapshot with the same
        defaults must agree exactly — the CI smoke test's foundation."""
        twin = EstimatorService.from_snapshot(
            snapshot_dir, fit_defaults=fit_defaults
        )
        queries = twin.parse_queries([QUERY])
        assert (
            twin.estimate_batch(queries).tolist()
            == service.estimate_batch(queries).tolist()
        )


class TestRequestSurface:
    def test_parse_and_estimate(self, service):
        queries = service.parse_queries([QUERY, QUERY])
        values = service.estimate_batch(queries)
        assert isinstance(values, np.ndarray)
        assert values.shape == (2,)
        assert values[0] == values[1] >= 0.0

    def test_parse_rejects_garbage(self, service):
        for bad in (
            "SELECT ?x WHERE",
            "not sparql at all {",
            "SELECT ?x WHERE { ?x <no:such:predicate> ?y . }",
        ):
            with pytest.raises(ParseError):
                service.parse_query(bad)

    def test_parse_rejects_non_strings(self, service):
        with pytest.raises(ParseError, match="SPARQL string"):
            service.parse_query(42)

    def test_describe_reports_graph_and_model(self, service):
        info = service.describe()
        assert info["triples"] == len(service.store)
        assert info["models"] >= 1
        assert info["model_type"] == "supervised"
        assert info["model_bytes"] > 0
