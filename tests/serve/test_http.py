"""The HTTP endpoint end-to-end over a tmpdir snapshot.

One in-process ThreadingHTTPServer on an ephemeral port per module;
requests go through the real urllib client path.
"""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.serve import BatchScheduler, make_server

QUERY = (
    "SELECT ?x ?y WHERE { ?x <ub:advisor> ?y . "
    "?x <ub:takesCourse> ?z . }"
)


@pytest.fixture(scope="module")
def server(service):
    scheduler = BatchScheduler(
        service.framework.estimate_batch,
        max_batch=64,
        max_delay_ms=2.0,
    )
    srv = make_server(service, scheduler, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    scheduler.close()
    thread.join(5.0)


@pytest.fixture(scope="module")
def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def get(url):
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def post(url, body, raw=False):
    data = body if raw else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


class TestHealthAndStats:
    def test_healthz(self, base_url, service):
        status, payload = get(f"{base_url}/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["triples"] == len(service.store)
        assert payload["models"] >= 1

    def test_stats_counts_requests(self, base_url):
        post(f"{base_url}/estimate", {"queries": [QUERY]})
        status, payload = get(f"{base_url}/stats")
        assert status == 200
        assert payload["requests"] >= 1
        assert payload["batches"] >= 1
        assert payload["policy"]["max_batch"] == 64

    def test_unknown_routes_404(self, base_url):
        status, _ = get(f"{base_url}/nope")
        assert status == 404
        status, _ = post(f"{base_url}/other", {"queries": [QUERY]})
        assert status == 404


class TestEstimate:
    def test_single_request_byte_identical_to_framework(
        self, base_url, service, star_queries, snapshot_dir
    ):
        """The acceptance bar: a POSTed batch answers exactly what
        Framework.estimate_batch returns for the same queries (one
        request on an idle server = one batch of exactly its queries,
        and JSON floats round-trip exactly)."""
        texts = [QUERY, QUERY]
        status, payload = post(
            f"{base_url}/estimate", {"queries": texts}
        )
        assert status == 200
        expected = service.framework.estimate_batch(
            service.parse_queries(texts)
        )
        assert payload["estimates"] == expected.tolist()
        assert payload["count"] == 2

    def test_concurrent_requests_all_answered_correctly(
        self, base_url, service, star_queries
    ):
        """50 concurrent single-query requests: every response matches
        the serial batched answer for its query (within float noise —
        co-batching may change BLAS batch shapes)."""
        texts = [QUERY] * 50
        expected = float(
            service.framework.estimate_batch(
                service.parse_queries([QUERY])
            )[0]
        )
        with ThreadPoolExecutor(max_workers=16) as pool:
            responses = list(
                pool.map(
                    lambda text: post(
                        f"{base_url}/estimate", {"queries": [text]}
                    ),
                    texts,
                )
            )
        assert all(status == 200 for status, _ in responses)
        values = [payload["estimates"][0] for _, payload in responses]
        assert np.allclose(values, expected, rtol=1e-9)


class TestMalformedRequests:
    def test_invalid_json_400(self, base_url):
        status, payload = post(
            f"{base_url}/estimate", b"{not json", raw=True
        )
        assert status == 400
        assert "invalid JSON" in payload["error"]

    def test_missing_queries_field_400(self, base_url):
        status, payload = post(f"{base_url}/estimate", {"q": [QUERY]})
        assert status == 400
        assert "queries" in payload["error"]

    def test_empty_query_list_400(self, base_url):
        status, _ = post(f"{base_url}/estimate", {"queries": []})
        assert status == 400

    def test_non_string_query_400(self, base_url):
        status, payload = post(f"{base_url}/estimate", {"queries": [7]})
        assert status == 400
        assert "SPARQL string" in payload["error"]

    def test_unparseable_sparql_400(self, base_url):
        status, payload = post(
            f"{base_url}/estimate", {"queries": ["SELECT ?x WHERE"]}
        )
        assert status == 400
        assert "bad query" in payload["error"]

    def test_unknown_term_400(self, base_url):
        status, _ = post(
            f"{base_url}/estimate",
            {"queries": ["SELECT ?x WHERE { ?x <no:such> ?y . }"]},
        )
        assert status == 400

    def test_empty_body_400(self, base_url):
        request = urllib.request.Request(
            f"{base_url}/estimate", data=b"", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_uncovered_shape_422(self, base_url):
        """A parseable query no trained model covers is unestimable,
        not malformed."""
        big_star = (
            "SELECT ?x WHERE { ?x <ub:advisor> ?a . "
            "?x <ub:takesCourse> ?b . ?x <ub:memberOf> ?c . "
            "?x <ub:worksFor> ?d . ?x <ub:telephone> ?e . "
            "?x <ub:emailAddress> ?f . }"
        )
        status, payload = post(
            f"{base_url}/estimate", {"queries": [big_star]}
        )
        assert status == 422
        assert "error" in payload


class TestBackpressure:
    def test_queue_full_429(self, service):
        """A saturated scheduler sheds load as 429, and recovers."""
        import time

        gate = threading.Event()
        entered = threading.Event()
        state = {"first": True}

        def gated(queries):
            if state["first"]:
                state["first"] = False
                entered.set()
                assert gate.wait(30.0)
            return service.framework.estimate_batch(queries)

        scheduler = BatchScheduler(
            gated, max_batch=1, max_delay_ms=1000.0, max_queue=1
        )
        srv = make_server(service, scheduler, port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        host, port = srv.server_address[:2]
        url = f"http://{host}:{port}/estimate"
        try:
            with ThreadPoolExecutor(max_workers=3) as pool:
                blocker = pool.submit(post, url, {"queries": [QUERY]})
                assert entered.wait(30.0)
                filler = pool.submit(post, url, {"queries": [QUERY]})
                # Wait until the filler occupies the queue slot.
                deadline = time.monotonic() + 30.0
                while (
                    scheduler.stats()["queue_depth"] < 1
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                status, payload = post(url, {"queries": [QUERY]})
                assert status == 429
                assert "queue full" in payload["error"]
                gate.set()
                assert blocker.result(30.0)[0] == 200
                assert filler.result(30.0)[0] == 200
        finally:
            gate.set()
            srv.shutdown()
            srv.server_close()
            scheduler.close()
            thread.join(5.0)
