"""The /healthz freshness block and the snapshot-aware reload body.

The maintenance hand-off surface: a checkpoint published by
``repro maintain`` carries a watermark; the serving runtime compares
it against the served store under the declared dbt-style thresholds
and reports pass/warn/error on ``/healthz``; ``/admin/reload`` accepts
``{"checkpoint": ..., "snapshot": ...}`` to swap the graph together
with the model.
"""

import copy
import dataclasses
import json
import shutil
import threading
import urllib.error
import urllib.request

import pytest

from repro.maintain.freshness import FreshnessPolicy
from repro.maintain.watermark import Watermark, write_watermark
from repro.serve import (
    BatchScheduler,
    ResilientBackend,
    ServingRuntime,
    ShapeManifest,
    make_server,
)
from repro.serve.artifacts import load_artifact, save_checkpoint

QUERY = (
    "SELECT ?x ?y WHERE { ?x <ub:advisor> ?y . "
    "?x <ub:takesCourse> ?z . }"
)


@pytest.fixture(scope="module")
def marked_checkpoint(service, tmp_path_factory):
    """A checkpoint stamped the way ``maintain run`` publishes it."""
    path = tmp_path_factory.mktemp("freshness") / "ckpt"
    save_checkpoint(service.framework, path)
    write_watermark(path, Watermark.of_store(service.store, run=3))
    return path


@pytest.fixture()
def runtime_factory(service):
    """Builds throwaway runtimes over a *copy* of the shared service,
    so store/framework swaps never leak into other test modules."""
    schedulers = []

    def build(checkpoint_dir=None, policy=None, with_artifact=True):
        own_service = copy.copy(service)
        backend = ResilientBackend(
            own_service.framework.estimate_batch
        )
        scheduler = BatchScheduler(
            backend, max_batch=8, max_delay_ms=1.0
        )
        schedulers.append(scheduler)
        artifact = (
            load_artifact(checkpoint_dir)
            if with_artifact and checkpoint_dir is not None
            else None
        )
        return ServingRuntime(
            own_service,
            scheduler,
            backend,
            admission=ShapeManifest.from_framework(
                own_service.framework
            ),
            artifact=artifact,
            checkpoint_dir=checkpoint_dir,
            freshness_policy=policy,
        )

    yield build
    for scheduler in schedulers:
        scheduler.close()


class TestFreshnessVerdicts:
    def test_no_record_at_all_is_unknown(self, runtime_factory):
        freshness = runtime_factory().freshness()
        assert freshness["status"] == "unknown"
        assert freshness["lag_triples"] is None

    def test_watermarked_checkpoint_passes(
        self, runtime_factory, marked_checkpoint
    ):
        freshness = runtime_factory(marked_checkpoint).freshness()
        assert freshness["status"] == "pass"
        assert freshness["model_run"] == 3
        assert freshness["lag_triples"] == 0
        assert freshness["vocabulary_ok"] is True

    def test_pre_maintenance_checkpoint_uses_fingerprint(
        self, runtime_factory, service, tmp_path
    ):
        # No watermark.json: the artifact's store fingerprint still
        # measures triple lag; run/generation degrade to 0 / -1.
        plain = tmp_path / "plain"
        save_checkpoint(service.framework, plain)
        freshness = runtime_factory(plain).freshness()
        assert freshness["status"] == "pass"
        assert freshness["model_run"] == 0
        assert freshness["model_generation"] == -1
        assert freshness["lag_triples"] == 0

    def test_stale_watermark_classified_by_policy(
        self, runtime_factory, service, marked_checkpoint, tmp_path
    ):
        stale_dir = tmp_path / "stale"
        shutil.copytree(marked_checkpoint, stale_dir)
        behind = dataclasses.replace(
            Watermark.of_store(service.store, run=2),
            num_triples=len(service.store) - 7,
        )
        write_watermark(stale_dir, behind)
        warn = runtime_factory(stale_dir).freshness()
        assert warn["status"] == "warn"
        assert warn["lag_triples"] == 7
        error = runtime_factory(
            stale_dir,
            policy=FreshnessPolicy(warn_after=1, error_after=5),
        ).freshness()
        assert error["status"] == "error"

    def test_vocabulary_mismatch_is_error(
        self, runtime_factory, service, marked_checkpoint, tmp_path
    ):
        mismatched = tmp_path / "mismatched"
        shutil.copytree(marked_checkpoint, mismatched)
        alien = dataclasses.replace(
            Watermark.of_store(service.store, run=2),
            num_nodes=service.store.num_nodes + 1,
        )
        write_watermark(mismatched, alien)
        freshness = runtime_factory(mismatched).freshness()
        assert freshness["status"] == "error"
        assert freshness["vocabulary_ok"] is False


@pytest.fixture()
def stack(runtime_factory, marked_checkpoint):
    runtime = runtime_factory(marked_checkpoint)
    server = make_server(
        runtime.service, runtime.scheduler, port=0, runtime=runtime
    )
    thread = threading.Thread(
        target=server.serve_forever, daemon=True
    )
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", runtime
    server.shutdown()
    server.server_close()
    thread.join(5.0)


def get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.load(response)


def post(url, body=None):
    data = (
        json.dumps(body).encode("utf-8") if body is not None else b""
    )
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


class TestHealthzFreshnessBlock:
    def test_healthz_carries_the_verdict(self, stack):
        base_url, _ = stack
        status, payload = get(f"{base_url}/healthz")
        assert status == 200
        freshness = payload["freshness"]
        assert freshness["status"] == "pass"
        assert freshness["model_run"] == 3
        assert set(freshness["thresholds"]) == {
            "warn_after",
            "error_after",
        }


class TestSnapshotAwareReload:
    def test_reload_swaps_store_and_model_together(
        self, stack, marked_checkpoint, snapshot_dir, tmp_path
    ):
        base_url, runtime = stack
        old_store = runtime.service.store
        new_snapshot = tmp_path / "gen-0002"
        shutil.copytree(snapshot_dir, new_snapshot)
        status, payload = post(
            f"{base_url}/admin/reload",
            {
                "checkpoint": str(marked_checkpoint),
                "snapshot": str(new_snapshot),
            },
        )
        assert status == 200, payload
        assert payload["snapshot"] == str(new_snapshot)
        assert runtime.service.store is not old_store
        assert len(runtime.service.store) == len(old_store)
        # The swapped stack still answers queries.
        status, answer = post(
            f"{base_url}/estimate", {"queries": [QUERY]}
        )
        assert status == 200
        assert answer["generation"] == runtime.generation

    def test_bad_snapshot_rejected_old_keeps_serving(
        self, stack, marked_checkpoint, tmp_path
    ):
        base_url, runtime = stack
        generation = runtime.generation
        old_store = runtime.service.store
        status, payload = post(
            f"{base_url}/admin/reload",
            {
                "checkpoint": str(marked_checkpoint),
                "snapshot": str(tmp_path / "void"),
            },
        )
        assert status == 409, payload
        assert runtime.generation == generation
        assert runtime.service.store is old_store
        status, _ = post(
            f"{base_url}/estimate", {"queries": [QUERY]}
        )
        assert status == 200
