"""Chaos suite: the serving invariants under induced failure.

Every scenario drives the full production stack — SupervisedPool
workers, ResilientBackend + breaker, BatchScheduler, HTTP endpoint —
and asserts the client-visible contract: **no request ever fails**
because of a fault on our side of the socket; answers are either
primary or explicitly ``degraded``.
"""

import http.client
import json
import os
import shutil
import signal
import threading
import time

import pytest

from repro.baselines.independence import IndependenceEstimator
from repro.serve import (
    BatchScheduler,
    ResilientBackend,
    ServingRuntime,
    SupervisedPool,
    make_server,
)
from repro.serve.artifacts import load_artifact, save_checkpoint
from repro.serve.faults import corrupt_checkpoint

QUERY = (
    "SELECT ?x ?y WHERE { ?x <ub:advisor> ?y . "
    "?x <ub:takesCourse> ?z . }"
)


@pytest.fixture(scope="module")
def v2_checkpoint(service, tmp_path_factory):
    path = tmp_path_factory.mktemp("chaos") / "ckpt"
    save_checkpoint(service.framework, path)
    return path


@pytest.fixture(scope="module")
def stack(service, snapshot_dir, v2_checkpoint):
    """Pool-backed serving stack (the `--workers N` production shape)."""
    pool = SupervisedPool(
        snapshot_dir,
        v2_checkpoint,
        workers=2,
        request_timeout=30.0,
        restart_budget=64,
        backoff_base=0.05,
    )
    backend = ResilientBackend(
        pool.estimate_batch,
        fallback=IndependenceEstimator(service.store).estimate_batch,
    )
    scheduler = BatchScheduler(
        backend, max_batch=64, max_delay_ms=1.0, max_queue=8192
    )
    artifact = load_artifact(v2_checkpoint)
    runtime = ServingRuntime(
        service,
        scheduler,
        backend,
        pool=pool,
        admission=artifact.shapes,
        artifact=artifact,
        checkpoint_dir=v2_checkpoint,
    )
    server = make_server(service, scheduler, port=0, runtime=runtime)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield {"addr": (host, port), "runtime": runtime, "pool": pool}
    server.shutdown()
    server.server_close()
    runtime.close()
    thread.join(5.0)


class _Client(threading.Thread):
    """Keep-alive client hammering /estimate; records every outcome."""

    def __init__(self, addr, requests, body=None):
        super().__init__(daemon=True)
        self.addr = addr
        self.requests = requests
        self.body = json.dumps(
            body or {"queries": [QUERY]}
        ).encode("utf-8")
        self.outcomes = []  # (status, payload) per request
        self.errors = []  # transport-level exceptions

    def run(self):
        conn = http.client.HTTPConnection(*self.addr, timeout=120)
        headers = {"Content-Type": "application/json"}
        for _ in range(self.requests):
            try:
                conn.request(
                    "POST", "/estimate", self.body, headers
                )
                with conn.getresponse() as response:
                    payload = json.loads(response.read())
                    self.outcomes.append(
                        (response.status, payload)
                    )
            except Exception as exc:  # noqa: BLE001 — recorded
                self.errors.append(repr(exc))
                conn.close()
                conn = http.client.HTTPConnection(
                    *self.addr, timeout=120
                )
        conn.close()


def _storm(addr, clients, requests_per_client):
    threads = [
        _Client(addr, requests_per_client) for _ in range(clients)
    ]
    for t in threads:
        t.start()
    return threads


def _join(threads):
    for t in threads:
        t.join(timeout=300)
    assert not any(t.is_alive() for t in threads), "client hung"
    outcomes = [o for t in threads for o in t.outcomes]
    errors = [e for t in threads for e in t.errors]
    return outcomes, errors


def _wait(predicate, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


class TestKillStorm:
    def test_worker_kills_under_load_zero_client_failures(
        self, stack
    ):
        """SIGKILL a worker roughly once a second while 20 keep-alive
        clients hammer the endpoint: every request must come back 200,
        primary or degraded."""
        pool = stack["pool"]
        stop = threading.Event()
        kills = []

        def killer():
            # first kill lands almost immediately so even a fast
            # storm overlaps at least one worker death
            delay = 0.05
            while not stop.wait(delay):
                delay = 0.4
                victims = [
                    w
                    for w in pool._workers
                    if w.process is not None and w.process.is_alive()
                ]
                if victims:
                    os.kill(victims[0].process.pid, signal.SIGKILL)
                    kills.append(victims[0].id)

        chaos = threading.Thread(target=killer, daemon=True)
        chaos.start()
        try:
            threads = _storm(
                stack["addr"], clients=20, requests_per_client=40
            )
            outcomes, errors = _join(threads)
        finally:
            stop.set()
            chaos.join(timeout=5)

        assert not errors, errors[:5]
        assert len(outcomes) == 20 * 40
        non_200 = [o for o in outcomes if o[0] != 200]
        assert not non_200, non_200[:5]
        # the chaos actually happened and was noticed
        assert kills
        assert _wait(lambda: pool.stats()["deaths"] >= 1), (
            kills,
            pool.stats(),
        )
        # and the pool heals afterwards
        assert _wait(
            lambda: all(
                w["alive"] for w in pool.stats()["workers"]
            )
        ), pool.stats()

    def test_estimates_stay_correct_after_the_storm(
        self, stack, service, star_queries
    ):
        import numpy as np

        got = stack["pool"].estimate_batch(star_queries[:8])
        want = service.framework.estimate_batch(star_queries[:8])
        np.testing.assert_allclose(got, want, rtol=1e-6)


class TestReloadUnderLoad:
    def test_hot_reload_storm_no_5xx_no_stale_generation(
        self, stack, v2_checkpoint, tmp_path
    ):
        """Reload mid-storm under 50 keep-alive clients: zero 5xx,
        every response tagged with a valid generation, and requests
        issued after the reload returns answer from the new one."""
        runtime = stack["runtime"]
        target = tmp_path / "next"
        shutil.copytree(v2_checkpoint, target)
        g0 = runtime.generation

        threads = _storm(
            stack["addr"], clients=50, requests_per_client=10
        )
        time.sleep(0.3)  # let the storm build
        summary = runtime.reload(target)
        g1 = summary["generation"]
        assert g1 == g0 + 1
        outcomes, errors = _join(threads)

        assert not errors, errors[:5]
        assert len(outcomes) == 50 * 10
        non_200 = [o for o in outcomes if o[0] != 200]
        assert not non_200, non_200[:5]
        generations = {o[1]["generation"] for o in outcomes}
        assert generations <= {g0, g1}, generations

        # post-reload requests must be served by the new generation
        after = _Client(stack["addr"], requests=3)
        after.run()  # synchronous
        assert not after.errors
        assert all(
            payload["generation"] == g1
            for _, payload in after.outcomes
        )

    def test_full_storm_kills_plus_reload_under_50_clients(
        self, stack, v2_checkpoint, tmp_path
    ):
        """The headline invariant: one worker killed per second AND a
        checkpoint reload, all under 50 concurrent keep-alive clients
        — every request answers 200, zero 5xx, no stale generation."""
        pool, runtime = stack["pool"], stack["runtime"]
        stop = threading.Event()

        def killer():
            delay = 0.1
            while not stop.wait(delay):
                delay = 1.0
                victims = [
                    w
                    for w in pool._workers
                    if w.process is not None and w.process.is_alive()
                ]
                if victims:
                    os.kill(victims[0].process.pid, signal.SIGKILL)

        target = tmp_path / "storm-next"
        shutil.copytree(v2_checkpoint, target)
        g0 = runtime.generation
        chaos = threading.Thread(target=killer, daemon=True)
        chaos.start()
        try:
            threads = _storm(
                stack["addr"], clients=50, requests_per_client=30
            )
            time.sleep(0.2)
            summary = runtime.reload(target)
            g1 = summary["generation"]
            outcomes, errors = _join(threads)
        finally:
            stop.set()
            chaos.join(timeout=5)

        assert g1 == g0 + 1
        assert not errors, errors[:5]
        assert len(outcomes) == 50 * 30
        non_200 = [o for o in outcomes if o[0] != 200]
        assert not non_200, non_200[:5]
        generations = {o[1]["generation"] for o in outcomes}
        assert generations <= {g0, g1}, generations
        # the pool heals once the storm stops
        assert _wait(
            lambda: all(
                w["alive"] for w in pool.stats()["workers"]
            )
        ), pool.stats()
        after = _Client(stack["addr"], requests=3)
        after.run()
        assert not after.errors
        assert all(
            payload["generation"] == g1
            for _, payload in after.outcomes
        )

    def test_corrupt_reload_mid_service_is_rejected_and_harmless(
        self, stack, v2_checkpoint, tmp_path
    ):
        from repro.serve import ArtifactError

        runtime = stack["runtime"]
        damaged = tmp_path / "damaged"
        shutil.copytree(v2_checkpoint, damaged)
        corrupt_checkpoint(damaged, "truncate-model")
        g = runtime.generation
        with pytest.raises(ArtifactError) as excinfo:
            runtime.reload(damaged)
        assert excinfo.value.reason == "checksum"
        assert runtime.generation == g
        probe = _Client(stack["addr"], requests=2)
        probe.run()
        assert not probe.errors
        assert all(s == 200 for s, _ in probe.outcomes)
