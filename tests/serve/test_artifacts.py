"""Versioned checkpoint artifacts: schema gate, checksums, typed errors."""

import json
import shutil

import pytest

from repro.serve.artifacts import (
    ARTIFACT_FILENAME,
    ARTIFACT_SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    ArtifactError,
    load_artifact,
    load_checkpoint,
    save_checkpoint,
    write_artifact,
)
from repro.serve.faults import CORRUPTION_MODES, corrupt_checkpoint


@pytest.fixture()
def artifact_ckpt(service, tmp_path):
    """A fresh save_checkpoint directory (framework + artifact.json)."""
    path = tmp_path / "ckpt"
    save_checkpoint(service.framework, path)
    return path


class TestWriteAndLoad:
    def test_save_checkpoint_writes_artifact(self, artifact_ckpt):
        assert (artifact_ckpt / ARTIFACT_FILENAME).is_file()
        payload = json.loads(
            (artifact_ckpt / ARTIFACT_FILENAME).read_text()
        )
        assert payload["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert "manifest.json" in payload["file_checksums"]
        assert payload["trained_shapes"]  # star:2 / chain:2 fitted

    def test_load_artifact_roundtrip(self, artifact_ckpt):
        artifact = load_artifact(artifact_ckpt)
        assert artifact.schema_version == ARTIFACT_SCHEMA_VERSION
        assert not artifact.legacy
        assert artifact.shapes is not None
        assert artifact.shapes.covered  # non-empty coverage
        # every checksummed file exists
        for name in artifact.file_checksums:
            assert (artifact_ckpt / name).is_file()

    def test_load_checkpoint_returns_live_framework(
        self, artifact_ckpt, service, star_queries
    ):
        framework, artifact = load_checkpoint(
            artifact_ckpt, service.store
        )
        values = framework.estimate_batch(star_queries[:4])
        assert values.shape == (4,)
        assert artifact.shapes is not None

    def test_write_artifact_requires_saved_framework(
        self, service, tmp_path
    ):
        with pytest.raises(ArtifactError) as excinfo:
            write_artifact(service.framework, tmp_path / "nowhere")
        assert excinfo.value.reason == "missing"


class TestLegacyV1:
    def test_pre_artifact_checkpoint_reads_as_v1(
        self, checkpoint_dir
    ):
        # checkpoint_dir fixture is a bare framework.save (PR-4 era).
        artifact = load_artifact(checkpoint_dir)
        assert artifact.schema_version == 1
        assert artifact.legacy
        assert artifact.shapes is None
        assert artifact.file_checksums == {}

    def test_v1_supported_and_shapes_backfilled(
        self, checkpoint_dir, service
    ):
        assert 1 in SUPPORTED_SCHEMA_VERSIONS
        framework, artifact = load_checkpoint(
            checkpoint_dir, service.store
        )
        assert artifact.schema_version == 1
        # load_checkpoint rebuilds the shape manifest from the loaded
        # framework so admission works on legacy checkpoints too.
        assert artifact.shapes is not None
        assert artifact.shapes.covered


class TestGate:
    def test_missing_checkpoint(self, tmp_path):
        with pytest.raises(ArtifactError) as excinfo:
            load_artifact(tmp_path / "void")
        assert excinfo.value.reason == "missing"

    def test_truncated_model_fails_checksum(
        self, artifact_ckpt, tmp_path
    ):
        target = tmp_path / "damaged"
        shutil.copytree(artifact_ckpt, target)
        corrupt_checkpoint(target, "truncate-model")
        with pytest.raises(ArtifactError) as excinfo:
            load_artifact(target)
        assert excinfo.value.reason == "checksum"

    def test_garbage_artifact_is_corrupt(
        self, artifact_ckpt, tmp_path
    ):
        target = tmp_path / "damaged"
        shutil.copytree(artifact_ckpt, target)
        corrupt_checkpoint(target, "garbage-artifact")
        with pytest.raises(ArtifactError) as excinfo:
            load_artifact(target)
        assert excinfo.value.reason == "corrupt"

    def test_garbage_manifest_on_legacy_is_corrupt(
        self, checkpoint_dir, tmp_path
    ):
        target = tmp_path / "damaged"
        shutil.copytree(checkpoint_dir, target)
        corrupt_checkpoint(target, "garbage-manifest")
        with pytest.raises(ArtifactError) as excinfo:
            load_artifact(target)
        assert excinfo.value.reason == "corrupt"

    def test_future_schema_is_incompatible(
        self, artifact_ckpt, tmp_path
    ):
        target = tmp_path / "damaged"
        shutil.copytree(artifact_ckpt, target)
        corrupt_checkpoint(target, "future-schema")
        with pytest.raises(ArtifactError) as excinfo:
            load_artifact(target)
        assert excinfo.value.reason == "incompatible"

    def test_missing_checksummed_file(self, artifact_ckpt, tmp_path):
        target = tmp_path / "damaged"
        shutil.copytree(artifact_ckpt, target)
        next(target.glob("model_*.npz")).unlink()
        with pytest.raises(ArtifactError) as excinfo:
            load_artifact(target)
        assert excinfo.value.reason == "checksum"

    def test_all_corruption_modes_rejected(
        self, artifact_ckpt, tmp_path
    ):
        """Every chaos corruption mode yields a typed rejection."""
        for mode in CORRUPTION_MODES:
            target = tmp_path / f"damaged-{mode}"
            shutil.copytree(artifact_ckpt, target)
            corrupt_checkpoint(target, mode)
            with pytest.raises(ArtifactError):
                load_artifact(target)

    def test_load_checkpoint_gates_before_weights(
        self, artifact_ckpt, tmp_path, service
    ):
        target = tmp_path / "damaged"
        shutil.copytree(artifact_ckpt, target)
        corrupt_checkpoint(target, "truncate-model")
        # The typed gate error fires, not a np.load parse explosion.
        with pytest.raises(ArtifactError) as excinfo:
            load_checkpoint(target, service.store)
        assert excinfo.value.reason == "checksum"
