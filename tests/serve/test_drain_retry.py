"""Graceful drain and derived Retry-After (backpressure quality).

In-process tests cover the drain state machine and the queue-derived
backoff hint; a subprocess test proves the full SIGTERM story: stop
accepting, flush in-flight batches, exit 0.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.serve import BatchScheduler, QueueFullError, make_server

REPO_ROOT = Path(__file__).resolve().parents[2]

QUERY = (
    "SELECT ?x ?y WHERE { ?x <ub:advisor> ?y . "
    "?x <ub:takesCourse> ?z . }"
)


def post_raw(host, port, body):
    """POST returning (status, payload, headers) — header access is
    what the stdlib urlopen helpers in the sibling modules drop."""
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request(
            "POST",
            "/estimate",
            body=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        payload = json.loads(response.read())
        headers = {k.lower(): v for k, v in response.getheaders()}
        return response.status, payload, headers
    finally:
        conn.close()


class TestDerivedRetryAfter:
    def test_queue_full_error_carries_hint(self, service):
        gate = threading.Event()
        entered = threading.Event()
        parsed = service.parse_queries([QUERY])

        def gated(queries):
            entered.set()
            assert gate.wait(30.0)
            return service.framework.estimate_batch(queries)

        scheduler = BatchScheduler(
            gated, max_batch=1, max_delay_ms=1.0, max_queue=1
        )
        try:
            first = scheduler.submit_async(parsed)
            assert entered.wait(30.0)
            second = scheduler.submit_async(parsed)  # fills the queue
            with pytest.raises(QueueFullError) as excinfo:
                scheduler.submit(parsed)
            hint = excinfo.value.retry_after_s
            # no batch has completed yet: the default hint
            assert hint == pytest.approx(1.0)
            gate.set()
            first.result(30.0)
            second.result(30.0)
        finally:
            gate.set()
            scheduler.close()

    def test_hint_derived_from_drain_rate(self, service):
        """Once batches complete, the hint follows depth / drain rate
        and stays inside the clamp."""
        scheduler = BatchScheduler(
            service.framework.estimate_batch,
            max_batch=4,
            max_delay_ms=1.0,
            max_queue=8,
        )
        parsed = service.parse_queries([QUERY])
        try:
            for _ in range(6):
                scheduler.submit(parsed)
            stats = scheduler.stats()
            assert stats["drain_rate_qps"] > 0
            assert 0.05 <= stats["retry_after_s"] <= 30.0
            assert scheduler.drain_rate_qps() > 0
            assert 0.05 <= scheduler.retry_after_hint() <= 30.0
        finally:
            scheduler.close()

    def test_http_429_carries_derived_backoff(self, service):
        gate = threading.Event()
        entered = threading.Event()
        state = {"first": True}

        def gated(queries):
            if state["first"]:
                state["first"] = False
                entered.set()
                assert gate.wait(30.0)
            return service.framework.estimate_batch(queries)

        scheduler = BatchScheduler(
            gated, max_batch=1, max_delay_ms=1000.0, max_queue=1
        )
        srv = make_server(service, scheduler, port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        host, port = srv.server_address[:2]
        try:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=3) as pool:
                blocker = pool.submit(
                    post_raw, host, port, {"queries": [QUERY]}
                )
                assert entered.wait(30.0)
                filler = pool.submit(
                    post_raw, host, port, {"queries": [QUERY]}
                )
                deadline = time.monotonic() + 30.0
                while (
                    scheduler.stats()["queue_depth"] < 1
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                status, payload, headers = post_raw(
                    host, port, {"queries": [QUERY]}
                )
                assert status == 429
                assert payload["reason"] == "queue_full"
                # JSON hint: float seconds inside the clamp
                assert 0.05 <= payload["retry_after_s"] <= 30.0
                # header: RFC 9110 integral delta-seconds, >= 1
                retry_header = headers["retry-after"]
                assert retry_header == str(int(retry_header))
                assert int(retry_header) >= 1
                gate.set()
                assert blocker.result(30.0)[0] == 200
                assert filler.result(30.0)[0] == 200
        finally:
            gate.set()
            srv.shutdown()
            srv.server_close()
            scheduler.close()
            thread.join(5.0)


class TestDrainStateMachine:
    @pytest.fixture()
    def draining_server(self, service):
        scheduler = BatchScheduler(
            service.framework.estimate_batch,
            max_batch=8,
            max_delay_ms=1.0,
        )
        srv = make_server(service, scheduler, port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        yield srv
        srv.shutdown()
        srv.server_close()
        scheduler.close()
        thread.join(5.0)

    def test_drain_rejects_new_requests_503(self, draining_server):
        host, port = draining_server.server_address[:2]
        status, payload, _ = post_raw(host, port, {"queries": [QUERY]})
        assert status == 200
        draining_server.begin_drain()
        assert draining_server.draining is True
        status, payload, _ = post_raw(host, port, {"queries": [QUERY]})
        assert status == 503
        assert payload["reason"] == "draining"

    def test_wait_inflight_drained_idle(self, draining_server):
        assert draining_server.wait_inflight_drained(timeout=5.0)

    def test_wait_inflight_blocks_until_request_finishes(self, service):
        gate = threading.Event()
        entered = threading.Event()

        def gated(queries):
            entered.set()
            assert gate.wait(30.0)
            return service.framework.estimate_batch(queries)

        scheduler = BatchScheduler(
            gated, max_batch=8, max_delay_ms=1.0
        )
        srv = make_server(service, scheduler, port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        host, port = srv.server_address[:2]
        try:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=1) as pool:
                inflight = pool.submit(
                    post_raw, host, port, {"queries": [QUERY]}
                )
                assert entered.wait(30.0)
                # the tracked request is still being served
                assert not srv.wait_inflight_drained(timeout=0.2)
                gate.set()
                assert inflight.result(30.0)[0] == 200
                assert srv.wait_inflight_drained(timeout=10.0)
        finally:
            gate.set()
            srv.shutdown()
            srv.server_close()
            scheduler.close()
            thread.join(5.0)


class TestSigtermDrain:
    def test_sigterm_exits_zero_after_drain(self, snapshot_dir):
        """The CI-shaped story: TERM a live `repro serve`, get a clean
        exit 0 and the drain banner."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else ""
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--snapshot",
                str(snapshot_dir),
                "--port",
                "0",
                "--fit-queries",
                "30",
                "--fit-epochs",
                "1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        try:
            port = None
            deadline = time.monotonic() + 180.0
            for line in process.stdout:
                if "serving" in line and "http://" in line:
                    port = int(
                        line.split("http://", 1)[1]
                        .split(" ", 1)[0]
                        .rsplit(":", 1)[1]
                    )
                    break
                if time.monotonic() > deadline:
                    break
            assert port is not None, "server never reported its port"
            status, _, _ = post_raw(
                "127.0.0.1", port, {"queries": [QUERY]}
            )
            assert status == 200
            process.send_signal(signal.SIGTERM)
            out = process.stdout.read()
            code = process.wait(30)
            assert code == 0, out
            assert "SIGTERM: drained" in out
            assert "exiting 0" in out
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(10)
