"""dbt-sources-style freshness classification tests."""

import dataclasses

import pytest

from repro.maintain.freshness import (
    FRESHNESS_ERROR,
    FRESHNESS_PASS,
    FRESHNESS_UNKNOWN,
    FRESHNESS_WARN,
    FreshnessPolicy,
    check_freshness,
    watermark_from_fingerprint,
)
from repro.maintain.watermark import Watermark


class TestPolicy:
    def test_classification_bands(self):
        policy = FreshnessPolicy(warn_after=10, error_after=100)
        assert policy.classify(0) == FRESHNESS_PASS
        assert policy.classify(9) == FRESHNESS_PASS
        assert policy.classify(10) == FRESHNESS_WARN
        assert policy.classify(99) == FRESHNESS_WARN
        assert policy.classify(100) == FRESHNESS_ERROR

    def test_default_warns_on_any_drift(self):
        assert FreshnessPolicy().classify(1) == FRESHNESS_WARN
        assert FreshnessPolicy().classify(0) == FRESHNESS_PASS

    def test_inverted_thresholds_rejected(self):
        with pytest.raises(ValueError, match="error_after"):
            FreshnessPolicy(warn_after=100, error_after=10)

    def test_negative_thresholds_rejected(self):
        with pytest.raises(ValueError):
            FreshnessPolicy(warn_after=-1)


class TestCheckFreshness:
    def test_no_watermark_is_unknown(self, books_store):
        status = check_freshness(None, books_store)
        assert status.status == FRESHNESS_UNKNOWN
        assert status.lag_triples is None
        assert status.model_run is None
        assert status.store_num_triples == len(books_store)

    def test_current_watermark_passes(self, books_store):
        snapshot = Watermark.of_store(books_store, run=1)
        status = check_freshness(snapshot, books_store)
        assert status.status == FRESHNESS_PASS
        assert status.lag_triples == 0
        assert status.vocabulary_ok is True
        assert status.model_run == 1

    def test_drift_classified_by_thresholds(
        self, live_store, make_delta
    ):
        snapshot = Watermark.of_store(live_store, run=1)
        live_store.add_all(make_delta(live_store, 7))
        warn = check_freshness(
            snapshot,
            live_store,
            FreshnessPolicy(warn_after=1, error_after=100),
        )
        assert warn.status == FRESHNESS_WARN
        assert warn.lag_triples == 7
        error = check_freshness(
            snapshot,
            live_store,
            FreshnessPolicy(warn_after=1, error_after=5),
        )
        assert error.status == FRESHNESS_ERROR

    def test_vocabulary_mismatch_is_error_at_zero_lag(
        self, books_store
    ):
        snapshot = Watermark.of_store(books_store, run=1)
        altered = dataclasses.replace(
            snapshot, num_nodes=snapshot.num_nodes + 1
        )
        status = check_freshness(altered, books_store)
        assert status.status == FRESHNESS_ERROR
        assert status.lag_triples == 0
        assert status.vocabulary_ok is False

    def test_to_dict_carries_thresholds(self, books_store):
        payload = check_freshness(
            Watermark.of_store(books_store, run=1),
            books_store,
            FreshnessPolicy(warn_after=3, error_after=30),
        ).to_dict()
        assert payload["thresholds"] == {
            "warn_after": 3,
            "error_after": 30,
        }
        assert payload["status"] == FRESHNESS_PASS


class TestFingerprintRecovery:
    def test_recovers_degraded_watermark(self, books_store):
        fingerprint = {
            "num_triples": len(books_store),
            "num_nodes": books_store.num_nodes,
            "num_predicates": books_store.num_predicates,
            "dictionary_checksum": books_store.dictionary.checksum(),
        }
        recovered = watermark_from_fingerprint(fingerprint)
        assert recovered is not None
        # Run and generation are unknowable from a fingerprint.
        assert recovered.run == 0
        assert recovered.generation == -1
        assert recovered.vocabulary_matches(books_store)
        assert (
            check_freshness(recovered, books_store).status
            == FRESHNESS_PASS
        )

    def test_checksum_stays_a_string(self):
        recovered = watermark_from_fingerprint(
            {
                "num_triples": 10,
                "num_nodes": 5,
                "num_predicates": 2,
                "dictionary_checksum": "deadbeef",
            }
        )
        assert recovered.dictionary_checksum == "deadbeef"

    def test_malformed_fingerprint_returns_none(self):
        assert watermark_from_fingerprint({}) is None
        assert (
            watermark_from_fingerprint({"num_triples": "many"})
            is None
        )
