"""Generation garbage collection (``repro maintain gc``).

State dirs are fabricated (gen-NNNN directories + a real watermark
file) — gc only reads the watermark and directory names, so the tests
stay seconds-fast while covering every protection rule.
"""

import json

import pytest

from repro.maintain import (
    GCError,
    WatermarkError,
    gc_generations,
    list_generations,
)
from repro.maintain.runner import (
    CHECKPOINTS_DIRNAME,
    SNAPSHOTS_DIRNAME,
    generation_dirname,
)
from repro.maintain.watermark import Watermark, write_watermark


def make_state(tmp_path, runs, live=None):
    state = tmp_path / "state"
    for run in runs:
        for subdir in (CHECKPOINTS_DIRNAME, SNAPSHOTS_DIRNAME):
            gen = state / subdir / generation_dirname(run)
            gen.mkdir(parents=True)
            (gen / "payload.bin").write_bytes(b"x" * 16)
    if live is not None:
        write_watermark(
            state,
            Watermark(
                run=live,
                generation=live,
                num_triples=100,
                num_nodes=10,
                num_predicates=3,
            ),
        )
    return state


class TestListGenerations:
    def test_lists_sorted_union(self, tmp_path):
        state = make_state(tmp_path, [3, 1, 2], live=3)
        assert list_generations(state) == [1, 2, 3]

    def test_empty_state(self, tmp_path):
        assert list_generations(tmp_path / "nothing") == []


class TestGC:
    def test_removes_old_keeps_newest(self, tmp_path):
        state = make_state(tmp_path, [1, 2, 3, 4, 5], live=5)
        report = gc_generations(state, keep=2)
        assert report.live == 5
        assert report.kept == [4, 5]
        assert report.removed == [1, 2, 3]
        assert list_generations(state) == [4, 5]
        # both the checkpoint and the snapshot dirs are gone
        assert len(report.removed_paths) == 6

    def test_live_generation_never_removed(self, tmp_path):
        """Even keep=1 with a stale watermark keeps the live run: it is
        the base the incremental planner diffs against."""
        state = make_state(tmp_path, [1, 2, 3, 4, 5], live=2)
        report = gc_generations(state, keep=1)
        assert 2 in report.kept
        assert 2 not in report.removed
        assert list_generations(state) == [2, 3, 4, 5]
        # 3..5 are newer than the watermark: possibly a racing publish,
        # protected too; only 1 goes.
        assert report.removed == [1]

    def test_dry_run_touches_nothing(self, tmp_path):
        state = make_state(tmp_path, [1, 2, 3], live=3)
        report = gc_generations(state, keep=1, dry_run=True)
        assert report.dry_run is True
        assert report.removed == [1, 2]
        assert report.removed_paths  # reported...
        assert list_generations(state) == [1, 2, 3]  # ...not deleted

    def test_keep_larger_than_population(self, tmp_path):
        state = make_state(tmp_path, [1, 2], live=2)
        report = gc_generations(state, keep=10)
        assert report.removed == []
        assert list_generations(state) == [1, 2]

    def test_keep_below_one_refused(self, tmp_path):
        state = make_state(tmp_path, [1], live=1)
        with pytest.raises(GCError):
            gc_generations(state, keep=0)

    def test_missing_watermark_refused(self, tmp_path):
        state = make_state(tmp_path, [1, 2, 3], live=None)
        with pytest.raises(GCError) as excinfo:
            gc_generations(state, keep=1)
        assert "watermark" in str(excinfo.value)
        assert list_generations(state) == [1, 2, 3]

    def test_corrupt_watermark_typed_error(self, tmp_path):
        state = make_state(tmp_path, [1, 2], live=2)
        (state / "watermark.json").write_text("{broken")
        with pytest.raises(WatermarkError):
            gc_generations(state, keep=1)
        assert list_generations(state) == [1, 2]


class TestCLI:
    def test_cli_gc_json(self, tmp_path, capsys):
        from repro.cli import main

        state = make_state(tmp_path, [1, 2, 3], live=3)
        code = main(
            [
                "maintain",
                "gc",
                "--state-dir",
                str(state),
                "--keep",
                "1",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["live"] == 3
        assert payload["removed"] == [1, 2]
        assert list_generations(state) == [3]

    def test_cli_gc_refuses_without_watermark(self, tmp_path):
        from repro.cli import main

        state = make_state(tmp_path, [1, 2], live=None)
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "maintain",
                    "gc",
                    "--state-dir",
                    str(state),
                    "--keep",
                    "1",
                ]
            )
        assert "refused" in str(excinfo.value)
