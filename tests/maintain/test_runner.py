"""End-to-end MaintenanceRunner cycle: full → noop → incremental."""

import numpy as np
import pytest

from repro.maintain import (
    FreshnessPolicy,
    MaintenanceError,
    MaintenanceRunner,
)
from repro.rdf.fastcount import count_query
from repro.serve.artifacts import load_checkpoint


def make_runner(store, state_dir, **overrides):
    options = dict(
        shapes=(("star", 2), ("chain", 2)),
        queries_per_shape=30,
        epochs=2,
        finetune_epochs=1,
        hidden_sizes=(16, 16),
        seed=0,
        grouping="size",
        policy=FreshnessPolicy(warn_after=1, error_after=10_000),
    )
    options.update(overrides)
    return MaintenanceRunner(store, state_dir, **options)


@pytest.fixture
def runner(live_store, tmp_path):
    return make_runner(live_store, tmp_path / "state")


class TestFirstMaterialization:
    def test_full_run_publishes_generation_one(self, runner):
        report = runner.run()
        assert report.action == "full"
        assert report.run == 1
        assert report.plan["reason"] == (
            "no watermark: first materialization"
        )
        # dbt-shaped state directory: workload TSVs, versioned
        # checkpoint + snapshot, state-level watermark last.
        state = runner.state_dir
        assert (state / "watermark.json").is_file()
        for topology in ("star", "chain"):
            assert (
                state / "workload" / f"{topology}_2.tsv"
            ).is_file()
        checkpoint = runner.checkpoint_dir(1)
        assert checkpoint.is_dir()
        assert (checkpoint / "watermark.json").is_file()
        assert (runner.snapshot_dir(1) / "manifest.json").is_file()
        assert runner.watermark().run == 1
        assert runner.freshness().status == "pass"
        # Every shape was (re)labelled in full.
        assert report.relabeled == {"star_2": 30, "chain_2": 30}

    def test_published_checkpoint_estimates(self, runner):
        report = runner.run()
        framework, artifact = load_checkpoint(
            report.checkpoint_dir, runner.store
        )
        records = runner._load_materialization()[("star", 2)]
        estimate = framework.estimate(records[0].query)
        assert np.isfinite(estimate) and estimate >= 0.0
        assert artifact.store["num_triples"] == len(runner.store)


class TestSteadyState:
    def test_noop_when_nothing_changed(self, runner):
        runner.run()
        report = runner.run()
        assert report.action == "noop"
        assert report.run == 1
        assert runner.watermark().run == 1

    def test_dry_run_touches_nothing(
        self, runner, live_store, make_delta
    ):
        runner.run()
        live_store.add_all(make_delta(live_store, 20))
        report = runner.run(dry_run=True)
        assert report.action == "dry-run"
        assert report.plan["full"] is False
        assert report.plan["num_delta"] == 20
        assert runner.watermark().run == 1
        assert not runner.checkpoint_dir(2).exists()
        assert not runner.snapshot_dir(2).exists()


class TestIncremental:
    def test_delta_cycle_relabels_and_publishes(
        self, runner, live_store, make_delta
    ):
        runner.run()
        live_store.add_all(make_delta(live_store, 30))
        assert runner.freshness().status == "warn"
        report = runner.run()
        assert report.action == "incremental"
        assert report.run == 2
        assert report.finetune is not None
        assert report.finetune["models"], "a model must be fine-tuned"
        # Relabelled counts mirror the plan's affected sets.
        affected = report.plan["affected_records"]
        for shape_key, count in report.relabeled.items():
            assert count == affected[shape_key]["affected"]
        # The watermark caught up and freshness recovered.
        assert runner.watermark().run == 2
        assert runner.watermark().num_triples == len(live_store)
        assert runner.freshness().status == "pass"
        assert runner.run().action == "noop"

    def test_materialization_labels_exact_after_incremental(
        self, runner, live_store, make_delta
    ):
        """The merged TSVs must be indistinguishable from a re-count:
        the incremental path may not leave a single stale label."""
        runner.run()
        live_store.add_all(make_delta(live_store, 30))
        runner.run()
        for records in runner._load_materialization().values():
            for record in records:
                assert record.cardinality == count_query(
                    live_store, record.query
                )

    def test_missing_previous_checkpoint_raises(
        self, runner, live_store, make_delta
    ):
        import shutil

        runner.run()
        live_store.add_all(make_delta(live_store, 10))
        shutil.rmtree(runner.checkpoint_dir(1))
        with pytest.raises(MaintenanceError, match="--full"):
            runner.run()


class TestForcedAndFallbackFull:
    def test_forced_full_bumps_generation(self, runner):
        runner.run()
        report = runner.run(full=True)
        assert report.action == "full"
        assert report.run == 2
        assert report.plan["reason"] == "forced by --full"
        assert runner.checkpoint_dir(2).is_dir()

    def test_vocabulary_growth_forces_full(
        self, runner, live_store
    ):
        runner.run()
        new_node = max(live_store.nodes()) + 1
        predicate = live_store.predicates()[0]
        live_store.add(new_node, predicate, live_store.nodes()[0])
        plan = runner.plan()
        assert plan.full
        assert "vocabulary" in plan.reason
        report = runner.run()
        assert report.action == "full"
        assert report.run == 2


class TestStatus:
    def test_status_reports_all_surfaces(
        self, runner, live_store, make_delta
    ):
        status = runner.status()
        assert status["watermark"] is None
        assert status["freshness"]["status"] == "unknown"
        assert status["plan"]["full"] is True
        runner.run()
        live_store.add_all(make_delta(live_store, 15))
        status = runner.status()
        assert status["watermark"]["run"] == 1
        assert status["freshness"]["status"] == "warn"
        assert status["freshness"]["lag_triples"] == 15
        assert status["store"]["num_triples"] == len(live_store)
        assert status["plan"]["full"] is False
        assert status["plan"]["num_delta"] == 15
