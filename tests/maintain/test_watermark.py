"""Watermark round-trips, corruption handling, vocabulary matching."""

import dataclasses
import json

import pytest

from repro.maintain.watermark import (
    WATERMARK_FILENAME,
    Watermark,
    WatermarkError,
    read_watermark,
    write_watermark,
)


def mark(**overrides):
    base = dict(
        run=3,
        generation=7,
        num_triples=100,
        num_nodes=40,
        num_predicates=5,
        dictionary_checksum="60d1ef01",
    )
    base.update(overrides)
    return Watermark(**base)


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        write_watermark(tmp_path, mark())
        assert read_watermark(tmp_path) == mark()

    def test_checksum_survives_as_a_hex_string(self, tmp_path):
        # Regression: dictionary checksums are hex strings ("deadbeef");
        # coercing them with int() crashed the first dictionary-encoded
        # store this ran against.
        write_watermark(
            tmp_path, mark(dictionary_checksum="deadbeef")
        )
        loaded = read_watermark(tmp_path)
        assert loaded.dictionary_checksum == "deadbeef"

    def test_none_checksum_round_trips(self, tmp_path):
        write_watermark(tmp_path, mark(dictionary_checksum=None))
        assert read_watermark(tmp_path).dictionary_checksum is None

    def test_missing_file_means_first_run(self, tmp_path):
        assert read_watermark(tmp_path) is None

    def test_write_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "state"
        path = write_watermark(target, mark())
        assert path == target / WATERMARK_FILENAME
        assert read_watermark(target) == mark()

    def test_of_store_fingerprint(self, books_store):
        snapshot = Watermark.of_store(books_store, run=2)
        assert snapshot.run == 2
        assert snapshot.num_triples == len(books_store)
        assert snapshot.num_nodes == books_store.num_nodes
        assert snapshot.num_predicates == books_store.num_predicates
        assert (
            snapshot.dictionary_checksum
            == books_store.dictionary.checksum()
        )


class TestCorruption:
    def write_payload(self, tmp_path, payload):
        (tmp_path / WATERMARK_FILENAME).write_text(payload)

    def test_garbage_json_raises(self, tmp_path):
        self.write_payload(tmp_path, "{not json")
        with pytest.raises(WatermarkError, match="corrupt"):
            read_watermark(tmp_path)

    def test_wrong_format_marker_raises(self, tmp_path):
        self.write_payload(
            tmp_path, json.dumps({"format": "something-else"})
        )
        with pytest.raises(WatermarkError, match="not a watermark"):
            read_watermark(tmp_path)

    def test_future_version_raises(self, tmp_path):
        payload = mark().to_dict()
        payload["version"] = 99
        self.write_payload(tmp_path, json.dumps(payload))
        with pytest.raises(WatermarkError, match="version"):
            read_watermark(tmp_path)

    def test_missing_field_raises(self, tmp_path):
        payload = mark().to_dict()
        del payload["num_triples"]
        self.write_payload(tmp_path, json.dumps(payload))
        with pytest.raises(WatermarkError, match="malformed"):
            read_watermark(tmp_path)


class TestVocabularyMatches:
    def test_unchanged_store_matches(self, books_store):
        assert Watermark.of_store(
            books_store, run=1
        ).vocabulary_matches(books_store)

    def test_triple_growth_still_matches(self, live_store, make_delta):
        # More triples over the same terms is exactly the incremental
        # case: the vocabulary check must not flag it.
        snapshot = Watermark.of_store(live_store, run=1)
        live_store.add_all(make_delta(live_store, 20))
        assert snapshot.vocabulary_matches(live_store)
        assert len(live_store) > snapshot.num_triples

    def test_node_count_change_rejected(self, books_store):
        snapshot = Watermark.of_store(books_store, run=1)
        altered = dataclasses.replace(
            snapshot, num_nodes=snapshot.num_nodes + 1
        )
        assert not altered.vocabulary_matches(books_store)

    def test_predicate_count_change_rejected(self, books_store):
        snapshot = Watermark.of_store(books_store, run=1)
        altered = dataclasses.replace(
            snapshot, num_predicates=snapshot.num_predicates + 1
        )
        assert not altered.vocabulary_matches(books_store)

    def test_checksum_change_rejected(self, books_store):
        snapshot = Watermark.of_store(books_store, run=1)
        altered = dataclasses.replace(
            snapshot, dictionary_checksum="00000000"
        )
        assert not altered.vocabulary_matches(books_store)
