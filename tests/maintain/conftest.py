"""Shared fixtures for the maintenance-subsystem tests.

The stores here are small but real: the same hub-heavy SWDF-like
generator the throughput benches use, dictionary-encoded so the full
watermark surface (including the checksum guard) is exercised.  The
delta helper recombines *existing* terms into novel triples — the
mutation the incremental path is for, where the vocabulary is stable
and only the triple set moves.
"""

import numpy as np
import pytest

from repro.bench.harness import build_throughput_store


@pytest.fixture
def live_store():
    """A fresh mutable ~2.4k-triple graph with a term dictionary."""
    return build_throughput_store(3_000, seed=0)


@pytest.fixture
def make_delta():
    """Factory for vocabulary-preserving deltas against a store.

    Returns novel ``(N, 3)`` triples built from the store's existing
    subjects/predicates/objects, so node and predicate counts (and the
    dictionary) are untouched and the planner stays on the incremental
    path.
    """

    def _make(store, count, seed=13):
        rng = np.random.default_rng(seed)
        rows = store.backend.rows()
        subjects = np.unique(rows[:, 0])
        predicates = np.unique(rows[:, 1])
        objects = np.unique(rows[:, 2])
        out = np.empty((0, 3), dtype=np.int64)
        while out.shape[0] < count:
            candidates = np.stack(
                [
                    rng.choice(subjects, 4 * count),
                    rng.choice(predicates, 4 * count),
                    rng.choice(objects, 4 * count),
                ],
                axis=1,
            ).astype(np.int64)
            candidates = np.unique(candidates, axis=0)
            candidates = candidates[
                ~store.backend.isin_rows(candidates)
            ]
            out = np.unique(
                np.concatenate([out, candidates]), axis=0
            )
        rng.shuffle(out)
        return out[:count]

    return _make
