"""Planner tests: delta computation, full-rebuild triggers, staleness."""

import dataclasses

import numpy as np
import pytest

from repro.core.grouping import make_grouping
from repro.maintain.planner import (
    compute_delta,
    plan_maintenance,
)
from repro.maintain.watermark import Watermark
from repro.rdf.backend import load_backend
from repro.sampling.workload import generate_workload


@pytest.fixture
def base_backend(live_store, tmp_path):
    """The retained snapshot of the watermark generation."""
    directory = tmp_path / "base"
    live_store.save_snapshot(directory, record_source=False)
    backend, _ = load_backend(directory, mmap_mode="r", verify=False)
    return backend


@pytest.fixture
def records_by_shape(live_store):
    return {
        (topology, 2): list(
            generate_workload(live_store, topology, 2, 50, seed=3).records
        )
        for topology in ("star", "chain")
    }


def as_set(rows):
    return {tuple(map(int, row)) for row in rows}


class TestComputeDelta:
    def test_unchanged_store_has_empty_delta(
        self, live_store, base_backend
    ):
        assert compute_delta(live_store, base_backend).shape == (0, 3)

    def test_delta_is_exactly_the_added_rows(
        self, live_store, base_backend, make_delta
    ):
        added = make_delta(live_store, 25)
        live_store.add_all(added)
        delta = compute_delta(live_store, base_backend)
        assert as_set(delta) == as_set(added)


class TestFullRebuildTriggers:
    def plan(self, store, watermark, base, records, **kwargs):
        return plan_maintenance(
            store,
            watermark,
            base,
            records,
            make_grouping("size"),
            **kwargs,
        )

    def test_force_full(
        self, live_store, base_backend, records_by_shape
    ):
        plan = self.plan(
            live_store,
            Watermark.of_store(live_store, 1),
            base_backend,
            records_by_shape,
            force_full=True,
        )
        assert plan.full
        assert "forced" in plan.reason

    def test_no_watermark_means_first_materialization(
        self, live_store, records_by_shape
    ):
        plan = self.plan(live_store, None, None, records_by_shape)
        assert plan.full
        assert "first materialization" in plan.reason

    def test_missing_base_snapshot(
        self, live_store, records_by_shape
    ):
        plan = self.plan(
            live_store,
            Watermark.of_store(live_store, 1),
            None,
            records_by_shape,
        )
        assert plan.full
        assert "base snapshot" in plan.reason

    def test_vocabulary_change(
        self, live_store, base_backend, records_by_shape
    ):
        stale = dataclasses.replace(
            Watermark.of_store(live_store, 1),
            num_nodes=live_store.num_nodes - 1,
        )
        plan = self.plan(
            live_store, stale, base_backend, records_by_shape
        )
        assert plan.full
        assert "vocabulary" in plan.reason

    def test_shrunken_store(
        self, live_store, base_backend, records_by_shape
    ):
        inflated = dataclasses.replace(
            Watermark.of_store(live_store, 1),
            num_triples=len(live_store) + 10,
        )
        plan = self.plan(
            live_store, inflated, base_backend, records_by_shape
        )
        assert plan.full
        assert "shrank" in plan.reason

    def test_base_watermark_size_mismatch(
        self, live_store, base_backend, records_by_shape, make_delta
    ):
        watermark = Watermark.of_store(live_store, 1)
        # The store (and hence a later watermark) moved past the
        # retained base without a matching snapshot: not diffable.
        live_store.add_all(make_delta(live_store, 5))
        drifted = dataclasses.replace(
            watermark, num_triples=len(live_store)
        )
        plan = self.plan(
            live_store, drifted, base_backend, records_by_shape
        )
        assert plan.full
        assert "does not match" in plan.reason


class TestIncrementalPlan:
    def test_no_delta_plans_nothing(
        self, live_store, base_backend, records_by_shape
    ):
        plan = plan_maintenance(
            live_store,
            Watermark.of_store(live_store, 1),
            base_backend,
            records_by_shape,
            make_grouping("size"),
        )
        assert not plan.full
        assert plan.num_delta == 0
        assert plan.stale_shapes == []
        assert set(plan.fresh_shapes) == set(records_by_shape)

    def test_delta_marks_stale_shapes_and_keys(
        self, live_store, base_backend, records_by_shape, make_delta
    ):
        watermark = Watermark.of_store(live_store, 1)
        live_store.add_all(make_delta(live_store, 40))
        grouping = make_grouping("size")
        plan = plan_maintenance(
            live_store,
            watermark,
            base_backend,
            records_by_shape,
            grouping,
        )
        assert not plan.full
        assert plan.num_delta == 40
        assert plan.stale_shapes, "a 40-triple delta must stale something"
        for shape in plan.stale_shapes:
            mask = plan.affected[shape]
            assert mask.shape == (len(records_by_shape[shape]),)
            assert plan.num_affected(shape) == int(mask.sum())
        # Keys are the grouping image of the stale shapes, deduplicated.
        expected = []
        for topology, size in plan.stale_shapes:
            key = grouping.key(topology, size)
            if key not in expected:
                expected.append(key)
        assert plan.stale_keys == expected

    def test_to_dict_summarises_the_plan(
        self, live_store, base_backend, records_by_shape, make_delta
    ):
        watermark = Watermark.of_store(live_store, 1)
        live_store.add_all(make_delta(live_store, 40))
        payload = plan_maintenance(
            live_store,
            watermark,
            base_backend,
            records_by_shape,
            make_grouping("size"),
        ).to_dict()
        assert payload["full"] is False
        assert payload["num_delta"] == 40
        for topology, size in payload["stale_shapes"]:
            entry = payload["affected_records"][f"{topology}_{size}"]
            assert 0 <= entry["affected"] <= entry["total"]
            assert entry["total"] == 50
