"""Affected-set exactness and the merge-on-relabel step."""

import numpy as np
import pytest

from repro.maintain.relabel import (
    affected_mask,
    merge_records,
    relabel_records,
)
from repro.rdf.fastcount import count_query
from repro.rdf.pattern import star_pattern
from repro.rdf.terms import Variable
from repro.sampling.workload import QueryRecord, generate_workload


def v(name):
    return Variable(name)


def star_record(pairs, cardinality=0):
    query = star_pattern(v("x"), pairs)
    return QueryRecord(
        query=query,
        topology="star",
        size=query.size,
        cardinality=cardinality,
    )


class TestAffectedMask:
    def test_empty_delta_touches_nothing(self):
        records = [star_record([(1, v("a")), (2, v("b"))])]
        mask = affected_mask(
            records, np.empty((0, 3), dtype=np.int64)
        )
        assert not mask.any()

    def test_no_records_is_empty_mask(self):
        mask = affected_mask([], np.array([[1, 2, 3]]))
        assert mask.shape == (0,)

    def test_matching_bound_positions_flags_record(self):
        records = [
            star_record([(1, v("a")), (2, v("b"))]),
            star_record([(3, v("a")), (3, v("b"))]),
        ]
        # Predicate 1 appears only in the first record's patterns.
        mask = affected_mask(records, np.array([[9, 1, 9]]))
        assert mask.tolist() == [True, False]

    def test_bound_object_must_match(self):
        records = [star_record([(1, 5), (2, v("b"))])]
        assert affected_mask(records, np.array([[9, 1, 5]])).all()
        assert not affected_mask(
            records, np.array([[9, 1, 6]])
        ).any()

    def test_unrelated_predicate_touches_nothing(self):
        records = [
            star_record([(1, v("a")), (2, v("b"))]),
            star_record([(2, v("a")), (1, v("b"))]),
        ]
        mask = affected_mask(records, np.array([[4, 7, 4]]))
        assert not mask.any()

    def test_mask_is_necessary_for_label_change(
        self, live_store, make_delta
    ):
        """Exactness on a real graph: every label the delta actually
        moved must be inside the mask (unmasked labels stay exact)."""
        records = []
        for topology in ("star", "chain"):
            records.extend(
                generate_workload(
                    live_store, topology, 2, 60, seed=5
                ).records
            )
        delta = make_delta(live_store, 40)
        mask = affected_mask(records, delta)
        live_store.add_all(delta)
        changed = np.array(
            [
                count_query(live_store, r.query) != r.cardinality
                for r in records
            ]
        )
        assert changed.any(), "delta should move some label"
        # changed ⊆ mask: no label change outside the affected set.
        assert not (changed & ~mask).any()


class TestRelabelRecords:
    def test_relabelled_labels_match_fresh_counts(
        self, live_store, make_delta
    ):
        records = list(
            generate_workload(live_store, "star", 2, 60, seed=5).records
        )
        delta = make_delta(live_store, 40)
        mask = affected_mask(records, delta)
        assert mask.any()
        live_store.add_all(delta)
        merged = relabel_records(live_store, records, mask)
        assert len(merged) == len(records)
        for i, record in enumerate(merged):
            if mask[i]:
                assert record.cardinality == count_query(
                    live_store, record.query
                )
            else:
                assert record is records[i]

    def test_empty_mask_passes_through(self, live_store):
        records = list(
            generate_workload(live_store, "star", 2, 10, seed=5).records
        )
        mask = np.zeros(len(records), dtype=bool)
        assert relabel_records(live_store, records, mask) == records

    def test_mask_length_mismatch_rejected(self, live_store):
        records = list(
            generate_workload(live_store, "star", 2, 5, seed=5).records
        )
        with pytest.raises(ValueError, match="mask covers"):
            relabel_records(
                live_store, records, np.zeros(3, dtype=bool)
            )


class TestMergeRecords:
    def test_merges_labels_in_mask_order(self):
        records = [
            star_record([(1, v("a")), (2, v("b"))], cardinality=10),
            star_record([(3, v("a")), (4, v("b"))], cardinality=20),
            star_record([(5, v("a")), (6, v("b"))], cardinality=30),
        ]
        mask = np.array([True, False, True])
        merged = merge_records(records, mask, [11, 33])
        assert [r.cardinality for r in merged] == [11, 20, 33]
        assert merged[1] is records[1]
        assert merged[0].query is records[0].query

    def test_label_count_mismatch_rejected(self):
        records = [star_record([(1, v("a")), (2, v("b"))])]
        with pytest.raises(ValueError, match="labels"):
            merge_records(records, np.array([True]), [1, 2])
