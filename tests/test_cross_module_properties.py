"""Cross-module invariants checked with hypothesis.

Each property ties two independently implemented subsystems together
(cost model ↔ executor, synopsis ↔ exact matcher, ...), so a bug in
either side breaks the equality.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BayesNetEstimator, ChainHistogram
from repro.core.compound import CompoundEstimator
from repro.core.monitor import total_variation
from repro.core.ranges import (
    RangeConstraint,
    RangeQuery,
    count_range_query,
)
from repro.optimizer import (
    cout_cost,
    dp_best_order,
    execute_order,
    true_cost_fn,
)
from repro.rdf import TripleStore, count_bgp
from repro.rdf.pattern import QueryPattern, chain_pattern, star_pattern
from repro.rdf.terms import TriplePattern, Variable


def v(name):
    return Variable(name)


def random_store(seed, triples=50, nodes=10, preds=3):
    rng = np.random.default_rng(seed)
    store = TripleStore()
    for _ in range(triples):
        store.add(
            int(rng.integers(1, nodes)),
            int(rng.integers(1, preds + 1)),
            int(rng.integers(1, nodes)),
        )
    return store


class TestOptimizerExecutorAgreement:
    """The cost model *predicts* what the executor *measures*."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_oracle_cost_equals_executed_cout_chain(self, seed):
        store = random_store(seed)
        q = chain_pattern([v("x"), 1, v("y"), 2, v("z")])
        oracle = true_cost_fn(store)
        plan = dp_best_order(q, oracle)
        execution = execute_order(store, q, plan.order)
        assert execution.cout == pytest.approx(plan.cost)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_oracle_cost_equals_executed_cout_star(self, seed):
        store = random_store(seed)
        q = star_pattern(v("x"), [(1, v("a")), (2, v("b")), (3, v("c"))])
        oracle = true_cost_fn(store)
        plan = dp_best_order(q, oracle)
        execution = execute_order(store, q, plan.order)
        assert execution.cout == pytest.approx(plan.cost)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.permutations([0, 1, 2]),
    )
    def test_any_order_cout_matches_execution(self, seed, order):
        store = random_store(seed)
        q = star_pattern(v("x"), [(1, v("a")), (2, v("b")), (3, v("c"))])
        oracle = true_cost_fn(store)
        execution = execute_order(store, q, tuple(order))
        assert execution.cout == pytest.approx(
            cout_cost(q, tuple(order), oracle)
        )


class TestRangeMonotonicity:
    """Widening a range can only add solutions."""

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=0, max_value=5),
    )
    def test_wider_range_never_smaller(self, seed, low, slack):
        store = random_store(seed)
        base = QueryPattern([TriplePattern(v("s"), 1, v("o"))])
        narrow = RangeQuery(
            base, (RangeConstraint(0, low, low + slack),)
        )
        wide = RangeQuery(
            base, (RangeConstraint(0, max(low - 2, 0), low + slack + 2),)
        )
        assert count_range_query(store, narrow) <= count_range_query(
            store, wide
        )

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_full_range_equals_unconstrained(self, seed):
        store = random_store(seed)
        base = star_pattern(v("x"), [(1, v("a")), (2, v("b"))])
        query = RangeQuery(
            base,
            (RangeConstraint(0, 0, 10**9), RangeConstraint(1, 0, 10**9)),
        )
        assert count_range_query(store, query) == count_bgp(store, base)


class TestSynopsisExactness:
    """Where the synopses claim exactness, they must be exact."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_chain_histogram_exact_on_two_chains(self, seed):
        store = random_store(seed)
        hist = ChainHistogram(store)
        q = chain_pattern([v("x"), 1, v("y"), 2, v("z")])
        assert hist.estimate_chain([1, 2]) == count_bgp(store, q)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_bayesnet_exact_on_single_patterns(self, seed):
        store = random_store(seed)
        est = BayesNetEstimator(store)
        for pattern in (
            TriplePattern(v("s"), 1, v("o")),
            TriplePattern(1, 2, v("o")),
            TriplePattern(v("s"), 2, 3),
        ):
            q = QueryPattern([pattern])
            assert est.estimate(q) == count_bgp(store, q)


class TestCompoundBounds:
    """The geometric compound lies between its constituents."""

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(min_value=1.0, max_value=1e6),
        st.floats(min_value=1.0, max_value=1e6),
    )
    def test_geometric_between_constituents(self, a, b):
        class Fixed:
            def __init__(self, value):
                self.value = value

            def estimate(self, query):
                return self.value

        compound = CompoundEstimator(
            Fixed(a), Fixed(b), policy="geometric"
        )
        q = star_pattern(v("x"), [(1, v("a")), (2, v("b"))])
        estimate = compound.estimate(q)
        lo, hi = min(a, b), max(a, b)
        assert lo * (1 - 1e-9) <= estimate <= hi * (1 + 1e-9)


class TestTotalVariationMetric:
    """TV distance is a metric on shape distributions."""

    dists = st.dictionaries(
        st.tuples(
            st.sampled_from(["star", "chain"]),
            st.integers(min_value=2, max_value=8),
        ),
        st.floats(min_value=0.01, max_value=1.0),
        min_size=1,
        max_size=5,
    ).map(
        lambda d: {
            k: value / sum(d.values()) for k, value in d.items()
        }
    )

    @settings(max_examples=50, deadline=None)
    @given(dists, dists)
    def test_bounded_and_symmetric(self, a, b):
        d = total_variation(a, b)
        assert 0.0 <= d <= 1.0 + 1e-9
        assert d == pytest.approx(total_variation(b, a))

    @settings(max_examples=50, deadline=None)
    @given(dists, dists, dists)
    def test_triangle_inequality(self, a, b, c):
        assert total_variation(a, c) <= (
            total_variation(a, b) + total_variation(b, c) + 1e-9
        )

    @settings(max_examples=25, deadline=None)
    @given(dists)
    def test_identity(self, a):
        assert total_variation(a, dict(a)) == pytest.approx(0.0)
