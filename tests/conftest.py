"""Shared fixtures: small deterministic graphs and cached datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.rdf import TripleStore


@pytest.fixture
def tiny_store() -> TripleStore:
    """A hand-built 8-triple graph with known counts.

    Nodes 1..6, predicates 1..3::

        1 -p1-> 2    1 -p1-> 3    1 -p2-> 4
        2 -p1-> 3    2 -p2-> 4    3 -p2-> 4
        4 -p3-> 5    4 -p3-> 6
    """
    store = TripleStore()
    store.add_all(
        [
            (1, 1, 2),
            (1, 1, 3),
            (1, 2, 4),
            (2, 1, 3),
            (2, 2, 4),
            (3, 2, 4),
            (4, 3, 5),
            (4, 3, 6),
        ]
    )
    return store


@pytest.fixture
def books_store() -> TripleStore:
    """The paper's running example (Fig. 2): books, authors, genres."""
    return TripleStore.from_lexical(
        [
            ("TheShining", "hasAuthor", "StephenKing"),
            ("TheShining", "genre", "Horror"),
            ("IT", "hasAuthor", "StephenKing"),
            ("IT", "genre", "Horror"),
            ("StephenKing", "bornIn", "USA"),
        ]
    )


@pytest.fixture(scope="session")
def lubm_store() -> TripleStore:
    """Shared small LUBM-like graph (memoised per session)."""
    return load_dataset("lubm", scale=0.5, seed=1)


@pytest.fixture(scope="session")
def swdf_store() -> TripleStore:
    return load_dataset("swdf", scale=0.5, seed=1)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
