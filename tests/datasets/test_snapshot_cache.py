"""Tests for the on-disk dataset snapshot cache."""

import numpy as np
import pytest

from repro.datasets import (
    cache_key,
    cached_store,
    clear_cache,
    generate_lubm,
    load_dataset,
)
from repro.datasets import registry
from repro.rdf import TripleStore


@pytest.fixture(autouse=True)
def fresh_registry():
    clear_cache()
    yield
    clear_cache()


def corrupt_snapshot(directory) -> None:
    """Flip one value in a column so the checksum goes stale."""
    path = directory / "spo_o.npy"
    rows = np.load(path).copy()
    rows[0] += 1
    np.save(path, rows)


class TestCachedStore:
    def test_builder_called_once_then_cache_hit(self, tmp_path):
        calls = []

        def builder():
            calls.append(1)
            store = TripleStore()
            store.add_all([(1, 1, 2), (2, 1, 3)])
            return store

        directory = tmp_path / "graph"
        first = cached_store(directory, builder)
        second = cached_store(directory, builder)
        assert len(calls) == 1
        assert sorted(first) == sorted(second)
        # The cache hit is memmap-backed — no generator, no set build.
        assert isinstance(second.columnar.spo_s, np.memmap)

    def test_stale_checksum_forces_rebuild(self, tmp_path):
        calls = []

        def builder():
            calls.append(1)
            store = TripleStore()
            store.add_all([(1, 1, 2), (2, 1, 3)])
            return store

        directory = tmp_path / "graph"
        cached_store(directory, builder)
        corrupt_snapshot(directory)
        rebuilt = cached_store(directory, builder)
        assert len(calls) == 2
        assert sorted(rebuilt) == [(1, 1, 2), (2, 1, 3)]
        # The rebuild resealed the cache: next call hits it.
        cached_store(directory, builder)
        assert len(calls) == 2

    def test_cache_key_is_filesystem_safe_and_stable(self):
        key = cache_key("lubm", scale=0.25, seed=3)
        assert "/" not in key
        assert key == cache_key("lubm", seed=3, scale=0.25)
        assert key != cache_key("lubm", scale=0.5, seed=3)


class TestRegistryCache:
    def test_cache_hit_skips_generator(self, tmp_path, monkeypatch):
        calls = []
        original = registry._build

        def counting_build(name, scale, seed):
            calls.append((name, scale, seed))
            return original(name, scale, seed)

        monkeypatch.setattr(registry, "_build", counting_build)
        first = load_dataset("lubm", scale=0.25, seed=3, cache_dir=tmp_path)
        clear_cache()
        second = load_dataset(
            "lubm", scale=0.25, seed=3, cache_dir=tmp_path
        )
        assert len(calls) == 1
        assert len(first) == len(second)
        assert set(first) == set(second)
        # Dictionaries survive the snapshot round trip.
        assert second.dictionary is not None
        assert second.dictionary.predicates.lookup("ub:advisor") == \
            first.dictionary.predicates.lookup("ub:advisor")

    def test_stale_snapshot_rebuilds(self, tmp_path, monkeypatch):
        calls = []
        original = registry._build

        def counting_build(name, scale, seed):
            calls.append(1)
            return original(name, scale, seed)

        monkeypatch.setattr(registry, "_build", counting_build)
        load_dataset("lubm", scale=0.25, seed=3, cache_dir=tmp_path)
        directory = tmp_path / cache_key(
            "lubm",
            gen=registry.GENERATOR_CACHE_VERSION,
            scale=0.25,
            seed=3,
        )
        corrupt_snapshot(directory)
        clear_cache()
        load_dataset("lubm", scale=0.25, seed=3, cache_dir=tmp_path)
        assert len(calls) == 2

    def test_env_var_enables_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(registry.SNAPSHOT_DIR_ENV, str(tmp_path))
        load_dataset("yago", scale=0.1, seed=1)
        directory = tmp_path / cache_key(
            "yago",
            gen=registry.GENERATOR_CACHE_VERSION,
            scale=0.1,
            seed=1,
        )
        assert (directory / "manifest.json").is_file()

    def test_no_cache_dir_means_no_files(self, tmp_path, monkeypatch):
        monkeypatch.delenv(registry.SNAPSHOT_DIR_ENV, raising=False)
        load_dataset("yago", scale=0.1, seed=1)
        assert list(tmp_path.iterdir()) == []

    def test_memo_hit_does_not_swallow_cache_request(self, tmp_path):
        """Regression: an uncached memoised load must not stop a later
        cache_dir call from writing the snapshot."""
        uncached = load_dataset("yago", scale=0.1, seed=1)
        cached = load_dataset("yago", scale=0.1, seed=1, cache_dir=tmp_path)
        assert any(tmp_path.iterdir())
        assert set(uncached) == set(cached)

    def test_unknown_dataset_rejected_before_caching(self, tmp_path):
        with pytest.raises(KeyError):
            load_dataset("freebase", cache_dir=tmp_path)
        assert list(tmp_path.iterdir()) == []


class TestGeneratorCache:
    def test_generate_lubm_cache_round_trip(self, tmp_path):
        direct = generate_lubm(universities=1, seed=5)
        cached = generate_lubm(universities=1, seed=5, cache_dir=tmp_path)
        reloaded = generate_lubm(universities=1, seed=5, cache_dir=tmp_path)
        assert set(direct) == set(cached) == set(reloaded)
        assert isinstance(reloaded.columnar.spo_s, np.memmap)

    def test_profile_participates_in_cache_key(self, tmp_path):
        """Regression: a custom profile must not hit the default-profile
        snapshot."""
        from repro.datasets import LubmProfile

        default = generate_lubm(universities=1, seed=5, cache_dir=tmp_path)
        dense = LubmProfile(full_low=5, full_high=8)
        custom = generate_lubm(
            universities=1, seed=5, profile=dense, cache_dir=tmp_path
        )
        assert set(custom) != set(default)
        assert set(custom) == set(
            generate_lubm(universities=1, seed=5, profile=dense)
        )
