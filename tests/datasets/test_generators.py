"""Tests that the synthetic datasets exhibit their calibrated properties."""

import numpy as np
import pytest

from repro.datasets import (
    clear_cache,
    dataset_builders,
    generate_lubm,
    generate_swdf,
    generate_yago,
    load_dataset,
)
from repro.datasets.yago import predicate_vocabulary
from repro.rdf.stats import compute_stats, correlation_factor


class TestLubm:
    def test_deterministic_for_seed(self):
        a = generate_lubm(universities=2, seed=42)
        b = generate_lubm(universities=2, seed=42)
        assert set(a) == set(b)

    def test_different_seeds_differ(self):
        a = generate_lubm(universities=2, seed=1)
        b = generate_lubm(universities=2, seed=2)
        assert set(a) != set(b)

    def test_scales_with_universities(self):
        small = generate_lubm(universities=1, seed=0)
        large = generate_lubm(universities=4, seed=0)
        assert len(large) > 2 * len(small)

    def test_predicate_budget(self):
        store = generate_lubm(universities=2, seed=0)
        assert store.num_predicates <= 19

    def test_schema_correlations_present(self):
        """Every grad student with an advisor also takes courses —
        the predicate correlation LUBM queries exploit."""
        store = generate_lubm(universities=2, seed=0)
        d = store.dictionary
        advisor = d.predicates.lookup("ub:advisor")
        takes = d.predicates.lookup("ub:takesCourse")
        assert advisor is not None and takes is not None
        assert correlation_factor(store, advisor, takes) > 1.5


class TestSwdf:
    def test_predicate_vocabulary_size(self):
        store = generate_swdf(conferences=6, seed=0)
        # Not every padded annotation predicate necessarily fires at
        # small scale, but the bulk must.
        assert store.num_predicates > 100

    def test_dense_entity_reuse(self):
        store = generate_swdf(conferences=6, seed=0)
        stats = compute_stats(store, "swdf")
        # Dense interconnection: clearly more triples than entities.
        assert stats.num_triples > 2 * stats.num_entities

    def test_author_skew(self):
        store = generate_swdf(conferences=6, seed=0)
        d = store.dictionary
        creator = d.predicates.lookup("dc:creator")
        per_author = {}
        for s, p, o in store:
            if p == creator:
                per_author[o] = per_author.get(o, 0) + 1
        counts = sorted(per_author.values(), reverse=True)
        # Zipf: the most prolific author dominates the median one.
        assert counts[0] >= 5 * np.median(counts)


class TestYago:
    def test_vocabulary_is_91(self):
        assert len(predicate_vocabulary()) == 91

    def test_many_unique_terms(self):
        store = generate_yago(num_triples=5_000, seed=0)
        stats = compute_stats(store, "yago")
        # The YAGO regime: entity count within the same order as triples.
        assert stats.num_entities > 0.4 * stats.num_triples

    def test_triple_budget_respected(self):
        store = generate_yago(num_triples=3_000, seed=0)
        assert len(store) >= 3_000
        assert len(store) < 3_300

    def test_heavy_tail_degree(self):
        store = generate_yago(num_triples=8_000, seed=0)
        stats = compute_stats(store, "yago")
        assert stats.degree_gini > 0.3


class TestGraphBuilder:
    def test_add_batch_matches_per_triple_add(self):
        from repro.datasets.synthetic import GraphBuilder

        triples = [
            ("a", "p", "b"),
            ("b", "p", "c"),
            ("a", "q", "c"),
            ("a", "p", "b"),  # duplicate collapses
        ]
        one = GraphBuilder()
        for s, p, o in triples:
            one.add(s, p, o)
        bulk = GraphBuilder()
        bulk.add_batch(triples)
        assert bulk.num_triples == one.num_triples == 3
        assert set(bulk.build()) == set(one.build())
        # One batch, one generation bump.
        assert bulk.store.generation == 1


class TestRegistry:
    def test_memoisation_returns_same_object(self):
        clear_cache()
        a = load_dataset("swdf", scale=0.25, seed=3)
        b = load_dataset("swdf", scale=0.25, seed=3)
        assert a is b

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("freebase")

    def test_builders_exposed(self):
        builders = dataset_builders()
        assert set(builders) == {"swdf", "lubm", "yago"}

    def test_scale_changes_size(self):
        clear_cache()
        small = load_dataset("yago", scale=0.1, seed=1)
        large = load_dataset("yago", scale=0.2, seed=1)
        assert len(large) > len(small)


class TestCrossProcessDeterminism:
    """Datasets must not depend on PYTHONHASHSEED (string-hash order).

    Regression test: the SWDF generator once keyed a correlation on
    ``hash(org)``, which varies per process and silently changed every
    downstream workload and bench result between runs.
    """

    @pytest.mark.parametrize("dataset", ["swdf", "lubm", "yago"])
    def test_same_triples_under_different_hash_seeds(self, dataset):
        import os
        import subprocess
        import sys

        script = (
            "import hashlib; "
            "from repro.datasets import load_dataset; "
            f"s = load_dataset('{dataset}', scale=0.25, seed=3); "
            "print(hashlib.md5(str(sorted(s._triples)).encode())"
            ".hexdigest())"
        )
        digests = set()
        for hash_seed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1, (
            f"{dataset} generator output varies with PYTHONHASHSEED"
        )
