"""Extension bench: range queries via histogram-selectivity encoding.

§IV's future-work sentence — "modify the input encoding with histogram
selectivity values" — implemented and measured.  LMKGS-Range (the
supervised model with one log-selectivity slot per triple) against the
traditional per-predicate-histogram baseline, on size-3 star queries
with random inclusive object ranges.  Expected shape: at this join
count the learned model's correlation handling beats the independence-
times-selectivity estimate, mirroring the equality-query result.
"""

from repro.bench import get_context
from repro.bench.reporting import format_table
from repro.core.lmkg_s import LMKGSConfig
from repro.core.metrics import summarize
from repro.core.ranges import (
    HistogramRangeEstimator,
    LMKGSRange,
    generate_range_workload,
)


def test_ext_ranges(benchmark, report):
    ctx = get_context("swdf")
    size = 3
    # LMKG-S needs a solid sample here: with fewer training queries the
    # tail (the paper's Fig. 9 outlier weakness) dominates the mean.
    train = generate_range_workload(
        ctx.store,
        "star",
        size,
        num_queries=max(ctx.profile.train_queries_per_shape, 1_200),
        seed=1,
    )
    test = generate_range_workload(
        ctx.store, "star", size, num_queries=120, seed=99
    )
    truths = [r.cardinality for r in test]

    def run():
        model = LMKGSRange(
            ctx.store,
            ["star"],
            size,
            LMKGSConfig(
                hidden_sizes=ctx.profile.lmkgs_hidden,
                epochs=max(ctx.profile.lmkgs_epochs * 2, 120),
                seed=0,
            ),
        )
        model.fit(train)
        baseline = HistogramRangeEstimator(ctx.store)
        rows = []
        means = {}
        for name, estimator in (
            ("lmkgs-range", model),
            ("histogram", baseline),
        ):
            estimates = [estimator.estimate(r.query) for r in test]
            summary = summarize(estimates, truths)
            means[name] = summary.mean
            rows.append(
                (
                    name,
                    round(summary.mean, 2),
                    round(summary.median, 2),
                    round(summary.p90, 2),
                    round(summary.max, 2),
                )
            )
        return rows, means

    rows, means = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ("estimator", "mean q-err", "median", "p90", "max"),
            rows,
            title=(
                "Extension — range queries, selectivity-augmented "
                f"LMKG-S vs histograms (SWDF star size {size})"
            ),
        )
    )
    # Shape: with 3 joins the learned model's correlation handling wins.
    assert means["lmkgs-range"] <= means["histogram"] * 1.15
