"""Extension bench: the outlier buffer proposed in §VIII-C.

The paper's "Lessons Learned" suggests storing the cardinalities of the
training outliers on the side (and explicitly does *not* apply it in the
competitor comparison, for fairness).  This bench implements the
suggestion and quantifies it: LMKG-S with a top-k exact buffer vs the
raw model, on the full result-size range including outliers.
"""

import numpy as np

from repro.bench import get_context
from repro.bench.reporting import format_bytes, format_table
from repro.core.metrics import summarize
from repro.core.outliers import BufferedEstimator

CAPACITIES = (0, 10, 50)


def test_ext_outlier_buffer(benchmark, report):
    ctx = get_context("lubm")
    size = ctx.profile.query_sizes[0]
    train = ctx.train_workload("star", size).records
    # Evaluation mixes held-out queries with the training outliers the
    # buffer is meant to catch (the paper's deployment scenario: repeated
    # heavy queries).
    heavy = sorted(train, key=lambda r: r.cardinality)[-25:]
    test = list(ctx.test_workload("star", size).records) + heavy

    def run():
        framework = ctx.lmkg_s()
        rows = []
        for capacity in CAPACITIES:
            estimator = BufferedEstimator(
                framework, train, capacity=capacity
            )
            estimates = [estimator.estimate(r.query) for r in test]
            summary = summarize(
                estimates, [r.cardinality for r in test]
            )
            rows.append(
                (
                    capacity,
                    round(summary.mean, 2),
                    round(summary.max, 2),
                    format_bytes(estimator.buffer.memory_bytes()),
                    estimator.hits,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            (
                "buffer capacity",
                "mean q-error",
                "max q-error",
                "buffer bytes",
                "buffer hits",
            ),
            rows,
            title=(
                "Extension — LMKG-S with outlier buffer "
                f"(LUBM star size {size}, §VIII-C suggestion)"
            ),
        )
    )
    # The buffer can only help: with capacity the mean error must not
    # increase, and buffered variants must actually hit.
    assert rows[-1][1] <= rows[0][1] + 1e-9
    assert rows[-1][4] > 0
