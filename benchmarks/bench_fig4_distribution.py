"""Fig. 4: query-cardinality distribution per dataset.

The paper shows that, averaged over query sizes, the vast majority of
queries have small cardinalities with a long tail of outliers.  This
bench prints the share of sampled queries per result-size bucket for each
dataset and asserts the skew shape.
"""

from collections import Counter

from repro.bench import get_context, print_table
from repro.bench.reporting import format_table
from repro.sampling import NUM_BUCKETS, bucket_label, generate_workload

DATASETS = ("swdf", "lubm", "yago")


def test_fig4_query_cardinality_distribution(benchmark, report):
    def run():
        table = {}
        for name in DATASETS:
            ctx = get_context(name)
            counts: Counter = Counter()
            total = 0
            for topology in ("star", "chain"):
                for size in ctx.profile.query_sizes[:2]:
                    workload = generate_workload(
                        ctx.store,
                        topology,
                        size,
                        num_queries=300,
                        seed=400 + size,
                    )
                    for record in workload:
                        if record.bucket is not None:
                            counts[record.bucket] += 1
                            total += 1
            table[name] = [
                counts.get(b, 0) / max(total, 1)
                for b in range(NUM_BUCKETS)
            ]
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [bucket_label(b)] + [round(table[d][b], 3) for d in DATASETS]
        for b in range(NUM_BUCKETS)
    ]
    report(
        format_table(
            ("Result size",) + tuple(d.upper() for d in DATASETS),
            rows,
            title="Fig. 4 — share of queries per result-size bucket",
        )
    )
    for name in DATASETS:
        shares = table[name]
        # Skew: the two smallest buckets dominate the two largest by far.
        assert shares[0] + shares[1] > 5 * (shares[-1] + shares[-2]), name
