"""Extension bench: how much does tree shape matter per query topology?

The optimizer substrate supports both left-deep orders and bushy join
trees.  This bench measures the C_out gap between the two optima
(identical join-output accounting, true cardinalities) on star and
chain workloads.  Expected shape: star queries gain nothing from bushy
trees — every join goes through the shared centre, so a left-deep order
is already optimal — while chain queries can join their halves
independently and realise real savings.
"""

import numpy as np

from repro.bench import get_context
from repro.bench.reporting import format_table
from repro.optimizer import left_deep_vs_bushy, true_cost_fn
from repro.sampling import generate_workload


def test_ext_bushy_plans(benchmark, report):
    ctx = get_context("lubm")
    # Bushy trees only differ from left-deep ones at >= 4 leaves (every
    # 3-leaf binary tree is a left-deep shape), so this bench fixes
    # size 4 regardless of the profile's headline sizes.
    size = 4
    workloads = {
        topology: [
            r.query
            for r in generate_workload(
                ctx.store, topology, size, num_queries=25, seed=7
            ).records[:25]
        ]
        for topology in ("star", "chain")
    }
    oracle = true_cost_fn(ctx.store)

    def run():
        rows = []
        gains = {}
        for topology, queries in workloads.items():
            ratios = []
            improved = 0
            for query in queries:
                left_deep, bushy = left_deep_vs_bushy(query, oracle)
                if left_deep > 0:
                    ratios.append(bushy / left_deep)
                    improved += bushy < left_deep - 1e-9
                else:
                    ratios.append(1.0)
            gains[topology] = 1.0 - float(np.mean(ratios))
            rows.append(
                (
                    topology,
                    len(queries),
                    improved,
                    f"{float(np.mean(ratios)):.3f}",
                    f"{float(np.min(ratios)):.3f}",
                )
            )
        return rows, gains

    rows, gains = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            (
                "topology",
                "queries",
                "improved by bushy",
                "mean bushy/left-deep",
                "best ratio",
            ),
            rows,
            title=(
                "Extension — left-deep vs bushy C_out optima "
                f"(LUBM size {size}, true cardinalities)"
            ),
        )
    )
    # Shape: bushy never loses (ratio <= 1 by construction); stars
    # cannot benefit — the centre variable makes left-deep optimal —
    # while size-4 chains realise real savings by joining their halves.
    assert gains["star"] == 0.0
    assert gains["chain"] > 0.0