"""Extension bench: one autoregressive model for all shapes (§II NeuroCard).

The paper defers "deeper investigation" of NeuroCard-style single-model
estimation on KGs to future work; this bench carries out the comparison
its §VII-B grouping analysis predicts.  A single UniversalLMKGU over
{star-2, chain-2} — shape column + padded tail, union universe — against
the per-shape LMKG-U models at the same *total* training-sample budget.

Expected shape: the single model needs less memory than the two
specialised models combined, at some accuracy cost (the §VII-B
"single learned model" row: "suitable for small memory budgets …
may produce lower accuracy").
"""

import numpy as np

from repro.bench import get_context
from repro.bench.reporting import format_bytes, format_table
from repro.core.lmkg_u import LMKGU, LMKGUConfig
from repro.core.lmkg_u_universal import UniversalLMKGU
from repro.core.metrics import summarize


def test_ext_universal_u(benchmark, report):
    ctx = get_context("lubm")
    size = ctx.profile.query_sizes[0]
    shapes = [("star", size), ("chain", size)]
    workloads = {
        topology: ctx.test_workload(topology, size)
        for topology, _ in shapes
    }
    total_budget = ctx.profile.lmkgu_samples * len(shapes)

    def run():
        universal = UniversalLMKGU(
            ctx.store,
            shapes,
            LMKGUConfig(
                embed_dim=16,
                hidden_sizes=ctx.profile.lmkgu_hidden,
                epochs=ctx.profile.lmkgu_epochs * 2,
                training_samples=total_budget,
                particles=ctx.profile.lmkgu_particles,
                seed=0,
            ),
        )
        universal.fit()
        per_shape = {}
        per_shape_memory = 0
        for topology, shape_size in shapes:
            model = LMKGU(
                ctx.store,
                topology,
                shape_size,
                LMKGUConfig(
                    embed_dim=16,
                    hidden_sizes=ctx.profile.lmkgu_hidden,
                    epochs=ctx.profile.lmkgu_epochs * 2,
                    training_samples=total_budget // len(shapes),
                    particles=ctx.profile.lmkgu_particles,
                    seed=0,
                ),
            )
            model.fit()
            per_shape[topology] = model
            # Paper-facing float32 size: state-independent, unlike the
            # in-process memory_bytes() footprint.
            per_shape_memory += model.checkpoint_bytes()
        rows = []
        stats = {}
        for name in ("universal", "per-shape"):
            means = {}
            for topology, workload in workloads.items():
                model = (
                    universal
                    if name == "universal"
                    else per_shape[topology]
                )
                estimates = [
                    model.estimate(r.query) for r in workload
                ]
                means[topology] = summarize(
                    estimates, [r.cardinality for r in workload]
                ).mean
            memory = (
                universal.checkpoint_bytes()
                if name == "universal"
                else per_shape_memory
            )
            stats[name] = {"means": means, "memory": memory}
            rows.append(
                (
                    name,
                    round(means["star"], 2),
                    round(means["chain"], 2),
                    format_bytes(memory),
                )
            )
        return rows, stats

    rows, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ("model", "star mean q-err", "chain mean q-err", "memory"),
            rows,
            title=(
                "Extension — single universal LMKG-U vs per-shape "
                f"models (LUBM size {size}, equal total sample budget)"
            ),
        )
    )
    # Shape: §VII-B's single-model trade — strictly less memory than the
    # specialised models combined.
    assert (
        stats["universal"]["memory"] < stats["per-shape"]["memory"]
    )