"""Ablation bench: training-sample strategy vs LMKG-U accuracy (§VII-A).

The paper picks random-walk sampling citing Leskovec & Faloutsos and
names sample quality as "the main cause of inaccurate model estimation".
This ablation quantifies that: LMKG-U is trained on the same budget of
bound star instances drawn by five strategies — the unbiased sampler,
the paper's uniform-start RW, a degree-weighted RW, forest fire, and
snowball — and each variant is scored on the same held-out queries.
Scaled-down sample statistics (predicate TV distance, degree KS
statistic, distinct-term coverage) are reported alongside accuracy.
"""

from repro.bench import get_context
from repro.bench.reporting import format_table
from repro.core.lmkg_u import LMKGU, LMKGUConfig
from repro.core.metrics import summarize
from repro.sampling import make_strategy, sample_quality

STRATEGIES = ("exact", "rw", "degree_rw", "forest_fire", "snowball")


def test_ablation_sampling(benchmark, report):
    ctx = get_context("swdf")
    size = ctx.profile.query_sizes[0]
    workload = ctx.test_workload("star", size)
    truths = [r.cardinality for r in workload]
    budget = ctx.profile.lmkgu_samples
    # The strategy differences only show once the model can actually fit
    # its sample, so this ablation trains longer than the headline
    # benches (still seconds per variant at these widths).
    config = LMKGUConfig(
        embed_dim=16,
        hidden_sizes=ctx.profile.lmkgu_hidden,
        epochs=max(ctx.profile.lmkgu_epochs * 4, 8),
        training_samples=budget,
        particles=ctx.profile.lmkgu_particles,
        seed=0,
    )

    def run():
        rows = []
        means = {}
        for name in STRATEGIES:
            strategy = make_strategy(
                name, ctx.store, "star", size, seed=0
            )
            instances = strategy.sample_many(budget)
            quality = sample_quality(
                ctx.store, "star", size, instances
            )
            model = LMKGU(ctx.store, "star", size, config)
            model.fit(instances=instances)
            estimates = [
                model.estimate(r.query) for r in workload
            ]
            summary = summarize(estimates, truths)
            means[name] = summary.mean
            rows.append(
                (
                    name,
                    round(quality.predicate_tv, 3),
                    round(quality.degree_ks, 3),
                    quality.distinct_terms,
                    round(summary.mean, 2),
                    round(summary.median, 2),
                )
            )
        return rows, means

    rows, means = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            (
                "strategy",
                "pred TV",
                "degree KS",
                "distinct terms",
                "mean q-err",
                "median q-err",
            ),
            rows,
            title=(
                "Ablation — LMKG-U accuracy by training-sample strategy "
                f"(SWDF star size {size}, {budget} instances)"
            ),
        )
    )
    # Shape: the unbiased sampler is the quality ceiling — no heuristic
    # strategy should beat it by a meaningful margin.
    best_heuristic = min(
        means[name] for name in STRATEGIES if name != "exact"
    )
    assert means["exact"] <= best_heuristic * 1.5
