"""Fig. 5: impact of outliers on LMKG-S accuracy (star queries).

The paper removes the top-k largest-cardinality queries from the training
data and observes accuracy improving monotonically — LMKG-S's main
weakness is the extreme outliers, not query complexity.  This bench
trains LMKG-S on LUBM star queries with k ∈ {0, 10, 50} outliers removed
and reports mean/max q-error on a fixed (outlier-free) test set.
"""

import numpy as np

from repro.bench import get_context
from repro.bench.reporting import format_table
from repro.core.lmkg_s import LMKGS, LMKGSConfig
from repro.core.metrics import summarize

REMOVALS = (0, 10, 50)


def test_fig5_outlier_removal(benchmark, report):
    ctx = get_context("lubm")
    size = ctx.profile.query_sizes[0]
    train = sorted(
        ctx.train_workload("star", size).records,
        key=lambda r: r.cardinality,
    )
    test = ctx.test_workload("star", size)
    # Evaluate within the training distribution's bulk: drop the test
    # outliers above the 95th percentile once, for all variants.
    cutoff = np.percentile([r.cardinality for r in train], 95)
    eval_records = [r for r in test if r.cardinality <= cutoff]

    def run():
        rows = []
        for k in REMOVALS:
            kept = train[: len(train) - k] if k else train
            model = LMKGS(
                ctx.store,
                ["star"],
                size,
                LMKGSConfig(
                    hidden_sizes=ctx.profile.lmkgs_hidden,
                    epochs=ctx.profile.lmkgs_epochs,
                    seed=0,
                ),
            )
            model.fit(kept)
            estimates = model.estimate_batch(
                [r.query for r in eval_records]
            )
            summary = summarize(
                estimates, [r.cardinality for r in eval_records]
            )
            rows.append((k, summary.mean, summary.max))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ("Outliers removed", "Mean q-error", "Max q-error"),
            rows,
            title=(
                "Fig. 5 — LMKG-S accuracy vs training outlier removal "
                f"(LUBM star size {size})"
            ),
        )
    )
    # Shape: removing outliers must not hurt the bulk accuracy much; the
    # paper sees monotone improvement, we accept >= parity within noise.
    assert rows[-1][1] <= rows[0][1] * 1.5
