"""Extension bench: plan quality under learned vs naive cardinalities.

The paper's §I motivation — "producing efficient query plans heavily
relies on accurate cardinality estimates" — made measurable in the style
of Leis et al. (VLDB 2015): plan every test query with each estimator,
then charge each chosen join order its *true* C_out and compare against
the true-optimal order.  The learned model's lower q-error should
translate into more optimal plans and lower plan regret than the
independence assumption.
"""

from repro.baselines import (
    BayesNetEstimator,
    CharacteristicSets,
    IndependenceEstimator,
)
from repro.bench import get_context
from repro.bench.reporting import format_table
from repro.optimizer import plan_quality


def test_ext_plan_quality(benchmark, report):
    ctx = get_context("lubm")
    size = max(s for s in ctx.profile.query_sizes if s <= 4)
    queries = [
        r.query
        for topology in ("star", "chain")
        for r in ctx.test_workload(topology, size).records[:20]
    ]

    def run():
        lmkg = ctx.lmkg_s()

        class _Lmkg:
            name = "lmkg-s"

            def estimate(self, query):
                return lmkg.estimate(query)

        estimators = [
            _Lmkg(),
            BayesNetEstimator(ctx.store),
            CharacteristicSets(ctx.store),
            IndependenceEstimator(ctx.store),
        ]
        rows = []
        reports = {}
        for estimator in estimators:
            quality = plan_quality(ctx.store, estimator, queries)
            reports[estimator.name] = quality
            rows.append(
                (
                    estimator.name,
                    f"{quality.fraction_optimal:.1%}",
                    round(quality.mean_suboptimality, 3),
                    round(quality.percentile(95), 3),
                    round(quality.max_suboptimality, 3),
                )
            )
        return rows, reports

    rows, reports = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            (
                "estimator",
                "optimal plans",
                "mean subopt",
                "p95 subopt",
                "max subopt",
            ),
            rows,
            title=(
                "Extension — join-order quality, true C_out of chosen vs "
                f"optimal plan (LUBM, star+chain size {size})"
            ),
        )
    )
    # Shape assertion: the learned estimator should plan at least as
    # well as the independence assumption on mean regret.
    assert (
        reports["lmkg-s"].mean_suboptimality
        <= reports["indep"].mean_suboptimality + 1e-9
    )
