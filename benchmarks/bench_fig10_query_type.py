"""Fig. 10: average q-error per query type (star vs chain) — all
estimators, all three datasets.

The paper's observation: LMKG-S and LMKG-U lead for both topologies; WJ
and MSCN-1k are competitive; CSET is strong on stars (its native shape)
and weaker on chains.
"""

import numpy as np

from repro.bench import get_context
from repro.bench.reporting import format_table
from repro.core.metrics import q_errors

DATASETS = ("swdf", "lubm", "yago")


def _run_dataset(name):
    ctx = get_context(name)
    estimators = ctx.estimators()
    table = {}
    for estimator in estimators:
        per_topology = {}
        for topology in ("star", "chain"):
            errors = []
            for size in ctx.sizes_for(topology)[:2]:
                if (
                    estimator == "lmkg-u"
                    and size not in ctx.profile.lmkgu_sizes
                ):
                    continue
                workload = ctx.test_workload(topology, size)
                estimates = ctx.estimate_all(estimator, workload)
                errors.extend(
                    q_errors(estimates, workload.cardinalities())
                )
            per_topology[topology] = float(np.mean(errors))
        table[estimator] = per_topology
    return estimators, table


def _report_dataset(report, name, estimators, table):
    rows = [
        [topology]
        + [round(table[e][topology], 2) for e in estimators]
        for topology in ("star", "chain")
    ]
    report(
        format_table(
            ("Query type",) + tuple(estimators),
            rows,
            title=f"Fig. 10 — avg q-error by query type ({name.upper()})",
        )
    )


def _claims(table):
    # LMKG-S beats the weakest baseline on both topologies.
    for topology in ("star", "chain"):
        assert table["lmkg-s"][topology] < table["impr"][topology]
    # CSET's star/chain asymmetry: native shape no worse than chains.
    assert table["cset"]["star"] <= table["cset"]["chain"] * 1.5


def test_fig10_swdf(benchmark, report):
    estimators, table = benchmark.pedantic(
        lambda: _run_dataset("swdf"), rounds=1, iterations=1
    )
    _report_dataset(report, "swdf", estimators, table)
    _claims(table)


def test_fig10_lubm(benchmark, report):
    estimators, table = benchmark.pedantic(
        lambda: _run_dataset("lubm"), rounds=1, iterations=1
    )
    _report_dataset(report, "lubm", estimators, table)
    _claims(table)


def test_fig10_yago(benchmark, report):
    estimators, table = benchmark.pedantic(
        lambda: _run_dataset("yago"), rounds=1, iterations=1
    )
    _report_dataset(report, "yago", estimators, table)
    _claims(table)
