"""Fig. 7: specialised vs grouped LMKG-S models, by result-size bucket.

Trains four LMKG-S variants — specialised per (type, size), size-grouped,
type-grouped, and one single model — each with the same layer
configuration (the paper stops at 50 epochs here), then reports the
average q-error per result-size bucket for star and chain queries.

Evaluation follows the paper's framing: "for almost every case, the
specialized model *overfits the queries* and produces the best
estimates" — accuracy is measured on the workload distribution the
models were fitted to (the paper's grouped models saw the same queries).
A held-out table is printed as well: at CPU-scale training budgets the
grouped models generalise comparably because they see more total data,
which EXPERIMENTS.md discusses.
"""

import numpy as np

from repro.bench import active_profile, get_context
from repro.bench.reporting import format_table
from repro.core.framework import LMKG
from repro.core.lmkg_s import LMKGSConfig
from repro.core.metrics import q_errors
from repro.sampling import Workload, bucket_label

GROUPINGS = ("specialized", "size", "type", "single")


def _per_bucket_errors(framework, workload):
    by_bucket = workload.by_bucket()
    result = {}
    for bucket, records in sorted(by_bucket.items()):
        estimates = [framework.estimate(r.query) for r in records]
        errors = q_errors(estimates, [r.cardinality for r in records])
        result[bucket] = float(np.mean(errors))
    return result


def _overall(framework, workloads):
    errors = []
    for workload in workloads:
        estimates = [framework.estimate(r.query) for r in workload]
        errors.extend(
            q_errors(estimates, [r.cardinality for r in workload])
        )
    return float(np.mean(errors))


def test_fig7_grouping_comparison(benchmark, report):
    ctx = get_context("lubm")
    profile = active_profile()
    sizes = [
        s for s in profile.query_sizes[:2] if s in ctx.sizes_for("star")
    ]
    shapes = [(t, s) for t in ("star", "chain") for s in sizes]
    records = ctx.training_records(sizes)
    # The paper's Fig. 7 setting: same two-layer configuration for every
    # grouping, 50 epochs.
    config = LMKGSConfig(
        hidden_sizes=profile.lmkgs_hidden,
        epochs=max(profile.lmkgs_epochs, 50),
        seed=0,
    )

    def run():
        frameworks = {}
        for grouping in GROUPINGS:
            framework = LMKG(
                ctx.store,
                model_type="supervised",
                grouping=grouping,
                lmkgs_config=config,
            )
            framework.fit(shapes=shapes, workload=records)
            frameworks[grouping] = framework
        fitted = {
            topology: Workload(
                topology,
                sizes[0],
                ctx.train_workload(topology, sizes[0]).records,
            )
            for topology in ("star", "chain")
        }
        in_dist = {
            topology: {
                grouping: _per_bucket_errors(framework, workload)
                for grouping, framework in frameworks.items()
            }
            for topology, workload in fitted.items()
        }
        overall_fit = {
            grouping: _overall(framework, fitted.values())
            for grouping, framework in frameworks.items()
        }
        held_out = [
            ctx.test_workload(topology, sizes[0])
            for topology in ("star", "chain")
        ]
        overall_held = {
            grouping: _overall(framework, held_out)
            for grouping, framework in frameworks.items()
        }
        return in_dist, overall_fit, overall_held

    in_dist, overall_fit, overall_held = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    for topology, per_grouping in in_dist.items():
        buckets = sorted(
            {b for errs in per_grouping.values() for b in errs}
        )
        rows = [
            [bucket_label(b)]
            + [
                round(per_grouping[g].get(b, float("nan")), 2)
                for g in GROUPINGS
            ]
            for b in buckets
        ]
        report(
            format_table(
                ("Result size",) + GROUPINGS,
                rows,
                title=(
                    f"Fig. 7 — avg q-error by grouping, fitted workload "
                    f"({topology} queries, LUBM)"
                ),
            )
        )
    report(
        format_table(
            ("grouping", "fitted avg q-err", "held-out avg q-err"),
            [
                (g, round(overall_fit[g], 2), round(overall_held[g], 2))
                for g in GROUPINGS
            ],
            title="Fig. 7 — overall (fitted vs held-out)",
        )
    )
    # The paper's ordering on the fitted workload: specialised best,
    # single worst (it spreads capacity across every shape).
    assert overall_fit["specialized"] <= overall_fit["single"] * 1.05
