"""Ablations for the design choices DESIGN.md calls out (beyond the
paper's figures):

1. SG-Encoding vs pattern-bound input for LMKG-S (same model budget),
2. binary vs one-hot term encoding (accuracy and input width),
3. LMKG-U embedding dimension (8 vs 32),
4. exact-uniform vs biased random-walk training samples for LMKG-U —
   quantifying the sampling-quality effect the paper's §VIII-C blames
   for LMKG-U's residual error.
"""

import numpy as np

from repro.bench import active_profile, get_context
from repro.bench.reporting import format_table
from repro.core.lmkg_s import LMKGS, LMKGSConfig
from repro.core.lmkg_u import LMKGU, LMKGUConfig
from repro.core.metrics import summarize


def _lmkgs_variant(ctx, size, **overrides):
    profile = ctx.profile
    config = LMKGSConfig(
        hidden_sizes=profile.lmkgs_hidden,
        epochs=profile.lmkgs_epochs,
        seed=0,
        **overrides,
    )
    model = LMKGS(ctx.store, ["star"], size, config)
    model.fit(ctx.train_workload("star", size).records)
    test = ctx.test_workload("star", size)
    estimates = model.estimate_batch([r.query for r in test])
    summary = summarize(estimates, test.cardinalities())
    return model, summary


def test_ablation_query_encoding(benchmark, report):
    """SG vs pattern-bound for a star-only model."""
    ctx = get_context("lubm")
    size = ctx.profile.query_sizes[0]

    def run():
        rows = []
        for encoding in ("sg", "pattern"):
            model, summary = _lmkgs_variant(ctx, size, encoding=encoding)
            rows.append(
                (
                    encoding,
                    model.input_width,
                    round(summary.geometric_mean, 2),
                    round(summary.mean, 2),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ("query encoding", "input width", "gmean q-err", "mean q-err"),
            rows,
            title="Ablation — SG vs pattern-bound encoding (LMKG-S, LUBM)",
        )
    )
    # Both encodings must be usable; neither catastrophically worse.
    gmeans = [row[2] for row in rows]
    assert max(gmeans) < 20 * max(min(gmeans), 1.0)


def test_ablation_term_encoding(benchmark, report):
    """Binary vs one-hot term encodings: the binary input is drastically
    narrower (the paper's §V argument for heterogeneous KGs)."""
    ctx = get_context("lubm")
    size = ctx.profile.query_sizes[0]

    def run():
        rows = []
        for term_encoding in ("binary", "one_hot"):
            model, summary = _lmkgs_variant(
                ctx, size, term_encoding=term_encoding, encoding="pattern"
            )
            rows.append(
                (
                    term_encoding,
                    model.input_width,
                    round(summary.geometric_mean, 2),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ("term encoding", "input width", "gmean q-err"),
            rows,
            title="Ablation — binary vs one-hot terms (LMKG-S, LUBM)",
        )
    )
    by_kind = {row[0]: row for row in rows}
    assert by_kind["binary"][1] * 10 < by_kind["one_hot"][1]


def test_ablation_lmkgu_embedding_dim(benchmark, report):
    ctx = get_context("lubm")
    profile = active_profile()
    size = profile.query_sizes[0]
    test = ctx.test_workload("star", size)

    def run():
        rows = []
        for dim in (8, 32):
            model = LMKGU(
                ctx.store,
                "star",
                size,
                LMKGUConfig(
                    embed_dim=dim,
                    hidden_sizes=profile.lmkgu_hidden,
                    epochs=profile.lmkgu_epochs,
                    training_samples=profile.lmkgu_samples,
                    particles=profile.lmkgu_particles,
                    seed=0,
                ),
            )
            model.fit()
            estimates = [model.estimate(r.query) for r in test]
            summary = summarize(estimates, test.cardinalities())
            rows.append(
                (
                    dim,
                    model.num_parameters(),
                    round(summary.geometric_mean, 2),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ("embed dim", "parameters", "gmean q-err"),
            rows,
            title="Ablation — LMKG-U embedding dimension (LUBM)",
        )
    )
    assert rows[0][1] < rows[1][1]  # smaller dim -> fewer parameters


def test_ablation_sampling_quality(benchmark, report):
    """Exact-uniform vs biased-RW training data for LMKG-U (§VIII-C)."""
    ctx = get_context("lubm")
    profile = active_profile()
    size = profile.query_sizes[0]
    test = ctx.test_workload("star", size)

    def run():
        rows = []
        for method in ("exact", "rw"):
            model = LMKGU(
                ctx.store,
                "star",
                size,
                LMKGUConfig(
                    embed_dim=32,
                    hidden_sizes=profile.lmkgu_hidden,
                    epochs=profile.lmkgu_epochs,
                    training_samples=profile.lmkgu_samples,
                    particles=profile.lmkgu_particles,
                    sample_method=method,
                    seed=0,
                ),
            )
            model.fit()
            estimates = [model.estimate(r.query) for r in test]
            summary = summarize(estimates, test.cardinalities())
            rows.append(
                (method, round(summary.geometric_mean, 2),
                 round(summary.mean, 2))
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ("sampling", "gmean q-err", "mean q-err"),
            rows,
            title=(
                "Ablation — exact-uniform vs biased-RW training samples "
                "(LMKG-U, LUBM)"
            ),
        )
    )
    # Both must produce a working estimator.
    assert all(np.isfinite(row[1]) for row in rows)
