"""Extension bench: the compound S+U estimator of §VII-B's future work.

The paper argues a combination of LMKG-S and LMKG-U "may be the
preferred approach" when both skewed stars and rare-term chains occur.
This bench builds the compound (geometric / router / validated policies)
over the paper's two models and compares all five estimators on a mixed
star+chain workload.
"""

import numpy as np

from repro.bench import get_context
from repro.bench.reporting import format_table
from repro.core.compound import CompoundEstimator
from repro.core.metrics import summarize


def test_ext_compound(benchmark, report):
    ctx = get_context("lubm")
    size = ctx.profile.query_sizes[0]
    workloads = {
        topology: ctx.test_workload(topology, size)
        for topology in ("star", "chain")
    }

    def run():
        supervised = ctx.lmkg_s()

        class _U:
            """Routes each query to the per-shape LMKG-U model."""

            def estimate(inner, query):
                topology = query.topology().value
                return ctx.lmkg_u(topology, size).estimate(query)

        unsupervised = _U()
        validation = [
            r
            for topology in ("star", "chain")
            for r in ctx.train_workload(topology, size).records[:30]
        ]
        estimators = {
            "lmkg-s": supervised,
            "lmkg-u": unsupervised,
            "compound-geo": CompoundEstimator(
                supervised, unsupervised, policy="geometric"
            ),
            "compound-route": CompoundEstimator(
                supervised, unsupervised, policy="router"
            ),
            "compound-valid": CompoundEstimator(
                supervised,
                unsupervised,
                policy="validated",
                validation=validation,
            ),
        }
        rows = []
        means = {}
        for name, estimator in estimators.items():
            per_topology = {}
            for topology, workload in workloads.items():
                estimates = [
                    estimator.estimate(r.query) for r in workload
                ]
                summary = summarize(
                    estimates, [r.cardinality for r in workload]
                )
                per_topology[topology] = summary.mean
            means[name] = float(np.mean(list(per_topology.values())))
            rows.append(
                (
                    name,
                    round(per_topology["star"], 2),
                    round(per_topology["chain"], 2),
                    round(means[name], 2),
                )
            )
        return rows, means

    rows, means = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ("estimator", "star mean q-err", "chain mean q-err", "overall"),
            rows,
            title=(
                "Extension — compound LMKG-S + LMKG-U (§VII-B future "
                f"work), LUBM size {size}"
            ),
        )
    )
    # Shape: the best compound policy should not be worse than the worse
    # of its two constituents — combining cannot lose to the weaker model.
    best_compound = min(
        means["compound-geo"], means["compound-route"], means["compound-valid"]
    )
    worst_single = max(means["lmkg-s"], means["lmkg-u"])
    assert best_compound <= worst_single * 1.05
