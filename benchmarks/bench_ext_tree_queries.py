"""Extension bench: tree queries through the SG-Encoding.

The paper introduces the SG-Encoding so that "the same model may later be
trained on tree or clique queries of a predefined size" (§V-A1) but
leaves the proof of concept to future work.  This bench delivers it: an
LMKG-S model trained on tree-shaped queries of size 3 (which subsume
stars and chains of that size) is evaluated on held-out trees and
compared against the decomposition fallback (star + single components
joined under uniformity).
"""

import numpy as np

from repro.bench import get_context
from repro.bench.reporting import format_table
from repro.core.framework import LMKG
from repro.core.lmkg_s import LMKGSConfig
from repro.core.metrics import summarize
from repro.sampling.trees import generate_tree_workload


def test_ext_tree_queries(benchmark, report):
    ctx = get_context("lubm")
    profile = ctx.profile
    size = 3

    def run():
        train = generate_tree_workload(
            ctx.store, size, profile.train_queries_per_shape, seed=7
        )
        test = generate_tree_workload(ctx.store, size, 60, seed=1007)
        # Drop test queries seen in training (canonical-form overlap).
        seen = {r.query.canonical_key() for r in train}
        held_out = [
            r for r in test if r.query.canonical_key() not in seen
        ]

        tree_model = LMKG(
            ctx.store,
            grouping="specialized",
            lmkgs_config=LMKGSConfig(
                hidden_sizes=profile.lmkgs_hidden,
                epochs=profile.lmkgs_epochs,
                seed=0,
            ),
        )
        tree_model.fit(shapes=[("tree", size)], workload=train.records)

        # Fallback: the star/chain framework answers trees only through
        # decomposition + uniformity combination.
        fallback = ctx.lmkg_s()

        rows = []
        for name, framework in (
            ("tree-trained (SG)", tree_model),
            ("decompose fallback", fallback),
        ):
            estimates = [
                framework.estimate(r.query) for r in held_out
            ]
            summary = summarize(
                estimates, [r.cardinality for r in held_out]
            )
            rows.append(
                (
                    name,
                    len(held_out),
                    round(summary.geometric_mean, 2),
                    round(summary.median, 2),
                    round(summary.p90, 2),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ("estimator", "queries", "gmean q-err", "median", "p90"),
            rows,
            title=(
                "Extension — tree queries via SG-Encoding vs "
                "decomposition (LUBM, size 3)"
            ),
        )
    )
    # The directly trained tree model must beat the uniformity-combined
    # decomposition on branching queries.
    assert rows[0][2] <= rows[1][2] * 1.2
