"""Fig. 8: average q-error vs query size — all estimators, SWDF & LUBM.

The paper's headline comparison: as the number of joins grows, the
sampling and summary baselines degrade while LMKG-S stays flat.  Prints
one row per query size with one column per estimator (averaged over star
and chain workloads of that size, like the figure).
"""

import numpy as np

from repro.bench import get_context
from repro.bench.reporting import format_table
from repro.core.metrics import q_errors

DATASETS = ("swdf", "lubm")


def _size_row(ctx, estimator, size):
    errors = []
    for topology in ("star", "chain"):
        if size not in ctx.sizes_for(topology):
            continue
        if estimator == "lmkg-u" and size not in ctx.profile.lmkgu_sizes:
            continue
        workload = ctx.test_workload(topology, size)
        estimates = ctx.estimate_all(estimator, workload)
        errors.extend(q_errors(estimates, workload.cardinalities()))
    return float(np.mean(errors)) if errors else float("nan")


def _run_dataset(name):
    ctx = get_context(name)
    estimators = ctx.estimators()
    table = {}
    for estimator in estimators:
        table[estimator] = {
            size: _size_row(ctx, estimator, size)
            for size in ctx.profile.query_sizes
        }
    return ctx, estimators, table


def _report_dataset(report, name, ctx, estimators, table):
    rows = [
        [size]
        + [round(table[e][size], 2) for e in estimators]
        for size in ctx.profile.query_sizes
    ]
    report(
        format_table(
            ("Query size",) + tuple(estimators),
            rows,
            title=f"Fig. 8 — avg q-error by query size ({name.upper()})",
        )
    )


def test_fig8_swdf(benchmark, report):
    ctx, estimators, table = benchmark.pedantic(
        lambda: _run_dataset("swdf"), rounds=1, iterations=1
    )
    _report_dataset(report, "swdf", ctx, estimators, table)
    _assert_shape(ctx, table)


def test_fig8_lubm(benchmark, report):
    ctx, estimators, table = benchmark.pedantic(
        lambda: _run_dataset("lubm"), rounds=1, iterations=1
    )
    _report_dataset(report, "lubm", ctx, estimators, table)
    _assert_shape(ctx, table)


def _assert_shape(ctx, table):
    import math

    sizes = [
        s
        for s in ctx.profile.query_sizes
        if not math.isnan(table["lmkg-s"][s])
    ]
    largest = sizes[-1]
    # LMKG-S beats the weakest baseline at the largest size (the paper's
    # central claim: accuracy does not collapse with join count).  JSUB's
    # upper-bound bias only bites from ~5 joins on, so that comparison is
    # asserted only when the profile reaches those sizes.
    assert table["lmkg-s"][largest] < table["impr"][largest]
    if largest >= 5:
        assert table["lmkg-s"][largest] < table["jsub"][largest]
    # And LMKG-S stays within an order of magnitude of its small-query
    # accuracy while impr degrades by much more.
    lmkg_growth = table["lmkg-s"][largest] / max(
        table["lmkg-s"][sizes[0]], 1.0
    )
    impr_growth = table["impr"][largest] / max(
        table["impr"][sizes[0]], 1.0
    )
    assert lmkg_growth < max(impr_growth, 10.0)
