"""Table I: experiment and dataset specifications.

Regenerates the dataset half of the paper's Table I — triples, entities,
predicates per dataset — plus the skew diagnostics the datasets were
calibrated against.  Paper values for reference: SWDF ~250K/~76K/171,
LUBM20 ~2.7M/663K/19, YAGO ~15M/12M/91 (ours are CPU-scaled; the *ratios*
are the reproduction target).
"""

from repro.bench import get_context, print_table
from repro.bench.reporting import format_table
from repro.rdf.stats import compute_stats

DATASETS = ("swdf", "lubm", "yago")


def test_table1_dataset_specifications(benchmark, report):
    def run():
        rows = []
        for name in DATASETS:
            ctx = get_context(name)
            stats = compute_stats(ctx.store, name.upper())
            rows.append(
                (
                    stats.name,
                    stats.num_triples,
                    stats.num_entities,
                    stats.num_predicates,
                    round(stats.num_triples / stats.num_entities, 2),
                    round(stats.degree_gini, 2),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            (
                "Dataset",
                "Triples",
                "Entities",
                "Predicates",
                "Triples/Entity",
                "DegreeGini",
            ),
            rows,
            title="Table I — dataset specifications (CPU-scaled)",
        )
    )
    # Shape assertions: the relative character must match the paper.
    by_name = {row[0]: row for row in rows}
    assert by_name["SWDF"][3] > 100          # many predicates
    assert by_name["LUBM"][3] <= 19          # few predicates
    assert by_name["YAGO"][2] > by_name["SWDF"][2]  # many unique terms
    assert by_name["YAGO"][4] < by_name["LUBM"][4]  # sparse entity reuse
