"""Fig. 6: training time vs accuracy — epochs sweeps for both models.

(a) LMKG-U over {1, 2, 5, 10} epochs and (b) LMKG-S over
{20, 50, 100, 200} epochs on a LUBM sample, reporting max and average
q-error after each budget, as in the paper's bars+dots plot.  Budgets are
scaled by the active profile.
"""

from repro.bench import active_profile, get_context
from repro.bench.reporting import format_table
from repro.core.lmkg_s import LMKGS, LMKGSConfig
from repro.core.lmkg_u import LMKGU, LMKGUConfig
from repro.core.metrics import summarize


def _epoch_grid(full_grid, cap):
    return tuple(e for e in full_grid if e <= cap) or (cap,)


def test_fig6a_lmkgu_epochs(benchmark, report):
    ctx = get_context("lubm")
    profile = active_profile()
    size = profile.query_sizes[0]
    grid = _epoch_grid((1, 2, 5, 10), max(profile.lmkgu_epochs * 2, 2))
    test = ctx.test_workload("star", size)

    def run():
        rows = []
        for epochs in grid:
            model = LMKGU(
                ctx.store,
                "star",
                size,
                LMKGUConfig(
                    embed_dim=32,
                    hidden_sizes=profile.lmkgu_hidden,
                    epochs=epochs,
                    training_samples=profile.lmkgu_samples,
                    particles=profile.lmkgu_particles,
                    seed=0,
                ),
            )
            model.fit()
            estimates = [model.estimate(r.query) for r in test]
            summary = summarize(estimates, test.cardinalities())
            rows.append((epochs, summary.mean, summary.max))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ("Epochs", "Avg q-error", "Max q-error"),
            rows,
            title="Fig. 6a — LMKG-U training epochs vs accuracy (LUBM)",
        )
    )
    # Shape: more epochs must not make the average error much worse.
    assert rows[-1][1] <= rows[0][1] * 1.5


def test_fig6b_lmkgs_epochs(benchmark, report):
    ctx = get_context("lubm")
    profile = active_profile()
    size = profile.query_sizes[0]
    grid = _epoch_grid(
        (20, 50, 100, 200), max(profile.lmkgs_epochs * 2, 20)
    )
    train = ctx.train_workload("star", size).records
    test = ctx.test_workload("star", size)

    def run():
        rows = []
        for epochs in grid:
            model = LMKGS(
                ctx.store,
                ["star"],
                size,
                LMKGSConfig(
                    hidden_sizes=profile.lmkgs_hidden,
                    epochs=epochs,
                    seed=0,
                ),
            )
            model.fit(train)
            estimates = model.estimate_batch([r.query for r in test])
            summary = summarize(estimates, test.cardinalities())
            rows.append((epochs, summary.mean, summary.max))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ("Epochs", "Avg q-error", "Max q-error"),
            rows,
            title="Fig. 6b — LMKG-S training epochs vs accuracy (LUBM)",
        )
    )
    assert rows[-1][1] <= rows[0][1] * 1.5
