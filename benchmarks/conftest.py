"""Benchmark fixtures: uncaptured reporting and a results archive.

Every bench prints its paper-style table straight to the terminal (pytest
captures stdout by default; the ``report`` fixture bypasses capture) and
appends it to ``benchmarks/results/<test>.txt`` so runs leave an artifact.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def report(capsys, request):
    """Callable printing text to the real terminal and archiving it."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / f"{request.node.name}.txt"
        with open(out, "a", encoding="utf-8") as handle:
            handle.write(text + "\n")

    # Fresh file per test run.
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{request.node.name}.txt"
    if path.exists():
        path.unlink()
    return _report
