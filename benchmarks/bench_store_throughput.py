"""Store microbenchmark: the perf trajectory baseline (`BENCH_store.json`).

Measures, on a synthetic ~100k-triple hub-heavy graph:

- **ingest**: triples/sec into the store plus the columnar index build,
  and the array-native ``add_all`` bulk path against a per-triple
  ``add`` loop on the same 100k batch (gate: >= 10x),
- **persistence**: snapshot save time, plus cold-load time of the
  saved index both memory-mapped (gate: O(1), < 50 ms) and eager,
- **pattern matching**: single-triple-pattern ``count_pattern`` and
  ``match_pattern`` throughput over the columnar permutations,
- **labeling**: exact star/chain counting throughput of the vectorized
  counters over a 10k-query workload, against the seed's dict-backed
  Python counters (the acceptance gate asserts >= 5x),
- **parallel labeling**: the same 10k-query batch sharded across a
  4-process pool in which every worker memory-maps the saved snapshot
  read-only (``repro.rdf.parallel``), against the serial vectorized
  path; counts and ordering must match exactly, and on a >= 4-core
  machine the gate asserts >= 2x,
- **sharded store**: pooled fan-out matching of a scan-heavy
  multi-pattern batch against the same graph saved as one shard and as
  two (``ShardedBackend``); results must stay byte-identical to the
  serial matcher, and on a >= 2-core machine the gate asserts the
  second shard buys >= 1.5x,
- **batch estimation**: LMKG-S queries/sec through
  ``Framework.estimate_batch`` vs the per-query ``estimate`` loop,
- **MADE inference trunk**: rows/sec of the masked autoregressive
  forward at the serving batch width — the seed's float64
  re-masked-per-call trunk against the fused float32 inference cache
  (pre-masked weights, float32 table shadows; gate: >= 2x) — plus
  LMKG-U ``estimate_batch`` queries/sec through the incremental
  Gumbel-max particle sweep,
- **serving**: requests/sec of the micro-batching scheduler
  (``repro.serve.BatchScheduler``) under concurrent single-query
  clients, against the sequential one-request-at-a-time baseline, with
  request-latency p50/p99; the gate asserts the micro-batched path is
  at least **2x** the sequential-request throughput,
- **maintenance** (`test_maintenance_incremental`, its own ~20k-triple
  graph): one incremental maintenance run over a 1% vocabulary-
  preserving delta — relabel affected queries, fine-tune touched
  models — against a forced full refit of the same live graph (gates:
  >= 5x faster, mean q-error on the affected shapes within 2x of the
  refit's),
- **replay** (`test_workload_replay`, its own ~20k-triple graph behind
  the full serving stack): an open-loop trace replay at a calibrated
  sustainable rate (gates: SLO verdict ``ok``, achieved >= 0.95x
  offered, zero non-{200,429}), plus a chaos run — worker kill and two
  incremental maintenance publishes racing the same traffic — that
  must complete every timeline step with the response surface still
  inside {200, 429}.

Results print as tables and persist (merged, section by section) to
``benchmarks/results/BENCH_store.json`` so successive PRs can track the
numbers.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.bench.harness import build_throughput_store
from repro.bench.reporting import format_table, merge_json
from repro.core.framework import LMKG
from repro.core.lmkg_s import LMKGSConfig
from repro.rdf import fastcount
from repro.rdf.parallel import (
    available_cpus,
    label_queries,
    match_patterns,
    match_serial,
)
from repro.rdf.store import TripleStore
from repro.rdf.terms import Variable, pattern
from repro.sampling.random_walk import sample_instances
from repro.sampling.unbinding import query_from_instance, random_unbound_mask
from repro.sampling.workload import QueryRecord, Workload

RESULT_PATH = Path(__file__).parent / "results" / "BENCH_store.json"

NUM_TRIPLES = 100_000
NUM_QUERIES = 10_000
#: queries given to the Python reference counters (full 10k would take
#: minutes — which is the point being demonstrated).
REFERENCE_QUERIES = 150
QUERY_SHAPES = (("star", 2), ("star", 3), ("chain", 2), ("chain", 3))
#: Pool size for the parallel-labeling comparison; the >= 2x gate only
#: applies when the machine actually has that many cores.
PARALLEL_WORKERS = 4


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _make_queries(store, rng):
    """~NUM_QUERIES unlabeled star/chain queries over the bench graph."""
    queries = []
    per_shape = NUM_QUERIES // len(QUERY_SHAPES)
    for i, (topology, size) in enumerate(QUERY_SHAPES):
        instances, _ = sample_instances(
            store, topology, size, per_shape, seed=11 + i
        )
        for instance in instances:
            mask = random_unbound_mask(size + 1, rng, min_unbound=1)
            queries.append(
                (topology, size,
                 query_from_instance(topology, instance, mask))
            )
    return queries


def _pattern_workload(store, rng, count=20_000):
    """A mix of bound/unbound single patterns drawn from stored triples."""
    col = store.columnar
    idx = rng.integers(0, col.size, size=count)
    subjects = col.spo_s[idx].tolist()
    predicates = col.spo_p[idx].tolist()
    objects = col.spo_o[idx].tolist()
    kinds = rng.integers(0, 4, size=count).tolist()
    patterns = []
    for s, p, o, kind in zip(subjects, predicates, objects, kinds):
        if kind == 0:
            patterns.append(pattern(s, p, Variable("o")))
        elif kind == 1:
            patterns.append(pattern(Variable("s"), p, o))
        elif kind == 2:
            patterns.append(pattern(s, Variable("p"), Variable("o")))
        else:
            patterns.append(pattern(Variable("s"), p, Variable("o")))
    return patterns


def test_store_throughput(report, tmp_path):
    rng = np.random.default_rng(5)
    source = build_throughput_store(NUM_TRIPLES, seed=0)
    triples = list(source)

    # Ingest into a fresh store, then force the columnar build.
    fresh = type(source)()
    _, ingest_s = _timed(lambda: fresh.add_all(triples))
    _, build_s = _timed(lambda: fresh.columnar)
    store = fresh
    # Re-ingesting raw id triples drops the term dictionary; reattach it
    # (ids are identical) so the serving section can speak SPARQL.
    store.dictionary = source.dictionary

    # Bulk (array-native) ingest vs the per-triple add loop, same batch.
    batch = np.array(triples, dtype=np.int64)
    loop_store = type(source)()

    def _per_triple_ingest():
        add = loop_store.add
        for s, p, o in triples:
            add(s, p, o)

    _, loop_ingest_s = _timed(_per_triple_ingest)
    bulk_store = type(source)()
    _, bulk_ingest_s = _timed(lambda: bulk_store.add_all(batch))
    assert len(bulk_store) == len(loop_store) == len(store)
    bulk_speedup = loop_ingest_s / bulk_ingest_s

    # Persistence: snapshot save, then cold loads (memmap and eager).
    snapshot_dir = tmp_path / "snapshot"
    _, save_s = _timed(lambda: store.save_snapshot(snapshot_dir))
    snapshot_bytes = sum(
        f.stat().st_size for f in snapshot_dir.iterdir()
    )
    loaded, mmap_load_s = _timed(
        lambda: TripleStore.load_snapshot(snapshot_dir)
    )
    _, eager_load_s = _timed(
        lambda: TripleStore.load_snapshot(snapshot_dir, mmap_mode=None)
    )
    # The memmap-backed store must answer like the original.
    probe_p = int(store.columnar.pso_p[len(store) // 2])
    probe = pattern(Variable("s"), probe_p, Variable("o"))
    assert loaded.count_pattern(probe) == store.count_pattern(probe)
    assert len(loaded) == len(store)

    # Single-pattern lookups.
    patterns = _pattern_workload(store, rng)
    _, count_s = _timed(
        lambda: [store.count_pattern(tp) for tp in patterns]
    )
    probe = patterns[: len(patterns) // 4]
    matched, match_s = _timed(
        lambda: sum(
            sum(1 for _ in store.match_pattern(tp)) for tp in probe
        )
    )

    # Labeling throughput: vectorized vs the seed's dict/Python path.
    queries = _make_queries(store, rng)
    fast_counts, fast_s = _timed(
        lambda: [
            fastcount.count_query(store, q) for _, _, q in queries
        ]
    )
    reference = queries[:: max(len(queries) // REFERENCE_QUERIES, 1)][
        :REFERENCE_QUERIES
    ]
    slow_counts, slow_s = _timed(
        lambda: [
            (
                fastcount._count_star_python(store, q)
                if topology == "star"
                else fastcount._count_chain_python(store, q)
            )
            for topology, _, q in reference
        ]
    )
    fast_qps = len(queries) / fast_s
    slow_qps = len(reference) / slow_s
    speedup = fast_qps / slow_qps
    # Exactness spot-check against the reference implementation.
    for (topology, _, _), fast_value, slow_value in zip(
        reference,
        fast_counts[:: max(len(queries) // REFERENCE_QUERIES, 1)],
        slow_counts,
    ):
        assert fast_value == slow_value

    # Parallel labeling: same batch, sharded across a worker pool that
    # memory-maps the snapshot saved above (pool startup + read-only
    # attach included in the timing — the honest end-to-end number).
    just_queries = [q for _, _, q in queries]
    parallel_counts, parallel_s = _timed(
        lambda: label_queries(
            just_queries,
            store=store,
            snapshot_dir=snapshot_dir,
            workers=PARALLEL_WORKERS,
        )
    )
    assert parallel_counts == fast_counts, (
        "parallel labeling diverged from the serial counters"
    )
    parallel_qps = len(queries) / parallel_s
    parallel_speedup = fast_s / parallel_s

    # Sharded store: fan-out matching.  The same graph is saved twice
    # through the ShardedBackend — once as a single shard, once split
    # in two — and the same pooled `match_patterns` path runs the same
    # multi-pattern batch against both, so the only variable is how
    # many per-shard workers the fan-out can keep busy.  The batch is
    # repeated-variable self-join patterns (?x p ?x over the heaviest
    # predicates): their matching cost scales with the rows scanned,
    # not the rows returned, which is the data-parallel work sharding
    # divides; outputs are small, so the merge and IPC stay off the
    # critical path.  Byte-identical results against the in-process
    # serial matcher are asserted for both layouts.
    sharded_dir = tmp_path / "sharded-snapshot"
    store.save_snapshot(sharded_dir, record_source=False, shards=2)
    single_dir = tmp_path / "single-shard-snapshot"
    store.save_snapshot(single_dir, record_source=False, shards=1)
    col = store.columnar
    bench_preds, bench_pred_counts = np.unique(
        col.pso_p, return_counts=True
    )
    heavy = bench_preds[np.argsort(bench_pred_counts)[-8:]]
    shard_patterns = [
        pattern(Variable("x"), int(p), Variable("x")) for p in heavy
    ] * 150
    serial_rows, shard_serial_s = _timed(
        lambda: match_serial(store, shard_patterns)
    )
    single_rows, single_shard_s = _timed(
        lambda: match_patterns(
            shard_patterns, snapshot_dir=single_dir, workers=2
        )
    )
    fanout_rows, fanout_s = _timed(
        lambda: match_patterns(
            shard_patterns, snapshot_dir=sharded_dir, workers=2
        )
    )
    for reference, got in zip(serial_rows, fanout_rows):
        assert np.array_equal(reference, got), (
            "sharded fan-out match diverged from the serial matcher"
        )
    for reference, got in zip(serial_rows, single_rows):
        assert np.array_equal(reference, got), (
            "single-shard pooled match diverged from the serial matcher"
        )
    fanout_speedup = single_shard_s / fanout_s

    # Batch estimation QPS through the framework router.
    labelled = [
        QueryRecord(q, topology, size, count)
        for (topology, size, q), count in zip(queries, fast_counts)
        if count >= 1
    ][:4_000]
    framework = LMKG(
        store,
        model_type="supervised",
        grouping="size",
        lmkgs_config=LMKGSConfig(hidden_sizes=(64, 64), epochs=10),
    )
    framework.fit(shapes=list(QUERY_SHAPES), workload=labelled)
    serve = [r.query for r in labelled[:2_000]]
    _, loop_s = _timed(lambda: [framework.estimate(q) for q in serve])
    _, batch_s = _timed(lambda: framework.estimate_batch(serve))

    # MADE inference trunk: the fused float32 forward against the seed's
    # float64 trunk (weight * mask re-materialised per layer per call,
    # per-position embedding gathers) on an identical model at the
    # serving batch width.  Both produce the same logits up to float32
    # rounding — asserted below — so the speedup is pure dtype/caching.
    from repro.core.lmkg_u import LMKGU, LMKGUConfig
    from repro.nn.masked import MADE

    made = MADE(
        var_vocabs=[0, 1, 0, 1, 0],
        vocab_sizes=[store.num_nodes + 1, store.num_predicates + 1],
        embed_dim=32,
        hidden_sizes=(256, 256),
        seed=7,
    )
    made_rows = 1024  # a serving-width particle block
    made_ids = rng.integers(
        1, min(store.num_nodes, store.num_predicates),
        size=(made_rows, made.num_vars),
    )

    def _seed_forward(model, ids):
        """The seed trunk, verbatim: float64, re-masked every call."""
        blocks = [
            model.tables[model.var_vocabs[i]].value[ids[:, i]]
            for i in range(model.num_vars)
        ]
        h = np.concatenate(blocks, axis=1)
        for li, layer in enumerate(model.hidden_layers):
            pre = h @ (layer.weight.value * layer.mask) + layer.bias.value
            post = np.maximum(pre, 0.0)
            use_res = (
                model.residual and li > 0 and post.shape[1] == h.shape[1]
            )
            h = post + h if use_res else post
        out = h @ (
            model.out_proj.weight.value * model.out_proj.mask
        ) + model.out_proj.bias.value
        dim = model.embed_dim
        return [
            out[:, i * dim: (i + 1) * dim]
            @ model.tables[model.var_vocabs[i]].value.T
            + model.out_bias[i].value
            for i in range(model.num_vars)
        ]

    # Equivalence before timing: fused float32 logits track float64.
    seed_logits = _seed_forward(made, made_ids)
    fused_logits = made.forward(made_ids)
    for ref, got in zip(seed_logits, fused_logits):
        assert np.allclose(ref, got, rtol=1e-3, atol=1e-3)

    def _best_time(fn, repeats=5):
        """Fastest of *repeats* runs: robust to scheduler noise, which
        a single sample of either side would fold into the gate."""
        return min(_timed(fn)[1] for _ in range(repeats))

    made64_s = _best_time(lambda: _seed_forward(made, made_ids))
    made32_s = _best_time(lambda: made.forward(made_ids))
    made64_rows_s = made_rows / made64_s
    made32_rows_s = made_rows / made32_s
    made_speedup = made32_rows_s / made64_rows_s

    # LMKG-U end to end: the cross-query batched particle sweep with
    # the vocab-streamed head, through estimate_batch at serving batch
    # width.  One full untimed pass first: block-width calibration, the
    # fused-cache builds, and the allocator's large-page warm-up all
    # happen there, so the timed pass measures the steady state a
    # long-lived server sees.
    lmkgu = LMKGU(
        store,
        "star",
        2,
        LMKGUConfig(
            embed_dim=16,
            hidden_sizes=(64, 64),
            epochs=2,
            training_samples=4_000,
            particles=64,
        ),
    )
    lmkgu.fit()
    lmkgu_queries = [
        q for topology, size, q in queries if (topology, size) == ("star", 2)
    ][:1024]
    lmkgu.estimate_batch(lmkgu_queries)  # calibrate + warm, untimed
    _, lmkgu_s = _timed(lambda: lmkgu.estimate_batch(lmkgu_queries))
    lmkgu_qps = len(lmkgu_queries) / lmkgu_s
    assert lmkgu_qps >= 100, (
        f"LMKG-U estimate_batch regressed to {lmkgu_qps:.1f} q/s at "
        f"batch {len(lmkgu_queries)} (gate: >= 100)"
    )

    # Serving: the real HTTP endpoint, sequential vs concurrent
    # clients.  A sequential client gives the scheduler nothing to
    # coalesce (every request is its own width-1 batch); 16 concurrent
    # clients issuing the same single-query requests get micro-batched.
    # Both sides pay identical HTTP/parse costs, so the speedup
    # isolates what the serving subsystem adds.
    import http.client
    import json as _json
    import threading
    import urllib.request
    from concurrent.futures import ThreadPoolExecutor

    from repro.rdf.parser import format_sparql
    from repro.serve import BatchScheduler, EstimatorService, make_server

    serving_texts = [
        format_sparql(q, store.dictionary) for q in serve[:600]
    ]
    service = EstimatorService(store, framework)
    serving_url = None
    serving_addr = None

    def _request(text):
        # urllib opens (and tears down) a TCP connection per request —
        # the reconnecting-client baseline.
        body = _json.dumps({"queries": [text]}).encode("utf-8")
        with urllib.request.urlopen(
            urllib.request.Request(serving_url, data=body), timeout=120
        ) as response:
            return _json.load(response)["estimates"][0]

    def _request_keepalive(conn, text):
        # One persistent HTTP/1.1 connection per client thread: no TCP
        # handshake or slow-start per request (urllib never reuses
        # connections, which is why this uses http.client directly).
        body = _json.dumps({"queries": [text]}).encode("utf-8")
        conn.request(
            "POST",
            "/estimate",
            body=body,
            headers={"Content-Type": "application/json"},
        )
        with conn.getresponse() as response:
            return _json.load(response)["estimates"][0]

    def _serving_phase(texts, clients, max_delay_ms, keep_alive=False):
        """(qps, scheduler stats) for one fresh server + scheduler.

        A fresh scheduler per phase keeps the recorded batch widths and
        latency percentiles specific to that phase instead of blending
        the sequential and concurrent workloads.
        """
        nonlocal serving_url, serving_addr
        scheduler = BatchScheduler(
            framework.estimate_batch,
            max_batch=128,
            max_delay_ms=max_delay_ms,
        )
        server = make_server(service, scheduler, port=0)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        host, port = server.server_address[:2]
        serving_url = f"http://{host}:{port}/estimate"
        serving_addr = (host, port)
        _request(texts[0])  # warm up; excluded from phase stats below
        warm = scheduler.stats()["queries"]
        if clients == 1 and not keep_alive:
            _, elapsed = _timed(lambda: [_request(t) for t in texts])
        else:
            shards = [texts[i::clients] for i in range(clients)]

            if keep_alive:
                def _client(shard):
                    conn = http.client.HTTPConnection(
                        host, port, timeout=120
                    )
                    try:
                        for text in shard:
                            _request_keepalive(conn, text)
                    finally:
                        conn.close()
            else:
                def _client(shard):
                    for text in shard:
                        _request(text)

            with ThreadPoolExecutor(max_workers=clients) as pool:
                _, elapsed = _timed(
                    lambda: list(pool.map(_client, shards))
                )
        stats = scheduler.stats()
        server.shutdown()
        server.server_close()
        scheduler.close()
        thread.join(5.0)
        stats["mean_batch"] = round(
            (stats["queries"] - warm) / max(stats["batches"] - 1, 1), 2
        )
        return len(texts) / elapsed, stats

    clients = 16
    sequential_qps, _ = _serving_phase(
        serving_texts, clients=1, max_delay_ms=2.0
    )
    batched_qps, serving_stats = _serving_phase(
        serving_texts, clients=clients, max_delay_ms=2.0
    )
    keepalive_qps, _ = _serving_phase(
        serving_texts,
        clients=clients,
        max_delay_ms=2.0,
        keep_alive=True,
    )
    keepalive_speedup = keepalive_qps / batched_qps
    serving_speedup = batched_qps / sequential_qps
    latency = serving_stats.get("latency_ms", {})
    mean_batch = serving_stats["mean_batch"]
    # Transparency baseline: the same sequential client without the
    # max-delay coalescing wait.  The gap from the as-configured
    # sequential number to this one is the self-imposed latency cost of
    # the batching policy; the gap from this one to the concurrent
    # number is the genuine batching/concurrency win.
    nodelay_qps, _ = _serving_phase(
        serving_texts[:300], clients=1, max_delay_ms=0.0
    )

    results = {
        "graph": {
            "num_triples": len(store),
            "num_nodes": store.num_nodes,
            "num_predicates": store.num_predicates,
        },
        "ingest": {
            "triples_per_sec": round(len(triples) / ingest_s, 1),
            "columnar_build_triples_per_sec": round(
                len(triples) / build_s, 1
            ),
            "bulk_add_all_triples_per_sec": round(
                len(triples) / bulk_ingest_s, 1
            ),
            "per_triple_add_triples_per_sec": round(
                len(triples) / loop_ingest_s, 1
            ),
            "bulk_speedup": round(bulk_speedup, 1),
        },
        "persistence": {
            "snapshot_save_ms": round(save_s * 1000, 2),
            "snapshot_bytes": snapshot_bytes,
            "cold_load_mmap_ms": round(mmap_load_s * 1000, 2),
            "cold_load_eager_ms": round(eager_load_s * 1000, 2),
        },
        "pattern_match": {
            "count_pattern_per_sec": round(len(patterns) / count_s, 1),
            "match_enumeration_triples_per_sec": round(
                matched / match_s, 1
            ),
        },
        "labeling": {
            "num_queries": len(queries),
            "vectorized_queries_per_sec": round(fast_qps, 1),
            "python_reference_queries_per_sec": round(slow_qps, 1),
            "speedup": round(speedup, 1),
            "parallel_workers": PARALLEL_WORKERS,
            "parallel_queries_per_sec": round(parallel_qps, 1),
            "parallel_speedup": round(parallel_speedup, 2),
            "cpu_count": available_cpus(),
        },
        "sharded_store": {
            "num_shards": 2,
            "shard_by": "subject",
            "num_patterns": len(shard_patterns),
            "serial_match_s": round(shard_serial_s, 3),
            "single_shard_match_s": round(single_shard_s, 3),
            "fanout_match_s": round(fanout_s, 3),
            "fanout_speedup": round(fanout_speedup, 2),
            "cpu_count": available_cpus(),
        },
        "batch_estimation": {
            "estimate_loop_qps": round(len(serve) / loop_s, 1),
            "estimate_batch_qps": round(len(serve) / batch_s, 1),
            "batch_speedup": round(loop_s / batch_s, 2),
        },
        "made_inference": {
            "batch_rows": made_rows,
            "made_forward_rows_per_s": {
                "float64_seed": round(made64_rows_s, 1),
                "float32_fused": round(made32_rows_s, 1),
            },
            "fused_speedup": round(made_speedup, 2),
            "estimate_batch_qps": round(lmkgu_qps, 1),
            "estimate_batch_size": len(lmkgu_queries),
            "particles": lmkgu.config.particles,
        },
        "serving": {
            "transport": "http",
            "num_requests": len(serving_texts),
            "clients": clients,
            "sequential_request_qps": round(sequential_qps, 1),
            "sequential_nodelay_qps": round(nodelay_qps, 1),
            "micro_batched_qps": round(batched_qps, 1),
            "micro_batch_speedup": round(serving_speedup, 2),
            "reconnect_qps": round(batched_qps, 1),
            "keepalive_qps": round(keepalive_qps, 1),
            "keepalive_speedup": round(keepalive_speedup, 2),
            "mean_batch": mean_batch,
            "max_batch_seen": serving_stats["max_batch_seen"],
            "latency_p50_ms": latency.get("p50"),
            "latency_p99_ms": latency.get("p99"),
        },
    }
    merge_json(RESULT_PATH, results)

    report(
        format_table(
            ("Metric", "Value"),
            [
                ["triples", len(store)],
                ["ingest triples/s", results["ingest"]["triples_per_sec"]],
                [
                    "columnar build triples/s",
                    results["ingest"]["columnar_build_triples_per_sec"],
                ],
                [
                    "bulk add_all triples/s",
                    results["ingest"]["bulk_add_all_triples_per_sec"],
                ],
                [
                    "per-triple add triples/s",
                    results["ingest"]["per_triple_add_triples_per_sec"],
                ],
                ["bulk ingest speedup", results["ingest"]["bulk_speedup"]],
                [
                    "snapshot save ms",
                    results["persistence"]["snapshot_save_ms"],
                ],
                [
                    "cold load (mmap) ms",
                    results["persistence"]["cold_load_mmap_ms"],
                ],
                [
                    "cold load (eager) ms",
                    results["persistence"]["cold_load_eager_ms"],
                ],
                [
                    "count_pattern/s",
                    results["pattern_match"]["count_pattern_per_sec"],
                ],
                [
                    "match triples/s",
                    results["pattern_match"][
                        "match_enumeration_triples_per_sec"
                    ],
                ],
                ["labeling q/s (vectorized)", round(fast_qps, 1)],
                ["labeling q/s (seed dict path)", round(slow_qps, 1)],
                ["labeling speedup", round(speedup, 1)],
                [
                    f"labeling q/s ({PARALLEL_WORKERS} workers)",
                    round(parallel_qps, 1),
                ],
                [
                    "parallel labeling speedup",
                    round(parallel_speedup, 2),
                ],
                [
                    "sharded match s (serial / 1-shard / 2-shard)",
                    f"{shard_serial_s:.2f} / {single_shard_s:.2f} / "
                    f"{fanout_s:.2f}",
                ],
                [
                    "sharded fan-out speedup (2 vs 1 shard)",
                    round(fanout_speedup, 2),
                ],
                [
                    "estimate loop q/s",
                    results["batch_estimation"]["estimate_loop_qps"],
                ],
                [
                    "estimate_batch q/s",
                    results["batch_estimation"]["estimate_batch_qps"],
                ],
                [
                    "MADE fwd rows/s (float64 seed)",
                    results["made_inference"]["made_forward_rows_per_s"][
                        "float64_seed"
                    ],
                ],
                [
                    "MADE fwd rows/s (float32 fused)",
                    results["made_inference"]["made_forward_rows_per_s"][
                        "float32_fused"
                    ],
                ],
                [
                    "MADE fused speedup",
                    results["made_inference"]["fused_speedup"],
                ],
                [
                    "LMKG-U estimate_batch q/s",
                    results["made_inference"]["estimate_batch_qps"],
                ],
                [
                    "serving q/s (sequential requests)",
                    results["serving"]["sequential_request_qps"],
                ],
                [
                    "serving q/s (sequential, no delay)",
                    results["serving"]["sequential_nodelay_qps"],
                ],
                [
                    f"serving q/s (micro-batched, {clients} clients)",
                    results["serving"]["micro_batched_qps"],
                ],
                [
                    "micro-batch speedup",
                    results["serving"]["micro_batch_speedup"],
                ],
                [
                    f"serving q/s (keep-alive, {clients} clients)",
                    results["serving"]["keepalive_qps"],
                ],
                [
                    "keep-alive vs reconnect speedup",
                    results["serving"]["keepalive_speedup"],
                ],
                [
                    "serving latency p50/p99 ms",
                    f"{latency.get('p50')}/{latency.get('p99')}",
                ],
            ],
            title=(
                f"Store throughput — {len(store)} triples, "
                f"{len(queries)} labelled queries -> {RESULT_PATH.name}"
            ),
        )
    )

    # The acceptance gate of the columnar refactor.
    assert speedup >= 5.0, f"labeling speedup {speedup:.1f}x < 5x"
    # The acceptance gates of the bulk-ingest + persistence subsystem.
    assert bulk_speedup >= 10.0, (
        f"bulk ingest speedup {bulk_speedup:.1f}x < 10x"
    )
    assert mmap_load_s < 0.050, (
        f"memmap cold load took {mmap_load_s * 1000:.1f} ms (>= 50 ms)"
    )
    # The acceptance gate of the parallel-labeling subsystem.  The
    # speedup is physically bounded by the CPUs this process may
    # actually use (affinity/cgroup-aware, not the host's logical
    # count), so the >= 2x gate only binds where the pool can run
    # 4-wide (CI runners have 4 vCPUs); the measured number is recorded
    # above either way, alongside cpu_count, so regressions stay
    # visible.
    if available_cpus() >= PARALLEL_WORKERS:
        assert parallel_speedup >= 2.0, (
            f"parallel labeling speedup {parallel_speedup:.2f}x < 2x "
            f"on {PARALLEL_WORKERS} workers"
        )
    # The acceptance gate of the sharded store.  Both sides run the
    # same pooled fan-out code; a second shard must buy >= 1.5x on the
    # scan-heavy batch.  Like the parallel-labeling gate, the speedup
    # is physically bounded by the CPUs the pool may use, so the gate
    # only binds where both shard workers can actually run in parallel.
    if available_cpus() >= 2:
        assert fanout_speedup >= 1.5, (
            f"2-shard fan-out match {fanout_speedup:.2f}x < 1.5x the "
            f"single-shard pooled path ({fanout_s:.2f}s vs "
            f"{single_shard_s:.2f}s)"
        )
    # The acceptance gate of the fused inference trunk: the float32
    # pre-masked forward must at least double the seed's float64
    # re-masked-per-call trunk at the serving batch width.
    assert made_speedup >= 2.0, (
        f"fused float32 MADE forward {made_speedup:.2f}x < 2x the "
        f"float64 seed trunk ({made32_rows_s:.0f} vs "
        f"{made64_rows_s:.0f} rows/s)"
    )
    # The acceptance gates of the serving subsystem.  Throughput:
    # concurrent clients through the micro-batching endpoint must beat
    # a sequential client against the same server configuration by
    # >= 2x.  The sequential client pays the configured max-delay
    # coalescing wait on every lone request (that latency trade is the
    # policy; sequential_nodelay_qps records the server without it),
    # while the concurrent side overlaps HTTP handling and batches the
    # forwards.  Because the throughput gate alone could be satisfied
    # by the delay penalty, the coalescing gate below pins the
    # mechanism itself: the concurrent phase must actually merge
    # requests into multi-query batches (>= 2 queries per
    # estimate_batch call on average) — if coalescing regresses, this
    # trips even while the qps ratio still passes.
    assert serving_speedup >= 2.0, (
        f"micro-batched serving {serving_speedup:.2f}x < 2x the "
        f"sequential-request baseline ({batched_qps:.0f} vs "
        f"{sequential_qps:.0f} q/s)"
    )
    assert mean_batch >= 2.0, (
        f"concurrent phase coalesced only {mean_batch} queries per "
        f"batch (< 2): micro-batching is not engaging"
    )
    assert RESULT_PATH.exists()


#: maintenance bench scale: its own graph (smaller than the throughput
#: one so the full refit stays a few seconds) and a training config
#: heavy enough that refitting is genuinely expensive relative to the
#: delta work — the trade the maintenance subsystem exists to win.
MAINT_TRIPLES = 20_000
MAINT_SHAPES = (("star", 2), ("chain", 2))
MAINT_QUERIES_PER_SHAPE = 400
MAINT_EPOCHS = 150
MAINT_FINETUNE_EPOCHS = 2
MAINT_HIDDEN = (96, 96)
#: delta size as a fraction of the graph (the "1% delta" scenario).
MAINT_DELTA_FRACTION = 0.01


def _vocab_preserving_delta(store, fraction, rng):
    """~fraction*|store| novel triples over the *existing* vocabulary.

    Recombines stored subjects/predicates/objects so node and predicate
    counts (and the dictionary) stay fixed — the precondition for the
    incremental path; new vocabulary correctly forces a full rebuild
    and would bench the wrong thing.
    """
    rows = store.backend.rows()
    subjects = np.unique(rows[:, 0])
    predicates = np.unique(rows[:, 1])
    objects = np.unique(rows[:, 2])
    target = max(int(len(store) * fraction), 1)
    delta = np.empty((0, 3), dtype=np.int64)
    while delta.shape[0] < target:
        candidates = np.stack(
            [
                rng.choice(subjects, 4 * target),
                rng.choice(predicates, 4 * target),
                rng.choice(objects, 4 * target),
            ],
            axis=1,
        ).astype(np.int64)
        candidates = np.unique(candidates, axis=0)
        candidates = candidates[~store.backend.isin_rows(candidates)]
        delta = np.unique(
            np.concatenate([delta, candidates]), axis=0
        )
    return delta[:target]


def test_maintenance_incremental(report, tmp_path):
    """Incremental maintenance vs full refit on a 1% graph delta.

    Gates: the incremental run (relabel affected + fine-tune touched
    models from the previous checkpoint) must be >= 5x faster than a
    forced full rebuild of the same live graph, and its accuracy on the
    affected shapes must stay within 2x of the full refit's mean
    q-error — the quality the time saving must not cost.
    """
    from repro.core.metrics import summarize
    from repro.maintain import MaintenanceRunner
    from repro.sampling.workload import generate_workload
    from repro.serve.artifacts import load_checkpoint

    store = build_throughput_store(MAINT_TRIPLES, seed=0)
    rng = np.random.default_rng(13)

    runner = MaintenanceRunner(
        store,
        tmp_path / "maintain-state",
        shapes=MAINT_SHAPES,
        queries_per_shape=MAINT_QUERIES_PER_SHAPE,
        epochs=MAINT_EPOCHS,
        finetune_epochs=MAINT_FINETUNE_EPOCHS,
        hidden_sizes=MAINT_HIDDEN,
        seed=0,
    )
    first, first_s = _timed(runner.run)
    assert first.action == "full"

    delta = _vocab_preserving_delta(store, MAINT_DELTA_FRACTION, rng)
    store.add_all(delta)

    incremental, incremental_s = _timed(runner.run)
    assert incremental.action == "incremental", (
        f"1% vocabulary-preserving delta planned a "
        f"{incremental.action} run ({(incremental.plan or {}).get('reason')})"
    )

    # The comparison point: a from-scratch rebuild of the same live
    # graph with the same config, in its own state directory.
    refit_runner = MaintenanceRunner(
        store,
        tmp_path / "refit-state",
        shapes=MAINT_SHAPES,
        queries_per_shape=MAINT_QUERIES_PER_SHAPE,
        epochs=MAINT_EPOCHS,
        finetune_epochs=MAINT_FINETUNE_EPOCHS,
        hidden_sizes=MAINT_HIDDEN,
        seed=0,
    )
    refit, refit_s = _timed(lambda: refit_runner.run(full=True))
    speedup = refit_s / incremental_s

    # Accuracy parity on the affected shapes: both checkpoints answer a
    # fresh labelled workload drawn from the live (mutated) graph.
    fw_incremental, _ = load_checkpoint(
        incremental.checkpoint_dir, store
    )
    fw_refit, _ = load_checkpoint(refit.checkpoint_dir, store)
    parity = {}
    for topology, size in MAINT_SHAPES:
        test = generate_workload(
            store, topology, size, 150, seed=99
        ).records
        truths = [r.cardinality for r in test]
        queries = [r.query for r in test]
        parity[f"{topology}_{size}"] = {
            "incremental_mean_qerr": round(
                summarize(
                    fw_incremental.estimate_batch(queries).tolist(),
                    truths,
                ).mean,
                2,
            ),
            "refit_mean_qerr": round(
                summarize(
                    fw_refit.estimate_batch(queries).tolist(), truths
                ).mean,
                2,
            ),
        }

    results = {
        "maintenance": {
            "num_triples": len(store),
            "delta_triples": int(delta.shape[0]),
            "epochs": MAINT_EPOCHS,
            "finetune_epochs": MAINT_FINETUNE_EPOCHS,
            "queries_per_shape": MAINT_QUERIES_PER_SHAPE,
            "first_materialization_s": round(first_s, 3),
            "full_refit_s": round(refit_s, 3),
            "incremental_s": round(incremental_s, 3),
            "incremental_speedup": round(speedup, 2),
            "relabeled": incremental.relabeled,
            "qerror_parity": parity,
        }
    }
    merge_json(RESULT_PATH, results)

    report(
        format_table(
            ("Metric", "Value"),
            [
                ["triples", len(store)],
                ["delta triples (1%)", int(delta.shape[0])],
                ["first materialization s", round(first_s, 2)],
                ["full refit s", round(refit_s, 2)],
                ["incremental run s", round(incremental_s, 2)],
                ["incremental speedup", round(speedup, 2)],
            ]
            + [
                [
                    f"{shape} mean q-err (incremental / refit)",
                    f"{p['incremental_mean_qerr']} / "
                    f"{p['refit_mean_qerr']}",
                ]
                for shape, p in sorted(parity.items())
            ],
            title=(
                "Incremental maintenance — 1% delta on "
                f"{len(store)} triples -> {RESULT_PATH.name}"
            ),
        )
    )

    # The acceptance gates of the maintenance subsystem.
    assert speedup >= 5.0, (
        f"incremental maintenance {speedup:.2f}x < 5x the full refit "
        f"({incremental_s:.2f}s vs {refit_s:.2f}s)"
    )
    for shape, p in parity.items():
        assert (
            p["incremental_mean_qerr"]
            <= p["refit_mean_qerr"] * 2.0
        ), (
            f"incremental model lost accuracy parity on {shape}: mean "
            f"q-error {p['incremental_mean_qerr']} vs refit "
            f"{p['refit_mean_qerr']} (tolerance 2x)"
        )


#: replay bench scale: its own ~20k-triple graph behind the full
#: serving stack (supervised workers + scheduler + admission), driven
#: open-loop by ``repro.replay``.  The offered rate is *calibrated*:
#: a deliberately saturating probe measures the stack's drain capacity
#: and the gated run offers a sustainable fraction of it, so the gate
#: tracks regressions in the serving path rather than the speed of the
#: CI machine.
REPLAY_TRIPLES = 20_000
REPLAY_FIT_SHAPES = (
    ("star", 2), ("star", 3), ("chain", 2), ("chain", 3)
)
#: saturating probe: far above what the small fit can drain.
REPLAY_PROBE_RATE = 500.0
REPLAY_PROBE_DURATION_S = 2.0
#: the gated run offers this fraction of the measured capacity.
REPLAY_SUSTAINABLE_FRACTION = 0.5
REPLAY_DURATION_S = 6.0
REPLAY_CHAOS_DURATION_S = 5.0
REPLAY_CHAOS_TIMELINE = """
at 0.5s: kill worker
at 1.0s: mutate 300
at 1.5s: maintain
at 3.0s: mutate 200
at 3.5s: maintain
"""


def test_workload_replay(report, tmp_path):
    """Open-loop workload replay against the live serving stack.

    Gates: at the calibrated sustainable rate the SLO verdict must be
    ``ok`` (achieved >= 0.95x offered, zero non-{200,429} responses,
    bounded shed), and a chaos run — worker kill plus two incremental
    maintenance publishes racing the same traffic — must complete every
    timeline step and keep the response surface inside {200, 429}.
    """
    from repro.replay import (
        SLO,
        ReplayDriver,
        ReplayHarness,
        covering_shapes,
        generate_trace,
        parse_timeline,
        start_timeline,
    )
    from repro.serve import FitDefaults

    store = build_throughput_store(REPLAY_TRIPLES, seed=0)
    snapshot_dir = tmp_path / "replay-snapshot"
    store.save_snapshot(snapshot_dir)
    fit = FitDefaults(
        shapes=REPLAY_FIT_SHAPES,
        queries_per_shape=100,
        epochs=4,
        hidden_sizes=(32, 32),
    )
    harness = ReplayHarness(
        snapshot_dir,
        workers=2,
        fit_defaults=fit,
        max_batch=64,
        max_delay_ms=2.0,
        maintain_state_dir=tmp_path / "replay-maintain",
        maintain_options={
            "shapes": REPLAY_FIT_SHAPES,
            "queries_per_shape": 40,
        },
        seed=0,
    )
    try:
        harness.wait_ready()

        # -- calibration: saturate, measure the drain capacity --------
        probe = generate_trace(
            store,
            rate_qps=REPLAY_PROBE_RATE,
            duration_s=REPLAY_PROBE_DURATION_S,
            seed=7,
        )
        assert set(covering_shapes(probe)) <= set(REPLAY_FIT_SHAPES)
        probe_report, _ = ReplayDriver(
            harness.host,
            harness.port,
            deadline_s=15.0,
            connections=16,
            max_retries=0,
        ).run(probe)
        capacity = probe_report.achieved_rate_qps
        offered = max(10.0, capacity * REPLAY_SUSTAINABLE_FRACTION)

        # -- the gated steady-state run -------------------------------
        slo = SLO(
            p99_ms=500.0,
            max_shed_rate=0.05,
            min_achieved_fraction=0.95,
            max_error_rate=0.0,
        )
        trace = generate_trace(
            store,
            rate_qps=offered,
            duration_s=REPLAY_DURATION_S,
            seed=17,
        )
        steady, steady_s = _timed(
            lambda: ReplayDriver(
                harness.host, harness.port, deadline_s=5.0
            ).run(trace)[0]
        )
        steady.evaluate(slo)

        # -- the chaos run: same rate, storms mid-replay --------------
        steps = parse_timeline(REPLAY_CHAOS_TIMELINE)
        chaos_trace = generate_trace(
            store,
            rate_qps=offered,
            duration_s=REPLAY_CHAOS_DURATION_S,
            seed=23,
        )
        thread, timeline_log = start_timeline(steps, harness)
        chaos, _ = ReplayDriver(
            harness.host, harness.port, deadline_s=10.0
        ).run(chaos_trace)
        thread.join(180.0)
        assert not thread.is_alive(), "chaos timeline never finished"
    finally:
        harness.close()

    results = {
        "replay": {
            "num_triples": len(store),
            "calibration": {
                "probe_rate_qps": REPLAY_PROBE_RATE,
                "capacity_qps": round(capacity, 1),
                "sustainable_fraction": REPLAY_SUSTAINABLE_FRACTION,
                "offered_rate_qps": round(offered, 1),
            },
            "steady": steady.to_dict(),
            "chaos": {
                "report": chaos.to_dict(),
                "timeline": timeline_log,
            },
        }
    }
    merge_json(RESULT_PATH, results)

    report(
        format_table(
            ("Metric", "Value"),
            [
                ["capacity (probe)", f"{capacity:.1f} qps"],
                ["offered (calibrated)", f"{offered:.1f} qps"],
                [
                    "steady achieved",
                    f"{steady.achieved_rate_qps:.1f} qps "
                    f"({steady.achieved_fraction:.2f}x offered)",
                ],
                [
                    "steady p50 / p99",
                    f"{steady.latency_ms.get('p50', 0):.1f} / "
                    f"{steady.latency_ms.get('p99', 0):.1f} ms",
                ],
                ["steady shed rate", f"{steady.shed_rate:.3f}"],
                ["steady verdict", steady.verdict],
                [
                    "chaos statuses",
                    " ".join(
                        f"{k}:{v}"
                        for k, v in sorted(
                            chaos.status_counts.items()
                        )
                    ),
                ],
                [
                    "chaos timeline",
                    f"{sum(e['ok'] for e in timeline_log)}/"
                    f"{len(timeline_log)} steps ok",
                ],
            ],
            title=(
                f"Workload replay — {len(store)} triples "
                f"-> {RESULT_PATH.name}"
            ),
        )
    )

    # The acceptance gates of the replay subsystem.
    assert steady.verdict == "ok", steady.violations
    assert steady.achieved_fraction >= 0.95, steady.to_dict()
    assert set(chaos.status_counts) <= {"200", "429"}, (
        f"chaos run answered outside {{200, 429}}: "
        f"{chaos.status_counts}"
    )
    assert all(e["ok"] for e in timeline_log), timeline_log
