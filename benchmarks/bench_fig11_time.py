"""Fig. 11: estimation time by query size and type (SWDF, LUBM).

For sampling approaches the measured time covers the full G-CARE
protocol (``runs`` x ``walks_per_run`` walks per estimate), which is what
the paper timed.  Expected shape: CSET fastest, LMKG-S close behind and
roughly size-independent, LMKG-U and the sampling approaches slower and
growing with query size.

Learned estimators are timed through ``Framework.estimate_batch`` (the
harness routes them there), and an extra table compares the batched
LMKG-S path against the per-query loop — the serving-throughput story
of `BENCH_store.json`.
"""

import time

import numpy as np

from repro.bench import get_context
from repro.bench.reporting import format_table

DATASETS = ("swdf", "lubm")


def _warm_up(ctx):
    """Train every learned model before the timed passes so measurements
    cover estimation only (training time is Fig. 6's subject)."""
    ctx.lmkg_s()
    ctx.mscn(0)
    ctx.mscn(ctx.profile.mscn_big_samples)
    if ctx.lmkg_u_available():
        for topology in ("star", "chain"):
            for size in ctx.sizes_for(topology):
                if size in ctx.profile.lmkgu_sizes:
                    ctx.lmkg_u(topology, size)


def _run_dataset(name):
    ctx = get_context(name)
    _warm_up(ctx)
    estimators = ctx.estimators()
    by_size = {}
    by_type = {"star": {}, "chain": {}}
    for estimator in estimators:
        for size in ctx.profile.query_sizes:
            times = []
            for topology in ("star", "chain"):
                if size not in ctx.sizes_for(topology):
                    continue
                if (
                    estimator == "lmkg-u"
                    and size not in ctx.profile.lmkgu_sizes
                ):
                    continue
                workload = ctx.test_workload(topology, size)
                _, ms = ctx.timed_estimates(estimator, workload)
                times.append(ms)
                by_type[topology].setdefault(estimator, []).append(ms)
            if times:
                by_size.setdefault(estimator, {})[size] = float(
                    np.mean(times)
                )
    type_rows = {
        topology: {
            e: float(np.mean(ms_list))
            for e, ms_list in per_est.items()
        }
        for topology, per_est in by_type.items()
    }
    return ctx, estimators, by_size, type_rows


def _batch_vs_loop(ctx):
    """(loop QPS, batched QPS) of LMKG-S over one pooled workload."""
    framework = ctx.lmkg_s()
    queries = [
        r.query
        for topology in ("star", "chain")
        for size in ctx.sizes_for(topology)
        for r in ctx.test_workload(topology, size)
    ]
    start = time.perf_counter()
    for query in queries:
        framework.estimate(query)
    loop_qps = len(queries) / max(time.perf_counter() - start, 1e-9)
    start = time.perf_counter()
    framework.estimate_batch(queries)
    batch_qps = len(queries) / max(time.perf_counter() - start, 1e-9)
    return loop_qps, batch_qps


def _report_dataset(report, name, ctx, estimators, by_size, by_type):
    size_rows = [
        [size]
        + [
            round(by_size[e].get(size, float("nan")), 2)
            for e in estimators
        ]
        for size in ctx.profile.query_sizes
    ]
    report(
        format_table(
            ("Query size",) + tuple(estimators),
            size_rows,
            title=(
                f"Fig. 11 — avg estimation time in ms by query size "
                f"({name.upper()})"
            ),
        )
    )
    type_table = [
        [topology]
        + [round(by_type[topology].get(e, float("nan")), 2) for e in estimators]
        for topology in ("star", "chain")
    ]
    report(
        format_table(
            ("Query type",) + tuple(estimators),
            type_table,
            title=(
                f"Fig. 11 — avg estimation time in ms by query type "
                f"({name.upper()})"
            ),
        )
    )
    loop_qps, batch_qps = _batch_vs_loop(ctx)
    report(
        format_table(
            ("Path", "queries/sec"),
            [
                ["estimate() loop", round(loop_qps, 1)],
                ["estimate_batch()", round(batch_qps, 1)],
            ],
            title=(
                f"Fig. 11 extra — LMKG-S serving throughput "
                f"({name.upper()})"
            ),
        )
    )


def _claims(ctx, by_size):
    sizes = sorted(set(by_size["cset"]) & set(by_size["wj"]))
    # CSET is the fastest approach (pure lookup), as in the paper.
    for size in sizes:
        assert by_size["cset"][size] <= by_size["wj"][size]
    # LMKG-S is faster than the walk-based sampling approaches.
    mean = lambda e: np.mean(list(by_size[e].values()))
    assert mean("lmkg-s") < mean("wj")
    assert mean("lmkg-s") < mean("jsub")


def test_fig11_swdf(benchmark, report):
    ctx, estimators, by_size, by_type = benchmark.pedantic(
        lambda: _run_dataset("swdf"), rounds=1, iterations=1
    )
    _report_dataset(report, "swdf", ctx, estimators, by_size, by_type)
    _claims(ctx, by_size)


def test_fig11_lubm(benchmark, report):
    ctx, estimators, by_size, by_type = benchmark.pedantic(
        lambda: _run_dataset("lubm"), rounds=1, iterations=1
    )
    _report_dataset(report, "lubm", ctx, estimators, by_size, by_type)
    _claims(ctx, by_size)
