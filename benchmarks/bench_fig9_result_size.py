"""Fig. 9: average q-error vs query result size — all estimators,
SWDF / LUBM / YAGO (LMKG-U excluded on YAGO, as in the paper).

Queries of the two smallest profile sizes are pooled and re-grouped by
their result-size bucket; outliers stay in (the paper deliberately keeps
them to show where LMKG-S fails).
"""

import numpy as np

from repro.bench import get_context
from repro.bench.reporting import format_table
from repro.core.metrics import q_errors
from repro.sampling import bucket_label

DATASETS = ("swdf", "lubm", "yago")


def _run_dataset(name):
    ctx = get_context(name)
    estimators = ctx.estimators()
    workloads = [
        ctx.test_workload(topology, size)
        for topology in ("star", "chain")
        for size in ctx.sizes_for(topology)[:2]
    ]
    per_estimator = {}
    for estimator in estimators:
        bucket_errors = {}
        for workload in workloads:
            estimates = ctx.estimate_all(estimator, workload)
            errors = q_errors(estimates, workload.cardinalities())
            for record, error in zip(workload.records, errors):
                bucket_errors.setdefault(record.bucket, []).append(error)
        per_estimator[estimator] = {
            bucket: float(np.mean(errs))
            for bucket, errs in bucket_errors.items()
        }
    return ctx, estimators, per_estimator


def _report_dataset(report, name, estimators, per_estimator):
    buckets = sorted(
        {b for errs in per_estimator.values() for b in errs}
    )
    rows = [
        [bucket_label(b)]
        + [
            round(per_estimator[e].get(b, float("nan")), 2)
            for e in estimators
        ]
        for b in buckets
    ]
    report(
        format_table(
            ("Result size",) + tuple(estimators),
            rows,
            title=(
                f"Fig. 9 — avg q-error by query result size "
                f"({name.upper()})"
            ),
        )
    )


def _small_bucket_claim(per_estimator):
    """LMKG-S leads for the small result-size buckets (paper: 'LMKG-S is
    always better for smaller ranges')."""
    small = [0, 1]
    lmkg = np.mean(
        [per_estimator["lmkg-s"].get(b, np.nan) for b in small]
    )
    impr = np.mean([per_estimator["impr"].get(b, np.nan) for b in small])
    assert lmkg < impr


def test_fig9_swdf(benchmark, report):
    ctx, estimators, table = benchmark.pedantic(
        lambda: _run_dataset("swdf"), rounds=1, iterations=1
    )
    _report_dataset(report, "swdf", estimators, table)
    _small_bucket_claim(table)


def test_fig9_lubm(benchmark, report):
    ctx, estimators, table = benchmark.pedantic(
        lambda: _run_dataset("lubm"), rounds=1, iterations=1
    )
    _report_dataset(report, "lubm", estimators, table)
    _small_bucket_claim(table)


def test_fig9_yago(benchmark, report):
    ctx, estimators, table = benchmark.pedantic(
        lambda: _run_dataset("yago"), rounds=1, iterations=1
    )
    _report_dataset(report, "yago", estimators, table)
    # The paper's YAGO protocol: LMKG-U is absent.
    assert "lmkg-u" not in estimators
    _small_bucket_claim(table)
