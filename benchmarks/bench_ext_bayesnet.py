"""Extension bench: the Huang & Liu [14] baseline the paper cites.

The related work (§II) describes combining Bayesian networks for star
patterns with a chain histogram for chain patterns.  G-CARE does not
ship that estimator, so the paper never measures it; this bench adds it
to the comparison.  Expected shape: the BN beats the independence
assumption (it models predicate correlation) but still trails the
learned LMKG models, which capture higher-order term correlations.
"""

import numpy as np

from repro.bench import get_context
from repro.bench.reporting import format_table

ESTIMATORS = ("bayesnet", "indep", "cset", "lmkg-s")


def test_ext_bayesnet(benchmark, report):
    ctx = get_context("swdf")
    size = ctx.profile.query_sizes[0]

    def run():
        rows = []
        star_means = {}
        for name in ESTIMATORS:
            per_topology = []
            for topology in ("star", "chain"):
                workload = ctx.test_workload(topology, size)
                summary = ctx.evaluate(name, workload)
                per_topology.append(summary.mean)
            star_means[name] = per_topology[0]
            rows.append(
                (
                    name,
                    round(per_topology[0], 2),
                    round(per_topology[1], 2),
                    round(float(np.mean(per_topology)), 2),
                )
            )
        return rows, star_means

    rows, star_means = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ("estimator", "star mean q-err", "chain mean q-err", "overall"),
            rows,
            title=(
                "Extension — Huang & Liu BN+chain-histogram vs paper "
                f"estimators (SWDF, size {size})"
            ),
        )
    )
    # Shape: on star queries — the part the Bayesian network models —
    # capturing predicate correlation must beat assuming independence.
    # (The first-order chain histogram struggles with bound endpoints on
    # skewed data, which is exactly why the paper argues for learned
    # models there; no claim is asserted for chains.)
    assert star_means["bayesnet"] <= star_means["indep"] * 1.05
