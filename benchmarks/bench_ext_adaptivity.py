"""Extension bench: execution-phase adaptation under workload shift (§IV).

The framework overview allows models to be created or dropped when the
workload changes.  This bench plays a two-phase workload — stars, then
chains — against two deployments of the same initial star-only model:

- *static*: the creation-phase models never change (chain queries can
  only be answered by decomposition or fail),
- *adaptive*: the :class:`~repro.core.monitor.AdaptiveLMKG` loop with a
  sliding-window drift detector.

Reported: phase-2 accuracy of both deployments and the adaptation log,
persisted into ``benchmarks/results/BENCH_store.json`` under
``adaptivity``.  The shape claim: adaptation restores phase-2 accuracy
to the same order as a model trained for chains up front.
"""

from pathlib import Path

from repro.bench import get_context
from repro.bench.reporting import format_table, merge_json

RESULT_PATH = (
    Path(__file__).parent / "results" / "BENCH_store.json"
)
from repro.core.framework import LMKG
from repro.core.lmkg_s import LMKGSConfig
from repro.core.metrics import summarize
from repro.core.monitor import AdaptiveLMKG, WorkloadMonitor


def test_ext_adaptivity(benchmark, report):
    ctx = get_context("lubm")
    size = ctx.profile.query_sizes[0]
    stars = ctx.test_workload("star", size).records
    chains = ctx.test_workload("chain", size).records
    config = LMKGSConfig(
        hidden_sizes=ctx.profile.lmkgs_hidden,
        epochs=ctx.profile.lmkgs_epochs,
        seed=0,
    )

    def star_only_framework():
        framework = LMKG(
            ctx.store,
            model_type="supervised",
            grouping="specialized",
            lmkgs_config=config,
        )
        framework.fit(
            shapes=[("star", size)],
            queries_per_shape=ctx.profile.train_queries_per_shape,
        )
        return framework

    def run():
        # Upfront-trained reference: what a chain model can achieve.
        reference = LMKG(
            ctx.store,
            model_type="supervised",
            grouping="specialized",
            lmkgs_config=config,
        )
        reference.fit(
            shapes=[("chain", size)],
            queries_per_shape=ctx.profile.train_queries_per_shape,
        )
        adaptive = AdaptiveLMKG(
            star_only_framework(),
            WorkloadMonitor(
                window_size=200,
                threshold=0.4,
                min_queries=20,
                hot_share=0.3,
            ),
            queries_per_shape=ctx.profile.train_queries_per_shape,
        )
        # Phase 1: the expected star workload.
        for record in stars:
            adaptive.estimate(record.query)
        # Phase 2: the shifted chain workload, answered live.
        truths = [r.cardinality for r in chains]
        adaptive_estimates = [
            adaptive.estimate(r.query) for r in chains
        ]
        reference_estimates = [
            reference.estimate(r.query) for r in chains
        ]
        rows = []
        summaries = {}
        for name, estimates in (
            ("adaptive", adaptive_estimates),
            ("upfront-chain", reference_estimates),
        ):
            summary = summarize(estimates, truths)
            summaries[name] = summary
            rows.append(
                (
                    name,
                    round(summary.mean, 2),
                    round(summary.median, 2),
                    round(summary.max, 2),
                )
            )
        log = (
            f"cold starts: {adaptive.cold_starts}; "
            f"drift events: {len(adaptive.events)}"
        )
        return rows, summaries, log

    rows, summaries, log = benchmark.pedantic(run, rounds=1, iterations=1)
    merge_json(
        RESULT_PATH,
        {
            "adaptivity": {
                "dataset": "lubm",
                "size": size,
                "phase2_queries": len(chains),
                "log": log,
                **{
                    name: {
                        "mean_qerr": round(summary.mean, 2),
                        "median_qerr": round(summary.median, 2),
                        "p90_qerr": round(summary.p90, 2),
                        "max_qerr": round(summary.max, 2),
                    }
                    for name, summary in summaries.items()
                },
            }
        },
    )
    report(
        format_table(
            ("deployment", "mean q-err", "median", "max"),
            rows,
            title=(
                "Extension — phase-2 (chain) accuracy after workload "
                f"shift (LUBM size {size}); {log}"
            ),
        )
    )
    # Shape: live adaptation lands within a small factor of a model
    # trained for the shifted workload up front.
    assert (
        summaries["adaptive"].mean
        <= summaries["upfront-chain"].mean * 3.0
    )
