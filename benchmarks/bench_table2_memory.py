"""Table II: memory consumption of the different approaches.

Reports model/synopsis sizes for LMKG-U and LMKG-S per query size
k ∈ {2, 3, 5}, and the SUMRDF, CSET, and MSCN footprints per dataset.
LMKG-U on YAGO is marked X like the paper (the model would not fit the
unique-term domain at the paper's scale).

Expected shape: LMKG-S ≪ LMKG-U; CSET tiny for LUBM but growing with
characteristic-set count; SUMRDF dominated by the per-node bucket table
(largest for YAGO); MSCN-1k > MSCN-0 by the sample bitmap.
"""

from repro.bench import format_bytes, get_context
from repro.bench.reporting import format_table
from repro.core.lmkg_s import LMKGS, LMKGSConfig
from repro.core.lmkg_u import LMKGU, LMKGUConfig

DATASETS = ("swdf", "lubm", "yago")
SIZES = (2, 3, 5)


def _lmkgs_bytes(ctx, size):
    """Architecture-only build: one epoch on a tiny slice (memory does
    not depend on training length).  Reports the paper-facing
    checkpoint size, not the in-process training footprint."""
    records = ctx.train_workload("star", size).records[:64]
    model = LMKGS(
        ctx.store,
        ["star", "chain"],
        size,
        LMKGSConfig(
            hidden_sizes=ctx.profile.lmkgs_hidden, epochs=1, seed=0
        ),
    )
    model.fit(records)
    return model.checkpoint_bytes()


def _lmkgu_bytes(ctx, size):
    model = LMKGU(
        ctx.store,
        "star",
        size,
        LMKGUConfig(
            embed_dim=32, hidden_sizes=ctx.profile.lmkgu_hidden, seed=0
        ),
    )
    model.build_model()
    # checkpoint_bytes (float32) is the paper's Table II quantity; the
    # in-memory footprint (float64 masters + fused float32 caches +
    # bool masks) lives in memory_bytes() and is deliberately not what
    # the table compares.
    return model.checkpoint_bytes()


def test_table2_memory(benchmark, report):
    def run():
        rows = []
        raw = {}
        for name in DATASETS:
            ctx = get_context(name)
            lmkgu = [
                "X" if name == "yago" else format_bytes(_lmkgu_bytes(ctx, k))
                for k in SIZES
            ]
            lmkgs_bytes = [_lmkgs_bytes(ctx, k) for k in SIZES]
            sumrdf = ctx.baseline("sumrdf").memory_bytes()
            cset = ctx.baseline("cset").memory_bytes()
            mscn0 = ctx.mscn(0).memory_bytes()
            mscn1k = ctx.mscn(ctx.profile.mscn_big_samples).memory_bytes()
            raw[name] = {
                "lmkgs": lmkgs_bytes,
                "lmkgu": None
                if name == "yago"
                else [_lmkgu_bytes(ctx, k) for k in SIZES],
                "sumrdf": sumrdf,
                "cset": cset,
                "mscn0": mscn0,
                "mscn1k": mscn1k,
            }
            rows.append(
                [name.upper()]
                + lmkgu
                + [format_bytes(b) for b in lmkgs_bytes]
                + [
                    format_bytes(sumrdf),
                    format_bytes(cset),
                    f"{format_bytes(mscn0)} / {format_bytes(mscn1k)}",
                ]
            )
        return rows, raw

    rows, raw = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = (
        ("Dataset",)
        + tuple(f"LMKG-U k={k}" for k in SIZES)
        + tuple(f"LMKG-S k={k}" for k in SIZES)
        + ("SUMRDF", "CSET", "MSCN 0/1k")
    )
    report(
        format_table(
            headers, rows, title="Table II — memory consumption"
        )
    )
    # Shape assertions from the paper's table.
    for name in ("swdf", "lubm"):
        # LMKG-S is smaller than LMKG-U at every k.
        for s_bytes, u_bytes in zip(
            raw[name]["lmkgs"], raw[name]["lmkgu"]
        ):
            assert s_bytes < u_bytes, name
    # MSCN-1k carries the sample overhead.
    for name in DATASETS:
        assert raw[name]["mscn1k"] > raw[name]["mscn0"]
    # SUMRDF's bucket table makes it largest on YAGO.
    assert raw["yago"]["sumrdf"] > raw["swdf"]["sumrdf"]
