"""Setuptools entry point.

Kept alongside pyproject.toml because the offline environment lacks the
``wheel`` package, so editable installs must use the legacy
``pip install -e . --no-use-pep517`` path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "LMKG reproduction: learned cardinality estimation for "
        "knowledge graphs"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
