"""The C_out cost model over join orders.

C_out (Cluet & Moerkotte) charges a plan the sum of its intermediate
result sizes — the cost a pipelined join pays to *produce* every
intermediate tuple.  The final result is excluded: every complete plan
must produce it, so it cannot differentiate orders.

The model is parametric in where cardinalities come from: the true
counter (:func:`true_cost_fn`) gives the oracle cost an ideal optimizer
would minimise; :func:`estimator_cost_fn` plugs in any
:class:`~repro.baselines.base.CardinalityEstimator`, which is how
estimation error becomes plan regret.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.baselines.base import CardinalityEstimator
from repro.optimizer.plans import prefix_patterns
from repro.rdf.fastcount import count_query
from repro.rdf.pattern import QueryPattern
from repro.rdf.store import TripleStore

#: A cost model maps a sub-query to its (estimated) cardinality.
CostModel = Callable[[QueryPattern], float]


def cout_cost(
    query: QueryPattern, order: Sequence[int], cardinality: CostModel
) -> float:
    """C_out of joining *query*'s patterns in *order* under *cardinality*.

    Sums the cardinalities of every proper prefix of the order (the
    intermediates); single-pattern queries therefore cost 0 — there is
    nothing to order.
    """
    prefixes = prefix_patterns(query, order)[:-1]
    return float(sum(cardinality(prefix) for prefix in prefixes))


def true_cost_fn(store: TripleStore) -> CostModel:
    """Oracle cost model: exact sub-query cardinalities from *store*."""

    def cardinality(prefix: QueryPattern) -> float:
        return float(count_query(store, prefix))

    return cardinality


def estimator_cost_fn(estimator: CardinalityEstimator) -> CostModel:
    """Cost model backed by a cardinality estimator.

    Estimates are clamped at zero: a negative intermediate size is
    meaningless and would invert the order comparison.
    """

    def cardinality(prefix: QueryPattern) -> float:
        return max(0.0, float(estimator.estimate(prefix)))

    return cardinality
