"""Join-order enumeration: exhaustive, greedy, and Held–Karp DP.

All three strategies search left-deep orders that avoid Cartesian
products (falling back to the full permutation space only when the query
graph is disconnected).  Because a sub-query's cardinality depends only
on *which* patterns it contains, C_out decomposes over subsets and the
DP explores ``O(2^n · n)`` states instead of ``n!`` orders — the classic
dynamic programming trick of System R-style optimizers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.baselines.base import CardinalityEstimator
from repro.optimizer.cost import CostModel, cout_cost, estimator_cost_fn
from repro.optimizer.plans import (
    JoinOrder,
    JoinPlan,
    connected_orders,
    pattern_variables,
)
from repro.rdf.pattern import QueryPattern


def exhaustive_best_order(
    query: QueryPattern, cardinality: CostModel
) -> JoinPlan:
    """Minimum-C_out order by trying every connected permutation.

    Exact but factorial; use for validation and for the small query
    sizes (2–8 patterns) the paper evaluates.
    """
    best: Optional[JoinPlan] = None
    for order in connected_orders(query):
        cost = cout_cost(query, order, cardinality)
        if best is None or cost < best.cost:
            best = JoinPlan(order=order, cost=cost)
    assert best is not None  # connected_orders always yields
    return best


def greedy_order(query: QueryPattern, cardinality: CostModel) -> JoinPlan:
    """Selectivity-first greedy order (what `repro.rdf.matcher` does).

    Starts from the cheapest single pattern, then repeatedly appends the
    connected pattern whose extended prefix is estimated smallest.
    Linear in enumerated prefixes; no optimality guarantee.
    """
    n = len(query.triples)
    variables = pattern_variables(query)
    remaining: Set[int] = set(range(n))
    order: List[int] = []
    seen_vars: Set = set()
    total = 0.0

    def prefix_card(indices: Sequence[int]) -> float:
        return cardinality(
            QueryPattern([query.triples[i] for i in indices])
        )

    first = min(remaining, key=lambda i: prefix_card([i]))
    order.append(first)
    remaining.discard(first)
    seen_vars |= variables[first]
    while remaining:
        if len(order) < n:
            total += prefix_card(order)
        connected = [
            i
            for i in remaining
            if not variables[i] or not seen_vars
            or (variables[i] & seen_vars)
        ]
        candidates = connected or sorted(remaining)
        nxt = min(candidates, key=lambda i: prefix_card(order + [i]))
        order.append(nxt)
        remaining.discard(nxt)
        seen_vars |= variables[nxt]
    return JoinPlan(order=tuple(order), cost=total)


def dp_best_order(query: QueryPattern, cardinality: CostModel) -> JoinPlan:
    """Optimal left-deep order via dynamic programming over subsets.

    ``best(S)`` is the cheapest sum of intermediate sizes over orders of
    the pattern subset ``S``; since a prefix's cardinality is
    order-independent, ``best`` satisfies::

        best({i})    = 0
        best(S)      = min over j in S of best(S \\ {j}) + card(S \\ {j})

    restricted to connected extensions when any exist.  Returns the same
    cost as :func:`exhaustive_best_order` (asserted in the test suite)
    at ``O(2^n · n)`` states.
    """
    n = len(query.triples)
    if n == 1:
        return JoinPlan(order=(0,), cost=0.0)
    variables = pattern_variables(query)
    subset_card: Dict[int, float] = {}

    def card_of(mask: int) -> float:
        if mask not in subset_card:
            indices = [i for i in range(n) if mask & (1 << i)]
            subset_card[mask] = cardinality(
                QueryPattern([query.triples[i] for i in indices])
            )
        return subset_card[mask]

    def connects(mask: int, j: int) -> bool:
        step = variables[j]
        if not step:
            return True
        prefix_vars: Set = set()
        for i in range(n):
            if mask & (1 << i):
                prefix_vars |= variables[i]
        return not prefix_vars or bool(step & prefix_vars)

    # best[mask] = (cost, order) of the cheapest left-deep prefix over mask.
    best: Dict[int, Tuple[float, JoinOrder]] = {
        1 << i: (0.0, (i,)) for i in range(n)
    }
    for size in range(2, n + 1):
        layer: Dict[int, Tuple[float, JoinOrder]] = {}
        for mask, (cost, order) in best.items():
            if bin(mask).count("1") != size - 1:
                continue
            extensions = [
                j
                for j in range(n)
                if not (mask & (1 << j)) and connects(mask, j)
            ]
            if not extensions:  # disconnected query: allow cross product
                extensions = [
                    j for j in range(n) if not (mask & (1 << j))
                ]
            step_cost = cost + card_of(mask)
            for j in extensions:
                new_mask = mask | (1 << j)
                candidate = (step_cost, order + (j,))
                incumbent = layer.get(new_mask)
                if incumbent is None or candidate[0] < incumbent[0]:
                    layer[new_mask] = candidate
        best.update(layer)
    cost, order = best[(1 << n) - 1]
    return JoinPlan(order=order, cost=cost)


_STRATEGIES = {
    "dp": dp_best_order,
    "exhaustive": exhaustive_best_order,
    "greedy": greedy_order,
}


class Optimizer:
    """Pick join orders for BGP queries using a cardinality source.

    Args:
        cardinality: a :class:`CardinalityEstimator` or a bare
            ``QueryPattern -> float`` cost model.
        strategy: ``"dp"`` (default, optimal), ``"exhaustive"``
            (optimal, factorial — validation only), or ``"greedy"``.
    """

    def __init__(
        self,
        cardinality: Union[CardinalityEstimator, CostModel],
        strategy: str = "dp",
    ) -> None:
        if strategy not in _STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; "
                f"expected one of {sorted(_STRATEGIES)}"
            )
        if hasattr(cardinality, "estimate"):
            # Anything with the estimator protocol (CardinalityEstimator
            # subclasses, the LMKG façade, ad-hoc adapters).
            self.cost_model: CostModel = estimator_cost_fn(cardinality)
        elif callable(cardinality):
            self.cost_model = cardinality
        else:
            raise TypeError(
                "cardinality must expose .estimate or be callable"
            )
        self.strategy = strategy

    def optimize(self, query: QueryPattern) -> JoinPlan:
        """The best join order for *query* under this optimizer's
        cardinality source and search strategy."""
        return _STRATEGIES[self.strategy](query, self.cost_model)
