"""Plan-quality evaluation: how much plan regret does estimation error buy?

Follows the methodology of "How good are query optimizers, really?"
(Leis et al., VLDB 2015): for every query, plan once with the estimator
under test and once with the true-cardinality oracle, then compare the
*true* C_out of both plans.  The ratio — the *suboptimality factor* —
is 1.0 when the estimator's errors were harmless for planning and grows
as misestimates push the optimizer into bad orders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import CardinalityEstimator
from repro.optimizer.cost import cout_cost, estimator_cost_fn, true_cost_fn
from repro.optimizer.enumeration import dp_best_order
from repro.optimizer.plans import JoinOrder
from repro.rdf.pattern import QueryPattern
from repro.rdf.store import TripleStore


@dataclass(frozen=True)
class QueryPlanOutcome:
    """Planning outcome for one query.

    Attributes:
        chosen_order: order picked under the estimator.
        optimal_order: order picked by the true-cardinality oracle.
        chosen_true_cost: true C_out of the chosen order.
        optimal_true_cost: true C_out of the oracle order.
    """

    chosen_order: JoinOrder
    optimal_order: JoinOrder
    chosen_true_cost: float
    optimal_true_cost: float

    @property
    def suboptimality(self) -> float:
        """True cost ratio chosen/optimal; 1.0 means a perfect plan.

        Queries whose optimal cost is 0 (every order is free) count as
        perfect unless the chosen plan somehow paid anything.
        """
        if self.optimal_true_cost <= 0.0:
            return 1.0 if self.chosen_true_cost <= 0.0 else float("inf")
        return self.chosen_true_cost / self.optimal_true_cost

    @property
    def is_optimal(self) -> bool:
        return self.suboptimality <= 1.0


@dataclass
class PlanQualityReport:
    """Aggregate plan quality of one estimator over a query set."""

    estimator_name: str
    outcomes: List[QueryPlanOutcome]

    def suboptimalities(self) -> np.ndarray:
        return np.array([o.suboptimality for o in self.outcomes])

    @property
    def fraction_optimal(self) -> float:
        """Share of queries where the estimator found an optimal plan."""
        if not self.outcomes:
            return 1.0
        return float(
            np.mean([o.is_optimal for o in self.outcomes])
        )

    @property
    def mean_suboptimality(self) -> float:
        return float(np.mean(self.suboptimalities()))

    @property
    def max_suboptimality(self) -> float:
        return float(np.max(self.suboptimalities()))

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.suboptimalities(), q))

    def summary_row(self) -> str:
        """One formatted result-table row (name, optimal %, mean, p95, max)."""
        return (
            f"{self.estimator_name:<14} "
            f"optimal={self.fraction_optimal:6.1%}  "
            f"mean={self.mean_suboptimality:8.3f}  "
            f"p95={self.percentile(95):8.3f}  "
            f"max={self.max_suboptimality:8.3f}"
        )


def plan_query(
    store: TripleStore,
    estimator: CardinalityEstimator,
    query: QueryPattern,
) -> QueryPlanOutcome:
    """Plan one query under the estimator and the oracle, cost both truly."""
    oracle = true_cost_fn(store)
    chosen = dp_best_order(query, estimator_cost_fn(estimator))
    optimal = dp_best_order(query, oracle)
    return QueryPlanOutcome(
        chosen_order=chosen.order,
        optimal_order=optimal.order,
        chosen_true_cost=cout_cost(query, chosen.order, oracle),
        optimal_true_cost=optimal.cost,
    )


def plan_quality(
    store: TripleStore,
    estimator: CardinalityEstimator,
    queries: Sequence[QueryPattern],
    max_size: Optional[int] = None,
) -> PlanQualityReport:
    """Plan-quality report of *estimator* over *queries*.

    Args:
        max_size: skip queries with more patterns than this (the DP is
            exponential in pattern count; the paper's sizes of 2–8 are
            all fine).
    """
    outcomes = [
        plan_query(store, estimator, query)
        for query in queries
        if max_size is None or len(query.triples) <= max_size
    ]
    return PlanQualityReport(
        estimator_name=getattr(estimator, "name", "estimator"),
        outcomes=outcomes,
    )
