"""Left-deep join plans over BGP triple patterns.

A *join order* is a permutation of the query's triple-pattern indices; the
plan joins patterns one at a time in that order (a left-deep tree, the
plan space classical optimizers search first).  An order is *connected*
when every pattern after the first shares at least one variable with an
earlier pattern — otherwise the join degenerates into a Cartesian
product, which RDF engines never plan voluntarily.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Iterator, List, Sequence, Set, Tuple

from repro.rdf.pattern import QueryPattern
from repro.rdf.terms import Variable

JoinOrder = Tuple[int, ...]


@dataclass(frozen=True)
class JoinPlan:
    """A chosen join order together with the cost the chooser assigned.

    Attributes:
        order: triple-pattern indices in join sequence.
        cost: the (estimated or true) C_out cost under which the order
            was selected.  Comparable only across plans costed by the
            same cost function.
    """

    order: JoinOrder
    cost: float

    def __len__(self) -> int:
        return len(self.order)


def pattern_variables(query: QueryPattern) -> List[Set[Variable]]:
    """Variable set of each triple pattern, by pattern index."""
    return [set(tp.variables) for tp in query.triples]


def is_connected_order(query: QueryPattern, order: Sequence[int]) -> bool:
    """True when every join step shares a variable with the prefix.

    Patterns without variables (fully bound triples) join trivially and
    never break connectivity.
    """
    variables = pattern_variables(query)
    seen: Set[Variable] = set(variables[order[0]])
    for idx in order[1:]:
        step = variables[idx]
        if step and seen and not (step & seen):
            return False
        seen |= step
    return True


def connected_orders(query: QueryPattern) -> Iterator[JoinOrder]:
    """All permutations of the query's patterns that avoid cross products.

    Falls back to yielding every permutation when the query graph itself
    is disconnected (then no order can avoid the cross product and the
    optimizer must still pick something).
    """
    orders = permutations(range(len(query.triples)))
    yielded = False
    buffered: List[JoinOrder] = []
    for order in orders:
        buffered.append(order)
        if is_connected_order(query, order):
            yielded = True
            yield order
    if not yielded:
        yield from buffered


def prefix_patterns(
    query: QueryPattern, order: Sequence[int]
) -> List[QueryPattern]:
    """The intermediate queries a left-deep plan materialises.

    Prefix ``i`` is the sub-query over the first ``i + 1`` patterns of
    *order*; its cardinality is the size of the i-th intermediate result.
    """
    return [
        QueryPattern([query.triples[idx] for idx in order[: cut + 1]])
        for cut in range(len(order))
    ]
