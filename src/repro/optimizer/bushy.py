"""Bushy join trees: the plan space beyond left-deep orders.

Left-deep plans force every join's right input to be a base pattern.
Chain queries often prefer *bushy* trees — join the two halves of the
chain independently, then join the (small) intermediate results — which
no left-deep order can express.  This module adds a DPsub-style dynamic
program over connected subsets that considers every binary partition.

Cost accounting: the classic C_out — the sum of the output sizes of
**every join node** in the tree, root included (Cluet & Moerkotte).
The root term is identical for all plans of one query, so comparisons
are unaffected, and leaves (index scans) are free.  Note this differs
from the prefix-sum convention of :func:`repro.optimizer.cost.cout_cost`
(which charges the first scanned pattern to break ties between 2-pattern
orders); to compare tree shapes fairly, :func:`left_deep_vs_bushy`
evaluates *both* optima under the join-output convention by restricting
the same DP to left-deep trees.

The left-deep optimum is a member of the bushy space, so the bushy
optimum can never cost more — a property the test suite asserts — and
the *gap* between the two measures how much tree shape matters per
topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.optimizer.cost import CostModel
from repro.optimizer.plans import pattern_variables
from repro.rdf.pattern import QueryPattern


@dataclass(frozen=True)
class BushyPlan:
    """A binary join tree over triple-pattern indices.

    Attributes:
        left / right: sub-plans, None for a leaf.
        leaf: the pattern index when this node is a leaf.
        cost: C_out of the subtree (output sizes of all its join nodes,
            this node included when it is a join).
    """

    cost: float
    leaf: Optional[int] = None
    left: Optional["BushyPlan"] = None
    right: Optional["BushyPlan"] = None

    @property
    def is_leaf(self) -> bool:
        return self.leaf is not None

    def indices(self) -> Tuple[int, ...]:
        """All pattern indices in this subtree, sorted."""
        if self.is_leaf:
            return (self.leaf,)
        assert self.left is not None and self.right is not None
        return tuple(
            sorted(self.left.indices() + self.right.indices())
        )

    def depth(self) -> int:
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return 1 + max(self.left.depth(), self.right.depth())

    def is_left_deep(self) -> bool:
        """True when every join's right input is a single base pattern."""
        if self.is_leaf:
            return True
        assert self.left is not None and self.right is not None
        return self.right.is_leaf and self.left.is_left_deep()

    def render(self) -> str:
        """Parenthesised tree, e.g. ``((0 x 1) x (2 x 3))``."""
        if self.is_leaf:
            return str(self.leaf)
        assert self.left is not None and self.right is not None
        return f"({self.left.render()} x {self.right.render()})"


def _proper_submasks(mask: int) -> Iterator[int]:
    """The non-empty proper submasks of *mask* (standard bit trick)."""
    sub = (mask - 1) & mask
    while sub:
        yield sub
        sub = (sub - 1) & mask


def _best_plan(
    query: QueryPattern,
    cardinality: CostModel,
    left_deep_only: bool,
) -> BushyPlan:
    n = len(query.triples)
    variables = pattern_variables(query)
    full = (1 << n) - 1
    card_cache: Dict[int, float] = {}

    def card_of(mask: int) -> float:
        if mask not in card_cache:
            indices = [i for i in range(n) if mask & (1 << i)]
            card_cache[mask] = cardinality(
                QueryPattern([query.triples[i] for i in indices])
            )
        return card_cache[mask]

    vars_cache: Dict[int, frozenset] = {}

    def vars_of(mask: int) -> frozenset:
        if mask not in vars_cache:
            out: Set = set()
            for i in range(n):
                if mask & (1 << i):
                    out |= variables[i]
            vars_cache[mask] = frozenset(out)
        return vars_cache[mask]

    def connected_split(left: int, right: int) -> bool:
        lv, rv = vars_of(left), vars_of(right)
        return not lv or not rv or bool(lv & rv)

    best: Dict[int, BushyPlan] = {
        1 << i: BushyPlan(cost=0.0, leaf=i) for i in range(n)
    }
    masks_by_size: Dict[int, list] = {}
    for mask in range(1, full + 1):
        masks_by_size.setdefault(bin(mask).count("1"), []).append(mask)
    for size in range(2, n + 1):
        for mask in masks_by_size.get(size, []):
            connected = []
            fallback = []
            for left in _proper_submasks(mask):
                right = mask ^ left
                if left not in best or right not in best:
                    continue
                if left_deep_only and bin(right).count("1") != 1:
                    continue
                if not left_deep_only and left > right:
                    continue  # symmetric split: consider once
                bucket = (
                    connected
                    if connected_split(left, right)
                    else fallback
                )
                bucket.append((left, right))
            own = card_of(mask)
            incumbent: Optional[BushyPlan] = None
            for left, right in connected or fallback:
                cost = best[left].cost + best[right].cost + own
                if incumbent is None or cost < incumbent.cost:
                    incumbent = BushyPlan(
                        cost=cost,
                        left=best[left],
                        right=best[right],
                    )
            if incumbent is not None:
                best[mask] = incumbent
    return best[full]


def bushy_best_plan(
    query: QueryPattern, cardinality: CostModel
) -> BushyPlan:
    """Minimum-C_out bushy join tree via DP over pattern subsets.

    ``O(3^n)`` subset pairs — fine for the paper's query sizes (2–8).
    Connected splits are preferred; Cartesian products are considered
    only for subsets with no connected split.
    """
    if len(query.triples) == 1:
        return BushyPlan(cost=0.0, leaf=0)
    return _best_plan(query, cardinality, left_deep_only=False)


def left_deep_best_plan(
    query: QueryPattern, cardinality: CostModel
) -> BushyPlan:
    """The best *left-deep* tree under the same join-output C_out."""
    if len(query.triples) == 1:
        return BushyPlan(cost=0.0, leaf=0)
    return _best_plan(query, cardinality, left_deep_only=True)


def left_deep_vs_bushy(
    query: QueryPattern, cardinality: CostModel
) -> Tuple[float, float]:
    """(left-deep optimum, bushy optimum) under identical accounting."""
    return (
        left_deep_best_plan(query, cardinality).cost,
        bushy_best_plan(query, cardinality).cost,
    )
