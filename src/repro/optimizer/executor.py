"""Plan execution: left-deep pipelines and bushy hash-join trees.

Where the cost model *predicts* intermediate sizes, the executors
*measure* them:

- :func:`execute_order` joins the patterns strictly in a given
  left-deep order (no adaptive reordering), probing the store's
  permutation indexes for each partial binding; per-level binding
  counts equal the prefix cardinalities.
- :func:`execute_plan` evaluates a :class:`~repro.optimizer.bushy.
  BushyPlan` bottom-up with in-memory hash joins on the shared
  variables, recording each join node's output size — the quantities
  the bushy C_out charges.

Both are validated against the exact matcher in the test suite.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.rdf.pattern import QueryPattern
from repro.rdf.store import TripleStore
from repro.rdf.terms import TriplePattern, Variable

Bindings = Dict[Variable, int]


@dataclass(frozen=True)
class PlanExecution:
    """What executing one join order actually did.

    Attributes:
        order: the executed join order.
        intermediate_sizes: bindings produced at each level except the
            last (the sizes C_out charges for).
        result_size: bindings produced by the full join.
        probes: total index probes issued (one per pattern lookup on a
            partial binding) — the executor's work metric.
    """

    order: Tuple[int, ...]
    intermediate_sizes: Tuple[int, ...]
    result_size: int
    probes: int

    @property
    def cout(self) -> float:
        """The measured C_out of the executed plan."""
        return float(sum(self.intermediate_sizes))


def _extend(
    bindings: Bindings, tp: TriplePattern, triple: Tuple[int, int, int]
) -> Optional[Bindings]:
    """Bindings extended so *tp* maps onto *triple*; None on conflict."""
    new = bindings
    copied = False
    for position, value in zip(tp, triple):
        if isinstance(position, Variable):
            bound = new.get(position)
            if bound is None:
                if not copied:
                    new = dict(new)
                    copied = True
                new[position] = value
            elif bound != value:
                return None
        elif position != value:
            return None
    return new


def execute_order(
    store: TripleStore, query: QueryPattern, order: Sequence[int]
) -> PlanExecution:
    """Join *query*'s patterns over *store* strictly in *order*.

    Levels are processed breadth-first so each level's production count
    is available even when a later level filters everything out.
    """
    n = len(query.triples)
    if sorted(order) != list(range(n)):
        raise ValueError(
            f"order {order!r} is not a permutation of 0..{n - 1}"
        )
    level_bindings: List[Bindings] = [{}]
    produced: List[int] = []
    probes = 0
    for idx in order:
        tp = query.triples[idx]
        next_level: List[Bindings] = []
        for bindings in level_bindings:
            bound_tp = tp.bind(bindings)
            probes += 1
            for triple in store.match_pattern(bound_tp):
                extended = _extend(bindings, bound_tp, triple)
                if extended is not None:
                    next_level.append(extended)
        produced.append(len(next_level))
        level_bindings = next_level
        if not level_bindings:
            # Everything filtered: remaining levels produce nothing but
            # C_out still records the zeros.
            remaining = len(order) - len(produced)
            produced.extend([0] * remaining)
            break
    return PlanExecution(
        order=tuple(order),
        intermediate_sizes=tuple(produced[:-1]),
        result_size=produced[-1],
        probes=probes,
    )


@dataclass(frozen=True)
class TreeExecution:
    """What executing one bushy join tree actually did.

    Attributes:
        result_size: bindings produced by the root join.
        join_outputs: output size of every join node, root last —
            the quantities the bushy C_out model charges.
        rendered: the executed tree's parenthesised form, for logs.
    """

    result_size: int
    join_outputs: Tuple[int, ...]
    rendered: str

    @property
    def cout(self) -> float:
        """Measured join-output C_out (root included)."""
        return float(sum(self.join_outputs))


def _scan(store: TripleStore, tp: TriplePattern) -> List[Bindings]:
    """All variable bindings of one triple pattern."""
    out: List[Bindings] = []
    for triple in store.match_pattern(tp):
        bindings = _extend({}, tp, triple)
        if bindings is not None:
            out.append(bindings)
    return out


def _hash_join(
    left: List[Bindings], right: List[Bindings]
) -> List[Bindings]:
    """Natural join of two binding sets on their shared variables.

    Degenerates to a cross product when no variables are shared (the
    planner only produces such joins for disconnected queries).
    """
    if not left or not right:
        return []
    shared = tuple(set(left[0]) & set(right[0]))
    if not shared:
        return [
            {**a, **b}
            for a in left
            for b in right
            if all(a.get(k, b[k]) == b[k] for k in b)
        ]
    table: Dict[Tuple[int, ...], List[Bindings]] = defaultdict(list)
    for row in left:
        table[tuple(row[var] for var in shared)].append(row)
    joined: List[Bindings] = []
    for row in right:
        key = tuple(row[var] for var in shared)
        for match in table.get(key, ()):  # merge, re-check overlaps
            merged = dict(match)
            conflict = False
            for var, value in row.items():
                if merged.setdefault(var, value) != value:
                    conflict = True
                    break
            if not conflict:
                joined.append(merged)
    return joined


def execute_plan(
    store: TripleStore, query: QueryPattern, plan
) -> TreeExecution:
    """Evaluate a bushy join tree bottom-up with hash joins.

    *plan* is a :class:`~repro.optimizer.bushy.BushyPlan` over
    *query*'s pattern indices; its leaves are index scans, its internal
    nodes natural joins on the shared variables.
    """
    if sorted(plan.indices()) != list(range(len(query.triples))):
        raise ValueError(
            "plan does not cover exactly the query's patterns"
        )
    join_outputs: List[int] = []

    def evaluate(node) -> List[Bindings]:
        if node.is_leaf:
            return _scan(store, query.triples[node.leaf])
        left = evaluate(node.left)
        right = evaluate(node.right)
        joined = _hash_join(left, right)
        join_outputs.append(len(joined))
        return joined

    result = evaluate(plan)
    return TreeExecution(
        result_size=len(result),
        join_outputs=tuple(join_outputs),
        rendered=plan.render(),
    )
