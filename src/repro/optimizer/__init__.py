"""Join-order optimization on top of cardinality estimates.

The paper's motivation (§I) is that "producing efficient query plans
heavily relies on accurate cardinality estimates".  This subpackage turns
that motivation into a measurable substrate: left-deep join plans over
BGP triple patterns, a C_out cost model fed by any
:class:`~repro.baselines.base.CardinalityEstimator`, plan enumeration
(exhaustive, greedy, and Held–Karp DP), a pipelined index-nested-loop
executor that measures the *true* intermediate sizes a plan produces,
and a plan-quality harness in the style of "How good are query
optimizers, really?" (Leis et al., VLDB 2015).

Typical use::

    from repro.optimizer import Optimizer, plan_quality

    optimizer = Optimizer(estimator)        # any CardinalityEstimator
    plan = optimizer.optimize(query)        # best left-deep order
    result = execute_order(store, query, plan.order)
    report = plan_quality(store, estimator, queries)
"""

from repro.optimizer.plans import (
    JoinPlan,
    connected_orders,
    is_connected_order,
    prefix_patterns,
)
from repro.optimizer.bushy import (
    BushyPlan,
    bushy_best_plan,
    left_deep_best_plan,
    left_deep_vs_bushy,
)
from repro.optimizer.cost import (
    CostModel,
    cout_cost,
    estimator_cost_fn,
    true_cost_fn,
)
from repro.optimizer.enumeration import (
    Optimizer,
    dp_best_order,
    exhaustive_best_order,
    greedy_order,
)
from repro.optimizer.executor import (
    PlanExecution,
    TreeExecution,
    execute_order,
    execute_plan,
)
from repro.optimizer.quality import (
    PlanQualityReport,
    QueryPlanOutcome,
    plan_quality,
)

__all__ = [
    "BushyPlan",
    "bushy_best_plan",
    "left_deep_best_plan",
    "left_deep_vs_bushy",
    "JoinPlan",
    "connected_orders",
    "is_connected_order",
    "prefix_patterns",
    "CostModel",
    "cout_cost",
    "estimator_cost_fn",
    "true_cost_fn",
    "Optimizer",
    "dp_best_order",
    "exhaustive_best_order",
    "greedy_order",
    "PlanExecution",
    "TreeExecution",
    "execute_order",
    "execute_plan",
    "PlanQualityReport",
    "QueryPlanOutcome",
    "plan_quality",
]
