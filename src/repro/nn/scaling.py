"""Target scaling: log transform followed by min-max normalisation.

LMKG-S first log-scales the cardinalities and then min-max scales them
(Section VI-A), so the sigmoid output head can cover the whole target
range.  The scaler records the fitted bounds so predictions can be mapped
back to cardinalities, and exposes ``span`` — the log-space width the
q-error loss needs.
"""

from __future__ import annotations

import numpy as np


class LogMinMaxScaler:
    """log → [0, 1] affine scaling with exact inversion."""

    def __init__(self) -> None:
        self.log_min: float = 0.0
        self.log_max: float = 1.0
        self._fitted = False

    def fit(self, cardinalities: np.ndarray) -> "LogMinMaxScaler":
        """Fit bounds on raw (unlogged) cardinalities; zeros clamp to 1."""
        values = np.maximum(np.asarray(cardinalities, dtype=np.float64), 1.0)
        logs = np.log(values)
        self.log_min = float(logs.min())
        self.log_max = float(logs.max())
        if self.log_max <= self.log_min:
            # Degenerate all-equal targets; keep a unit span so transform
            # maps everything to 0 and inversion still works.
            self.log_max = self.log_min + 1.0
        self._fitted = True
        return self

    @property
    def span(self) -> float:
        """Width of the log range; q-error exponent scale."""
        self._require_fitted()
        return self.log_max - self.log_min

    def transform(self, cardinalities: np.ndarray) -> np.ndarray:
        """Map raw cardinalities into scaled [0, 1] log space."""
        self._require_fitted()
        values = np.maximum(np.asarray(cardinalities, dtype=np.float64), 1.0)
        return (np.log(values) - self.log_min) / self.span

    def fit_transform(self, cardinalities: np.ndarray) -> np.ndarray:
        return self.fit(cardinalities).transform(cardinalities)

    def inverse(self, scaled: np.ndarray) -> np.ndarray:
        """Map scaled predictions back to cardinalities (>= 1).

        Predictions are clipped into [0, 1] first: the sigmoid head cannot
        exceed the range, but numerical tests may feed raw values.
        """
        self._require_fitted()
        clipped = np.clip(np.asarray(scaled, dtype=np.float64), 0.0, 1.0)
        return np.exp(clipped * self.span + self.log_min)

    def state(self) -> dict:
        """Serialisable state for checkpoints."""
        self._require_fitted()
        return {"log_min": self.log_min, "log_max": self.log_max}

    @classmethod
    def from_state(cls, state: dict) -> "LogMinMaxScaler":
        scaler = cls()
        scaler.log_min = float(state["log_min"])
        scaler.log_max = float(state["log_max"])
        scaler._fitted = True
        return scaler

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("scaler used before fit()")
