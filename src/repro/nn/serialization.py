"""Checkpointing: save and load model parameters as ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.nn.layers import Sequential
from repro.nn.masked import MADE


def save_arrays(path: Union[str, Path], arrays: Dict[str, np.ndarray]) -> None:
    """Write named arrays to a compressed npz file."""
    np.savez_compressed(path, **arrays)


def load_arrays(path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """Read named arrays back from an npz file."""
    with np.load(path, allow_pickle=False) as data:
        return {key: data[key] for key in data.files}


def save_sequential(path: Union[str, Path], network: Sequential) -> None:
    """Checkpoint a dense network's parameters by name.

    Parameter names must be unique within the network, which the
    constructors in :mod:`repro.nn.network` guarantee by numbering layers.
    """
    arrays = {}
    for param in network.parameters():
        if param.name in arrays:
            raise ValueError(f"duplicate parameter name {param.name!r}")
        arrays[param.name] = param.value
    save_arrays(path, arrays)


def load_sequential(path: Union[str, Path], network: Sequential) -> None:
    """Restore parameters into an architecture-compatible network.

    Checkpoints hold the float64 master values bit-exactly; restoring
    bumps each parameter's version so any fused inference caches derived
    from the previous values are rebuilt.
    """
    arrays = load_arrays(path)
    for param in network.parameters():
        stored = arrays.get(param.name)
        if stored is None:
            raise KeyError(f"checkpoint missing parameter {param.name!r}")
        if stored.shape != param.value.shape:
            raise ValueError(
                f"shape mismatch for {param.name!r}: "
                f"{stored.shape} vs {param.value.shape}"
            )
        param.value[...] = stored
        param.bump_version()


def save_made(path: Union[str, Path], model: MADE) -> None:
    """Checkpoint a MADE including its architecture metadata."""
    save_arrays(path, model.state())


def load_made(path: Union[str, Path]) -> MADE:
    """Rebuild a MADE from a checkpoint produced by :func:`save_made`."""
    return MADE.from_state(load_arrays(path))
