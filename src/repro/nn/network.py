"""Training loop and regressor wrapper for dense networks.

:class:`Regressor` packages a :class:`~repro.nn.layers.Sequential` body, a
loss, and the minibatch loop; LMKG-S and the MSCN baseline both sit on top
of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.nn.layers import Dropout, Linear, ReLU, Sequential, Sigmoid
from repro.nn.losses import Loss, MSELoss
from repro.nn.optimizers import Adam


@dataclass
class TrainingHistory:
    """Per-epoch records produced by :meth:`Regressor.fit`."""

    losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def build_mlp(
    input_dim: int,
    hidden_sizes: List[int],
    rng: np.random.Generator,
    dropout: float = 0.0,
    sigmoid_output: bool = True,
) -> Sequential:
    """The LMKG-S architecture of Fig. 3: FC + ReLU stacks, sigmoid head.

    Dropout (when > 0) follows each hidden activation, mirroring the
    dropout box in the figure.
    """
    layers: List = []
    prev = input_dim
    for i, width in enumerate(hidden_sizes):
        layers.append(Linear(prev, width, rng, init="he", name=f"fc{i}"))
        layers.append(ReLU())
        if dropout > 0.0:
            layers.append(Dropout(dropout, rng))
        prev = width
    layers.append(Linear(prev, 1, rng, init="glorot", name="head"))
    if sigmoid_output:
        layers.append(Sigmoid())
    return Sequential(layers)


class Regressor:
    """A dense network trained to map feature vectors to a scalar in [0,1]."""

    def __init__(
        self,
        network: Sequential,
        loss: Optional[Loss] = None,
        lr: float = 1e-3,
    ) -> None:
        self.network = network
        self.loss = loss if loss is not None else MSELoss()
        self.optimizer = Adam(network.parameters(), lr=lr, clip_norm=5.0)

    def fit(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        epochs: int = 100,
        batch_size: int = 128,
        seed: int = 0,
        validation: Optional[tuple] = None,
        callback: Optional[Callable[[int, float], None]] = None,
    ) -> TrainingHistory:
        """Minibatch training; targets must already be scaled to [0, 1]."""
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64).reshape(-1, 1)
        if features.shape[0] != targets.shape[0]:
            raise ValueError("features and targets disagree on batch size")
        rng = np.random.default_rng(seed)
        history = TrainingHistory()
        n = features.shape[0]
        for epoch in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, batch_size):
                idx = order[start: start + batch_size]
                pred = self.network.forward(features[idx], training=True)
                loss_value, grad = self.loss(pred, targets[idx])
                self.network.backward(grad)
                self.optimizer.step()
                epoch_loss += loss_value
                batches += 1
            mean_loss = epoch_loss / max(batches, 1)
            history.losses.append(mean_loss)
            if validation is not None:
                val_x, val_y = validation
                val_pred = self.predict(val_x)
                val_loss, _ = self.loss(
                    val_pred.reshape(-1, 1),
                    np.asarray(val_y, dtype=np.float64).reshape(-1, 1),
                )
                history.val_losses.append(val_loss)
            if callback is not None:
                callback(epoch, mean_loss)
        return history

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Forward pass without dropout; returns a flat float64 array.

        Runs on the fused float32 inference path
        (:meth:`~repro.nn.layers.Sequential.forward_fused`) — the same
        dtype policy as the masked networks: float64 masters for
        training, version-cached float32 casts for serving.
        """
        features = np.asarray(features, dtype=np.float64)
        single = features.ndim == 1
        if single:
            features = features[None, :]
        out = (
            self.network.forward_fused(features)
            .astype(np.float64)
            .ravel()
        )
        return out[0:1] if single else out

    def num_parameters(self) -> int:
        return self.network.num_parameters()

    def memory_bytes(self) -> int:
        """Checkpoint size at float32 precision."""
        return self.num_parameters() * 4
