"""First-order optimisers over :class:`~repro.nn.layers.Parameter` lists."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.nn.layers import Parameter


class Optimizer:
    """Protocol: ``step()`` applies and then clears accumulated grads."""

    def __init__(self, parameters: List[Parameter]) -> None:
        self.parameters = list(parameters)

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: List[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            grad = param.grad
            if self.momentum > 0.0:
                vel = self._velocity.get(id(param))
                if vel is None:
                    vel = np.zeros_like(param.value)
                vel = self.momentum * vel - self.lr * grad
                self._velocity[id(param)] = vel
                param.value += vel
            else:
                param.value -= self.lr * grad
            param.bump_version()
            param.zero_grad()


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the optimiser used for all learned models."""

    def __init__(
        self,
        parameters: List[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        clip_norm: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.clip_norm = clip_norm
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        if self.clip_norm > 0.0:
            self._clip_gradients()
        for param in self.parameters:
            key = id(param)
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(param.value)
                v = np.zeros_like(param.value)
            grad = param.grad
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad ** 2
            self._m[key] = m
            self._v[key] = v
            m_hat = m / (1.0 - self.beta1 ** self._t)
            v_hat = v / (1.0 - self.beta2 ** self._t)
            param.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            # Invalidate the fused float32 inference caches derived from
            # this master (see MaskedLinear.fused / MADE table shadows).
            param.bump_version()
            param.zero_grad()

    def _clip_gradients(self) -> None:
        total = 0.0
        for param in self.parameters:
            total += float(np.sum(param.grad ** 2))
        norm = np.sqrt(total)
        if norm > self.clip_norm:
            scale = self.clip_norm / (norm + 1e-12)
            for param in self.parameters:
                param.grad *= scale
