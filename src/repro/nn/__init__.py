"""Numpy neural-network substrate.

Replaces the paper's TensorFlow dependency with a small, exact-gradient
framework: dense layers (:mod:`repro.nn.layers`), masked autoregressive
models (:mod:`repro.nn.masked`), losses including the mean q-error loss
(:mod:`repro.nn.losses`), Adam/SGD (:mod:`repro.nn.optimizers`), the
training loop (:mod:`repro.nn.network`), target scaling
(:mod:`repro.nn.scaling`) and npz checkpointing
(:mod:`repro.nn.serialization`).
"""

from repro.nn.layers import (
    Dropout,
    Embedding,
    Layer,
    Linear,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
)
from repro.nn.losses import (
    HuberLogLoss,
    Loss,
    MSELoss,
    QErrorLoss,
    log_softmax,
    softmax_cross_entropy,
)
from repro.nn.masked import MADE, MADESweep, MaskedLinear, hidden_degrees
from repro.nn.network import Regressor, TrainingHistory, build_mlp
from repro.nn.optimizers import SGD, Adam, Optimizer
from repro.nn.scaling import LogMinMaxScaler
from repro.nn.serialization import (
    load_arrays,
    load_made,
    load_sequential,
    save_arrays,
    save_made,
    save_sequential,
)

__all__ = [
    "Dropout",
    "Embedding",
    "Layer",
    "Linear",
    "Parameter",
    "ReLU",
    "Sequential",
    "Sigmoid",
    "HuberLogLoss",
    "Loss",
    "MSELoss",
    "QErrorLoss",
    "log_softmax",
    "softmax_cross_entropy",
    "MADE",
    "MADESweep",
    "MaskedLinear",
    "hidden_degrees",
    "Regressor",
    "TrainingHistory",
    "build_mlp",
    "SGD",
    "Adam",
    "Optimizer",
    "LogMinMaxScaler",
    "load_arrays",
    "load_made",
    "load_sequential",
    "save_arrays",
    "save_made",
    "save_sequential",
]
