"""Weight initialisation schemes for the numpy NN substrate.

Initial values are float64 — the training "master" precision of
:class:`~repro.nn.layers.Parameter`; the fused float32 inference
shadows are derived from the masters later, never initialised directly.
"""

from __future__ import annotations

import numpy as np


def glorot_uniform(
    rng: np.random.Generator, fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot/Xavier uniform init — the TensorFlow Dense default."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_uniform(
    rng: np.random.Generator, fan_in: int, fan_out: int
) -> np.ndarray:
    """He uniform init, appropriate ahead of ReLU activations."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def normal_embedding(
    rng: np.random.Generator, vocab: int, dim: int, scale: float = 0.05
) -> np.ndarray:
    """Small-variance normal init for embedding tables."""
    return rng.normal(0.0, scale, size=(vocab, dim))
