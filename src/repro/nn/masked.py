"""Masked autoregressive networks: MADE and ResMADE.

LMKG-U (Section VI-B of the paper) is a deep autoregressive model over the
flattened term sequence of a graph pattern: for a pattern with terms
``x = [x1, ..., xn]`` the model outputs, per position i, the conditional
distribution ``P(xi | x<i)``.  The autoregressive property is enforced by
masking weights following MADE (Germain et al., ICML 2015); ResMADE adds
residual connections between equal-degree hidden layers, exactly as the
paper describes.

Two departures from a textbook MADE, both required to keep the model
practical on knowledge graphs with thousands of distinct terms:

- **Shared embeddings**: positions of the same kind (node vs predicate)
  share one embedding table, the "embedding on each of the terms in the
  pattern-bound encoding" of Section VI-B.
- **Tied output projections**: the per-position output logits are produced
  by projecting the masked hidden state to the embedding dimension and
  multiplying with the (transposed) shared embedding table, plus a
  per-position bias.  This keeps the parameter count linear in the vocab
  size rather than ``hidden x vocab`` per position.

Dtype policy
------------

Training is float64 end to end: parameters keep float64 master values,
``forward(ids, training=True)`` / ``loss_and_backward`` compute with the
masked float64 masters, and fits are bit-identical to the seed.
Inference (``forward``, ``log_prob``, ``logits_for``, ``conditionals``,
:class:`MADESweep`) runs on **fused float32 caches**: each masked layer
holds ``(W * M).astype(float32)`` plus a float32 bias, and the embedding
tables and output biases keep float32 shadows.  The caches are keyed by
the per-parameter version counters that :meth:`repro.nn.optimizers.Adam.step`
bumps, so a stale cache is impossible and the hot estimation paths pay
zero per-call masking or casting.  Masks themselves are stored as
``bool`` (8x smaller than the float64 masks of the seed).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.initializers import glorot_uniform, normal_embedding
from repro.nn.layers import Layer, Parameter
from repro.nn.losses import log_softmax, softmax_cross_entropy
from repro.nn.optimizers import Adam


class MaskedLinear(Layer):
    """A dense layer whose weight is elementwise-multiplied by a 0/1 mask.

    The mask is stored as ``bool``.  Two derived-weight caches exist:

    - the float64 masked weight, built once per ``forward`` and reused by
      ``backward`` (the seed recomputed ``weight * mask`` in both), and
    - the fused inference weight from :meth:`fused` — the pre-masked
      master cast once to the inference dtype, cached against the
      parameter version counters so optimiser steps invalidate it.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        mask: np.ndarray,
        rng: np.random.Generator,
        name: str = "masked",
    ) -> None:
        if mask.shape != (in_features, out_features):
            raise ValueError(
                f"mask shape {mask.shape} != ({in_features}, {out_features})"
            )
        self.weight = Parameter(
            f"{name}.weight", glorot_uniform(rng, in_features, out_features)
        )
        self.bias = Parameter(f"{name}.bias", np.zeros(out_features))
        self.mask = np.ascontiguousarray(mask.astype(bool))
        self._input: Optional[np.ndarray] = None
        self._masked64: Optional[np.ndarray] = None
        self._fused: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._fused_key: Optional[Tuple[int, int, np.dtype]] = None

    def _masked_weight(self) -> np.ndarray:
        """Masked float64 master weight; one multiply per training step."""
        if self._masked64 is None:
            self._masked64 = np.empty_like(self.weight.value)
        np.multiply(self.weight.value, self.mask, out=self._masked64)
        return self._masked64

    def fused(self, dtype=np.float32) -> Tuple[np.ndarray, np.ndarray]:
        """``(weight * mask, bias)`` at the inference dtype, cached.

        Rebuilt only when an optimiser step (or checkpoint restore) bumps
        a parameter version — the inference hot path never masks or
        casts.
        """
        key = (self.weight.version, self.bias.version, np.dtype(dtype))
        if self._fused_key != key:
            self._fused = (
                self._masked_weight().astype(key[2]),
                self.bias.value.astype(key[2]),
            )
            self._fused_key = key
        return self._fused

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input = x
        return x @ self._masked_weight() + self.bias.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._input is not None
        self.weight.grad += (self._input.T @ grad) * self.mask
        self.bias.grad += grad.sum(axis=0)
        # The masked weight built by forward() is still current: steps
        # happen between iterations, never between forward and backward.
        assert self._masked64 is not None
        return grad @ self._masked64.T

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]


def hidden_degrees(
    num_vars: int, width: int, rng: np.random.Generator
) -> np.ndarray:
    """Assign autoregressive degrees in [1, num_vars - 1] to hidden units.

    Cyclic assignment (not random) keeps every conditional reachable even
    for narrow layers, matching the deterministic variant used by Naru.
    """
    if num_vars < 2:
        # A single-variable model has no conditioning structure; degree 1
        # hidden units will be fully masked from the (only) output.
        return np.ones(width, dtype=np.int64)
    return (np.arange(width) % (num_vars - 1)) + 1


def _input_mask(in_degrees: np.ndarray, out_degrees: np.ndarray) -> np.ndarray:
    """Mask for input/hidden layers: out unit sees in units with deg <= its."""
    return out_degrees[None, :] >= in_degrees[:, None]


def _output_mask(
    in_degrees: np.ndarray, out_degrees: np.ndarray
) -> np.ndarray:
    """Mask for the output layer: strictly preceding degrees only."""
    return out_degrees[None, :] > in_degrees[:, None]


#: Row-tile and vocab-column-chunk of the streamed head.  The
#: ``(tile, chunk)`` float32 scratch (16 MB) is the measured sweet spot
#: on the serving container across a {128..8192} x {1024..full-vocab}
#: grid; the *column* grid is fixed in vocab space (never derived from
#: the row count), so per-row reductions visit chunks in the same order
#: no matter how a batch is blocked.
_HEAD_ROW_TILE = 512
_HEAD_COL_CHUNK = 8192

#: Row tile of the shared-prefix categorical sampler: its float64 CDF
#: scratch is ``tile x vocab`` (a few tens of MB at graph vocabularies),
#: bounded regardless of how many rows the caller passes.
_HEAD_SAMPLE_ROW_TILE = 128


class MADESweep:
    """Incremental inference state for a position-by-position sweep.

    Likelihood-weighted sampling visits positions in model order over a
    fixed particle batch; between consecutive positions only one
    embed-dim column block of the embedded input changes.  The sweep
    caches the first hidden layer's pre-activation and applies a
    rank-``embed_dim`` update per assignment (``h1 += delta_block @
    W1[block_rows]``) instead of re-running the full first matmul — the
    widest of the trunk (``num_vars * embed_dim -> hidden``) — so its
    cost drops to ~1/num_vars per position.  Deeper (narrower) layers
    still re-run per position.

    Everything here is fused-dtype (float32 by default); obtain one via
    :meth:`MADE.begin_sweep`.
    """

    def __init__(self, model: "MADE", ids: np.ndarray) -> None:
        self.model = model
        self.ids = np.array(ids, dtype=np.int64, copy=True)
        if self.ids.ndim != 2 or self.ids.shape[1] != model.num_vars:
            raise ValueError(
                f"expected (batch, {model.num_vars}) ids, "
                f"got {self.ids.shape}"
            )
        self._embedded = model._embed_fused(self.ids)
        first = model.hidden_layers[0]
        weight, bias = first.fused(model.inference_dtype)
        self._h1_pre = self._embedded @ weight
        self._h1_pre += bias
        self._trunk_h: Optional[np.ndarray] = None

    def assign(self, position: int, values: np.ndarray) -> None:
        """Set *position* to *values* (one id per row) and update h1."""
        model = self.model
        values = np.asarray(values, dtype=np.int64)
        lo = position * model.embed_dim
        hi = lo + model.embed_dim
        table = model._fused_table(model.var_vocabs[position])
        new_block = np.take(table, values, axis=0)
        delta = new_block - self._embedded[:, lo:hi]
        weight, _ = model.hidden_layers[0].fused(model.inference_dtype)
        self._h1_pre += delta @ weight[lo:hi, :]
        self._embedded[:, lo:hi] = new_block
        self.ids[:, position] = values
        self._trunk_h = None

    def _trunk(self) -> np.ndarray:
        """Hidden state after the full trunk, from the cached h1.

        Cached between assignments so the bound and unbound head passes
        of one position share a single deep-layer forward.
        """
        if self._trunk_h is not None:
            return self._trunk_h
        model = self.model
        h = np.maximum(self._h1_pre, 0.0)
        for li in range(1, len(model.hidden_layers)):
            weight, bias = model.hidden_layers[li].fused(
                model.inference_dtype
            )
            pre = h @ weight
            pre += bias
            post = np.maximum(pre, 0.0, out=pre)
            h = post + h if (
                model.residual and post.shape[1] == h.shape[1]
            ) else post
        self._trunk_h = h
        return h

    def _head_operands(
        self, position: int, rows: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(ones-augmented out block, biased head table)`` of *position*.

        The out block is the per-row embed-dim projection for the given
        row subset (all rows when *rows* is None), with a trailing ones
        column; multiplied against :meth:`MADE._fused_head_table` one
        GEMM produces biased logits — no per-tile bias pass.
        """
        model = self.model
        h = self._trunk()
        if rows is not None:
            h = h[rows]
        lo = position * model.embed_dim
        hi = lo + model.embed_dim
        weight, bias = model.out_proj.fused(model.inference_dtype)
        block = np.empty(
            (h.shape[0], model.embed_dim + 1), dtype=model.inference_dtype
        )
        np.matmul(h, weight[:, lo:hi], out=block[:, :-1])
        block[:, :-1] += bias[lo:hi]
        block[:, -1] = 1.0
        return block, model._fused_head_table(position)

    def logits(self, position: int) -> np.ndarray:
        """Logits of *position* given the currently assigned ids."""
        block, head_t = self._head_operands(position, None)
        return block @ head_t

    def head_lse_pick(
        self,
        position: int,
        rows: np.ndarray,
        values: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Streamed per-row log-normaliser and bound-value logit.

        For the given row subset computes ``lse[r] = log sum_v
        exp(logits[r, v])`` and ``picked[r] = logits[r, values[r]]``
        without materialising the ``(rows, vocab)`` logit matrix: the
        head streams in fixed vocab-column chunks over cache-sized row
        tiles, keeping a running maximum and a rescaled running sum per
        row.  The column grid lives in vocab space, so each row's
        reduction order — hence its result — is independent of which
        other rows share the call.  Returns float64 ``(lse, picked)``.
        """
        model = self.model
        block, head_t = self._head_operands(position, rows)
        values = np.asarray(values, dtype=np.int64)
        n = block.shape[0]
        vocab = head_t.shape[1]
        # The bound-value logit is one rank-embed_dim dot per row against
        # a contiguous table row — no chunk bookkeeping needed.
        table = model._fused_table(model.var_vocabs[position])
        picked = np.einsum(
            "re,re->r", block[:, :-1], np.take(table, values, axis=0)
        ).astype(np.float64)
        picked += model._fused_out_bias(position)[values]
        run_max = np.full(n, -np.inf, dtype=np.float32)
        run_sum = np.zeros(n, dtype=np.float64)
        scratch = np.empty(
            (min(n, _HEAD_ROW_TILE), min(vocab, _HEAD_COL_CHUNK)),
            dtype=model.inference_dtype,
        )
        for r0 in range(0, n, _HEAD_ROW_TILE):
            r1 = min(r0 + _HEAD_ROW_TILE, n)
            rows_block = block[r0:r1]
            for c0 in range(0, vocab, _HEAD_COL_CHUNK):
                c1 = min(c0 + _HEAD_COL_CHUNK, vocab)
                tile = scratch[: r1 - r0, : c1 - c0]
                np.matmul(rows_block, head_t[:, c0:c1], out=tile)
                new_max = np.maximum(run_max[r0:r1], tile.max(axis=1))
                np.subtract(tile, new_max[:, None], out=tile)
                np.exp(tile, out=tile)
                run_sum[r0:r1] *= np.exp(
                    (run_max[r0:r1] - new_max).astype(np.float64)
                )
                # Pairwise float32 within the chunk, float64 across
                # chunks — the cross-chunk accumulator is what the
                # running maximum rescales.
                run_sum[r0:r1] += tile.sum(axis=1)
                run_max[r0:r1] = new_max
        lse = run_max.astype(np.float64) + np.log(run_sum)
        return lse, picked

    def head_gumbel_argmax(
        self,
        position: int,
        rows: np.ndarray,
        noise_table: np.ndarray,
        bases: np.ndarray,
        row_map: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Streamed Gumbel-max over the head, reserved id 0 excluded.

        Samples ``argmax_{v >= 1} (logits[head(j), v] + g[j, v])`` per
        competition row *j* without materialising logits or noise: the
        head streams in the same fixed vocab-column chunks as
        :meth:`head_lse_pick`, against a running (best value, best
        column) pair.  Noise for competition row *j* over columns
        ``[c0, c1)`` is the window ``noise_table[bases[j] + c0 :
        bases[j] + c1]`` — the caller owns the keying of *bases*.
        *row_map* (non-decreasing) maps competition rows onto head rows
        so many particles that share an identical prefix can reuse one
        head row's GEMM while still drawing their own noise.

        Returns ``(choice, rest_peak, first_logit)``: the winning column
        per competition row, plus per **head** row the maximum logit
        over ``v >= 1`` and the reserved id's logit — the two operands
        of dead-conditional detection.
        """
        model = self.model
        block, head_t = self._head_operands(position, rows)
        bases = np.asarray(bases, dtype=np.int64)
        n_head = block.shape[0]
        vocab = head_t.shape[1]
        if row_map is None:
            comp_to_head = np.arange(n_head, dtype=np.int64)
        else:
            comp_to_head = np.asarray(row_map, dtype=np.int64)
        n_comp = comp_to_head.shape[0]
        if bases.shape[0] != n_comp:
            raise ValueError(
                f"{n_comp} competition rows but {bases.shape[0]} noise bases"
            )
        first_logit = block @ head_t[:, 0]
        rest_peak = np.full(n_head, -np.inf, dtype=np.float32)
        best_val = np.full(n_comp, -np.inf, dtype=np.float32)
        choice = np.zeros(n_comp, dtype=np.int64)
        scratch = np.empty(
            (min(n_comp, _HEAD_ROW_TILE), min(vocab, _HEAD_COL_CHUNK)),
            dtype=model.inference_dtype,
        )
        # Noise windows are copied row-by-row into one reused buffer:
        # a fancy-indexed window gather would allocate (and page-fault)
        # a fresh tile-sized array per chunk.
        noise_buf = np.empty_like(scratch)
        for r0 in range(0, n_comp, _HEAD_ROW_TILE):
            r1 = min(r0 + _HEAD_ROW_TILE, n_comp)
            h_lo = int(comp_to_head[r0])
            h_hi = int(comp_to_head[r1 - 1]) + 1
            head_rows = block[h_lo:h_hi]
            n_tile = r1 - r0
            n_heads = h_hi - h_lo
            local = comp_to_head[r0:r1] - h_lo
            identity = n_heads == n_tile and bool(
                (local == np.arange(n_tile)).all()
            )
            # A tile of equal-sized particle groups (the undiverged
            # rep layout) broadcasts each head row over its group
            # in place of materialising an expanded copy.
            group = 0 if identity else n_tile // n_heads
            uniform = (
                not identity
                and group * n_heads == n_tile
                and bool(
                    (
                        local
                        == np.repeat(
                            np.arange(n_heads, dtype=np.int64), group
                        )
                    ).all()
                )
            )
            tile_bases = bases[r0:r1].tolist()
            for c0 in range(0, vocab, _HEAD_COL_CHUNK):
                c1 = min(c0 + _HEAD_COL_CHUNK, vocab)
                width = c1 - c0
                tile = scratch[:n_heads, :width]
                np.matmul(head_rows, head_t[:, c0:c1], out=tile)
                if c0 == 0:
                    # The reserved id is excluded from both the
                    # competition and the rest-of-vocab peak.
                    tile[:, 0] = -np.inf
                np.maximum(
                    rest_peak[h_lo:h_hi],
                    tile.max(axis=1),
                    out=rest_peak[h_lo:h_hi],
                )
                noisy = noise_buf[:n_tile, :width]
                for i, base in enumerate(tile_bases):
                    noisy[i] = noise_table[base + c0: base + c1]
                if identity:
                    noisy += tile
                elif uniform:
                    view = noisy.reshape(n_heads, group, width)
                    view += tile[:, None, :]
                else:
                    noisy += tile[local]
                loc = noisy.argmax(axis=1)
                val = np.take_along_axis(
                    noisy, loc[:, None], axis=1
                ).ravel()
                # Strict '>' keeps the earliest chunk on exact ties,
                # matching a full-matrix argmax.
                upd = val > best_val[r0:r1]
                sel = np.flatnonzero(upd)
                if sel.size:
                    choice[r0 + sel] = loc[sel] + c0
                    best_val[r0:r1][upd] = val[upd]
        return choice, rest_peak, first_logit

    def head_categorical_sample(
        self,
        position: int,
        rows: np.ndarray,
        uniforms: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Inverse-CDF draws from shared head rows, reserved id excluded.

        For each head row *r* (a prefix shared by a whole particle
        group) draws ``uniforms.shape[1]`` independent samples from
        ``softmax(logits[r, 1:])`` by inverting the row's CDF in vocab
        order: draw *j* picks the smallest ``v >= 1`` with
        ``sum_{w <= v} exp(l_w - m_r) >= u[r, j] * Z_r``.  One GEMM and
        one float64 scan per *head* row replaces a per-*particle*
        vocab-wide Gumbel competition, which is what makes undiverged
        queries cheap.  The CDF is materialised one
        :data:`_HEAD_SAMPLE_ROW_TILE` row tile at a time — never the
        full ``(rows, vocab)`` matrix — and is a pure per-row function
        of the logits and the uniforms, so draws are independent of how
        the batch was blocked.

        Returns ``(choice, rest_peak, first_logit)``: choices shaped
        like *uniforms*, plus the two dead-conditional operands per
        head row.  Dead rows (``Z == 0`` in float64 terms never occurs;
        the caller tests ``rest_peak - first_logit``) still get
        well-defined draws from the renormalised row.
        """
        model = self.model
        block, head_t = self._head_operands(position, rows)
        uniforms = np.asarray(uniforms, dtype=np.float64)
        n = block.shape[0]
        vocab = head_t.shape[1]
        if uniforms.shape[0] != n:
            raise ValueError(
                f"{n} head rows but {uniforms.shape[0]} uniform rows"
            )
        choice = np.empty(uniforms.shape, dtype=np.int64)
        rest_peak = np.empty(n, dtype=np.float32)
        first_logit = np.empty(n, dtype=np.float32)
        tile_rows = min(n, _HEAD_SAMPLE_ROW_TILE)
        scratch = np.empty(
            (tile_rows, vocab), dtype=model.inference_dtype
        )
        cdf = np.empty((tile_rows, vocab), dtype=np.float64)
        for r0 in range(0, n, _HEAD_SAMPLE_ROW_TILE):
            r1 = min(r0 + _HEAD_SAMPLE_ROW_TILE, n)
            k = r1 - r0
            tile = scratch[:k]
            np.matmul(block[r0:r1], head_t, out=tile)
            first_logit[r0:r1] = tile[:, 0]
            tile[:, 0] = -np.inf
            peak = tile.max(axis=1)
            rest_peak[r0:r1] = peak
            row_cdf = cdf[:k]
            np.subtract(tile, peak[:, None], out=tile)
            np.exp(tile, out=tile)
            np.cumsum(tile, axis=1, dtype=np.float64, out=row_cdf)
            targets = uniforms[r0:r1] * row_cdf[:, -1:]
            for i in range(k):
                choice[r0 + i] = np.searchsorted(
                    row_cdf[i], targets[i], side="left"
                )
        return choice, rest_peak, first_logit

    def conditionals(self, position: int) -> np.ndarray:
        """Probabilities ``P(x_position | assigned x_<position)``."""
        return np.exp(log_softmax(self.logits(position)))


class MADE:
    """Masked autoregressive density estimator over categorical sequences.

    Args:
        var_vocabs: for each position i, the index into *vocab_sizes* of
            the vocabulary it draws values from (e.g. node vs predicate).
        vocab_sizes: size of each shared vocabulary, ids in [0, size).
        embed_dim: shared embedding dimension (the paper uses 32).
        hidden_sizes: widths of the masked hidden layers.
        residual: enable ResMADE residual connections between consecutive
            equal-width hidden layers.
    """

    def __init__(
        self,
        var_vocabs: Sequence[int],
        vocab_sizes: Sequence[int],
        embed_dim: int = 32,
        hidden_sizes: Sequence[int] = (256, 256),
        residual: bool = True,
        seed: int = 0,
    ) -> None:
        if not var_vocabs:
            raise ValueError("need at least one variable")
        for v in var_vocabs:
            if not 0 <= v < len(vocab_sizes):
                raise ValueError(f"vocab index {v} out of range")
        self.var_vocabs = list(var_vocabs)
        self.vocab_sizes = list(vocab_sizes)
        self.embed_dim = embed_dim
        self.hidden_sizes = list(hidden_sizes)
        self.residual = residual
        self.num_vars = len(var_vocabs)
        rng = np.random.default_rng(seed)
        self._rng = rng

        self.tables = [
            Parameter(f"table{t}", normal_embedding(rng, size, embed_dim))
            for t, size in enumerate(self.vocab_sizes)
        ]
        #: positions grouped by their vocabulary, for block-gathered embeds
        self._vocab_positions: List[Tuple[int, np.ndarray]] = []
        by_vocab: Dict[int, List[int]] = {}
        for i, t in enumerate(self.var_vocabs):
            by_vocab.setdefault(t, []).append(i)
        for t, positions in by_vocab.items():
            self._vocab_positions.append(
                (t, np.asarray(positions, dtype=np.int64))
            )

        # Degrees: position i (0-based) has degree i + 1; every one of its
        # embed_dim input units carries that degree.
        var_degrees = np.arange(1, self.num_vars + 1)
        in_degrees = np.repeat(var_degrees, embed_dim)

        self.hidden_layers: List[MaskedLinear] = []
        self._hidden_degrees: List[np.ndarray] = []
        prev_degrees = in_degrees
        prev_width = self.num_vars * embed_dim
        for li, width in enumerate(self.hidden_sizes):
            degrees = hidden_degrees(self.num_vars, width, rng)
            mask = _input_mask(prev_degrees, degrees)
            self.hidden_layers.append(
                MaskedLinear(prev_width, width, mask, rng, name=f"h{li}")
            )
            self._hidden_degrees.append(degrees)
            prev_degrees = degrees
            prev_width = width

        # Output projection: hidden -> per-position embed_dim block, the
        # block for position i connected only to strictly smaller degrees.
        out_degrees = np.repeat(var_degrees, embed_dim)
        out_mask = _output_mask(prev_degrees, out_degrees)
        self.out_proj = MaskedLinear(
            prev_width, self.num_vars * embed_dim, out_mask, rng, name="out"
        )
        self.out_bias = [
            Parameter(
                f"out_bias{i}",
                np.zeros(self.vocab_sizes[self.var_vocabs[i]]),
            )
            for i in range(self.num_vars)
        ]
        self._cache: Dict[str, object] = {}

        #: dtype of the fused inference caches; float64 is a debugging /
        #: parity knob (fused but uncast), float32 the serving default.
        self.inference_dtype: np.dtype = np.dtype(np.float32)
        self._table_shadows: Dict[int, np.ndarray] = {}
        self._table_shadow_keys: Dict[int, Tuple[int, np.dtype]] = {}
        self._table_t_shadows: Dict[int, np.ndarray] = {}
        self._table_t_shadow_keys: Dict[int, Tuple[int, np.dtype]] = {}
        self._out_bias_shadows: Dict[int, np.ndarray] = {}
        self._out_bias_shadow_keys: Dict[int, Tuple[int, np.dtype]] = {}
        self._head_shadows: Dict[int, np.ndarray] = {}
        self._head_shadow_keys: Dict[
            int, Tuple[int, int, np.dtype]
        ] = {}

    # ------------------------------------------------------------------
    # Parameters / size
    # ------------------------------------------------------------------

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = list(self.tables)
        for layer in self.hidden_layers:
            params.extend(layer.parameters())
        params.extend(self.out_proj.parameters())
        params.extend(self.out_bias)
        return params

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def memory_bytes(self) -> int:
        """True in-process footprint, counted from the live arrays.

        Float64 masters and their gradient accumulators, the bool layer
        masks, and whichever derived caches currently exist: the
        per-layer masked float64 training weights (allocated on first
        training forward) and the fused inference caches (allocated on
        first inference, at the current inference dtype).  The
        paper-facing checkpoint size is :meth:`checkpoint_bytes`.
        """
        total = sum(
            p.value.nbytes + p.grad.nbytes for p in self.parameters()
        )
        layers = self.hidden_layers + [self.out_proj]
        total += sum(layer.mask.nbytes for layer in layers)
        for layer in layers:
            if layer._masked64 is not None:
                total += layer._masked64.nbytes
            if layer._fused is not None:
                total += sum(a.nbytes for a in layer._fused)
        total += sum(a.nbytes for a in self._table_shadows.values())
        total += sum(a.nbytes for a in self._table_t_shadows.values())
        total += sum(a.nbytes for a in self._out_bias_shadows.values())
        total += sum(a.nbytes for a in self._head_shadows.values())
        return total

    def checkpoint_bytes(self) -> int:
        """Model size in bytes at float32 checkpoint precision (Table II)."""
        return self.num_parameters() * 4

    # ------------------------------------------------------------------
    # Fused inference caches
    # ------------------------------------------------------------------

    def set_inference_dtype(self, dtype) -> None:
        """Switch the fused-cache dtype (float32 default, float64 parity)."""
        self.inference_dtype = np.dtype(dtype)

    def _fused_table(self, vocab: int) -> np.ndarray:
        param = self.tables[vocab]
        key = (param.version, self.inference_dtype)
        if self._table_shadow_keys.get(vocab) != key:
            self._table_shadows[vocab] = param.value.astype(key[1])
            self._table_shadow_keys[vocab] = key
        return self._table_shadows[vocab]

    def _fused_table_t(self, vocab: int) -> np.ndarray:
        """Contiguous ``(embed, vocab)`` transpose of the fused table.

        The tied-projection head multiplies every out block with the
        transposed embedding table; a contiguous transposed copy keeps
        that GEMM on cache-friendly operands (~1.3x at serving widths)
        instead of a strided ``table.T`` view.
        """
        param = self.tables[vocab]
        key = (param.version, self.inference_dtype)
        if self._table_t_shadow_keys.get(vocab) != key:
            self._table_t_shadows[vocab] = np.ascontiguousarray(
                self._fused_table(vocab).T
            )
            self._table_t_shadow_keys[vocab] = key
        return self._table_t_shadows[vocab]

    def _fused_out_bias(self, position: int) -> np.ndarray:
        param = self.out_bias[position]
        key = (param.version, self.inference_dtype)
        if self._out_bias_shadow_keys.get(position) != key:
            self._out_bias_shadows[position] = param.value.astype(key[1])
            self._out_bias_shadow_keys[position] = key
        return self._out_bias_shadows[position]

    def _fused_head_table(self, position: int) -> np.ndarray:
        """``(embed + 1, vocab)`` head operand with the bias folded in.

        The transposed embedding table with the position's output bias
        appended as a final row: multiplied against a ones-augmented
        out block, one GEMM yields biased logits, replacing a separate
        vocab-wide bias-add pass over every streamed head tile.
        """
        table_p = self.tables[self.var_vocabs[position]]
        bias_p = self.out_bias[position]
        key = (table_p.version, bias_p.version, self.inference_dtype)
        if self._head_shadow_keys.get(position) != key:
            self._head_shadows[position] = np.concatenate(
                [
                    self._fused_table_t(self.var_vocabs[position]),
                    self._fused_out_bias(position)[None, :],
                ],
                axis=0,
            )
            self._head_shadow_keys[position] = key
        return self._head_shadows[position]

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------

    def _embed(self, ids: np.ndarray) -> np.ndarray:
        """Float64 training embed: block-gather into one buffer."""
        batch = ids.shape[0]
        out = np.empty(
            (batch, self.num_vars, self.embed_dim), dtype=np.float64
        )
        for vocab, positions in self._vocab_positions:
            out[:, positions, :] = np.take(
                self.tables[vocab].value, ids[:, positions], axis=0
            )
        return out.reshape(batch, self.num_vars * self.embed_dim)

    def _embed_fused(self, ids: np.ndarray) -> np.ndarray:
        """Inference embed from the fused float32 table shadows."""
        batch = ids.shape[0]
        out = np.empty(
            (batch, self.num_vars, self.embed_dim),
            dtype=self.inference_dtype,
        )
        for vocab, positions in self._vocab_positions:
            out[:, positions, :] = np.take(
                self._fused_table(vocab), ids[:, positions], axis=0
            )
        return out.reshape(batch, self.num_vars * self.embed_dim)

    def _validated_ids(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim != 2 or ids.shape[1] != self.num_vars:
            raise ValueError(
                f"expected (batch, {self.num_vars}) ids, got {ids.shape}"
            )
        return ids

    def forward(
        self, ids: np.ndarray, training: bool = False
    ) -> List[np.ndarray]:
        """Per-position logits ``[(batch, vocab_i)] * num_vars``.

        Position i's logits depend only on ids at positions < i, so callers
        may place arbitrary valid ids at positions >= i.  With
        ``training=True`` the trunk runs on the float64 masters and caches
        activations for :meth:`loss_and_backward`; otherwise it runs on
        the fused float32 inference weights.
        """
        ids = self._validated_ids(ids)
        if not training:
            return self._forward_fused(ids)
        self._cache = {"ids": ids}
        h = self._embed(ids)
        self._cache["embedded"] = h
        activations: List[np.ndarray] = []
        residual_in: List[Optional[np.ndarray]] = []
        for li, layer in enumerate(self.hidden_layers):
            pre = layer.forward(h, training=True)
            post = np.maximum(pre, 0.0)
            use_res = (
                self.residual and li > 0 and post.shape[1] == h.shape[1]
            )
            residual_in.append(h if use_res else None)
            h = post + h if use_res else post
            activations.append(pre)
        self._cache["pre_activations"] = activations
        self._cache["residual_in"] = residual_in
        out = self.out_proj.forward(h, training=True)
        self._cache["out_blocks"] = out
        logits: List[np.ndarray] = []
        for i in range(self.num_vars):
            block = out[:, i * self.embed_dim: (i + 1) * self.embed_dim]
            table = self.tables[self.var_vocabs[i]].value
            logits.append(block @ table.T + self.out_bias[i].value)
        return logits

    def _forward_fused(self, ids: np.ndarray) -> List[np.ndarray]:
        """Full inference forward on the fused caches (no grad state)."""
        h = self._embed_fused(ids)
        for li, layer in enumerate(self.hidden_layers):
            weight, bias = layer.fused(self.inference_dtype)
            pre = h @ weight
            pre += bias
            post = np.maximum(pre, 0.0, out=pre)
            use_res = (
                self.residual and li > 0 and post.shape[1] == h.shape[1]
            )
            h = post + h if use_res else post
        weight, bias = self.out_proj.fused(self.inference_dtype)
        out = h @ weight
        out += bias
        logits: List[np.ndarray] = []
        for i in range(self.num_vars):
            block = out[:, i * self.embed_dim: (i + 1) * self.embed_dim]
            head = block @ self._fused_table_t(self.var_vocabs[i])
            head += self._fused_out_bias(i)
            logits.append(head)
        return logits

    def loss_and_backward(self, ids: np.ndarray) -> float:
        """Mean negative log-likelihood over the batch; accumulates grads."""
        logits = self.forward(ids, training=True)
        ids = self._cache["ids"]  # type: ignore[assignment]
        out = self._cache["out_blocks"]  # type: ignore[assignment]
        batch = ids.shape[0]
        total_loss = 0.0
        grad_out = np.zeros_like(out)
        for i in range(self.num_vars):
            table_param = self.tables[self.var_vocabs[i]]
            block = out[:, i * self.embed_dim: (i + 1) * self.embed_dim]
            loss_i, dlogits = softmax_cross_entropy(logits[i], ids[:, i])
            total_loss += loss_i
            self.out_bias[i].grad += dlogits.sum(axis=0)
            grad_out[:, i * self.embed_dim: (i + 1) * self.embed_dim] = (
                dlogits @ table_param.value
            )
            table_param.grad += dlogits.T @ block
        grad_h = self.out_proj.backward(grad_out)
        grad_h = self._backward_hidden(grad_h)
        self._backward_embedding(grad_h, ids, batch)
        return total_loss

    def _backward_hidden(self, grad_h: np.ndarray) -> np.ndarray:
        activations = self._cache["pre_activations"]
        residual_in = self._cache["residual_in"]
        for li in reversed(range(len(self.hidden_layers))):
            pre = activations[li]  # type: ignore[index]
            grad_post = grad_h
            grad_pre = grad_post * (pre > 0)
            grad_input = self.hidden_layers[li].backward(grad_pre)
            if residual_in[li] is not None:  # type: ignore[index]
                grad_input = grad_input + grad_post
            grad_h = grad_input
        return grad_h

    def _backward_embedding(
        self, grad_h: np.ndarray, ids: np.ndarray, batch: int
    ) -> None:
        grad3 = grad_h.reshape(batch, self.num_vars, self.embed_dim)
        for i in range(self.num_vars):
            table_param = self.tables[self.var_vocabs[i]]
            np.add.at(table_param.grad, ids[:, i], grad3[:, i, :])

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def log_prob(self, ids: np.ndarray) -> np.ndarray:
        """Log density of each row: sum of per-position conditionals.

        Computed on the fused float32 trunk; the per-row sum accumulates
        in float64.
        """
        ids = self._validated_ids(ids)
        logits = self._forward_fused(ids)
        total = np.zeros(ids.shape[0], dtype=np.float64)
        rows = np.arange(ids.shape[0])
        for i in range(self.num_vars):
            lp = log_softmax(logits[i])
            total += lp[rows, ids[:, i]]
        return total

    def begin_sweep(self, ids: np.ndarray) -> MADESweep:
        """Incremental sweep state over *ids* (copied; fused dtype).

        The hot path of likelihood-weighted sampling: call
        ``logits(position)`` / ``conditionals(position)`` in position
        order and ``assign(position, values)`` after each draw — only
        the changed embed-dim block re-enters the first matmul.
        """
        return MADESweep(self, self._validated_ids(ids))

    def logits_for(self, ids: np.ndarray, position: int) -> np.ndarray:
        """Logits of a single position without building every head.

        Runs the fused trunk once and projects only *position*'s block —
        equivalent to ``forward(ids)[position]`` up to fused-dtype
        rounding.
        """
        return self.begin_sweep(ids).logits(position)

    def conditionals(
        self, ids: np.ndarray, position: int
    ) -> np.ndarray:
        """Probabilities ``P(x_position | x_<position)`` for each row.

        Ids at positions >= *position* may hold any valid placeholder.
        Returns a ``(batch, vocab)`` probability matrix at the fused
        inference dtype.
        """
        lp = log_softmax(self.logits_for(ids, position))
        return np.exp(lp)

    def fit(
        self,
        data: np.ndarray,
        epochs: int = 5,
        batch_size: int = 256,
        lr: float = 1e-3,
        seed: int = 0,
        verbose: bool = False,
    ) -> List[float]:
        """Train by maximum likelihood; returns per-epoch mean NLL."""
        data = np.asarray(data, dtype=np.int64)
        optimizer = Adam(self.parameters(), lr=lr, clip_norm=5.0)
        rng = np.random.default_rng(seed)
        history: List[float] = []
        n = data.shape[0]
        for epoch in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, batch_size):
                batch = data[order[start: start + batch_size]]
                loss = self.loss_and_backward(batch)
                optimizer.step()
                epoch_loss += loss
                batches += 1
            mean_loss = epoch_loss / max(batches, 1)
            history.append(mean_loss)
            if verbose:
                print(f"epoch {epoch + 1}/{epochs} nll={mean_loss:.4f}")
        return history

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def state(self) -> Dict[str, np.ndarray]:
        arrays = {p.name: p.value for p in self.parameters()}
        arrays["_meta_var_vocabs"] = np.array(self.var_vocabs)
        arrays["_meta_vocab_sizes"] = np.array(self.vocab_sizes)
        arrays["_meta_config"] = np.array(
            [self.embed_dim, int(self.residual)] + self.hidden_sizes
        )
        return arrays

    @classmethod
    def from_state(cls, arrays: Dict[str, np.ndarray]) -> "MADE":
        config = arrays["_meta_config"]
        model = cls(
            var_vocabs=arrays["_meta_var_vocabs"].tolist(),
            vocab_sizes=arrays["_meta_vocab_sizes"].tolist(),
            embed_dim=int(config[0]),
            hidden_sizes=[int(v) for v in config[2:]],
            residual=bool(config[1]),
        )
        for param in model.parameters():
            param.value[...] = arrays[param.name]
            param.bump_version()
        return model
