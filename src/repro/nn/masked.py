"""Masked autoregressive networks: MADE and ResMADE.

LMKG-U (Section VI-B of the paper) is a deep autoregressive model over the
flattened term sequence of a graph pattern: for a pattern with terms
``x = [x1, ..., xn]`` the model outputs, per position i, the conditional
distribution ``P(xi | x<i)``.  The autoregressive property is enforced by
masking weights following MADE (Germain et al., ICML 2015); ResMADE adds
residual connections between equal-degree hidden layers, exactly as the
paper describes.

Two departures from a textbook MADE, both required to keep the model
practical on knowledge graphs with thousands of distinct terms:

- **Shared embeddings**: positions of the same kind (node vs predicate)
  share one embedding table, the "embedding on each of the terms in the
  pattern-bound encoding" of Section VI-B.
- **Tied output projections**: the per-position output logits are produced
  by projecting the masked hidden state to the embedding dimension and
  multiplying with the (transposed) shared embedding table, plus a
  per-position bias.  This keeps the parameter count linear in the vocab
  size rather than ``hidden x vocab`` per position.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.initializers import glorot_uniform, normal_embedding
from repro.nn.layers import Layer, Parameter
from repro.nn.losses import log_softmax, softmax_cross_entropy
from repro.nn.optimizers import Adam


class MaskedLinear(Layer):
    """A dense layer whose weight is elementwise-multiplied by a 0/1 mask."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        mask: np.ndarray,
        rng: np.random.Generator,
        name: str = "masked",
    ) -> None:
        if mask.shape != (in_features, out_features):
            raise ValueError(
                f"mask shape {mask.shape} != ({in_features}, {out_features})"
            )
        self.weight = Parameter(
            f"{name}.weight", glorot_uniform(rng, in_features, out_features)
        )
        self.bias = Parameter(f"{name}.bias", np.zeros(out_features))
        self.mask = mask.astype(np.float64)
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input = x
        return x @ (self.weight.value * self.mask) + self.bias.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._input is not None
        self.weight.grad += (self._input.T @ grad) * self.mask
        self.bias.grad += grad.sum(axis=0)
        return grad @ (self.weight.value * self.mask).T

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]


def hidden_degrees(
    num_vars: int, width: int, rng: np.random.Generator
) -> np.ndarray:
    """Assign autoregressive degrees in [1, num_vars - 1] to hidden units.

    Cyclic assignment (not random) keeps every conditional reachable even
    for narrow layers, matching the deterministic variant used by Naru.
    """
    if num_vars < 2:
        # A single-variable model has no conditioning structure; degree 1
        # hidden units will be fully masked from the (only) output.
        return np.ones(width, dtype=np.int64)
    return (np.arange(width) % (num_vars - 1)) + 1


def _input_mask(in_degrees: np.ndarray, out_degrees: np.ndarray) -> np.ndarray:
    """Mask for input/hidden layers: out unit sees in units with deg <= its."""
    return (out_degrees[None, :] >= in_degrees[:, None]).astype(np.float64)


def _output_mask(
    in_degrees: np.ndarray, out_degrees: np.ndarray
) -> np.ndarray:
    """Mask for the output layer: strictly preceding degrees only."""
    return (out_degrees[None, :] > in_degrees[:, None]).astype(np.float64)


class MADE:
    """Masked autoregressive density estimator over categorical sequences.

    Args:
        var_vocabs: for each position i, the index into *vocab_sizes* of
            the vocabulary it draws values from (e.g. node vs predicate).
        vocab_sizes: size of each shared vocabulary, ids in [0, size).
        embed_dim: shared embedding dimension (the paper uses 32).
        hidden_sizes: widths of the masked hidden layers.
        residual: enable ResMADE residual connections between consecutive
            equal-width hidden layers.
    """

    def __init__(
        self,
        var_vocabs: Sequence[int],
        vocab_sizes: Sequence[int],
        embed_dim: int = 32,
        hidden_sizes: Sequence[int] = (256, 256),
        residual: bool = True,
        seed: int = 0,
    ) -> None:
        if not var_vocabs:
            raise ValueError("need at least one variable")
        for v in var_vocabs:
            if not 0 <= v < len(vocab_sizes):
                raise ValueError(f"vocab index {v} out of range")
        self.var_vocabs = list(var_vocabs)
        self.vocab_sizes = list(vocab_sizes)
        self.embed_dim = embed_dim
        self.hidden_sizes = list(hidden_sizes)
        self.residual = residual
        self.num_vars = len(var_vocabs)
        rng = np.random.default_rng(seed)
        self._rng = rng

        self.tables = [
            Parameter(f"table{t}", normal_embedding(rng, size, embed_dim))
            for t, size in enumerate(self.vocab_sizes)
        ]

        # Degrees: position i (0-based) has degree i + 1; every one of its
        # embed_dim input units carries that degree.
        var_degrees = np.arange(1, self.num_vars + 1)
        in_degrees = np.repeat(var_degrees, embed_dim)

        self.hidden_layers: List[MaskedLinear] = []
        self._hidden_degrees: List[np.ndarray] = []
        prev_degrees = in_degrees
        prev_width = self.num_vars * embed_dim
        for li, width in enumerate(self.hidden_sizes):
            degrees = hidden_degrees(self.num_vars, width, rng)
            mask = _input_mask(prev_degrees, degrees)
            self.hidden_layers.append(
                MaskedLinear(prev_width, width, mask, rng, name=f"h{li}")
            )
            self._hidden_degrees.append(degrees)
            prev_degrees = degrees
            prev_width = width

        # Output projection: hidden -> per-position embed_dim block, the
        # block for position i connected only to strictly smaller degrees.
        out_degrees = np.repeat(var_degrees, embed_dim)
        out_mask = _output_mask(prev_degrees, out_degrees)
        self.out_proj = MaskedLinear(
            prev_width, self.num_vars * embed_dim, out_mask, rng, name="out"
        )
        self.out_bias = [
            Parameter(
                f"out_bias{i}",
                np.zeros(self.vocab_sizes[self.var_vocabs[i]]),
            )
            for i in range(self.num_vars)
        ]
        self._cache: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Parameters / size
    # ------------------------------------------------------------------

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = list(self.tables)
        for layer in self.hidden_layers:
            params.extend(layer.parameters())
        params.extend(self.out_proj.parameters())
        params.extend(self.out_bias)
        return params

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def memory_bytes(self) -> int:
        """Model size in bytes at float32 checkpoint precision."""
        return self.num_parameters() * 4

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------

    def _embed(self, ids: np.ndarray) -> np.ndarray:
        batch = ids.shape[0]
        blocks = [
            self.tables[self.var_vocabs[i]].value[ids[:, i]]
            for i in range(self.num_vars)
        ]
        return np.concatenate(blocks, axis=1).reshape(
            batch, self.num_vars * self.embed_dim
        )

    def forward(self, ids: np.ndarray) -> List[np.ndarray]:
        """Per-position logits ``[(batch, vocab_i)] * num_vars``.

        Position i's logits depend only on ids at positions < i, so callers
        may place arbitrary valid ids at positions >= i.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim != 2 or ids.shape[1] != self.num_vars:
            raise ValueError(
                f"expected (batch, {self.num_vars}) ids, got {ids.shape}"
            )
        self._cache = {"ids": ids}
        h = self._embed(ids)
        self._cache["embedded"] = h
        activations: List[np.ndarray] = []
        residual_in: List[Optional[np.ndarray]] = []
        for li, layer in enumerate(self.hidden_layers):
            pre = layer.forward(h)
            post = np.maximum(pre, 0.0)
            use_res = (
                self.residual and li > 0 and post.shape[1] == h.shape[1]
            )
            residual_in.append(h if use_res else None)
            h = post + h if use_res else post
            activations.append(pre)
        self._cache["pre_activations"] = activations
        self._cache["residual_in"] = residual_in
        out = self.out_proj.forward(h)
        self._cache["out_blocks"] = out
        logits: List[np.ndarray] = []
        for i in range(self.num_vars):
            block = out[:, i * self.embed_dim: (i + 1) * self.embed_dim]
            table = self.tables[self.var_vocabs[i]].value
            logits.append(block @ table.T + self.out_bias[i].value)
        return logits

    def loss_and_backward(self, ids: np.ndarray) -> float:
        """Mean negative log-likelihood over the batch; accumulates grads."""
        logits = self.forward(ids)
        ids = self._cache["ids"]  # type: ignore[assignment]
        out = self._cache["out_blocks"]  # type: ignore[assignment]
        batch = ids.shape[0]
        total_loss = 0.0
        grad_out = np.zeros_like(out)
        for i in range(self.num_vars):
            table_param = self.tables[self.var_vocabs[i]]
            block = out[:, i * self.embed_dim: (i + 1) * self.embed_dim]
            loss_i, dlogits = softmax_cross_entropy(logits[i], ids[:, i])
            total_loss += loss_i
            self.out_bias[i].grad += dlogits.sum(axis=0)
            grad_out[:, i * self.embed_dim: (i + 1) * self.embed_dim] = (
                dlogits @ table_param.value
            )
            table_param.grad += dlogits.T @ block
        grad_h = self.out_proj.backward(grad_out)
        grad_h = self._backward_hidden(grad_h)
        self._backward_embedding(grad_h, ids, batch)
        return total_loss

    def _backward_hidden(self, grad_h: np.ndarray) -> np.ndarray:
        activations = self._cache["pre_activations"]
        residual_in = self._cache["residual_in"]
        for li in reversed(range(len(self.hidden_layers))):
            pre = activations[li]  # type: ignore[index]
            grad_post = grad_h
            grad_pre = grad_post * (pre > 0)
            grad_input = self.hidden_layers[li].backward(grad_pre)
            if residual_in[li] is not None:  # type: ignore[index]
                grad_input = grad_input + grad_post
            grad_h = grad_input
        return grad_h

    def _backward_embedding(
        self, grad_h: np.ndarray, ids: np.ndarray, batch: int
    ) -> None:
        grad3 = grad_h.reshape(batch, self.num_vars, self.embed_dim)
        for i in range(self.num_vars):
            table_param = self.tables[self.var_vocabs[i]]
            np.add.at(table_param.grad, ids[:, i], grad3[:, i, :])

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def log_prob(self, ids: np.ndarray) -> np.ndarray:
        """Log density of each row: sum of per-position conditionals."""
        ids = np.asarray(ids, dtype=np.int64)
        logits = self.forward(ids)
        total = np.zeros(ids.shape[0])
        for i in range(self.num_vars):
            lp = log_softmax(logits[i])
            total += lp[np.arange(ids.shape[0]), ids[:, i]]
        return total

    def logits_for(self, ids: np.ndarray, position: int) -> np.ndarray:
        """Logits of a single position without building every head.

        Runs the trunk once and projects only *position*'s block — the hot
        path of likelihood-weighted sampling, which sweeps positions one
        at a time over a particle batch.
        """
        ids = np.asarray(ids, dtype=np.int64)
        h = self._embed(ids)
        for li, layer in enumerate(self.hidden_layers):
            pre = layer.forward(h)
            post = np.maximum(pre, 0.0)
            use_res = (
                self.residual and li > 0 and post.shape[1] == h.shape[1]
            )
            h = post + h if use_res else post
        # Project through only the output rows feeding this block.
        lo = position * self.embed_dim
        hi = lo + self.embed_dim
        weight = (
            self.out_proj.weight.value * self.out_proj.mask
        )[:, lo:hi]
        block = h @ weight + self.out_proj.bias.value[lo:hi]
        table = self.tables[self.var_vocabs[position]].value
        return block @ table.T + self.out_bias[position].value

    def conditionals(
        self, ids: np.ndarray, position: int
    ) -> np.ndarray:
        """Probabilities ``P(x_position | x_<position)`` for each row.

        Ids at positions >= *position* may hold any valid placeholder.
        Returns a ``(batch, vocab)`` probability matrix.
        """
        lp = log_softmax(self.logits_for(ids, position))
        return np.exp(lp)

    def fit(
        self,
        data: np.ndarray,
        epochs: int = 5,
        batch_size: int = 256,
        lr: float = 1e-3,
        seed: int = 0,
        verbose: bool = False,
    ) -> List[float]:
        """Train by maximum likelihood; returns per-epoch mean NLL."""
        data = np.asarray(data, dtype=np.int64)
        optimizer = Adam(self.parameters(), lr=lr, clip_norm=5.0)
        rng = np.random.default_rng(seed)
        history: List[float] = []
        n = data.shape[0]
        for epoch in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, batch_size):
                batch = data[order[start: start + batch_size]]
                loss = self.loss_and_backward(batch)
                optimizer.step()
                epoch_loss += loss
                batches += 1
            mean_loss = epoch_loss / max(batches, 1)
            history.append(mean_loss)
            if verbose:
                print(f"epoch {epoch + 1}/{epochs} nll={mean_loss:.4f}")
        return history

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def state(self) -> Dict[str, np.ndarray]:
        arrays = {p.name: p.value for p in self.parameters()}
        arrays["_meta_var_vocabs"] = np.array(self.var_vocabs)
        arrays["_meta_vocab_sizes"] = np.array(self.vocab_sizes)
        arrays["_meta_config"] = np.array(
            [self.embed_dim, int(self.residual)] + self.hidden_sizes
        )
        return arrays

    @classmethod
    def from_state(cls, arrays: Dict[str, np.ndarray]) -> "MADE":
        config = arrays["_meta_config"]
        model = cls(
            var_vocabs=arrays["_meta_var_vocabs"].tolist(),
            vocab_sizes=arrays["_meta_vocab_sizes"].tolist(),
            embed_dim=int(config[0]),
            hidden_sizes=[int(v) for v in config[2:]],
            residual=bool(config[1]),
        )
        for param in model.parameters():
            param.value[...] = arrays[param.name]
        return model
