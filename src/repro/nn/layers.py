"""Feed-forward layers with explicit forward/backward passes.

This is the dense-network half of the substrate that replaces TensorFlow
in this reproduction (the autoregressive half lives in
:mod:`repro.nn.masked`).  Layers follow one protocol:

- ``forward(x, training)`` consumes a ``(batch, features)`` array and
  caches whatever the backward pass needs,
- ``backward(grad)`` consumes the loss gradient w.r.t. the layer output,
  accumulates parameter gradients, and returns the gradient w.r.t. the
  layer input,
- ``parameters()`` exposes :class:`Parameter` objects for the optimiser.

Exact analytic gradients, minibatch friendly, no autograd tape — the
models in the paper are small MLPs, so explicit backprop is both faster
and easier to verify (see tests/nn/test_gradients.py for finite-difference
checks).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.initializers import glorot_uniform, he_uniform


class Parameter:
    """A trainable array plus its accumulated gradient.

    Values are always float64 — the training "masters".  Derived
    representations (the fused float32 inference weights of
    :class:`~repro.nn.masked.MaskedLinear`, the float32 embedding-table
    shadows of :class:`~repro.nn.masked.MADE`) are cached against
    :attr:`version`, which every code path that rewrites :attr:`value`
    must bump via :meth:`bump_version` — the optimisers do it per step,
    the checkpoint loaders after restoring.
    """

    def __init__(self, name: str, value: np.ndarray) -> None:
        self.name = name
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.version = 0

    @property
    def size(self) -> int:
        return self.value.size

    def bump_version(self) -> None:
        """Mark :attr:`value` as mutated so derived caches rebuild."""
        self.version += 1

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Parameter({self.name}, shape={self.value.shape})"


class Layer:
    """Base class; stateless layers only override forward/backward."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        return []

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


class Linear(Layer):
    """Fully connected layer ``y = x W + b``.

    Besides the float64 training weights, the layer keeps a fused
    inference cast from :meth:`fused` — the masters cast once to the
    inference dtype and cached against the parameter version counters,
    the same discipline as
    :meth:`repro.nn.masked.MaskedLinear.fused`.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        init: str = "glorot",
        name: str = "linear",
    ) -> None:
        if init == "glorot":
            weights = glorot_uniform(rng, in_features, out_features)
        elif init == "he":
            weights = he_uniform(rng, in_features, out_features)
        else:
            raise ValueError(f"unknown init {init!r}")
        self.weight = Parameter(f"{name}.weight", weights)
        self.bias = Parameter(f"{name}.bias", np.zeros(out_features))
        self._input: Optional[np.ndarray] = None
        self._fused: Optional[tuple] = None
        self._fused_key: Optional[tuple] = None

    def fused(self, dtype=np.float32) -> tuple:
        """``(weight, bias)`` at the inference dtype, version-cached.

        Rebuilt only when an optimiser step or checkpoint restore bumps
        a parameter version — the inference hot path never casts.
        """
        key = (self.weight.version, self.bias.version, np.dtype(dtype))
        if self._fused_key != key:
            self._fused = (
                self.weight.value.astype(key[2]),
                self.bias.value.astype(key[2]),
            )
            self._fused_key = key
        return self._fused

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._input is not None, "backward before forward"
        self.weight.grad += self._input.T @ grad
        self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.value.T

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]


class ReLU(Layer):
    """Rectified linear activation, the hidden activation of LMKG-S."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return grad * self._mask


class Sigmoid(Layer):
    """Sigmoid activation, the output activation of LMKG-S."""

    def __init__(self) -> None:
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # Numerically stable piecewise formulation.
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        self._output = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._output is not None
        return grad * self._output * (1.0 - self._output)


class Dropout(Layer):
    """Inverted dropout; active only when ``training=True``."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (
            self._rng.random(x.shape) < keep
        ).astype(np.float64) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask


class Sequential(Layer):
    """Chains layers; the container behind LMKG-S and MSCN heads."""

    def __init__(self, layers: List[Layer]) -> None:
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def forward_fused(self, x: np.ndarray, dtype=np.float32) -> np.ndarray:
        """Inference-only forward on the fused parameter casts.

        Dense layers run one GEMM against their version-cached
        :meth:`Linear.fused` weights; Dropout is an identity at
        inference; the element-wise activations preserve the inference
        dtype on their own.  No backward state is recorded.
        """
        x = np.asarray(x, dtype=dtype)
        for layer in self.layers:
            if isinstance(layer, Linear):
                weight, bias = layer.fused(dtype)
                x = x @ weight
                x += bias
            elif isinstance(layer, Dropout):
                continue
            else:
                x = layer.forward(x, training=False)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())


class Embedding(Layer):
    """Lookup table mapping integer ids to dense vectors.

    The forward input is an integer array of shape ``(batch, slots)``;
    the output is ``(batch, slots * dim)`` — the concatenated embeddings,
    ready for a dense layer.  LMKG-U uses this to shrink the per-term
    input dimensionality (Section VI-B).
    """

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        rng: np.random.Generator,
        name: str = "embedding",
    ) -> None:
        from repro.nn.initializers import normal_embedding

        self.vocab_size = vocab_size
        self.dim = dim
        self.table = Parameter(
            f"{name}.table", normal_embedding(rng, vocab_size, dim)
        )
        self._ids: Optional[np.ndarray] = None

    def forward(self, ids: np.ndarray, training: bool = False) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        self._ids = ids
        batch, slots = ids.shape
        return self.table.value[ids].reshape(batch, slots * self.dim)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._ids is not None
        batch, slots = self._ids.shape
        grad3 = grad.reshape(batch, slots, self.dim)
        np.add.at(self.table.grad, self._ids, grad3)
        # Integer inputs have no gradient; return zeros of the id shape.
        return np.zeros_like(self._ids, dtype=np.float64)

    def parameters(self) -> List[Parameter]:
        return [self.table]
