"""Training losses for the estimators.

LMKG-S trains on cardinalities that were log-scaled and then min-max
scaled into [0, 1] (Section VI-A), with the *mean q-error* as the loss.
Because the scaling is affine in log space, the q-error of a prediction is
``exp(span * |pred - target|)`` where ``span = log_max - log_min``; both
the loss and its gradient are computed directly in scaled space.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class Loss:
    """Protocol: ``__call__(pred, target) -> (scalar loss, grad wrt pred)``."""

    def __call__(
        self, pred: np.ndarray, target: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        raise NotImplementedError


class MSELoss(Loss):
    """Mean squared error; the stable fallback used for ablations."""

    def __call__(
        self, pred: np.ndarray, target: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        diff = pred - target
        loss = float(np.mean(diff ** 2))
        grad = 2.0 * diff / diff.size
        return loss, grad


class QErrorLoss(Loss):
    """Mean q-error on scaled log cardinalities.

    With scaled values z = (log y - log_min) / span, a prediction ẑ has
    q-error q = exp(span * |ẑ - z|).  The exponent is clipped to keep
    early-training gradients finite; within the clip the gradient is
    exact: dq/dẑ = span * sign(ẑ - z) * q.
    """

    def __init__(self, span: float, max_exponent: float = 12.0) -> None:
        if span <= 0:
            raise ValueError("span must be positive")
        self.span = span
        self.max_exponent = max_exponent

    def __call__(
        self, pred: np.ndarray, target: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        diff = pred - target
        exponent = np.clip(
            self.span * np.abs(diff), 0.0, self.max_exponent
        )
        q = np.exp(exponent)
        loss = float(np.mean(q))
        # Zero gradient where the exponent is clipped would stall training;
        # keep the boundary slope instead.
        grad = self.span * np.sign(diff) * q / diff.size
        return loss, grad


class HuberLogLoss(Loss):
    """Huber loss in scaled log space — robust to the outliers of Fig. 5."""

    def __init__(self, delta: float = 0.1) -> None:
        self.delta = delta

    def __call__(
        self, pred: np.ndarray, target: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        diff = pred - target
        abs_diff = np.abs(diff)
        quadratic = abs_diff <= self.delta
        loss_terms = np.where(
            quadratic,
            0.5 * diff ** 2,
            self.delta * (abs_diff - 0.5 * self.delta),
        )
        loss = float(np.mean(loss_terms))
        grad = np.where(
            quadratic, diff, self.delta * np.sign(diff)
        ) / diff.size
        return loss, grad


def softmax_cross_entropy(
    logits: np.ndarray, targets: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Cross-entropy over one categorical block; returns (loss, dlogits).

    *logits* has shape ``(batch, classes)``, *targets* integer class ids of
    shape ``(batch,)``.  The mean is over the batch.  Used per-variable by
    the autoregressive models.
    """
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    batch = logits.shape[0]
    idx = (np.arange(batch), targets)
    log_probs = shifted[idx] - np.log(exp.sum(axis=1))
    loss = float(-log_probs.mean())
    grad = probs
    grad[idx] -= 1.0
    grad /= batch
    return loss, grad


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise log softmax, numerically stable."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
