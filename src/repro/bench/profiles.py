"""Benchmark profiles: how much work each experiment run does.

The paper trained on a GPU for hours; the bench suite must finish on a
laptop CPU in minutes.  Profiles trade statistical resolution for time
while keeping every experiment's *structure* identical to the paper's.

Select with the ``REPRO_BENCH_PROFILE`` environment variable:
``quick`` (default, ~3-5 min total — CI-friendly), ``standard``
(~30-45 min, the profile behind EXPERIMENTS.md), ``full`` (closest to
the paper's budgets, an hour or more).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class BenchProfile:
    """All tunable budgets of the bench suite."""

    name: str
    dataset_scale: float
    query_sizes: Tuple[int, ...]          # paper: (2, 3, 5, 8)
    lmkgu_sizes: Tuple[int, ...]          # sizes LMKG-U models are built for
    per_bucket: int                       # test queries per result bucket
    train_queries_per_shape: int
    lmkgs_hidden: Tuple[int, ...]
    lmkgs_epochs: int
    lmkgu_hidden: Tuple[int, ...]
    lmkgu_epochs: int
    lmkgu_samples: int
    lmkgu_particles: int
    mscn_epochs: int
    mscn_big_samples: int                 # paper: 1000 (MSCN-1k)
    walks_per_run: int
    sampling_runs: int                    # paper: 30


QUICK = BenchProfile(
    name="quick",
    dataset_scale=0.35,
    query_sizes=(2, 3),
    lmkgu_sizes=(2, 3),
    per_bucket=4,
    train_queries_per_shape=300,
    lmkgs_hidden=(128, 128),
    lmkgs_epochs=25,
    lmkgu_hidden=(64, 64),
    lmkgu_epochs=2,
    lmkgu_samples=3_000,
    lmkgu_particles=64,
    mscn_epochs=25,
    mscn_big_samples=200,
    walks_per_run=20,
    sampling_runs=5,
)

STANDARD = BenchProfile(
    name="standard",
    dataset_scale=1.0,
    query_sizes=(2, 3, 5, 8),
    lmkgu_sizes=(2, 3, 5, 8),
    per_bucket=8,
    train_queries_per_shape=900,
    lmkgs_hidden=(256, 256),
    lmkgs_epochs=60,
    lmkgu_hidden=(128, 128),
    lmkgu_epochs=3,
    lmkgu_samples=6_000,
    lmkgu_particles=128,
    mscn_epochs=60,
    mscn_big_samples=1_000,
    walks_per_run=30,
    sampling_runs=10,
)

FULL = BenchProfile(
    name="full",
    dataset_scale=1.0,
    query_sizes=(2, 3, 5, 8),
    lmkgu_sizes=(2, 3, 5, 8),
    per_bucket=15,
    train_queries_per_shape=2_000,
    lmkgs_hidden=(512, 512),
    lmkgs_epochs=200,
    lmkgu_hidden=(256, 256),
    lmkgu_epochs=5,
    lmkgu_samples=20_000,
    lmkgu_particles=256,
    mscn_epochs=100,
    mscn_big_samples=1_000,
    walks_per_run=100,
    sampling_runs=30,
)

_PROFILES = {"quick": QUICK, "standard": STANDARD, "full": FULL}


def active_profile() -> BenchProfile:
    """The profile selected by REPRO_BENCH_PROFILE (default quick)."""
    name = os.environ.get("REPRO_BENCH_PROFILE", "quick").lower()
    profile = _PROFILES.get(name)
    if profile is None:
        raise KeyError(
            f"unknown bench profile {name!r}; one of {sorted(_PROFILES)}"
        )
    return profile
