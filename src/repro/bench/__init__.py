"""Benchmark harness: profiles, per-dataset contexts, and reporting."""

from repro.bench.harness import (
    ESTIMATOR_ORDER,
    BenchContext,
    get_context,
)
from repro.bench.profiles import (
    FULL,
    QUICK,
    STANDARD,
    BenchProfile,
    active_profile,
)
from repro.bench.reporting import format_bytes, format_table, print_table

__all__ = [
    "ESTIMATOR_ORDER",
    "BenchContext",
    "get_context",
    "FULL",
    "QUICK",
    "STANDARD",
    "BenchProfile",
    "active_profile",
    "format_bytes",
    "format_table",
    "print_table",
]
