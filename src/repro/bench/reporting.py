"""Table and series printers for benchmark output.

Every bench prints rows in the same layout the paper's tables/figures
use, so paper-vs-measured comparison (EXPERIMENTS.md) is line-by-line.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or 0 < abs(value) < 1e-2:
            return f"{value:.2e}"
        return f"{value:.2f}"
    return str(value)


def print_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
) -> None:
    print()
    print(format_table(headers, rows, title=title))
    print()


def write_json(path, payload: dict) -> None:
    """Persist a benchmark result dict as pretty-printed JSON.

    Used by the throughput benches (``BENCH_store.json``) so successive
    runs leave a machine-readable perf trajectory next to the text
    tables.
    """
    import json
    from pathlib import Path

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def merge_json(path, sections: dict) -> dict:
    """Merge *sections* into the JSON result file at *path*.

    Top-level keys in *sections* replace the same keys in the existing
    file; all other sections survive.  This is how independent benches
    (`bench_store_throughput`, `bench_ext_adaptivity`, the maintenance
    bench) share one ``BENCH_store.json`` without clobbering each
    other's numbers.  Returns the merged payload.
    """
    import json
    from pathlib import Path

    path = Path(path)
    merged: dict = {}
    if path.is_file():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            existing = None
        if isinstance(existing, dict):
            merged.update(existing)
    merged.update(sections)
    write_json(path, merged)
    return merged


def format_bytes(num_bytes: int) -> str:
    """Human-readable size like the paper's Table II (KB/MB)."""
    if num_bytes >= 1_000_000:
        return f"{num_bytes / 1_000_000:.1f}MB"
    if num_bytes >= 1_000:
        return f"{num_bytes / 1_000:.1f}KB"
    return f"{num_bytes}B"
