"""Shared benchmark harness: builds, trains, and caches every estimator.

One :class:`BenchContext` per dataset holds the store, the labelled
workloads, and the trained models; contexts are memoised at module level
so the bench files (one per table/figure) reuse each other's training
work within a pytest session.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import (
    BayesNetEstimator,
    CharacteristicSets,
    Impr,
    IndependenceEstimator,
    JSUB,
    MSCN,
    MSCNConfig,
    SumRDF,
    WanderJoin,
)
from repro.bench.profiles import BenchProfile, active_profile
from repro.core.framework import LMKG
from repro.core.lmkg_s import LMKGSConfig
from repro.core.lmkg_u import LMKGU, LMKGUConfig
from repro.core.metrics import AccuracySummary, summarize
from repro.datasets import load_dataset
from repro.rdf.store import TripleStore
from repro.sampling import (
    QueryRecord,
    Workload,
    generate_test_queries,
    generate_workload,
)

#: estimator display order, matching the paper's legends
ESTIMATOR_ORDER = (
    "impr",
    "jsub",
    "sumrdf",
    "wj",
    "cset",
    "mscn-0",
    "mscn-1k",
    "lmkg-u",
    "lmkg-s",
)


class BenchContext:
    """All evaluation state for one dataset under one profile."""

    def __init__(self, dataset: str, profile: BenchProfile) -> None:
        self.dataset = dataset
        self.profile = profile
        self.store: TripleStore = load_dataset(
            dataset, scale=profile.dataset_scale, seed=0
        )
        self._test_workloads: Dict[Tuple[str, int], Workload] = {}
        self._train_workloads: Dict[Tuple[str, int], Workload] = {}
        self._lmkg_s: Optional[LMKG] = None
        self._lmkg_u: Dict[Tuple[str, int], LMKGU] = {}
        self._baselines: Dict[str, object] = {}
        self._mscn: Dict[int, MSCN] = {}

    # ------------------------------------------------------------------
    # Feasible query sizes
    # ------------------------------------------------------------------

    def sizes_for(self, topology: str) -> Tuple[int, ...]:
        """Profile query sizes that actually exist in this dataset.

        A chain of length k requires directed walks of that length; a
        dataset whose schema has bounded depth (LUBM's org hierarchy)
        cannot host arbitrarily long chains, so sizes whose instance
        universe is too small to sample from are dropped.  The bench
        output marks such cells as absent.
        """
        key = f"_sizes_{topology}"
        cached = getattr(self, key, None)
        if cached is not None:
            return cached
        from repro.sampling import (
            count_chain_instances,
            count_star_instances,
        )

        counter = (
            count_star_instances
            if topology == "star"
            else count_chain_instances
        )
        feasible = tuple(
            size
            for size in self.profile.query_sizes
            if counter(self.store, size) >= 100
        )
        setattr(self, key, feasible)
        return feasible

    # ------------------------------------------------------------------
    # Workloads
    # ------------------------------------------------------------------

    def test_workload(self, topology: str, size: int) -> Workload:
        key = (topology, size)
        if key not in self._test_workloads:
            self._test_workloads[key] = generate_test_queries(
                self.store,
                topology,
                size,
                per_bucket=self.profile.per_bucket,
                seed=5000 + 13 * size + (7 if topology == "star" else 0),
            )
        return self._test_workloads[key]

    def train_workload(self, topology: str, size: int) -> Workload:
        key = (topology, size)
        if key not in self._train_workloads:
            self._train_workloads[key] = generate_workload(
                self.store,
                topology,
                size,
                num_queries=self.profile.train_queries_per_shape,
                seed=100 + 13 * size + (7 if topology == "star" else 0),
            )
        return self._train_workloads[key]

    def training_records(
        self, sizes: Optional[Sequence[int]] = None
    ) -> List[QueryRecord]:
        sizes = tuple(sizes or self.profile.query_sizes)
        records: List[QueryRecord] = []
        for topology in ("star", "chain"):
            feasible = set(self.sizes_for(topology))
            for size in sizes:
                if size not in feasible:
                    continue
                records.extend(self.train_workload(topology, size).records)
        return records

    # ------------------------------------------------------------------
    # Learned models
    # ------------------------------------------------------------------

    def lmkg_s(self) -> LMKG:
        """The paper's comparison configuration: SG-Encoding + size
        grouping, one compound model set per dataset."""
        if self._lmkg_s is None:
            framework = LMKG(
                self.store,
                model_type="supervised",
                grouping="size",
                lmkgs_config=LMKGSConfig(
                    hidden_sizes=self.profile.lmkgs_hidden,
                    epochs=self.profile.lmkgs_epochs,
                    seed=0,
                ),
            )
            framework.fit(
                shapes=[
                    (topo, size)
                    for topo in ("star", "chain")
                    for size in self.sizes_for(topo)
                ],
                workload=self.training_records(),
            )
            self._lmkg_s = framework
        return self._lmkg_s

    def lmkg_u(self, topology: str, size: int) -> LMKGU:
        key = (topology, size)
        if key not in self._lmkg_u:
            model = LMKGU(
                self.store,
                topology,
                size,
                LMKGUConfig(
                    embed_dim=32,
                    hidden_sizes=self.profile.lmkgu_hidden,
                    epochs=self.profile.lmkgu_epochs,
                    training_samples=self.profile.lmkgu_samples,
                    particles=self.profile.lmkgu_particles,
                    seed=0,
                ),
            )
            model.fit()
            self._lmkg_u[key] = model
        return self._lmkg_u[key]

    def lmkg_u_available(self) -> bool:
        """The paper drops LMKG-U for YAGO (huge unique-term domain)."""
        return self.dataset != "yago"

    def mscn(self, num_samples: int) -> MSCN:
        if num_samples not in self._mscn:
            model = MSCN(
                self.store,
                max_size=max(self.profile.query_sizes),
                config=MSCNConfig(
                    num_samples=num_samples,
                    epochs=self.profile.mscn_epochs,
                    seed=0,
                ),
            )
            model.fit(self.training_records())
            self._mscn[num_samples] = model
        return self._mscn[num_samples]

    def baseline(self, name: str):
        if name not in self._baselines:
            p = self.profile
            builders = {
                "cset": lambda: CharacteristicSets(self.store),
                "sumrdf": lambda: SumRDF(self.store, target_buckets=256),
                "indep": lambda: IndependenceEstimator(self.store),
                "bayesnet": lambda: BayesNetEstimator(self.store),
                "wj": lambda: WanderJoin(
                    self.store, p.walks_per_run, p.sampling_runs, seed=1
                ),
                "jsub": lambda: JSUB(
                    self.store, p.walks_per_run, p.sampling_runs, seed=2
                ),
                "impr": lambda: Impr(
                    self.store, p.walks_per_run, p.sampling_runs, seed=3
                ),
            }
            self._baselines[name] = builders[name]()
        return self._baselines[name]

    # ------------------------------------------------------------------
    # Uniform estimation API
    # ------------------------------------------------------------------

    def estimator_for(self, name: str, workload: Workload):
        """Resolve an estimator name to its (trained) Estimator.

        Every estimator in the evaluation — the LMKG façade, the MSCN
        variants, and the synopsis/sampling baselines — speaks the
        unified :class:`~repro.core.estimator.Estimator` protocol, so
        callers need the *workload* only here, for the models that are
        trained per (topology, size).
        """
        contextual = {
            "lmkg-s": self.lmkg_s,
            "lmkg-u": lambda: self.lmkg_u(
                workload.topology, workload.size
            ),
            "mscn-0": lambda: self.mscn(0),
            "mscn-1k": lambda: self.mscn(self.profile.mscn_big_samples),
        }
        builder = contextual.get(name)
        if builder is not None:
            return builder()
        return self.baseline(name)

    def estimate_all(
        self, estimator: str, workload: Workload
    ) -> np.ndarray:
        """Estimates of one named estimator over a workload.

        One ``estimate_batch`` call through the Estimator protocol:
        learned estimators run their vectorized path (one featurize +
        one forward per model), the sampling/synopsis baselines loop via
        the shared per-query fallback — the harness no longer cares
        which is which.
        """
        queries = [r.query for r in workload]
        return self.estimator_for(estimator, workload).estimate_batch(
            queries
        )

    def evaluate(
        self, estimator: str, workload: Workload
    ) -> AccuracySummary:
        estimates = self.estimate_all(estimator, workload)
        return summarize(estimates, workload.cardinalities())

    def timed_estimates(
        self, estimator: str, workload: Workload
    ) -> Tuple[np.ndarray, float]:
        """(estimates, mean milliseconds per query)."""
        start = time.perf_counter()
        estimates = self.estimate_all(estimator, workload)
        elapsed = time.perf_counter() - start
        return estimates, elapsed * 1000.0 / max(len(workload), 1)

    def estimators(self) -> List[str]:
        """The paper's competitor set, respecting the YAGO exclusion."""
        names = list(ESTIMATOR_ORDER)
        if not self.lmkg_u_available():
            names.remove("lmkg-u")
        return names


def build_throughput_store(
    num_triples: int = 100_000, seed: int = 0
) -> TripleStore:
    """A synthetic hub-heavy graph of roughly *num_triples* triples.

    Used by ``bench_store_throughput`` (the ``BENCH_store.json``
    producer): the SWDF-like generator is scaled so star/chain workloads
    at the bench sizes are dense enough to label.
    """
    from repro.datasets.swdf import generate_swdf

    # The SWDF generator yields ~1.2k triples per conference at the
    # default paper density.
    scale = max(num_triples / 14_600.0, 0.2)
    return generate_swdf(
        conferences=max(2, int(12 * scale)),
        papers_per_conference=110,
        people_pool=max(50, int(900 * scale)),
        seed=seed,
    )


_contexts: Dict[Tuple[str, str], BenchContext] = {}


def get_context(dataset: str) -> BenchContext:
    """Memoised per-dataset context under the active profile."""
    profile = active_profile()
    key = (dataset, profile.name)
    if key not in _contexts:
        _contexts[key] = BenchContext(dataset, profile)
    return _contexts[key]
