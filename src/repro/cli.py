"""Command-line interface: ``python -m repro <command>``.

Subcommands:

- ``stats``   — Table I-style statistics for a built-in or N-Triples graph,
- ``train``   — train an LMKG model and write a checkpoint,
- ``estimate``— estimate a SPARQL query with a trained checkpoint,
- ``workload``— generate a labelled query workload as TSV,
- ``label``   — generate a labelled training workload with the
  cardinality labeling sharded across worker processes that share one
  memory-mapped snapshot (``--workers N``; ``--workers 0`` uses every
  core, ``--snapshot DIR`` attaches to an existing snapshot),
- ``plan``    — pick a join order for a SPARQL query and compare it
  against the true-optimal order,
- ``snapshot``— persist a graph as a memory-mapped columnar snapshot
  (``snapshot save``), load/inspect one without per-triple work
  (``snapshot load``; ``--no-verify`` skips the checksum pass), and
  describe one from its manifest alone — format version, flat/sharded
  layout, per-shard row counts and CRC32s — without attaching a single
  column (``snapshot info``; ``--json`` for machines),
- ``maintain``— incrementally maintain a trained estimator over a
  mutating graph (``maintain run``): diff the live store against the
  last materialization's watermark, relabel only the affected training
  queries, fine-tune only the touched models from the previous
  generation's checkpoint, and publish a new versioned generation
  (checkpoint + snapshot + watermark) under ``--state-dir`` — with
  ``--reload-url`` the new generation is handed to a running server's
  ``/admin/reload`` for a zero-downtime swap.  The first run (or
  ``--full``) materializes everything from scratch; ``--dry-run``
  prints the plan without touching anything; ``maintain status``
  reports the watermark, freshness verdict, and pending delta,
- ``serve``   — serve the batched estimation API over HTTP with
  micro-batching across concurrent requests (``POST /estimate``,
  ``GET /healthz``, ``GET /stats``); attaches to a store snapshot
  (``--snapshot DIR``), answers through an ``LMKG.save`` checkpoint
  (``--checkpoint DIR``) or deterministic startup-fit defaults, and
  optionally shards estimation across *supervised* worker processes
  that share the snapshot read-only (``--workers N``): dead or hung
  workers (``--request-timeout``) are restarted with exponential
  backoff under ``--restart-budget`` and their in-flight requests
  retried on siblings.  Model-path failures degrade onto the
  independence baseline behind a circuit breaker
  (``--breaker-threshold`` / ``--breaker-reset-s``; ``--no-fallback``
  disables), uncovered query shapes are 422'd at parse time
  (``--no-admission`` disables), and ``POST /admin/reload`` or SIGHUP
  hot-swaps the checkpoint with zero downtime.  ``--faults`` injects
  deterministic chaos (see :mod:`repro.serve.faults`).
  Micro-batching knobs: ``--max-batch``, ``--max-delay-ms``,
  ``--max-queue``.  SIGTERM drains gracefully: new requests get 503,
  in-flight batches flush, then the process exits 0,
- ``replay``  — prove the stack under fire (``repro.replay``):
  ``replay record`` generates a recorded trace (shape mixes,
  Zipf-skewed popularity, Poisson arrivals); ``replay run`` fires it
  **open-loop** at a server — self-hosted in-process (``--snapshot``,
  required for chaos) or external (``--url``) — optionally racing a
  scripted chaos timeline (``at 5s: kill worker; at 12s: maintain``,
  see :mod:`repro.replay.timeline`), grades the outcome against SLOs
  (p50/p99/p99.9, shed rate, achieved vs. offered) and exits nonzero
  on violation; ``replay report`` pretty-prints a saved report.

Examples::

    python -m repro stats --dataset lubm
    python -m repro train --dataset lubm --model lmkg-s \
        --shapes star:2 chain:2 --out /tmp/lubm_s.npz
    python -m repro estimate --dataset lubm --checkpoint /tmp/lubm_s.npz \
        --query 'SELECT ?x WHERE { ?x <ub:advisor> ?y . ?x <ub:takesCourse> ?z . }'
    python -m repro workload --dataset swdf --topology star --size 3 \
        --count 100
    python -m repro label --dataset swdf --topology star --size 3 \
        --count 1000 --workers 4 --out /tmp/train.tsv
    python -m repro snapshot save --dataset lubm --out /tmp/lubm_snap
    python -m repro snapshot load --dir /tmp/lubm_snap
    python -m repro snapshot info --dir /tmp/lubm_snap --json
    python -m repro maintain run --snapshot /tmp/lubm_snap \
        --state-dir /tmp/lubm_maintain --reload-url \
        http://127.0.0.1:8310/admin/reload
    python -m repro maintain status --snapshot /tmp/lubm_snap \
        --state-dir /tmp/lubm_maintain
    python -m repro serve --snapshot /tmp/lubm_snap --port 8310 \
        --max-batch 128 --max-delay-ms 2 --workers 2
    python -m repro replay record --snapshot /tmp/lubm_snap \
        --rate 80 --duration 30 --out /tmp/lubm.trace
    python -m repro replay run --trace /tmp/lubm.trace \
        --snapshot /tmp/lubm_snap --workers 2 \
        --timeline 'at 5s: kill worker; at 10s: mutate 400; at 12s: maintain' \
        --report /tmp/slo.json
    python -m repro replay report /tmp/slo.json
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence, Tuple

from repro.core.lmkg_s import LMKGS, LMKGSConfig
from repro.core.lmkg_u import LMKGU, LMKGUConfig
from repro.datasets import DATASET_NAMES, load_dataset
from repro.rdf import (
    compute_stats,
    count_bgp,
    load_ntriples,
    parse_sparql,
)
from repro.rdf.store import TripleStore
from repro.sampling import generate_workload


def _load_store(args) -> TripleStore:
    if args.ntriples:
        return load_ntriples(args.ntriples)
    return load_dataset(args.dataset, scale=args.scale)


def _add_store_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        choices=DATASET_NAMES,
        default="lubm",
        help="built-in synthetic dataset",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0, help="dataset scale factor"
    )
    parser.add_argument(
        "--ntriples",
        help="load this N-Triples file instead of a built-in dataset",
    )


def _parse_shapes(values: Sequence[str]) -> List[Tuple[str, int]]:
    shapes = []
    for value in values:
        try:
            topology, size = value.split(":")
            shapes.append((topology, int(size)))
        except ValueError:
            raise SystemExit(
                f"bad shape {value!r}; expected topology:size like star:2"
            )
    return shapes


def cmd_stats(args) -> int:
    store = _load_store(args)
    stats = compute_stats(store, args.dataset or "graph")
    print(f"triples:         {stats.num_triples}")
    print(f"entities:        {stats.num_entities}")
    print(f"predicates:      {stats.num_predicates}")
    print(f"max out-degree:  {stats.max_out_degree}")
    print(f"max in-degree:   {stats.max_in_degree}")
    print(f"mean out-degree: {stats.mean_out_degree:.2f}")
    print(f"degree gini:     {stats.degree_gini:.3f}")
    return 0


def cmd_train(args) -> int:
    store = _load_store(args)
    shapes = _parse_shapes(args.shapes)
    if args.model == "lmkg-s-range":
        from repro.core.ranges import LMKGSRange, generate_range_workload

        topologies = sorted({t for t, _ in shapes})
        max_size = max(s for _, s in shapes)
        model = LMKGSRange(
            store,
            topologies,
            max_size,
            LMKGSConfig(
                hidden_sizes=tuple(args.hidden),
                epochs=args.epochs,
                seed=args.seed,
            ),
        )
        records = []
        for topology, size in shapes:
            records.extend(
                generate_range_workload(
                    store, topology, size, args.queries, seed=args.seed
                )
            )
        history = model.fit(records)
        print(
            f"trained LMKGS-Range on {len(records)} range queries; "
            f"final loss {history.final_loss:.4f}"
        )
        model.save(args.out)
        print(f"checkpoint written to {args.out}")
        return 0
    if args.model == "lmkg-s":
        topologies = sorted({t for t, _ in shapes})
        max_size = max(s for _, s in shapes)
        model = LMKGS(
            store,
            topologies,
            max_size,
            LMKGSConfig(
                hidden_sizes=tuple(args.hidden),
                epochs=args.epochs,
                seed=args.seed,
            ),
        )
        records = []
        for topology, size in shapes:
            workload = generate_workload(
                store, topology, size, args.queries, seed=args.seed
            )
            records.extend(workload.records)
        history = model.fit(records)
        print(
            f"trained LMKG-S on {len(records)} queries; "
            f"final loss {history.final_loss:.4f}"
        )
    else:
        if len(shapes) != 1:
            raise SystemExit("lmkg-u trains one topology:size per model")
        topology, size = shapes[0]
        model = LMKGU(
            store,
            topology,
            size,
            LMKGUConfig(
                hidden_sizes=tuple(args.hidden),
                epochs=args.epochs,
                training_samples=args.queries,
                seed=args.seed,
            ),
        )
        history = model.fit()
        print(
            f"trained LMKG-U on {args.queries} instances; "
            f"final NLL {history[-1]:.4f}"
        )
    model.save(args.out)
    print(f"checkpoint written to {args.out}")
    return 0


def cmd_estimate(args) -> int:
    store = _load_store(args)
    if store.dictionary is None:
        raise SystemExit("estimate requires a dictionary-encoded store")
    if args.model == "lmkg-s-range":
        from repro.core.ranges import (
            LMKGSRange,
            count_range_query,
            parse_sparql_range,
        )

        query = parse_sparql_range(args.query, store.dictionary)
        model = LMKGSRange.load(args.checkpoint, store)
        estimate = model.estimate(query)
        truth = count_range_query(store, query) if args.exact else None
    else:
        query = parse_sparql(args.query, store.dictionary)
        if args.model == "lmkg-s":
            model = LMKGS.load(args.checkpoint, store)
        else:
            model = LMKGU.load(args.checkpoint, store)
        estimate = model.estimate(query)
        truth = count_bgp(store, query) if args.exact else None
    print(f"estimate: {estimate:.1f}")
    if truth is not None:
        ratio = max(estimate, 1) / max(truth, 1)
        q = max(ratio, 1 / ratio)
        print(f"exact:    {truth}")
        print(f"q-error:  {q:.2f}")
    return 0


def cmd_workload(args) -> int:
    store = _load_store(args)
    workload = generate_workload(
        store, args.topology, args.size, args.count, seed=args.seed
    )
    if args.out:
        from repro.sampling.io import save_workload

        written = save_workload(args.out, workload)
        print(f"{written} queries written to {args.out}")
        return 0
    print("topology\tsize\tcardinality\tquery")
    for record in workload:
        print(
            f"{record.topology}\t{record.size}\t"
            f"{record.cardinality}\t{record.query!r}"
        )
    return 0


def cmd_label(args) -> int:
    from repro.rdf.columnar import SnapshotError

    if args.workers < 0:
        raise SystemExit(
            f"--workers must be >= 0 (0 = one per core), "
            f"got {args.workers}"
        )
    workers = args.workers if args.workers > 0 else None
    if args.snapshot:
        try:
            store = TripleStore.load_snapshot(args.snapshot)
        except SnapshotError as exc:
            raise SystemExit(f"snapshot load failed: {exc}")
        snapshot_dir = args.snapshot
    else:
        store = _load_store(args)
        snapshot_dir = None
    start = time.perf_counter()
    workload = generate_workload(
        store,
        args.topology,
        args.size,
        args.count,
        seed=args.seed,
        workers=workers,
        snapshot_dir=snapshot_dir,
    )
    elapsed = time.perf_counter() - start
    qps = len(workload) / elapsed if elapsed > 0 else float("inf")
    mode = (
        "serial"
        if (workers == 1)
        else f"{workers or 'all-core'} workers, shared snapshot"
    )
    print(
        f"labelled {len(workload)} {args.topology}:{args.size} queries "
        f"in {elapsed:.2f} s ({qps:.1f} q/s, {mode})"
    )
    if args.out:
        from repro.sampling.io import save_workload

        written = save_workload(args.out, workload)
        print(f"{written} queries written to {args.out}")
    return 0


def cmd_plan(args) -> int:
    from repro.baselines import BayesNetEstimator, IndependenceEstimator
    from repro.optimizer import (
        Optimizer,
        cout_cost,
        dp_best_order,
        execute_order,
        true_cost_fn,
    )

    store = _load_store(args)
    if store.dictionary is None:
        raise SystemExit("plan requires a dictionary-encoded store")
    query = parse_sparql(args.query, store.dictionary)
    if len(query.triples) < 2:
        raise SystemExit("planning needs at least two triple patterns")
    oracle = true_cost_fn(store)
    if args.estimator == "exact":
        optimizer = Optimizer(oracle)
    elif args.estimator == "indep":
        optimizer = Optimizer(IndependenceEstimator(store))
    else:
        optimizer = Optimizer(BayesNetEstimator(store))
    plan = optimizer.optimize(query)
    optimal = dp_best_order(query, oracle)
    chosen_cost = cout_cost(query, plan.order, oracle)
    print(f"chosen order:  {plan.order} (estimated cost {plan.cost:.1f})")
    print(f"optimal order: {optimal.order}")
    print(f"true C_out:    chosen {chosen_cost:.1f}, optimal {optimal.cost:.1f}")
    if optimal.cost > 0:
        print(f"suboptimality: {chosen_cost / optimal.cost:.2f}x")
    if args.execute:
        execution = execute_order(store, query, plan.order)
        print(
            f"executed:      {execution.result_size} results, "
            f"{execution.probes} index probes, "
            f"intermediates {list(execution.intermediate_sizes)}"
        )
    return 0


def cmd_snapshot_save(args) -> int:
    if args.shards is not None and args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    store = _load_store(args)
    start = time.perf_counter()
    manifest = store.save_snapshot(
        args.out, shards=args.shards, shard_by=args.shard_by
    )
    elapsed = time.perf_counter() - start
    layout = (
        f"{args.shards} shard(s) by {args.shard_by}"
        if args.shards is not None
        else "single snapshot"
    )
    print(
        f"{len(store)} triples snapshotted to {args.out} "
        f"({layout}) in {elapsed * 1000:.1f} ms"
    )
    print(f"manifest: {manifest}")
    return 0


def cmd_snapshot_load(args) -> int:
    from repro.rdf.columnar import SnapshotError

    mmap_mode = None if args.eager else "r"
    start = time.perf_counter()
    try:
        store = TripleStore.load_snapshot(
            args.dir, mmap_mode=mmap_mode, verify=not args.no_verify
        )
    except SnapshotError as exc:
        raise SystemExit(f"snapshot load failed: {exc}")
    elapsed = time.perf_counter() - start
    mode = "eager" if args.eager else "memory-mapped"
    print(f"loaded {args.dir} ({mode}) in {elapsed * 1000:.2f} ms")
    print(f"triples:     {len(store)}")
    print(f"nodes:       {store.num_nodes}")
    print(f"predicates:  {store.num_predicates}")
    print(f"dictionary:  {'yes' if store.dictionary is not None else 'no'}")
    return 0


def cmd_snapshot_info(args) -> int:
    import json

    from repro.rdf.backend import (
        read_sharded_manifest,
        snapshot_format,
    )
    from repro.rdf.columnar import SnapshotError, read_manifest

    try:
        layout = snapshot_format(args.dir)
        if layout == "repro-sharded":
            manifest = read_sharded_manifest(args.dir)
        else:
            manifest = read_manifest(args.dir)
    except SnapshotError as exc:
        raise SystemExit(f"snapshot inspection failed: {exc}")
    info = {
        "directory": str(args.dir),
        "format": manifest.get("format"),
        "version": manifest.get("version"),
        "layout": "sharded" if layout == "repro-sharded" else "flat",
        "num_triples": manifest.get("num_triples"),
        "has_dictionary": bool(manifest.get("has_dictionary")),
        "dictionary_checksum": manifest.get("dictionary_checksum"),
    }
    if info["layout"] == "sharded":
        info["num_shards"] = manifest["num_shards"]
        info["shard_by"] = manifest["shard_by"]
        info["shards"] = [
            {
                "directory": entry["directory"],
                "num_triples": entry["num_triples"],
                "crc32": entry["checksum"],
            }
            for entry in manifest["shards"]
        ]
    else:
        info["crc32"] = manifest.get("checksum")
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    print(f"snapshot:    {args.dir}")
    print(
        f"format:      {info['format']} v{info['version']} "
        f"({info['layout']})"
    )
    print(f"triples:     {info['num_triples']}")
    if info["has_dictionary"]:
        print(
            f"dictionary:  yes (checksum "
            f"{info['dictionary_checksum']})"
        )
    else:
        print("dictionary:  no")
    if info["layout"] == "sharded":
        print(f"shards:      {info['num_shards']} by {info['shard_by']}")
        for sid, entry in enumerate(info["shards"]):
            print(
                f"  shard {sid}: {entry['directory']}  "
                f"rows={entry['num_triples']}  "
                f"crc32={entry['crc32']}"
            )
    else:
        print(f"crc32:       {info['crc32']}")
    return 0


def _make_maintenance_runner(args):
    from repro.maintain import FreshnessPolicy, MaintenanceRunner
    from repro.rdf.columnar import SnapshotError

    if args.snapshot:
        try:
            store = TripleStore.load_snapshot(args.snapshot)
        except SnapshotError as exc:
            raise SystemExit(f"snapshot load failed: {exc}")
    else:
        store = _load_store(args)
    if store.dictionary is None:
        raise SystemExit(
            "maintain requires a dictionary-encoded store"
        )
    return MaintenanceRunner(
        store,
        args.state_dir,
        shapes=_parse_shapes(args.shapes),
        queries_per_shape=args.queries,
        epochs=args.epochs,
        finetune_epochs=args.finetune_epochs,
        hidden_sizes=tuple(args.hidden),
        seed=args.seed,
        grouping=args.grouping,
        policy=FreshnessPolicy(
            warn_after=args.freshness_warn,
            error_after=args.freshness_error,
        ),
    )


def cmd_maintain_run(args) -> int:
    import json

    from repro.maintain import MaintenanceError

    runner = _make_maintenance_runner(args)
    try:
        report = runner.run(
            full=args.full,
            dry_run=args.dry_run,
            reload_url=args.reload_url,
        )
    except MaintenanceError as exc:
        raise SystemExit(f"maintenance run failed: {exc}")
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0
    plan = report.plan or {}
    print(
        f"action:      {report.action}"
        + (f" ({plan.get('reason')})" if plan.get("reason") else "")
    )
    print(f"generation:  {report.run}")
    print(f"delta:       {plan.get('num_delta', 0)} triples")
    if report.relabeled:
        relabelled = ", ".join(
            f"{shape}={count}"
            for shape, count in sorted(report.relabeled.items())
        )
        print(f"relabelled:  {relabelled}")
    if report.finetune:
        models = report.finetune.get("models", {})
        tuned = ", ".join(sorted(map(str, models))) or "none"
        print(
            f"fine-tuned:  {tuned} "
            f"({report.finetune.get('epochs')} epoch(s))"
        )
    if report.checkpoint_dir:
        print(f"checkpoint:  {report.checkpoint_dir}")
    if report.snapshot_dir:
        print(f"snapshot:    {report.snapshot_dir}")
    if report.reload_response is not None:
        print(f"reload:      {report.reload_response.get('status')}")
    print(f"elapsed:     {report.seconds:.2f} s")
    return 0


def cmd_maintain_status(args) -> int:
    import json

    runner = _make_maintenance_runner(args)
    status = runner.status()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    watermark = status["watermark"]
    freshness = status["freshness"]
    plan = status["plan"]
    store_info = status["store"]
    if watermark is None:
        print("watermark:   none (never materialized; run maintain run)")
    else:
        print(
            f"watermark:   generation {watermark['run']} at "
            f"{watermark['num_triples']} triples"
        )
    print(
        f"store:       {store_info['num_triples']} triples, "
        f"{store_info['num_nodes']} nodes, "
        f"{store_info['num_predicates']} predicates"
    )
    print(
        f"freshness:   {freshness['status']} "
        f"(lag {freshness['lag_triples']} triples, "
        f"warn after {freshness['thresholds']['warn_after']}, "
        f"error after {freshness['thresholds']['error_after']})"
    )
    if plan["full"]:
        print(f"next run:    full rebuild ({plan['reason']})")
    elif not plan["stale_shapes"]:
        print("next run:    noop (materialization is current)")
    else:
        shapes = ", ".join(
            f"{t}:{s}" for t, s in plan["stale_shapes"]
        )
        print(
            f"next run:    incremental over {shapes} "
            f"({plan['num_delta']} delta triples)"
        )
    return 0


def cmd_maintain_gc(args) -> int:
    import json

    from repro.maintain import GCError, WatermarkError, gc_generations

    try:
        report = gc_generations(
            args.state_dir, keep=args.keep, dry_run=args.dry_run
        )
    except (GCError, WatermarkError) as exc:
        raise SystemExit(f"maintain gc refused: {exc}")
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0
    verb = "would remove" if report.dry_run else "removed"
    print(f"live:        generation {report.live} (never collected)")
    print(
        "kept:        "
        + (", ".join(str(run) for run in report.kept) or "none")
    )
    print(
        f"{verb}:     "
        + (", ".join(str(run) for run in report.removed) or "nothing")
    )
    for path in report.removed_paths:
        print(f"  {path}")
    return 0


def cmd_serve(args) -> int:
    import os
    import signal
    import tempfile
    import threading
    from pathlib import Path

    from repro.baselines.independence import IndependenceEstimator
    from repro.serve import (
        BatchScheduler,
        CircuitBreaker,
        EstimatorService,
        FaultSpec,
        FaultSpecError,
        FitDefaults,
        ResilientBackend,
        ServiceError,
        ServingRuntime,
        ShapeManifest,
        SupervisedPool,
        SupervisorError,
        make_server,
        save_checkpoint,
    )

    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    if args.shards is not None and args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    fault_spec = None
    if args.faults:
        text = args.faults
        if os.path.isfile(text):
            text = Path(text).read_text()
        try:
            fault_spec = FaultSpec.from_json(text)
        except FaultSpecError as exc:
            raise SystemExit(f"--faults: {exc}")
    fit_defaults = FitDefaults(
        queries_per_shape=args.fit_queries, epochs=args.fit_epochs
    )
    snapshot_dir = args.snapshot
    shard_tempdir = None
    if args.shards is not None:
        from repro.rdf.backend import SnapshotError, snapshot_format

        # Re-shard the snapshot into a scratch directory so the service
        # and every pool worker attach the sharded layout.  A snapshot
        # that is already sharded the right way is served in place.
        try:
            already = snapshot_format(args.snapshot) == "repro-sharded"
        except SnapshotError as exc:
            raise SystemExit(f"snapshot inspection failed: {exc}")
        resharded = True
        if already:
            from repro.rdf.backend import read_sharded_manifest

            manifest = read_sharded_manifest(args.snapshot)
            resharded = manifest["num_shards"] != args.shards
        if resharded:
            shard_tempdir = tempfile.TemporaryDirectory(
                prefix="repro-shards-"
            )
            snapshot_dir = str(Path(shard_tempdir.name) / "snapshot")
            try:
                TripleStore.load_snapshot(
                    args.snapshot, verify=False
                ).save_snapshot(
                    snapshot_dir, record_source=False, shards=args.shards
                )
            except SnapshotError as exc:
                shard_tempdir.cleanup()
                raise SystemExit(f"re-sharding failed: {exc}")
            print(
                f"re-sharded {args.snapshot} into {args.shards} "
                f"shard(s) at {snapshot_dir}"
            )
    try:
        service = EstimatorService.from_snapshot(
            snapshot_dir, args.checkpoint, fit_defaults
        )
    except ServiceError as exc:
        if shard_tempdir is not None:
            shard_tempdir.cleanup()
        raise SystemExit(str(exc))
    checkpoint_dir = args.checkpoint
    if args.save_checkpoint:
        save_checkpoint(service.framework, args.save_checkpoint)
        checkpoint_dir = args.save_checkpoint
        print(f"checkpoint written to {args.save_checkpoint}")
    pool = None
    tempdir = None
    try:
        if args.workers > 1:
            if checkpoint_dir is None:
                # Workers rebuild the framework from disk; a startup-fit
                # model must be checkpointed somewhere first.
                tempdir = tempfile.TemporaryDirectory(
                    prefix="repro-serve-"
                )
                checkpoint_dir = Path(tempdir.name) / "checkpoint"
                save_checkpoint(service.framework, checkpoint_dir)
            try:
                pool = SupervisedPool(
                    snapshot_dir,
                    checkpoint_dir,
                    args.workers,
                    request_timeout=args.request_timeout,
                    restart_budget=args.restart_budget,
                    fault_spec=fault_spec,
                )
            except SupervisorError as exc:
                raise SystemExit(str(exc))
            primary = pool.estimate_batch
            backend_faults = None  # the workers inject their own
        else:
            primary = service.framework.estimate_batch
            backend_faults = fault_spec
        fallback = None
        if not args.no_fallback:
            fallback = IndependenceEstimator(service.store).estimate_batch
        backend = ResilientBackend(
            primary,
            fallback=fallback,
            breaker=CircuitBreaker(
                failure_threshold=args.breaker_threshold,
                reset_timeout_s=args.breaker_reset_s,
            ),
            faults=backend_faults,
        )
        scheduler = BatchScheduler(
            backend,
            max_batch=args.max_batch,
            max_delay_ms=args.max_delay_ms,
            max_queue=args.max_queue,
        )
        if service.artifact is None and checkpoint_dir is not None:
            # Startup-fit service whose framework we just checkpointed:
            # adopt the freshly written artifact so /healthz reports its
            # schema version from the start.
            from repro.serve import load_artifact

            service.artifact = load_artifact(checkpoint_dir)
        admission = None
        if not args.no_admission:
            admission = (
                service.artifact.shapes
                if service.artifact is not None
                and service.artifact.shapes is not None
                else ShapeManifest.from_framework(service.framework)
            )
        from repro.maintain.freshness import FreshnessPolicy

        runtime = ServingRuntime(
            service,
            scheduler,
            backend,
            pool=pool,
            admission=admission,
            artifact=service.artifact,
            checkpoint_dir=checkpoint_dir,
            admission_enabled=not args.no_admission,
            freshness_policy=FreshnessPolicy(
                warn_after=args.freshness_warn,
                error_after=args.freshness_error,
            ),
        )
        server = make_server(
            service,
            scheduler,
            host=args.host,
            port=args.port,
            quiet=not args.verbose,
            runtime=runtime,
        )
        if hasattr(signal, "SIGHUP"):
            def _reload_async() -> None:
                try:
                    summary = runtime.reload()
                    print(
                        "SIGHUP reload: now serving generation "
                        f"{summary['generation']} from "
                        f"{summary['checkpoint']}",
                        flush=True,
                    )
                except Exception as exc:  # noqa: BLE001 — keep serving
                    print(
                        f"SIGHUP reload failed ({exc}); the previous "
                        "checkpoint keeps serving",
                        flush=True,
                    )

            signal.signal(
                signal.SIGHUP,
                lambda signum, frame: threading.Thread(
                    target=_reload_async,
                    name="repro-sighup-reload",
                    daemon=True,
                ).start(),
            )
        # Graceful drain on SIGTERM: stop accepting (new requests on
        # live keep-alive connections get 503), flush every in-flight
        # scheduler batch so accepted requests still get answers, then
        # exit 0 — a TERM mid-batch never drops queued requests.
        got_sigterm = threading.Event()

        def _on_sigterm(signum, frame) -> None:
            got_sigterm.set()
            server.begin_drain()
            # shutdown() blocks until serve_forever returns, so it must
            # run off the signal-handling (main) thread.
            threading.Thread(
                target=server.shutdown,
                name="repro-sigterm-drain",
                daemon=True,
            ).start()

        if hasattr(signal, "SIGTERM"):
            signal.signal(signal.SIGTERM, _on_sigterm)
        host, port = server.server_address[:2]
        print(
            f"serving {len(service.store)} triples at "
            f"http://{host}:{port} ({args.workers} worker(s), "
            f"max_batch={args.max_batch}, "
            f"max_delay={args.max_delay_ms} ms, "
            f"fallback={'off' if args.no_fallback else 'independence'}, "
            f"admission={'off' if args.no_admission else 'on'})",
            flush=True,
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
            scheduler.close()
            drained = server.wait_inflight_drained()
            if got_sigterm.is_set():
                print(
                    "SIGTERM: drained "
                    + ("cleanly" if drained else "with stragglers")
                    + ", exiting 0",
                    flush=True,
                )
    finally:
        if pool is not None:
            pool.close()
        if tempdir is not None:
            tempdir.cleanup()
        if shard_tempdir is not None:
            shard_tempdir.cleanup()
    return 0


def cmd_replay_record(args) -> int:
    from repro.replay import generate_trace, parse_mix, save_trace
    from repro.replay.trace import TraceFormatError

    if args.snapshot:
        store = TripleStore.load_snapshot(args.snapshot, verify=False)
    else:
        store = _load_store(args)
    mix = parse_mix(args.mix) if args.mix else None
    try:
        trace = generate_trace(
            store,
            rate_qps=args.rate,
            duration_s=args.duration,
            mix=mix,
            seed=args.seed,
            zipf_s=args.zipf_s,
            arrivals=args.arrivals,
        )
    except (TraceFormatError, ValueError) as exc:
        raise SystemExit(f"trace generation failed: {exc}")
    path = save_trace(trace, args.out)
    print(
        f"recorded {len(trace)} events over {trace.duration_s:.1f}s "
        f"({trace.offered_rate_qps:.1f} qps offered, "
        f"zipf_s={args.zipf_s}, arrivals={args.arrivals}) -> {path}"
    )
    return 0


def _parse_url(url: str) -> Tuple[str, int]:
    from urllib.parse import urlparse

    parsed = urlparse(url if "//" in url else f"http://{url}")
    if not parsed.hostname or not parsed.port:
        raise SystemExit(
            f"--url must look like http://host:port, got {url!r}"
        )
    return parsed.hostname, parsed.port


#: timeline actions that need in-process access to the serving stack —
#: refused up front when replaying against an external ``--url``.
_SELF_HOSTED_ACTIONS = {
    "kill_worker",
    "mutate",
    "maintain",
    "corrupt_next_checkpoint",
    "corrupt_checkpoint",
}


def cmd_replay_run(args) -> int:
    import json
    import os
    from pathlib import Path

    from repro.replay import (
        ReplayDriver,
        ReplayHarness,
        SLO,
        TimelineError,
        covering_shapes,
        format_report,
        load_trace,
        parse_timeline,
        start_timeline,
    )
    from repro.replay.trace import TraceFormatError
    from repro.serve import FitDefaults

    try:
        trace = load_trace(args.trace)
    except TraceFormatError as exc:
        raise SystemExit(f"--trace: {exc}")
    steps = []
    if args.timeline:
        text = args.timeline
        if os.path.isfile(text):
            text = Path(text).read_text()
        try:
            steps = parse_timeline(text)
        except TimelineError as exc:
            raise SystemExit(f"--timeline: {exc}")
    slo = SLO(
        p99_ms=args.slo_p99_ms,
        p999_ms=args.slo_p999_ms,
        max_shed_rate=args.slo_max_shed,
        min_achieved_fraction=args.slo_min_achieved,
        max_error_rate=args.slo_max_errors,
    )
    harness = None
    if args.url:
        blocked = sorted(
            {s.action for s in steps} & _SELF_HOSTED_ACTIONS
        )
        if blocked:
            raise SystemExit(
                "timeline actions "
                + ", ".join(blocked)
                + " need the self-hosted harness (--snapshot), not "
                "--url: they reach into the server process"
            )
        host, port = _parse_url(args.url)
    else:
        if not args.snapshot:
            raise SystemExit(
                "replay run needs --snapshot (self-hosted) or --url"
            )
        # Fit (and later maintain) exactly the shapes the trace needs:
        # an admission manifest narrower than the workload would turn
        # covered queries into 422s and fail the error gate spuriously.
        shapes = covering_shapes(trace)
        fit_kwargs = dict(
            queries_per_shape=args.fit_queries,
            epochs=args.fit_epochs,
        )
        if shapes:
            fit_kwargs["shapes"] = shapes
        harness = ReplayHarness(
            args.snapshot,
            args.checkpoint,
            workers=args.workers,
            fit_defaults=FitDefaults(**fit_kwargs),
            max_batch=args.max_batch,
            max_delay_ms=args.max_delay_ms,
            max_queue=args.max_queue,
            maintain_state_dir=args.maintain_state_dir,
            maintain_options={"shapes": shapes} if shapes else None,
            seed=args.seed,
        )
        harness.wait_ready()
        host, port = harness.host, harness.port
        print(
            f"self-hosted server at {harness.url} "
            f"({args.workers} worker(s))"
        )
    timeline_log: List[dict] = []
    try:
        driver = ReplayDriver(
            host,
            port,
            deadline_s=args.deadline_s,
            connections=args.connections,
            honor_retry_after=not args.no_retry_after,
            max_retries=args.max_retries,
            rate_scale=args.rate_scale,
        )
        timeline_thread = None
        if steps:
            if harness is None:
                raise SystemExit(
                    "--timeline needs the self-hosted harness"
                )
            timeline_thread, timeline_log = start_timeline(
                steps, harness
            )
            print(
                f"chaos timeline armed: {len(steps)} step(s), "
                f"last at {steps[-1].at_s:.0f}s"
            )
        report, _ = driver.run(trace)
        if timeline_thread is not None:
            timeline_thread.join(timeout=120.0)
    finally:
        if harness is not None:
            harness.close()
    report.evaluate(slo)
    print(format_report(report))
    timeline_ok = all(entry.get("ok") for entry in timeline_log)
    for entry in timeline_log:
        marker = "ok " if entry.get("ok") else "FAIL"
        print(
            f"  [{marker}] at {entry['at_s']:>5.1f}s "
            f"{entry['action']} {' '.join(entry['args'])}: "
            f"{entry['detail']}"
        )
    if args.report:
        payload = report.to_dict()
        payload["timeline"] = timeline_log
        payload["timeline_ok"] = timeline_ok
        Path(args.report).write_text(
            json.dumps(payload, indent=2) + "\n"
        )
        print(f"SLO report written to {args.report}")
    if not timeline_ok:
        print("FAIL: chaos timeline had failing steps", flush=True)
        return 1
    if report.verdict != "ok":
        print("FAIL: SLO violated", flush=True)
        return 1
    return 0


def cmd_replay_report(args) -> int:
    import json
    from pathlib import Path

    from repro.replay import SLOReport, format_report

    payload = json.loads(Path(args.report).read_text())
    report = SLOReport.from_dict(payload)
    print(format_report(report))
    timeline = payload.get("timeline") or []
    for entry in timeline:
        marker = "ok " if entry.get("ok") else "FAIL"
        print(
            f"  [{marker}] at {entry['at_s']:>5.1f}s "
            f"{entry['action']} {' '.join(entry['args'])}: "
            f"{entry['detail']}"
        )
    if args.json:
        print(json.dumps(payload, indent=2))
    return 0 if report.verdict == "ok" else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LMKG: learned cardinality estimation for KGs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="dataset statistics")
    _add_store_options(p_stats)
    p_stats.set_defaults(func=cmd_stats)

    p_train = sub.add_parser("train", help="train a model checkpoint")
    _add_store_options(p_train)
    p_train.add_argument(
        "--model",
        choices=("lmkg-s", "lmkg-u", "lmkg-s-range"),
        default="lmkg-s",
    )
    p_train.add_argument(
        "--shapes",
        nargs="+",
        default=["star:2"],
        help="topology:size pairs, e.g. star:2 chain:3",
    )
    p_train.add_argument("--epochs", type=int, default=40)
    p_train.add_argument(
        "--hidden", type=int, nargs="+", default=[128, 128]
    )
    p_train.add_argument(
        "--queries",
        type=int,
        default=500,
        help="training queries (lmkg-s) or instances (lmkg-u) per shape",
    )
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--out", required=True, help="checkpoint path")
    p_train.set_defaults(func=cmd_train)

    p_est = sub.add_parser("estimate", help="estimate a SPARQL query")
    _add_store_options(p_est)
    p_est.add_argument(
        "--model",
        choices=("lmkg-s", "lmkg-u", "lmkg-s-range"),
        default="lmkg-s",
    )
    p_est.add_argument("--checkpoint", required=True)
    p_est.add_argument("--query", required=True, help="SPARQL text")
    p_est.add_argument(
        "--exact",
        action="store_true",
        help="also compute the exact count and q-error",
    )
    p_est.set_defaults(func=cmd_estimate)

    p_wl = sub.add_parser(
        "workload", help="generate a labelled workload (TSV)"
    )
    _add_store_options(p_wl)
    p_wl.add_argument(
        "--topology", choices=("star", "chain"), default="star"
    )
    p_wl.add_argument("--size", type=int, default=2)
    p_wl.add_argument("--count", type=int, default=50)
    p_wl.add_argument("--seed", type=int, default=0)
    p_wl.add_argument(
        "--out",
        help="write the workload to this TSV file instead of stdout",
    )
    p_wl.set_defaults(func=cmd_workload)

    p_label = sub.add_parser(
        "label",
        help="generate a labelled workload with multiprocess labeling",
    )
    _add_store_options(p_label)
    p_label.add_argument(
        "--snapshot",
        help=(
            "attach to this on-disk store snapshot (shared read-only "
            "by all workers) instead of building a dataset"
        ),
    )
    p_label.add_argument(
        "--topology", choices=("star", "chain"), default="star"
    )
    p_label.add_argument("--size", type=int, default=2)
    p_label.add_argument("--count", type=int, default=1000)
    p_label.add_argument("--seed", type=int, default=0)
    p_label.add_argument(
        "--workers",
        type=int,
        default=1,
        help="labeling worker processes (0 = one per core; default 1)",
    )
    p_label.add_argument(
        "--out",
        help="write the labelled workload to this TSV file",
    )
    p_label.set_defaults(func=cmd_label)

    p_plan = sub.add_parser(
        "plan", help="pick and score a join order for a query"
    )
    _add_store_options(p_plan)
    p_plan.add_argument("--query", required=True, help="SPARQL text")
    p_plan.add_argument(
        "--estimator",
        choices=("exact", "indep", "bayesnet"),
        default="bayesnet",
        help="cardinality source the optimizer plans with",
    )
    p_plan.add_argument(
        "--execute",
        action="store_true",
        help="run the chosen plan and report measured intermediates",
    )
    p_plan.set_defaults(func=cmd_plan)

    p_snap = sub.add_parser(
        "snapshot",
        help="save/load memory-mapped columnar store snapshots",
    )
    snap_sub = p_snap.add_subparsers(dest="snapshot_command", required=True)
    p_snap_save = snap_sub.add_parser(
        "save", help="persist a graph as a columnar snapshot directory"
    )
    _add_store_options(p_snap_save)
    p_snap_save.add_argument(
        "--out", required=True, help="snapshot directory to write"
    )
    p_snap_save.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "split the snapshot into this many shard directories "
            "(default: one flat columnar snapshot)"
        ),
    )
    p_snap_save.add_argument(
        "--shard-by",
        choices=["subject", "predicate"],
        default="subject",
        help="shard routing key (only meaningful with --shards)",
    )
    p_snap_save.set_defaults(func=cmd_snapshot_save)
    p_snap_load = snap_sub.add_parser(
        "load",
        help="memory-map a snapshot back and print a summary",
    )
    p_snap_load.add_argument(
        "--dir", required=True, help="snapshot directory to load"
    )
    p_snap_load.add_argument(
        "--eager",
        action="store_true",
        help="read columns into memory instead of memory-mapping",
    )
    p_snap_load.add_argument(
        "--no-verify",
        action="store_true",
        help="skip checksum verification (still validates shapes)",
    )
    p_snap_load.set_defaults(func=cmd_snapshot_load)
    p_snap_info = snap_sub.add_parser(
        "info",
        help=(
            "describe a snapshot from its manifest alone (layout, "
            "shard rows, CRC32s) without loading any column"
        ),
    )
    p_snap_info.add_argument(
        "--dir", required=True, help="snapshot directory to describe"
    )
    p_snap_info.add_argument(
        "--json",
        action="store_true",
        help="machine-readable JSON instead of the table",
    )
    p_snap_info.set_defaults(func=cmd_snapshot_info)

    from repro.maintain.finetune import DEFAULT_FINETUNE_EPOCHS
    from repro.maintain.freshness import FreshnessPolicy

    p_maint = sub.add_parser(
        "maintain",
        help=(
            "incrementally maintain a trained estimator over a "
            "mutating graph (dbt-style materialization)"
        ),
    )
    maint_sub = p_maint.add_subparsers(
        dest="maintain_command", required=True
    )

    def _add_maintain_options(sub_parser) -> None:
        _add_store_options(sub_parser)
        sub_parser.add_argument(
            "--snapshot",
            help=(
                "load the live graph from this snapshot directory "
                "instead of building a dataset"
            ),
        )
        sub_parser.add_argument(
            "--state-dir",
            required=True,
            help=(
                "maintenance state directory (watermark, workload "
                "TSVs, per-generation checkpoints and snapshots)"
            ),
        )
        sub_parser.add_argument(
            "--shapes",
            nargs="+",
            default=["star:2", "chain:2"],
            help="topology:size pairs the materialization covers",
        )
        sub_parser.add_argument(
            "--queries",
            type=int,
            default=300,
            help="training queries per shape (full materialization)",
        )
        sub_parser.add_argument(
            "--epochs",
            type=int,
            default=15,
            help="training epochs for a full materialization",
        )
        sub_parser.add_argument(
            "--finetune-epochs",
            type=int,
            default=DEFAULT_FINETUNE_EPOCHS,
            help="epochs per touched model on an incremental run",
        )
        sub_parser.add_argument(
            "--hidden", type=int, nargs="+", default=[64, 64]
        )
        sub_parser.add_argument("--seed", type=int, default=0)
        sub_parser.add_argument(
            "--grouping",
            choices=("specialized", "type", "size", "single"),
            default="size",
            help="model grouping strategy (must stay fixed per state dir)",
        )
        sub_parser.add_argument(
            "--freshness-warn",
            type=int,
            default=FreshnessPolicy.warn_after,
            help="triple lag at which freshness degrades to warn",
        )
        sub_parser.add_argument(
            "--freshness-error",
            type=int,
            default=FreshnessPolicy.error_after,
            help="triple lag at which freshness degrades to error",
        )
        sub_parser.add_argument(
            "--json",
            action="store_true",
            help="machine-readable JSON instead of the table",
        )

    p_maint_run = maint_sub.add_parser(
        "run",
        help=(
            "plan, relabel, fine-tune, and publish the next "
            "generation (first run materializes from scratch)"
        ),
    )
    _add_maintain_options(p_maint_run)
    p_maint_run.add_argument(
        "--full",
        action="store_true",
        help="force a from-scratch rebuild",
    )
    p_maint_run.add_argument(
        "--dry-run",
        action="store_true",
        help="print the plan without training or publishing anything",
    )
    p_maint_run.add_argument(
        "--reload-url",
        help=(
            "POST the published generation to this /admin/reload "
            "endpoint for a zero-downtime swap"
        ),
    )
    p_maint_run.set_defaults(func=cmd_maintain_run)
    p_maint_status = maint_sub.add_parser(
        "status",
        help="watermark vs. live store, freshness verdict, pending delta",
    )
    _add_maintain_options(p_maint_status)
    p_maint_status.set_defaults(func=cmd_maintain_status)
    p_maint_gc = maint_sub.add_parser(
        "gc",
        help=(
            "retire old gen-NNNN checkpoint/snapshot generations, "
            "never the live/base one"
        ),
    )
    p_maint_gc.add_argument(
        "--state-dir",
        required=True,
        help="maintenance state directory to collect",
    )
    p_maint_gc.add_argument(
        "--keep",
        type=int,
        required=True,
        help="number of newest generations to retain (>= 1)",
    )
    p_maint_gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be removed without deleting anything",
    )
    p_maint_gc.add_argument(
        "--json",
        action="store_true",
        help="machine-readable JSON instead of the table",
    )
    p_maint_gc.set_defaults(func=cmd_maintain_gc)

    p_serve = sub.add_parser(
        "serve",
        help="serve the estimation API over HTTP with micro-batching",
    )
    p_serve.add_argument(
        "--snapshot",
        required=True,
        help="store snapshot directory to serve (read-only, shared)",
    )
    p_serve.add_argument(
        "--checkpoint",
        help=(
            "LMKG.save checkpoint directory; omitted = fit the "
            "deterministic default framework from the snapshot at "
            "startup"
        ),
    )
    p_serve.add_argument(
        "--save-checkpoint",
        help="write the served framework to this checkpoint directory",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port",
        type=int,
        default=8310,
        help="listen port (0 = ephemeral)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "estimation worker processes sharing the snapshot "
            "(1 = in-process)"
        ),
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "re-shard the snapshot into this many shards before "
            "serving (default: serve the snapshot as saved)"
        ),
    )
    p_serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="flush a micro-batch once this many queries are pending",
    )
    p_serve.add_argument(
        "--max-delay-ms",
        type=float,
        default=2.0,
        help="longest a request waits to be co-batched",
    )
    p_serve.add_argument(
        "--max-queue",
        type=int,
        default=4096,
        help="pending-query capacity before requests get 429",
    )
    from repro.serve.service import (
        DEFAULT_FIT_EPOCHS,
        DEFAULT_FIT_QUERIES,
    )

    p_serve.add_argument(
        "--fit-queries",
        type=int,
        default=DEFAULT_FIT_QUERIES,
        help="startup-fit training queries per shape (no --checkpoint)",
    )
    p_serve.add_argument(
        "--fit-epochs",
        type=int,
        default=DEFAULT_FIT_EPOCHS,
        help="startup-fit training epochs (no --checkpoint)",
    )
    p_serve.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help=(
            "seconds a worker may spend on one chunk before it is "
            "declared hung and restarted (multi-worker mode)"
        ),
    )
    p_serve.add_argument(
        "--restart-budget",
        type=int,
        default=16,
        help="total worker restarts allowed over the server's lifetime",
    )
    p_serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help=(
            "consecutive model-path failures before the circuit "
            "breaker opens and traffic degrades to the fallback"
        ),
    )
    p_serve.add_argument(
        "--breaker-reset-s",
        type=float,
        default=5.0,
        help="seconds the breaker stays open before a half-open probe",
    )
    p_serve.add_argument(
        "--no-fallback",
        action="store_true",
        help=(
            "disable graceful degradation onto the independence "
            "baseline (model-path failures then surface as errors)"
        ),
    )
    p_serve.add_argument(
        "--no-admission",
        action="store_true",
        help=(
            "disable parse-time admission control by trained shape "
            "(uncovered shapes then 422 after reaching the backend)"
        ),
    )
    p_serve.add_argument(
        "--freshness-warn",
        type=int,
        default=FreshnessPolicy.warn_after,
        help=(
            "triple lag between the served model's watermark and the "
            "live store at which /healthz freshness degrades to warn"
        ),
    )
    p_serve.add_argument(
        "--freshness-error",
        type=int,
        default=FreshnessPolicy.error_after,
        help="triple lag at which /healthz freshness degrades to error",
    )
    p_serve.add_argument(
        "--faults",
        help=(
            "chaos testing: a FaultSpec as inline JSON or a path to a "
            'JSON file, e.g. \'{"kill_every": 50}\' (worker kills need '
            "--workers > 1; in-process mode use fail_every/delay_ms)"
        ),
    )
    p_serve.add_argument(
        "--verbose",
        action="store_true",
        help="log every HTTP request",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_replay = sub.add_parser(
        "replay",
        help="open-loop workload replay with SLO gates and chaos",
    )
    replay_sub = p_replay.add_subparsers(
        dest="replay_command", required=True
    )

    p_rec = replay_sub.add_parser(
        "record",
        help="generate a recorded trace (mixes, Zipf skew, arrivals)",
    )
    _add_store_options(p_rec)
    p_rec.add_argument(
        "--snapshot",
        help="sample queries from this snapshot instead of a dataset",
    )
    p_rec.add_argument(
        "--rate", type=float, default=50.0, help="offered rate (qps)"
    )
    p_rec.add_argument(
        "--duration", type=float, default=30.0, help="trace length (s)"
    )
    p_rec.add_argument(
        "--mix",
        action="append",
        help=(
            "topology:size[:weight], repeatable "
            "(default star:2:0.5 star:3:0.2 chain:2:0.2 chain:3:0.1)"
        ),
    )
    p_rec.add_argument(
        "--zipf-s",
        type=float,
        default=1.1,
        help="Zipf skew of query popularity (0 = uniform)",
    )
    p_rec.add_argument(
        "--arrivals",
        choices=("poisson", "uniform"),
        default="poisson",
        help="arrival process",
    )
    p_rec.add_argument("--seed", type=int, default=0)
    p_rec.add_argument(
        "--out", required=True, help="trace file to write (TSV)"
    )
    p_rec.set_defaults(func=cmd_replay_record)

    p_run = replay_sub.add_parser(
        "run",
        help=(
            "fire a trace open-loop at a server (self-hosted via "
            "--snapshot, or external via --url) with optional chaos "
            "timeline; exits nonzero on SLO or timeline failure"
        ),
    )
    p_run.add_argument(
        "--trace", required=True, help="trace file from 'replay record'"
    )
    p_run.add_argument(
        "--snapshot",
        help="self-host an in-process server on this snapshot",
    )
    p_run.add_argument(
        "--checkpoint",
        help="trained checkpoint for the self-hosted server",
    )
    p_run.add_argument(
        "--url",
        help=(
            "replay against an already-running server instead "
            "(http://host:port); timelines that reach into the server "
            "process are refused"
        ),
    )
    p_run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="supervised workers for the self-hosted server",
    )
    p_run.add_argument(
        "--timeline",
        help="chaos timeline: inline DSL text or a path to a script",
    )
    p_run.add_argument(
        "--maintain-state-dir",
        help="state dir for timeline 'maintain' steps (default scratch)",
    )
    p_run.add_argument("--fit-queries", type=int, default=100)
    p_run.add_argument("--fit-epochs", type=int, default=4)
    p_run.add_argument("--max-batch", type=int, default=64)
    p_run.add_argument("--max-delay-ms", type=float, default=2.0)
    p_run.add_argument("--max-queue", type=int, default=4096)
    p_run.add_argument(
        "--deadline-s",
        type=float,
        default=5.0,
        help="per-request deadline from scheduled arrival",
    )
    p_run.add_argument(
        "--connections",
        type=int,
        default=8,
        help="keep-alive client pool size",
    )
    p_run.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="429 retries per request (honoring server backoff)",
    )
    p_run.add_argument(
        "--no-retry-after",
        action="store_true",
        help="ignore server Retry-After hints (fixed 1s backoff)",
    )
    p_run.add_argument(
        "--rate-scale",
        type=float,
        default=1.0,
        help="replay the trace at N x its recorded rate",
    )
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--slo-p99-ms", type=float, default=500.0, help="p99 gate (ms)"
    )
    p_run.add_argument(
        "--slo-p999-ms", type=float, default=None, help="p99.9 gate (ms)"
    )
    p_run.add_argument(
        "--slo-max-shed",
        type=float,
        default=0.05,
        help="max shed (429) fraction",
    )
    p_run.add_argument(
        "--slo-min-achieved",
        type=float,
        default=0.95,
        help="min achieved/offered rate fraction",
    )
    p_run.add_argument(
        "--slo-max-errors",
        type=float,
        default=0.0,
        help="max non-{200,429} fraction (0 = the chaos gate)",
    )
    p_run.add_argument(
        "--report", help="write the SLO report (+ timeline log) as JSON"
    )
    p_run.set_defaults(func=cmd_replay_run)

    p_rep = replay_sub.add_parser(
        "report",
        help="pretty-print a saved SLO report; exits nonzero if violated",
    )
    p_rep.add_argument("report", help="report JSON from 'replay run'")
    p_rep.add_argument(
        "--json", action="store_true", help="also dump the raw JSON"
    )
    p_rep.set_defaults(func=cmd_replay_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
