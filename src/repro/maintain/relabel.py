"""Incremental relabeling of the training-query materialization.

The labelled workload is the maintenance subsystem's "incremental
table": regenerating it is the single most expensive part of a refit
(exact counting of thousands of BGPs), yet a small triple delta can
only change the labels of queries whose patterns *touch* the delta.
``affected_mask`` computes that set exactly — a query's cardinality can
change only if some delta triple matches some of its triple patterns
on the bound positions — and ``relabel_records`` re-counts just those
queries against the live store, merging the fresh labels into the
existing materialization in place of the stale ones (dbt's
``merge``-on-unique-key, with the query pattern as the key).

The mask is a *necessary* condition for additions: an added triple not
matching any pattern of a query cannot enter any of its bindings, so
unaffected labels stay exact — no tolerance involved.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.rdf.fastcount import count_query
from repro.rdf.store import TripleStore
from repro.rdf.terms import is_bound
from repro.sampling.workload import QueryRecord

#: delta rows per broadcast block, bounding the (patterns x delta)
#: boolean intermediate to a few MB regardless of delta size
_DELTA_BLOCK = 4_096


def _pattern_matrix(
    records: Sequence[QueryRecord],
) -> "tuple[np.ndarray, np.ndarray]":
    """Flatten all triple patterns into one ``(P, 3)`` matrix.

    Bound positions hold the term id, unbound ones -1 (a wildcard that
    matches anything).  The second array maps each pattern row back to
    its record index.
    """
    rows: List[List[int]] = []
    owners: List[int] = []
    for ri, record in enumerate(records):
        for tp in record.query.triples:
            rows.append(
                [
                    int(t) if is_bound(t) else -1
                    for t in (tp.s, tp.p, tp.o)
                ]
            )
            owners.append(ri)
    if not rows:
        return (
            np.empty((0, 3), dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    return (
        np.array(rows, dtype=np.int64),
        np.array(owners, dtype=np.int64),
    )


def affected_mask(
    records: Sequence[QueryRecord], delta_rows: np.ndarray
) -> np.ndarray:
    """Boolean mask over *records*: which labels the delta can touch.

    A record is affected iff at least one delta triple matches at least
    one of its triple patterns on every bound position.  Vectorised as
    a broadcast of the ``(P, 3)`` wildcard pattern matrix against the
    delta block — one boolean reduction, no Python-level loop over the
    (patterns x delta) cross product.
    """
    mask = np.zeros(len(records), dtype=bool)
    delta_rows = np.asarray(delta_rows, dtype=np.int64).reshape(-1, 3)
    if len(records) == 0 or delta_rows.shape[0] == 0:
        return mask
    patterns, owners = _pattern_matrix(records)
    wildcard = patterns < 0
    for lo in range(0, delta_rows.shape[0], _DELTA_BLOCK):
        block = delta_rows[lo: lo + _DELTA_BLOCK]
        # (P, D, 3): pattern matches triple where bound-equal or wild.
        hits = (
            (patterns[:, None, :] == block[None, :, :])
            | wildcard[:, None, :]
        ).all(axis=2)
        mask[owners[hits.any(axis=1)]] = True
        if mask.all():
            break
    return mask


def relabel_records(
    store: TripleStore,
    records: Sequence[QueryRecord],
    mask: np.ndarray,
) -> List[QueryRecord]:
    """Re-count the masked records against *store* and merge.

    Returns a new record list in the original order: unaffected records
    pass through untouched (their labels are still exact), affected
    ones carry the live store's cardinality.
    """
    records = list(records)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape[0] != len(records):
        raise ValueError(
            f"mask covers {mask.shape[0]} records, got {len(records)}"
        )
    indices = np.flatnonzero(mask)
    if indices.size == 0:
        return records
    # Same labeler as generate_workload's serial path: the shape-
    # specialised counters, falling back to the generic join.
    fresh = [
        count_query(store, records[i].query) for i in indices
    ]
    merged = records[:]
    for i, card in zip(indices, fresh):
        old = records[i]
        merged[i] = QueryRecord(
            query=old.query,
            topology=old.topology,
            size=old.size,
            cardinality=int(card),
        )
    return merged


def merge_records(
    records: Sequence[QueryRecord],
    mask: np.ndarray,
    new_cardinalities: Sequence[int],
) -> List[QueryRecord]:
    """Merge pre-computed labels into the materialization.

    The split-apart form of :func:`relabel_records` for callers that
    counted the affected queries elsewhere (e.g. a worker pool): *mask*
    selects the records being replaced, *new_cardinalities* supplies
    their labels in mask order.
    """
    records = list(records)
    indices = np.flatnonzero(np.asarray(mask, dtype=bool))
    if indices.size != len(new_cardinalities):
        raise ValueError(
            f"{indices.size} masked records but "
            f"{len(new_cardinalities)} labels"
        )
    merged = records[:]
    for i, card in zip(indices, new_cardinalities):
        old = records[i]
        merged[i] = QueryRecord(
            query=old.query,
            topology=old.topology,
            size=old.size,
            cardinality=int(card),
        )
    return merged
