"""The materialization high-water mark (dbt incremental idiom).

dbt's incremental materializations persist the target's high-water mark
and, on every later run, process only source rows above it.  Here the
"target" is the trained estimator checkpoint and the "source" is the
triple store: the watermark records the store fingerprint the models
were last materialized against — generation counter, triple count,
vocabulary widths, dictionary checksum — plus a monotonic run counter.
It is stamped as ``watermark.json`` into every checkpoint directory the
:class:`~repro.maintain.runner.MaintenanceRunner` publishes, next to
the serving layer's ``artifact.json``, so both the maintenance planner
and the freshness surface on ``/healthz`` can recover "how stale is the
model this process is serving" from the artifact alone.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional, Union

from repro.rdf.store import TripleStore

WATERMARK_FILENAME = "watermark.json"

_FORMAT = "repro-maintain-watermark"
_VERSION = 1


class WatermarkError(RuntimeError):
    """Raised when a watermark file exists but cannot be trusted."""


@dataclass(frozen=True)
class Watermark:
    """Store fingerprint at the moment a materialization completed.

    Attributes:
        run: monotonic materialization counter (1 = first full build);
            doubles as the published checkpoint's generation number.
        generation: the store's mutation counter at materialization
            time.  Only comparable within one process lifetime — a
            freshly loaded snapshot restarts at 0 — so staleness
            decisions use the triple count, not this.
        num_triples / num_nodes / num_predicates: the graph extent the
            models saw.  A vocabulary change (nodes/predicates) can
            never be fine-tuned over — encoder widths derive from it —
            and always forces a full rebuild.
        dictionary_checksum: hex checksum of the term dictionary, when
            the store carries one; a changed checksum means renamed
            terms and likewise forces a full rebuild.
    """

    run: int
    generation: int
    num_triples: int
    num_nodes: int
    num_predicates: int
    dictionary_checksum: Optional[str] = None

    @classmethod
    def of_store(cls, store: TripleStore, run: int) -> "Watermark":
        checksum = (
            store.dictionary.checksum()
            if store.dictionary is not None
            else None
        )
        return cls(
            run=int(run),
            generation=int(store.generation),
            num_triples=len(store),
            num_nodes=store.num_nodes,
            num_predicates=store.num_predicates,
            dictionary_checksum=checksum,
        )

    def vocabulary_matches(self, store: TripleStore) -> bool:
        """True when *store* still speaks this watermark's vocabulary.

        The necessary condition for the incremental path: encoder
        widths and dictionary identity unchanged.  Triple count may
        differ — that difference *is* the delta to process.
        """
        if self.num_nodes != store.num_nodes:
            return False
        if self.num_predicates != store.num_predicates:
            return False
        if (
            self.dictionary_checksum is not None
            and store.dictionary is not None
            and store.dictionary.checksum() != self.dictionary_checksum
        ):
            return False
        return True

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["format"] = _FORMAT
        payload["version"] = _VERSION
        return payload


def write_watermark(
    directory: Union[str, Path], watermark: Watermark
) -> Path:
    """Persist *watermark* as ``watermark.json`` under *directory*."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / WATERMARK_FILENAME
    path.write_text(
        json.dumps(watermark.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    return path


def read_watermark(
    directory: Union[str, Path]
) -> Optional[Watermark]:
    """Load the watermark stamped under *directory*, or None.

    A missing file returns None — the dbt convention: no high-water
    mark means "first run", i.e. a full materialization.  A file that
    exists but cannot be parsed raises :class:`WatermarkError` instead
    of being silently treated as a first run, because acting on a
    corrupt watermark could discard a live materialization.
    """
    path = Path(directory) / WATERMARK_FILENAME
    if not path.is_file():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise WatermarkError(f"corrupt watermark at {path}: {exc}") from exc
    if payload.get("format") != _FORMAT:
        raise WatermarkError(f"not a watermark file: {path}")
    if payload.get("version") != _VERSION:
        raise WatermarkError(
            f"unsupported watermark version {payload.get('version')!r}"
        )
    try:
        checksum = payload.get("dictionary_checksum")
        return Watermark(
            run=int(payload["run"]),
            generation=int(payload["generation"]),
            num_triples=int(payload["num_triples"]),
            num_nodes=int(payload["num_nodes"]),
            num_predicates=int(payload["num_predicates"]),
            dictionary_checksum=(
                None if checksum is None else str(checksum)
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WatermarkError(
            f"malformed watermark at {path}: {exc}"
        ) from exc
