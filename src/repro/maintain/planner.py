"""Plan an incremental maintenance run from the delta above the mark.

The dbt incremental idiom's "what changed" step: given the last
materialization's :class:`~repro.maintain.watermark.Watermark` and a
retained base snapshot of the graph the models were trained against,
compute the delta triples (live rows absent from the base, via the
array-native ``StoreBackend.isin_rows``), then derive what the delta
can actually touch:

- **affected training queries** per shape (exact — a label can only
  change when a delta triple matches one of the query's patterns, see
  :mod:`repro.maintain.relabel`),
- **stale shapes**: shapes with affected queries, plus shapes whose
  *instance universe* moved — e.g. a ``star(k)`` gains instances when
  a touched subject's live out-degree reaches ``k``, a ``chain(k)``
  when a delta edge attaches to an existing walk — detected through
  the backend's vectorised degree accessors,
- **stale model keys** under the framework's grouping strategy: the
  only models the fine-tune step needs to touch.

Certain changes cannot be absorbed incrementally and force a full
rebuild: a vocabulary change (encoder widths derive from node and
predicate counts; the dictionary checksum guards renames), a shrunken
graph (the delta-above-watermark model is append-only, like dbt's), a
missing watermark or base snapshot (nothing to diff against).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.grouping import GroupingStrategy
from repro.maintain.relabel import affected_mask
from repro.maintain.watermark import Watermark
from repro.rdf.backend import StoreBackend
from repro.rdf.store import TripleStore
from repro.sampling.workload import QueryRecord

Shape = Tuple[str, int]


@dataclass
class MaintenancePlan:
    """What one maintenance run will do, computable without doing it."""

    #: True when the run must rebuild everything from scratch
    full: bool
    #: why (always set for full rebuilds; None for incremental runs)
    reason: Optional[str] = None
    #: triples added since the base snapshot, ``(N, 3)``
    delta_rows: np.ndarray = field(
        default_factory=lambda: np.empty((0, 3), dtype=np.int64)
    )
    #: shapes whose labels or universe the delta touches, sorted
    stale_shapes: List[Shape] = field(default_factory=list)
    #: shapes the delta provably cannot touch
    fresh_shapes: List[Shape] = field(default_factory=list)
    #: grouping keys of the models the fine-tune step must visit
    stale_keys: List[Hashable] = field(default_factory=list)
    #: per-shape boolean mask over that shape's records (stale only)
    affected: Dict[Shape, np.ndarray] = field(default_factory=dict)
    #: per-shape materialization sizes (all shapes)
    num_records: Dict[Shape, int] = field(default_factory=dict)

    @property
    def num_delta(self) -> int:
        return int(self.delta_rows.shape[0])

    def num_affected(self, shape: Shape) -> int:
        mask = self.affected.get(shape)
        return 0 if mask is None else int(mask.sum())

    def to_dict(self) -> dict:
        """JSON-ready summary for ``--dry-run`` / ``maintain status``."""
        return {
            "full": self.full,
            "reason": self.reason,
            "num_delta": self.num_delta,
            "stale_shapes": [list(s) for s in self.stale_shapes],
            "fresh_shapes": [list(s) for s in self.fresh_shapes],
            "stale_keys": [
                list(k) if isinstance(k, tuple) else k
                for k in self.stale_keys
            ],
            "affected_records": {
                f"{topology}_{size}": {
                    "affected": self.num_affected((topology, size)),
                    "total": self.num_records.get(
                        (topology, size), 0
                    ),
                }
                for topology, size in self.stale_shapes
            },
        }


def compute_delta(
    store: TripleStore, base: StoreBackend
) -> np.ndarray:
    """Triples in the live *store* but not in the *base* snapshot.

    One vectorised membership probe over the live row set — the same
    ``isin_rows`` contract every backend implements (the sharded
    backend owner-routes the probe per shard).
    """
    live = store.backend.rows()
    if live.shape[0] == 0:
        return np.empty((0, 3), dtype=np.int64)
    return live[~base.isin_rows(live)]


def _degrees_of(
    values: np.ndarray, keys: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Degree per value, 0 where absent (sorted-unique key lookup)."""
    values = np.asarray(values, dtype=np.int64)
    out = np.zeros(values.size, dtype=np.int64)
    if keys.size == 0 or values.size == 0:
        return out
    idx = np.searchsorted(keys, values)
    valid = idx < keys.size
    hit = np.zeros(values.size, dtype=bool)
    hit[valid] = keys[idx[valid]] == values[valid]
    out[hit] = counts[idx[hit]]
    return out


def _universe_moved(
    shape: Shape, delta: np.ndarray, backend: StoreBackend
) -> bool:
    """Can the delta create (or extend) instances of *shape*?

    ``star(k)``: an ordered k-star instance needs a centre with live
    out-degree >= k, so the universe only moves when a touched subject
    crosses that bound.  ``chain(k)``: a delta edge is itself a length-1
    walk; for k >= 2 it must attach to something — an edge into its
    subject, an edge out of its object (live degrees cover delta-
    internal chaining too, since the live backend already holds the
    delta).
    """
    if delta.shape[0] == 0:
        return False
    topology, size = shape
    if topology == "star":
        subjects = np.unique(delta[:, 0])
        keys, counts = backend.subject_degrees()
        return bool(
            (_degrees_of(subjects, keys, counts) >= size).any()
        )
    if topology == "chain":
        if size <= 1:
            return True
        s_keys, s_counts = backend.subject_degrees()
        o_keys, o_counts = backend.object_degrees()
        into = _degrees_of(np.unique(delta[:, 0]), o_keys, o_counts)
        outof = _degrees_of(np.unique(delta[:, 2]), s_keys, s_counts)
        return bool((into > 0).any() or (outof > 0).any())
    # Trees and anything else: no cheap structural bound; assume moved.
    return True


def plan_maintenance(
    store: TripleStore,
    watermark: Optional[Watermark],
    base: Optional[StoreBackend],
    records_by_shape: Dict[Shape, Sequence[QueryRecord]],
    grouping: GroupingStrategy,
    force_full: bool = False,
) -> MaintenancePlan:
    """Compute the plan for one maintenance run.

    *base* is the retained snapshot backend of the last
    materialization (``None`` when it is missing).  *records_by_shape*
    is the existing labelled materialization.  The returned plan is
    either a full rebuild with a reason, or an incremental plan naming
    the stale shapes, their affected record masks, and the grouping
    keys of the models to fine-tune.
    """
    num_records = {
        shape: len(records)
        for shape, records in records_by_shape.items()
    }

    def full(reason: str) -> MaintenancePlan:
        return MaintenancePlan(
            full=True, reason=reason, num_records=num_records
        )

    if force_full:
        return full("forced by --full")
    if watermark is None:
        return full("no watermark: first materialization")
    if base is None:
        return full("base snapshot missing")
    if not watermark.vocabulary_matches(store):
        return full(
            "vocabulary changed (node/predicate counts or dictionary)"
        )
    if len(store) < watermark.num_triples:
        return full(
            f"store shrank below the watermark "
            f"({len(store)} < {watermark.num_triples})"
        )
    if base.size != watermark.num_triples:
        return full(
            f"base snapshot ({base.size} triples) does not match the "
            f"watermark ({watermark.num_triples})"
        )

    delta = compute_delta(store, base)
    backend = store.backend
    plan = MaintenancePlan(
        full=False, delta_rows=delta, num_records=num_records
    )
    for shape in sorted(records_by_shape):
        records = records_by_shape[shape]
        mask = affected_mask(records, delta)
        if mask.any() or _universe_moved(shape, delta, backend):
            plan.stale_shapes.append(shape)
            plan.affected[shape] = mask
        else:
            plan.fresh_shapes.append(shape)
    seen = set()
    for topology, size in plan.stale_shapes:
        key = grouping.key(topology, size)
        if key not in seen:
            seen.add(key)
            plan.stale_keys.append(key)
    return plan
