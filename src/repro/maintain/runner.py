"""The maintenance orchestrator behind ``repro maintain run/status``.

One :class:`MaintenanceRunner` owns a **state directory** — the
estimator's incremental materialization, in dbt's on-disk shape::

    state_dir/
      watermark.json            last materialization's high-water mark
      workload/<shape>.tsv      labelled training queries per shape
      checkpoints/gen-NNNN/     versioned framework checkpoints
                                (artifact.json + watermark.json)
      snapshots/gen-NNNN/       store snapshot each generation was
                                materialized against (doubles as the
                                delta-diff base for the next run)

``run()`` is the dbt-style materialization: the **first** run (no
watermark) generates and labels the full workload, fits every model,
and publishes generation 1; every **later** run plans the delta above
the watermark (:mod:`repro.maintain.planner`), relabels only the
affected queries (:mod:`repro.maintain.relabel`), fine-tunes only the
touched models from the previous generation's float64 masters
(:mod:`repro.maintain.finetune`), and publishes the next generation —
checkpoint, fresh snapshot, and watermark, saved in that order so a
crash leaves the previous generation intact and discoverable.  With a
``reload_url`` the runner then POSTs the new generation's paths to the
serving layer's ``/admin/reload`` for a zero-downtime blue-green swap.
"""

from __future__ import annotations

import json
import time
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.framework import LMKG
from repro.core.grouping import GroupingStrategy, make_grouping
from repro.core.lmkg_s import LMKGSConfig
from repro.maintain.finetune import (
    DEFAULT_FINETUNE_EPOCHS,
    FinetuneReport,
    finetune_models,
)
from repro.maintain.freshness import (
    FreshnessPolicy,
    FreshnessStatus,
    check_freshness,
)
from repro.maintain.planner import (
    MaintenancePlan,
    plan_maintenance,
)
from repro.maintain.relabel import relabel_records
from repro.maintain.watermark import (
    Watermark,
    read_watermark,
    write_watermark,
)
from repro.rdf.backend import StoreBackend, load_backend
from repro.rdf.columnar import SnapshotError
from repro.rdf.store import TripleStore
from repro.sampling.io import load_workload, save_workload
from repro.sampling.workload import QueryRecord, generate_workload
from repro.serve.artifacts import load_checkpoint, save_checkpoint

Shape = Tuple[str, int]

WORKLOAD_DIRNAME = "workload"
CHECKPOINTS_DIRNAME = "checkpoints"
SNAPSHOTS_DIRNAME = "snapshots"


class MaintenanceError(RuntimeError):
    """A maintenance run cannot proceed (bad state directory, no
    previous generation to fine-tune from, unreachable reload URL)."""


def generation_dirname(run: int) -> str:
    return f"gen-{run:04d}"


@dataclass
class MaintenanceReport:
    """What one ``run()`` did, JSON-ready for the CLI."""

    #: "full" | "incremental" | "dry-run" | "noop"
    action: str
    #: generation published by this run (unchanged for dry-run/noop)
    run: int
    plan: Optional[dict] = None
    checkpoint_dir: Optional[str] = None
    snapshot_dir: Optional[str] = None
    finetune: Optional[dict] = None
    #: per-shape relabelled-record counts ("star_2": 12, ...)
    relabeled: Dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0
    reload_response: Optional[dict] = None

    def to_dict(self) -> dict:
        return {
            "action": self.action,
            "run": self.run,
            "plan": self.plan,
            "checkpoint_dir": self.checkpoint_dir,
            "snapshot_dir": self.snapshot_dir,
            "finetune": self.finetune,
            "relabeled": self.relabeled,
            "seconds": round(self.seconds, 3),
            "reload_response": self.reload_response,
        }


class MaintenanceRunner:
    """Materialize, then maintain, the estimator over a mutating store."""

    def __init__(
        self,
        store: TripleStore,
        state_dir: Union[str, Path],
        shapes: Sequence[Shape] = (("star", 2), ("chain", 2)),
        queries_per_shape: int = 300,
        epochs: int = 15,
        finetune_epochs: int = DEFAULT_FINETUNE_EPOCHS,
        hidden_sizes: Tuple[int, ...] = (64, 64),
        seed: int = 0,
        grouping: Union[str, GroupingStrategy] = "size",
        policy: Optional[FreshnessPolicy] = None,
    ) -> None:
        self.store = store
        self.state_dir = Path(state_dir)
        self.shapes: List[Shape] = [
            (str(t), int(s)) for t, s in shapes
        ]
        self.queries_per_shape = queries_per_shape
        self.epochs = epochs
        self.finetune_epochs = finetune_epochs
        self.hidden_sizes = tuple(hidden_sizes)
        self.seed = seed
        self.grouping: GroupingStrategy = (
            grouping
            if isinstance(grouping, GroupingStrategy)
            else make_grouping(grouping)
        )
        self.policy = policy or FreshnessPolicy()

    # ------------------------------------------------------------------
    # State-directory accessors
    # ------------------------------------------------------------------

    @property
    def workload_dir(self) -> Path:
        return self.state_dir / WORKLOAD_DIRNAME

    def checkpoint_dir(self, run: int) -> Path:
        return (
            self.state_dir
            / CHECKPOINTS_DIRNAME
            / generation_dirname(run)
        )

    def snapshot_dir(self, run: int) -> Path:
        return (
            self.state_dir
            / SNAPSHOTS_DIRNAME
            / generation_dirname(run)
        )

    def watermark(self) -> Optional[Watermark]:
        return read_watermark(self.state_dir)

    def _shape_path(self, shape: Shape) -> Path:
        topology, size = shape
        return self.workload_dir / f"{topology}_{size}.tsv"

    def _load_materialization(
        self,
    ) -> Dict[Shape, List[QueryRecord]]:
        """The persisted labelled workload, one TSV per shape."""
        out: Dict[Shape, List[QueryRecord]] = {}
        for shape in self.shapes:
            path = self._shape_path(shape)
            if path.is_file():
                out[shape] = load_workload(path)
        return out

    def _base_backend(
        self, watermark: Optional[Watermark]
    ) -> Optional[StoreBackend]:
        """Attach the watermark generation's snapshot as the diff base."""
        if watermark is None:
            return None
        directory = self.snapshot_dir(watermark.run)
        if not directory.is_dir():
            return None
        try:
            backend, _ = load_backend(
                directory, mmap_mode="r", verify=False
            )
        except SnapshotError:
            return None
        return backend

    # ------------------------------------------------------------------
    # Planning / status
    # ------------------------------------------------------------------

    def plan(self, force_full: bool = False) -> MaintenancePlan:
        watermark = self.watermark()
        return plan_maintenance(
            self.store,
            watermark,
            self._base_backend(watermark),
            self._load_materialization(),
            self.grouping,
            force_full=force_full,
        )

    def freshness(self) -> FreshnessStatus:
        return check_freshness(
            self.watermark(), self.store, self.policy
        )

    def status(self) -> dict:
        """Watermark vs. live store, freshness verdict, delta summary."""
        watermark = self.watermark()
        status: dict = {
            "state_dir": str(self.state_dir),
            "watermark": (
                watermark.to_dict() if watermark else None
            ),
            "store": {
                "num_triples": len(self.store),
                "num_nodes": self.store.num_nodes,
                "num_predicates": self.store.num_predicates,
                "generation": int(self.store.generation),
            },
            "freshness": self.freshness().to_dict(),
        }
        plan = self.plan()
        status["plan"] = plan.to_dict()
        return status

    # ------------------------------------------------------------------
    # The materialization itself
    # ------------------------------------------------------------------

    def run(
        self,
        full: bool = False,
        dry_run: bool = False,
        reload_url: Optional[str] = None,
    ) -> MaintenanceReport:
        """Execute plan → relabel → fine-tune → publish → reload.

        ``full=True`` forces a from-scratch rebuild; ``dry_run=True``
        computes and returns the plan without touching anything.
        """
        started = time.perf_counter()
        plan = self.plan(force_full=full)
        watermark = self.watermark()
        current_run = watermark.run if watermark else 0
        if dry_run:
            return MaintenanceReport(
                action="dry-run",
                run=current_run,
                plan=plan.to_dict(),
                seconds=time.perf_counter() - started,
            )
        if plan.full:
            report = self._run_full(plan, current_run + 1)
        elif not plan.stale_shapes:
            return MaintenanceReport(
                action="noop",
                run=current_run,
                plan=plan.to_dict(),
                seconds=time.perf_counter() - started,
            )
        else:
            report = self._run_incremental(
                plan, watermark, current_run + 1
            )
        if reload_url is not None:
            report.reload_response = self._trigger_reload(
                reload_url, report
            )
        report.seconds = time.perf_counter() - started
        return report

    def _run_full(
        self, plan: MaintenancePlan, run: int
    ) -> MaintenanceReport:
        """First-run (or forced) path: materialize everything."""
        records_by_shape: Dict[Shape, List[QueryRecord]] = {}
        for i, (topology, size) in enumerate(self.shapes):
            workload = generate_workload(
                self.store,
                topology,
                size,
                num_queries=self.queries_per_shape,
                seed=self.seed + 37 * i,
            )
            records_by_shape[(topology, size)] = list(
                workload.records
            )
        framework = LMKG(
            self.store,
            model_type="supervised",
            grouping=self.grouping,
            lmkgs_config=LMKGSConfig(
                hidden_sizes=self.hidden_sizes,
                epochs=self.epochs,
                seed=self.seed,
            ),
            seed=self.seed,
        )
        all_records = [
            r
            for shape in self.shapes
            for r in records_by_shape.get(shape, [])
        ]
        framework.fit(shapes=self.shapes, workload=all_records)
        report = MaintenanceReport(
            action="full", run=run, plan=plan.to_dict()
        )
        report.relabeled = {
            f"{t}_{s}": len(records_by_shape[(t, s)])
            for t, s in self.shapes
        }
        self._publish(
            framework, records_by_shape, self.shapes, run, report
        )
        return report

    def _run_incremental(
        self,
        plan: MaintenancePlan,
        watermark: Watermark,
        run: int,
    ) -> MaintenanceReport:
        """Delta path: relabel affected, fine-tune touched, publish."""
        previous = self.checkpoint_dir(watermark.run)
        if not previous.is_dir():
            raise MaintenanceError(
                f"watermark names generation {watermark.run} but "
                f"{previous} does not exist; run with --full"
            )
        records_by_shape = self._load_materialization()
        relabeled: Dict[str, int] = {}
        for shape in plan.stale_shapes:
            mask = plan.affected[shape]
            records_by_shape[shape] = relabel_records(
                self.store, records_by_shape[shape], mask
            )
            relabeled[f"{shape[0]}_{shape[1]}"] = int(mask.sum())
        # The previous generation's float64 masters, loaded against the
        # live (drifted) store: the planner already proved the
        # vocabulary is unchanged, which is what makes this legal.
        framework, _ = load_checkpoint(
            previous, self.store, allow_stale_store=True
        )
        merged = [
            r
            for shape in self.shapes
            for r in records_by_shape.get(shape, [])
        ]
        finetune = finetune_models(
            framework,
            plan.stale_keys,
            merged,
            epochs=self.finetune_epochs,
        )
        report = MaintenanceReport(
            action="incremental",
            run=run,
            plan=plan.to_dict(),
            finetune=finetune.to_dict(),
            relabeled=relabeled,
        )
        self._publish(
            framework,
            records_by_shape,
            plan.stale_shapes,
            run,
            report,
        )
        return report

    def _publish(
        self,
        framework: LMKG,
        records_by_shape: Dict[Shape, List[QueryRecord]],
        dirty_shapes: Sequence[Shape],
        run: int,
        report: MaintenanceReport,
    ) -> None:
        """Persist workload TSVs, checkpoint, snapshot, watermark.

        Ordered so that a crash mid-publish never corrupts the previous
        generation: new files land in fresh ``gen-NNNN`` directories,
        and the state-level watermark — the pointer that makes the new
        generation current — is written last.
        """
        self.workload_dir.mkdir(parents=True, exist_ok=True)
        for shape in dirty_shapes:
            save_workload(
                self._shape_path(shape), records_by_shape[shape]
            )
        checkpoint = self.checkpoint_dir(run)
        save_checkpoint(framework, checkpoint)
        snapshot = self.snapshot_dir(run)
        self.store.save_snapshot(snapshot, record_source=False)
        mark = Watermark.of_store(self.store, run)
        write_watermark(checkpoint, mark)
        write_watermark(self.state_dir, mark)
        report.checkpoint_dir = str(checkpoint)
        report.snapshot_dir = str(snapshot)

    # ------------------------------------------------------------------
    # Serving hand-off
    # ------------------------------------------------------------------

    def _trigger_reload(
        self, url: str, report: MaintenanceReport
    ) -> dict:
        """POST the new generation to ``/admin/reload`` (blue-green)."""
        body = json.dumps(
            {
                "checkpoint": report.checkpoint_dir,
                "snapshot": report.snapshot_dir,
            }
        ).encode("utf-8")
        request = urllib.request.Request(
            url,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=60
            ) as response:
                payload = json.loads(
                    response.read().decode("utf-8")
                )
        except OSError as exc:
            raise MaintenanceError(
                f"reload trigger failed against {url}: {exc}"
            ) from exc
        return payload
