"""Retire old maintenance generations (``repro maintain gc``).

Every :class:`~repro.maintain.runner.MaintenanceRunner` run publishes a
``gen-NNNN`` checkpoint directory and a matching snapshot directory
under the state dir; nothing ever deleted them, so a long-lived
deployment accretes one full model + graph copy per run.  The collector
keeps the newest ``--keep N`` generations and removes the rest — with
two hard guarantees:

- the **live generation** (the watermark's run, which is also the
  *base* snapshot the incremental planner diffs the live store against)
  is never deleted, whatever ``N`` says;
- any generation **newer** than the watermark is never deleted either
  (it may be a publish racing this collector, crash-ordered so the
  watermark flips last).

When the watermark is missing or corrupt the collector refuses with a
typed error instead of guessing which generation is live:
:class:`GCError` when there is no watermark at all,
:class:`~repro.maintain.watermark.WatermarkError` when one exists but
cannot be trusted.
"""

from __future__ import annotations

import re
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Union

from repro.maintain.runner import (
    CHECKPOINTS_DIRNAME,
    SNAPSHOTS_DIRNAME,
    MaintenanceError,
    generation_dirname,
)
from repro.maintain.watermark import read_watermark

_GEN_DIRNAME = re.compile(r"^gen-(\d{4,})$")


class GCError(MaintenanceError):
    """The collector cannot run safely (no watermark, bad ``--keep``)."""


@dataclass
class GCReport:
    """What ``gc_generations`` kept and removed."""

    live: int
    keep: int
    dry_run: bool
    kept: List[int] = field(default_factory=list)
    removed: List[int] = field(default_factory=list)
    removed_paths: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "live": self.live,
            "keep": self.keep,
            "dry_run": self.dry_run,
            "kept": list(self.kept),
            "removed": list(self.removed),
            "removed_paths": list(self.removed_paths),
        }


def list_generations(state_dir: Union[str, Path]) -> List[int]:
    """Every run number with a ``gen-NNNN`` checkpoint or snapshot
    directory under *state_dir*, ascending."""
    state = Path(state_dir)
    runs = set()
    for subdir in (CHECKPOINTS_DIRNAME, SNAPSHOTS_DIRNAME):
        parent = state / subdir
        if not parent.is_dir():
            continue
        for entry in parent.iterdir():
            match = _GEN_DIRNAME.match(entry.name)
            if match and entry.is_dir():
                runs.add(int(match.group(1)))
    return sorted(runs)


def gc_generations(
    state_dir: Union[str, Path],
    keep: int,
    dry_run: bool = False,
) -> GCReport:
    """Remove all but the newest *keep* generations under *state_dir*.

    The watermark generation (live/base) and anything newer survive
    unconditionally.  With ``dry_run`` the report lists what *would* be
    removed without touching the filesystem.

    Raises:
        GCError: ``keep < 1``, or no watermark has ever been written.
        WatermarkError: a watermark file exists but is unreadable.
    """
    if keep < 1:
        raise GCError(f"--keep must be >= 1, got {keep}")
    state = Path(state_dir)
    watermark = read_watermark(state)  # WatermarkError propagates
    if watermark is None:
        raise GCError(
            f"no watermark under {state}: cannot tell which "
            "generation is live; run maintain run first"
        )
    live = watermark.run
    runs = list_generations(state)
    newest_first = sorted(runs, reverse=True)
    retained = set(newest_first[:keep])
    retained.add(live)
    retained.update(run for run in runs if run > live)
    report = GCReport(live=live, keep=keep, dry_run=dry_run)
    report.kept = sorted(retained & set(runs))
    for run in runs:
        if run in retained:
            continue
        report.removed.append(run)
        for subdir in (CHECKPOINTS_DIRNAME, SNAPSHOTS_DIRNAME):
            target = state / subdir / generation_dirname(run)
            if not target.exists():
                continue
            report.removed_paths.append(str(target))
            if not dry_run:
                shutil.rmtree(target)
    return report
