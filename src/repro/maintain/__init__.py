"""Incremental model maintenance: track a mutating graph without refits.

The dbt incremental-materialization idiom applied to learned
cardinality estimation: the first :class:`MaintenanceRunner` run
materializes everything (labelled workload, trained framework,
versioned checkpoint artifact, high-water mark); every later run
computes only the delta above the last watermark and merges it —
relabel only the affected training queries, fine-tune only the touched
models from their float64 checkpoint masters, publish a new versioned
artifact, and (optionally) trigger the serving layer's zero-downtime
``/admin/reload``.

Modules:

- :mod:`repro.maintain.watermark`  — the persisted high-water mark,
- :mod:`repro.maintain.freshness`  — dbt-sources-style max-staleness
  thresholds (pass/warn/error) for ``/healthz``,
- :mod:`repro.maintain.planner`    — delta triples → stale shapes and
  model keys through array-native :class:`StoreBackend` accessors,
- :mod:`repro.maintain.relabel`    — incremental relabel + merge of the
  labelled workload materialization,
- :mod:`repro.maintain.finetune`   — few-epoch fine-tuning of touched
  models from their bit-exact float64 masters,
- :mod:`repro.maintain.runner`     — the orchestrator behind
  ``repro maintain run/status``,
- :mod:`repro.maintain.gc`         — retire old ``gen-NNNN``
  generations (``repro maintain gc --keep N``), never the live/base
  one.
"""

from repro.maintain.freshness import (
    FRESHNESS_ERROR,
    FRESHNESS_PASS,
    FRESHNESS_UNKNOWN,
    FRESHNESS_WARN,
    FreshnessPolicy,
    FreshnessStatus,
    check_freshness,
)
from repro.maintain.gc import (
    GCError,
    GCReport,
    gc_generations,
    list_generations,
)
from repro.maintain.planner import MaintenancePlan, plan_maintenance
from repro.maintain.relabel import (
    affected_mask,
    merge_records,
    relabel_records,
)
from repro.maintain.runner import (
    MaintenanceError,
    MaintenanceReport,
    MaintenanceRunner,
)
from repro.maintain.watermark import (
    WATERMARK_FILENAME,
    Watermark,
    WatermarkError,
    read_watermark,
    write_watermark,
)

__all__ = [
    "FRESHNESS_ERROR",
    "FRESHNESS_PASS",
    "FRESHNESS_UNKNOWN",
    "FRESHNESS_WARN",
    "FreshnessPolicy",
    "FreshnessStatus",
    "GCError",
    "GCReport",
    "MaintenanceError",
    "MaintenancePlan",
    "MaintenanceReport",
    "MaintenanceRunner",
    "WATERMARK_FILENAME",
    "Watermark",
    "WatermarkError",
    "affected_mask",
    "check_freshness",
    "gc_generations",
    "list_generations",
    "merge_records",
    "plan_maintenance",
    "read_watermark",
    "relabel_records",
    "write_watermark",
]
