"""Fine-tune only the touched models from their checkpoint masters.

The refit-avoidance half of the maintenance loop: the framework is
loaded from its last checkpoint (bit-exact float64 masters, PR 5's
restore path) against the *live* store with the triple-count gate
relaxed (``LMKG.load(..., allow_stale_store=True)``), and only the
models whose grouping keys the planner marked stale train a few more
epochs — LMKG-S on the relabelled queries of its group, LMKG-U on
fresh bound instances sampled from the mutated graph (which also
refreshes its shape-universe factor).  Untouched models keep their
exact checkpoint weights; their fused float32 inference caches rebuild
lazily and the optimizers' parameter-version bumps invalidate the
caches of the models that did move.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Sequence

from repro.core.framework import LMKG
from repro.core.lmkg_u import LMKGU
from repro.sampling.workload import QueryRecord

#: few epochs — the maintenance default; a delta worth more training
#: than this is usually also worth a full rebuild
DEFAULT_FINETUNE_EPOCHS = 2


@dataclass
class FinetuneReport:
    """Which models moved and on how much data."""

    #: per stale key: "lmkg-s" / "lmkg-u"
    kinds: Dict[Hashable, str] = field(default_factory=dict)
    #: per stale key: training records (LMKG-S) or samples (LMKG-U)
    records: Dict[Hashable, int] = field(default_factory=dict)
    epochs: int = DEFAULT_FINETUNE_EPOCHS
    #: stale keys with no loaded model (shape never trained) — skipped
    missing: List[Hashable] = field(default_factory=list)

    def to_dict(self) -> dict:
        def render(key: Hashable):
            return "_".join(map(str, key)) if isinstance(
                key, tuple
            ) else str(key)

        return {
            "epochs": self.epochs,
            "models": {
                render(key): {
                    "kind": kind,
                    "records": self.records.get(key, 0),
                }
                for key, kind in self.kinds.items()
            },
            "missing": [render(k) for k in self.missing],
        }


def finetune_models(
    framework: LMKG,
    stale_keys: Sequence[Hashable],
    records: Sequence[QueryRecord],
    epochs: int = DEFAULT_FINETUNE_EPOCHS,
) -> FinetuneReport:
    """Fine-tune the models behind *stale_keys*, leave the rest alone.

    *records* is the full merged (already relabelled) materialization;
    it is partitioned under the framework's own grouping so each
    supervised model sees exactly the group it was trained on —
    including the unaffected queries, whose unchanged labels anchor the
    fine-tune against drift on the parts of the distribution the delta
    did not touch.
    """
    report = FinetuneReport(epochs=epochs)
    groups = framework.grouping.partition(list(records))
    for key in stale_keys:
        model = framework.models.get(key)
        if model is None:
            report.missing.append(key)
            continue
        if isinstance(model, LMKGU):
            model.finetune(epochs=epochs)
            report.kinds[key] = "lmkg-u"
            report.records[key] = model.config.training_samples
        else:
            group = groups.get(key, [])
            if not group:
                report.missing.append(key)
                continue
            model.finetune(group, epochs=epochs)
            report.kinds[key] = "lmkg-s"
            report.records[key] = len(group)
    return report
