"""dbt-sources-style freshness: declared max-staleness thresholds.

dbt sources declare ``warn_after`` / ``error_after`` thresholds and a
``dbt source freshness`` run compares them against the source's
last-loaded timestamp.  The estimator equivalent: the checkpoint's
:class:`~repro.maintain.watermark.Watermark` says which graph the
models were materialized against, the live store says what the graph
is now, and the declared thresholds (measured in triples of drift, the
unit that actually moves estimates) classify the gap as pass / warn /
error.  The serving layer surfaces the verdict in ``/healthz``'s
``freshness`` block; ``repro maintain status`` prints the same check
offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.maintain.watermark import Watermark
from repro.rdf.store import TripleStore

FRESHNESS_PASS = "pass"
FRESHNESS_WARN = "warn"
FRESHNESS_ERROR = "error"
FRESHNESS_UNKNOWN = "unknown"


@dataclass(frozen=True)
class FreshnessPolicy:
    """Declared staleness thresholds, in triples of drift.

    ``warn_after=1`` (the default) flags any drift at all — the store
    has moved and the models have not; ``error_after`` marks the point
    where estimates should no longer be trusted.  Mirrors dbt's
    ``freshness: {warn_after: ..., error_after: ...}`` source config.
    """

    warn_after: int = 1
    error_after: int = 10_000

    def __post_init__(self) -> None:
        if self.warn_after < 0 or self.error_after < 0:
            raise ValueError("freshness thresholds must be >= 0")
        if self.error_after < self.warn_after:
            raise ValueError(
                "error_after must be >= warn_after "
                f"({self.error_after} < {self.warn_after})"
            )

    def classify(self, lag_triples: int) -> str:
        if lag_triples >= self.error_after:
            return FRESHNESS_ERROR
        if lag_triples >= self.warn_after:
            return FRESHNESS_WARN
        return FRESHNESS_PASS


@dataclass(frozen=True)
class FreshnessStatus:
    """Verdict of one freshness check, JSON-ready for ``/healthz``."""

    status: str
    model_run: Optional[int]
    model_generation: Optional[int]
    store_generation: int
    model_num_triples: Optional[int]
    store_num_triples: int
    lag_triples: Optional[int]
    vocabulary_ok: Optional[bool]
    warn_after: int
    error_after: int

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "model_run": self.model_run,
            "model_generation": self.model_generation,
            "store_generation": self.store_generation,
            "model_num_triples": self.model_num_triples,
            "store_num_triples": self.store_num_triples,
            "lag_triples": self.lag_triples,
            "vocabulary_ok": self.vocabulary_ok,
            "thresholds": {
                "warn_after": self.warn_after,
                "error_after": self.error_after,
            },
        }


def watermark_from_fingerprint(
    fingerprint: Mapping,
) -> Optional[Watermark]:
    """A degraded watermark recovered from a checkpoint's store
    fingerprint (``artifact.store`` / the framework manifest).

    Pre-maintenance checkpoints carry no ``watermark.json``; their
    artifact still records the training graph's extent, which is enough
    to measure triple lag.  Run and generation are unknowable from the
    fingerprint alone and report as 0 / -1.
    """
    try:
        checksum = fingerprint.get("dictionary_checksum")
        return Watermark(
            run=0,
            generation=-1,
            num_triples=int(fingerprint["num_triples"]),
            num_nodes=int(fingerprint["num_nodes"]),
            num_predicates=int(fingerprint["num_predicates"]),
            dictionary_checksum=(
                None if checksum is None else str(checksum)
            ),
        )
    except (KeyError, TypeError, ValueError):
        return None


def check_freshness(
    watermark: Optional[Watermark],
    store: TripleStore,
    policy: Optional[FreshnessPolicy] = None,
) -> FreshnessStatus:
    """Classify the gap between *watermark* and the live *store*.

    No watermark at all → ``unknown`` (nothing to measure against).  A
    vocabulary mismatch → ``error`` regardless of triple lag: the
    models cannot even be fine-tuned over it, only rebuilt.  Otherwise
    the absolute triple-count drift (insertions and deletions both
    stale the models) is classified by the declared thresholds.
    """
    policy = policy or FreshnessPolicy()
    if watermark is None:
        return FreshnessStatus(
            status=FRESHNESS_UNKNOWN,
            model_run=None,
            model_generation=None,
            store_generation=int(store.generation),
            model_num_triples=None,
            store_num_triples=len(store),
            lag_triples=None,
            vocabulary_ok=None,
            warn_after=policy.warn_after,
            error_after=policy.error_after,
        )
    lag = abs(len(store) - watermark.num_triples)
    vocabulary_ok = watermark.vocabulary_matches(store)
    status = (
        FRESHNESS_ERROR if not vocabulary_ok else policy.classify(lag)
    )
    return FreshnessStatus(
        status=status,
        model_run=watermark.run,
        model_generation=watermark.generation,
        store_generation=int(store.generation),
        model_num_triples=watermark.num_triples,
        store_num_triples=len(store),
        lag_triples=lag,
        vocabulary_ok=vocabulary_ok,
        warn_after=policy.warn_after,
        error_after=policy.error_after,
    )
