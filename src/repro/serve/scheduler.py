"""Micro-batching request scheduler for the estimation service.

A query optimizer — or here, N concurrent HTTP handler threads — issues
many small estimation requests.  Answering each alone wastes the
vectorized ``estimate_batch`` path (one featurize + one forward
regardless of batch width), so :class:`BatchScheduler` coalesces
concurrent requests into one batched call under a classic
max-batch/max-delay policy:

- the first pending request opens a batch window of ``max_delay_ms``;
- the batch flushes as soon as ``max_batch`` queries are pending, the
  window expires, or a *second* request has joined — whichever comes
  first.  A lone request on an idle server therefore waits at most
  ``max_delay_ms`` for company, but the scheduler never idles waiting
  for a fuller batch while requests are ready: under sustained
  concurrency the execution time of the in-flight batch is the real
  accumulation window (continuous batching), and everything that
  arrived meanwhile flushes together immediately.

Requests are **atomic**: a request's queries are never split across
batches (a single request may exceed ``max_batch``), so a request posted
to an idle scheduler is answered by one ``estimate_batch`` call over
exactly its queries — which is what makes served results byte-identical
to calling :meth:`Framework.estimate_batch` directly.

Backpressure is load-shedding, not buffering: once ``max_queue`` queries
are pending, :meth:`BatchScheduler.submit` raises
:class:`QueueFullError` (the HTTP layer maps it to 429) instead of
letting latency grow without bound.

The scheduler owns one daemon worker thread; the underlying numpy
forward releases the GIL for the heavy matmuls, so client threads keep
parsing/serializing while a batch runs.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.core.estimator import finalize_estimates


class QueueFullError(RuntimeError):
    """The scheduler is at capacity; the caller should shed load (429).

    ``retry_after_s`` is the scheduler's estimate of how long the
    current backlog needs to drain (queue depth / recent drain rate) —
    the HTTP layer turns it into the 429 ``Retry-After`` header so
    rejected clients spread their retries over the real recovery window
    instead of stampeding back in lockstep after a constant delay.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class SchedulerClosedError(RuntimeError):
    """Submit after close()."""


@dataclass
class _Request:
    queries: List
    future: Future
    enqueued: float
    #: backend metadata for the batch that answered this request
    #: (checkpoint generation, degraded flag); filled by the worker
    #: thread before the future resolves, read by submit_with_meta().
    meta: Optional[Dict[str, object]] = None

    @property
    def size(self) -> int:
        return len(self.queries)


@dataclass
class _Counters:
    """Mutable running totals, read out via :meth:`BatchScheduler.stats`."""

    requests: int = 0
    queries: int = 0
    batches: int = 0
    rejected: int = 0  # load-shed submits (QueueFullError / HTTP 429)
    errors: int = 0
    retries: int = 0  # requests re-run alone after a coalesced failure
    max_batch_seen: int = 0
    coalesced_requests: int = 0  # requests that shared a batch
    latencies: Deque[float] = field(
        default_factory=lambda: deque(maxlen=4096)
    )
    #: (finished_at, queries) per recent executed batch — the drain-rate
    #: window behind :meth:`BatchScheduler.retry_after_hint`.
    drained: Deque[tuple] = field(
        default_factory=lambda: deque(maxlen=64)
    )


class BatchScheduler:
    """Coalesces concurrent estimate requests into batched calls.

    Args:
        estimate_batch: the batched estimator —
            ``(queries) -> np.ndarray`` — typically
            ``LMKG.estimate_batch`` or a
            :class:`~repro.serve.supervisor.SupervisedPool`.
        max_batch: stop coalescing once this many queries are pending in
            the forming batch (a single larger request still runs whole).
        max_delay_ms: longest a request waits for co-batching company.
        max_queue: pending-query capacity; beyond it submits are
            rejected with :class:`QueueFullError`.  An empty queue
            always admits, so rejection means retrying can succeed.
    """

    def __init__(
        self,
        estimate_batch: Callable[[List], np.ndarray],
        max_batch: int = 64,
        max_delay_ms: float = 2.0,
        max_queue: int = 4096,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_ms < 0:
            raise ValueError(
                f"max_delay_ms must be >= 0, got {max_delay_ms}"
            )
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self._fn = estimate_batch
        self.max_batch = max_batch
        self.max_delay = max_delay_ms / 1000.0
        self.max_queue = max_queue
        self._cv = threading.Condition()
        self._pending: Deque[_Request] = deque()
        self._pending_queries = 0
        self._closed = False
        self._counters = _Counters()
        self._thread = threading.Thread(
            target=self._run, name="repro-batch-scheduler", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def submit_async(self, queries: Sequence) -> Future:
        """Enqueue one request; the Future resolves to its estimates."""
        return self._enqueue(queries).future

    def _enqueue(self, queries: Sequence) -> _Request:
        queries = list(queries)
        future: Future = Future()
        if not queries:
            future.set_result(np.zeros(0, dtype=np.float64))
            return _Request(queries, future, time.monotonic(), meta={})
        with self._cv:
            if self._closed:
                raise SchedulerClosedError("scheduler is closed")
            # An empty queue always admits — even a request larger than
            # max_queue (the HTTP body limit bounds it) — so a 429
            # always means retrying later can succeed.
            if (
                self._pending_queries > 0
                and self._pending_queries + len(queries) > self.max_queue
            ):
                self._counters.rejected += 1
                raise QueueFullError(
                    f"queue full: {self._pending_queries} queries "
                    f"pending, request adds {len(queries)}, "
                    f"capacity {self.max_queue}",
                    retry_after_s=self._retry_after_locked(),
                )
            request = _Request(queries, future, time.monotonic())
            self._pending.append(request)
            self._pending_queries += len(queries)
            self._counters.requests += 1
            self._counters.queries += len(queries)
            self._cv.notify_all()
        return request

    def submit(
        self, queries: Sequence, timeout: Optional[float] = None
    ) -> np.ndarray:
        """Blocking form of :meth:`submit_async`."""
        return self.submit_async(queries).result(timeout)

    def submit_with_meta(
        self, queries: Sequence, timeout: Optional[float] = None
    ):
        """Like :meth:`submit`, also returning the backend's batch
        metadata (``generation``, ``degraded``, ...) — empty dict when
        the backend reports none."""
        request = self._enqueue(queries)
        values = request.future.result(timeout)
        return values, dict(request.meta or {})

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Stop accepting requests, drain the queue, join the worker."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            self._cv.notify_all()
        self._thread.join(timeout)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Counters and latency percentiles for ``GET /stats``."""
        with self._cv:
            c = self._counters
            latencies = np.array(c.latencies, dtype=np.float64)
            snapshot: Dict[str, object] = {
                "requests": c.requests,
                "queries": c.queries,
                "batches": c.batches,
                "rejected": c.rejected,
                "shed": c.rejected,  # alias: load-shed 429s
                "errors": c.errors,
                "retries": c.retries,
                "queue_depth": self._pending_queries,
                "drain_rate_qps": round(self._drain_rate_locked(), 2),
                "retry_after_s": round(self._retry_after_locked(), 3),
                "max_batch_seen": c.max_batch_seen,
                "coalesced_requests": c.coalesced_requests,
                "mean_batch": (
                    round(c.queries / c.batches, 2) if c.batches else 0.0
                ),
                "policy": {
                    "max_batch": self.max_batch,
                    "max_delay_ms": self.max_delay * 1000.0,
                    "max_queue": self.max_queue,
                },
            }
        if latencies.size:
            snapshot["latency_ms"] = {
                "p50": round(float(np.percentile(latencies, 50)) * 1e3, 3),
                "p90": round(float(np.percentile(latencies, 90)) * 1e3, 3),
                "p99": round(float(np.percentile(latencies, 99)) * 1e3, 3),
                "max": round(float(latencies.max()) * 1e3, 3),
            }
        return snapshot

    #: Retry-After when the drain rate is still unknown (no batch has
    #: finished yet), and the clamp bounds for the derived estimate.
    DEFAULT_RETRY_AFTER_S = 1.0
    MIN_RETRY_AFTER_S = 0.05
    MAX_RETRY_AFTER_S = 30.0

    def drain_rate_qps(self) -> float:
        """Recent backlog drain rate in queries/second (0.0 = unknown).

        Measured over the window of the last executed batches: total
        queries answered divided by the span from the oldest recorded
        batch completion to now — so an idle scheduler's rate decays
        instead of reporting the last burst's throughput forever.
        """
        with self._cv:
            return self._drain_rate_locked()

    def retry_after_hint(self) -> float:
        """Seconds until the current backlog should have drained.

        ``queue depth / drain rate``, clamped to
        ``[MIN_RETRY_AFTER_S, MAX_RETRY_AFTER_S]``;
        :data:`DEFAULT_RETRY_AFTER_S` before any batch has finished.
        """
        with self._cv:
            return self._retry_after_locked()

    def _drain_rate_locked(self) -> float:
        drained = self._counters.drained
        if not drained:
            return 0.0
        oldest = drained[0][0]
        span = time.monotonic() - oldest
        if span <= 0:
            return 0.0
        return sum(width for _, width in drained) / span

    def _retry_after_locked(self) -> float:
        rate = self._drain_rate_locked()
        if rate <= 0:
            return self.DEFAULT_RETRY_AFTER_S
        return min(
            max(self._pending_queries / rate, self.MIN_RETRY_AFTER_S),
            self.MAX_RETRY_AFTER_S,
        )

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._execute(batch)

    def _next_batch(self) -> Optional[List[_Request]]:
        """Block until a batch is due; None when closed and drained."""
        with self._cv:
            while not self._pending and not self._closed:
                self._cv.wait()
            if not self._pending:
                return None  # closed and drained
            # Hold the batch open only while a single request is
            # pending and the window is young: one request may profit
            # from company, but ready work is never kept waiting for a
            # fuller batch (continuous batching — the previous batch's
            # execution time already accumulated these requests).
            deadline = self._pending[0].enqueued + self.max_delay
            while (
                not self._closed
                and len(self._pending) == 1
                and self._pending_queries < self.max_batch
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cv.wait(remaining)
            batch: List[_Request] = []
            total = 0
            while self._pending and (
                total == 0
                or total + self._pending[0].size <= self.max_batch
            ):
                request = self._pending.popleft()
                batch.append(request)
                total += request.size
            self._pending_queries -= total
            return batch

    def _execute(self, batch: List[_Request]) -> None:
        live = [
            r for r in batch if r.future.set_running_or_notify_cancel()
        ]
        if not live:
            return
        queries = [q for r in live for q in r.queries]
        try:
            values, meta = self._call_backend(queries)
        except BaseException as exc:  # noqa: BLE001 — shipped to callers
            if len(live) > 1:
                # One poisoned request must not fail its co-batched
                # neighbours: fall back to per-request calls so only the
                # offender(s) see the error.
                self._execute_individually(live)
                return
            with self._cv:
                self._counters.errors += 1
            for request in live:
                request.future.set_exception(exc)
            return
        finished = time.monotonic()
        offset = 0
        with self._cv:
            self._counters.batches += 1
            self._counters.drained.append((finished, len(queries)))
            self._counters.max_batch_seen = max(
                self._counters.max_batch_seen, len(queries)
            )
            if len(live) > 1:
                self._counters.coalesced_requests += len(live)
            for request in live:
                self._counters.latencies.append(
                    finished - request.enqueued
                )
        for request in live:
            request.meta = meta
            request.future.set_result(
                values[offset:offset + request.size].copy()
            )
            offset += request.size

    def _call_backend(self, queries: List):
        """Run the backend once; normalises its return to
        ``(values, meta)`` whether or not it reports metadata (a plain
        framework/pool returns just the array, a
        :class:`~repro.serve.supervisor.ResilientBackend` returns the
        ``(values, meta)`` pair)."""
        raw = self._fn(queries)
        meta: Dict[str, object] = {}
        if isinstance(raw, tuple):
            raw, meta = raw
        return (
            finalize_estimates(raw, len(queries), "serve-backend"),
            meta,
        )

    def _execute_individually(self, live: List[_Request]) -> None:
        """Isolation fallback after a failed coalesced batch: each
        request runs alone, so an exception reaches only the request
        that caused it."""
        with self._cv:
            self._counters.retries += len(live)
        for request in live:
            try:
                values, meta = self._call_backend(request.queries)
            except BaseException as exc:  # noqa: BLE001
                with self._cv:
                    self._counters.errors += 1
                request.future.set_exception(exc)
                continue
            finished = time.monotonic()
            with self._cv:
                self._counters.batches += 1
                self._counters.drained.append(
                    (finished, request.size)
                )
                self._counters.latencies.append(
                    finished - request.enqueued
                )
            request.meta = meta
            request.future.set_result(values)
